"""E15 — the scaling curve: wall time vs graph size on the scale tier.

The paper's strongly-local claim is an *asymptotic* statement: the cost
of one seeded diffusion depends on the support the push reaches, not on
the size of the graph it lives in.  E15 makes that measurable.  For a
ladder of R-MAT sizes (a quarter-million to a couple of million edges)
it times every stage of the scale pipeline —

* generation (vectorized R-MAT sampling + largest-component compaction),
* binary export (:func:`repro.graph.storage.write_binary`),
* memory-mapped load (:func:`repro.graph.storage.read_binary`),
* a fixed strongly-local NCP slice per engine (same seeds, same grid),

— and writes the curve to ``BENCH_scale.json`` at the repository root.
The headline is the last column: the per-seed diffusion slice should be
*flat* (or nearly so) as the graph grows 8x, because the push never
touches most of the graph; generation and serialization, which are
genuinely linear, provide the contrast.

Points are configurable via ``REPRO_SCALE_POINTS`` (comma-separated
R-MAT scales, default ``13,15,17``) so CI can run a capped ladder.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api import PPR, DiffusionGrid
from repro.core import format_table
from repro.datasets import rmat_graph
from repro.graph.storage import read_binary, write_binary
from repro.ncp import run_ncp_ensemble

DEFAULT_POINTS = "13,15,17"
NUM_SEEDS = 8
ALPHA = 0.1
EPSILON = 1e-3
BACKENDS = ("numpy", "scalar")
BENCH_NAME = "BENCH_scale.json"


def scale_points():
    raw = os.environ.get("REPRO_SCALE_POINTS", DEFAULT_POINTS)
    return [int(p) for p in raw.split(",") if p.strip()]


def ncp_slice_seconds(graph, backend):
    """Wall time of the fixed strongly-local NCP slice on ``backend``."""
    grid = DiffusionGrid(
        PPR(alpha=(ALPHA,)),
        epsilons=(EPSILON,),
        num_seeds=NUM_SEEDS,
        seed=0,
        backend=backend,
    )
    start = time.perf_counter()
    result = run_ncp_ensemble(graph, grid)
    elapsed = time.perf_counter() - start
    assert result.candidates, "NCP slice produced no candidates"
    return elapsed


def measure_point(scale, tmp_dir):
    start = time.perf_counter()
    graph = rmat_graph(scale, seed=scale)
    generate = time.perf_counter() - start

    path = tmp_dir / f"rmat-{scale}.reprograph"
    start = time.perf_counter()
    write_binary(graph, path)
    write = time.perf_counter() - start

    start = time.perf_counter()
    loaded = read_binary(path)
    load = time.perf_counter() - start
    assert loaded.num_edges == graph.num_edges

    engines = {
        backend: ncp_slice_seconds(loaded, backend) for backend in BACKENDS
    }
    # Drop the memmap references before the tmp file is cleaned up.
    del loaded
    return {
        "scale": int(scale),
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "generate_seconds": generate,
        "write_binary_seconds": write,
        "load_binary_seconds": load,
        "file_bytes": int(path.stat().st_size),
        "ncp_slice": {
            "num_seeds": NUM_SEEDS,
            "alpha": ALPHA,
            "epsilon": EPSILON,
            "engine_seconds": engines,
        },
    }


def test_e15_scaling_curve(tmp_path):
    points = [measure_point(scale, tmp_path) for scale in scale_points()]

    rows = [
        [
            f"rmat-{p['scale']}",
            p["num_nodes"],
            p["num_edges"],
            f"{p['generate_seconds']:.2f}",
            f"{p['write_binary_seconds']:.2f}",
            f"{p['load_binary_seconds']:.4f}",
            f"{p['ncp_slice']['engine_seconds']['numpy']:.2f}",
            f"{p['ncp_slice']['engine_seconds']['scalar']:.2f}",
        ]
        for p in points
    ]
    print()
    print(format_table(
        ["graph", "n", "m", "gen s", "write s", "load s",
         "ncp numpy s", "ncp scalar s"],
        rows,
        title=(
            f"E15: scale ladder, {NUM_SEEDS}-seed strongly-local NCP "
            f"slice (alpha={ALPHA}, eps={EPSILON})"
        ),
    ))

    report = {
        "points": points,
        "num_seeds": NUM_SEEDS,
        "alpha": ALPHA,
        "epsilon": EPSILON,
        "backends": list(BACKENDS),
    }
    out = Path(__file__).resolve().parents[1] / BENCH_NAME
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\nwrote {out}")

    # Memory-mapped loading must be effectively instant relative to
    # generation at every size — that is the point of the format.
    for p in points:
        assert p["load_binary_seconds"] < max(
            0.5, 0.1 * p["generate_seconds"]
        )
    # The strongly-local slice must scale strictly sublinearly in the
    # graph.  It is not perfectly flat — NCP seeds are degree-weighted
    # and R-MAT hub degrees grow with the graph, so bigger graphs hand
    # the push genuinely bigger seeds — but a slice that kept pace with
    # the edge count would mean locality is lost.
    small, large = points[0], points[-1]
    edge_ratio = large["num_edges"] / max(1, small["num_edges"])
    time_ratio = (
        large["ncp_slice"]["engine_seconds"]["numpy"]
        / max(1e-9, small["ncp_slice"]["engine_seconds"]["numpy"])
    )
    assert time_ratio < max(4.0, 0.75 * edge_ratio), (
        f"NCP slice scaled {time_ratio:.1f}x while edges grew only "
        f"{edge_ratio:.1f}x — strong locality lost"
    )
