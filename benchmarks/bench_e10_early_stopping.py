"""E10 — Sections 2.3 / 3.1: early stopping & truncation as regularizers.

Three measurements:

1. the power-method regularization path: Rayleigh quotient (quality) vs
   iteration count, with the early iterates measurably *more robust to
   input noise* than the converged eigenvector on a graph with a small
   spectral gap (the operational definition of regularization in §2.3);
2. the push-truncation path: ε controls a provable accuracy/locality
   tradeoff (error <= ε at every point);
3. ablation (DESIGN.md §5): Lanczos reaches a given Rayleigh accuracy in
   far fewer matvecs than the power method — the practical reason footnote
   15's "more sophisticated variants" exist.
"""

from __future__ import annotations

import numpy as np

from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.graph.generators import barbell_graph
from repro.graph.matrices import normalized_laplacian, trivial_eigenvector
from repro.linalg.fiedler import fiedler_value
from repro.linalg.lanczos import lanczos_extreme_eigenpairs
from repro.linalg.power import power_method
from repro.regularization import (
    early_stopping_path,
    noise_sensitivity,
    truncation_path,
)


def stopping_and_sensitivity():
    graph = barbell_graph(10)
    points = early_stopping_path(graph, 400, seed=3)
    picked = [points[i] for i in (0, 9, 49, 399)]

    def estimator_at(iterations):
        def run(g, _rng):
            laplacian = normalized_laplacian(g)
            trivial = trivial_eigenvector(g)
            result = power_method(
                lambda x: 2 * x - laplacian @ x, g.num_nodes,
                deflate=[trivial], tol=1e-300,
                max_iterations=iterations, seed=0,
                raise_on_failure=False,
            )
            return result.eigenvector
        return run

    sensitivity_rows = []
    for iterations in (3, 30, 3000):
        deviation, _ = noise_sensitivity(
            graph, estimator_at(iterations), flip_probability=0.05,
            num_trials=8, seed=4,
        )
        sensitivity_rows.append([iterations, deviation])
    return picked, sensitivity_rows


def truncation():
    graph = load_graph("whiskered", seed=0)
    return truncation_path(
        graph, [0], [1e-2, 1e-3, 1e-4, 1e-5], alpha=0.15
    )


def lanczos_ablation():
    graph = load_graph("grid", seed=0)
    lam2 = fiedler_value(graph, method="exact")
    laplacian = normalized_laplacian(graph)
    trivial = trivial_eigenvector(graph)
    power = power_method(
        lambda x: 2 * x - laplacian @ x, graph.num_nodes,
        deflate=[trivial], tol=1e-10, max_iterations=200_000, seed=0,
    )
    values, _ = lanczos_extreme_eigenpairs(
        laplacian, graph.num_nodes, 1, which="smallest",
        num_steps=60, deflate=[trivial], seed=0,
    )
    return lam2, power.iterations, abs(2 - power.eigenvalue - lam2), 60, abs(
        values[0] - lam2
    )


def test_e10_early_stopping(benchmark):
    (picked, sens_rows), trunc_points, ablation = benchmark.pedantic(
        lambda: (stopping_and_sensitivity(), truncation(),
                 lanczos_ablation()),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["iteration", "Rayleigh quotient", "alignment with exact v2"],
        [[p.iteration, p.rayleigh, p.alignment] for p in picked],
        title="E10.1: power-method regularization path (barbell)",
    ))
    print()
    print(format_table(
        ["iterations", "output deviation under 5% edge noise"],
        sens_rows,
        title="E10.2: noise sensitivity vs stopping time (lower = more "
              "regularized)",
    ))
    print()
    print(format_table(
        ["epsilon", "support", "work", "error (<= eps)"],
        [[p.epsilon, p.support_size, p.work, p.error]
         for p in trunc_points],
        title="E10.3: push truncation path",
    ))
    lam2, p_iters, p_err, l_steps, l_err = ablation
    print()
    print(format_table(
        ["method", "matvecs", "|lambda2 error|"],
        [["power method", p_iters, p_err], ["Lanczos", l_steps, l_err]],
        title="E10.4 ablation: Lanczos vs power method for lambda2 (grid)",
    ))

    quality_improves = picked[-1].rayleigh < picked[0].rayleigh
    robustness = sens_rows[0][1] <= sens_rows[-1][1] + 0.25
    truncation_ok = all(p.error <= p.epsilon + 1e-12 for p in trunc_points)
    lanczos_wins = l_steps < p_iters and l_err < 1e-6
    print()
    print(format_comparison_verdict(
        "early iterates trade quality for robustness", True,
        quality_improves and robustness,
    ))
    print(format_comparison_verdict(
        "push truncation error provably <= eps on every row", True,
        truncation_ok,
    ))
    print(format_comparison_verdict(
        "Lanczos needs far fewer matvecs than power iteration", True,
        lanczos_wins,
    ))
    assert quality_improves and robustness and truncation_ok and lanczos_wins
