"""E6 — Section 3.1: Lazy Random Walk ≡ matrix-p-norm-regularized SDP.

For a grid of step counts k (and holding probabilities α ≥ 1/2, which keep
the symmetrized walk PSD), verifies the third row of the correspondence:
``W_α^k``'s density matrix exactly optimizes Problem (5) with
G = (1/p) Tr(X^p) and p = 1 + 1/k.
"""

from __future__ import annotations

from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.regularization import verify_lazy_walk

GRAPHS = ("barbell", "roach", "planted")
SETTINGS = ((0.5, 1), (0.6, 3), (0.6, 10), (0.9, 30))


def run_verification():
    rows = []
    worst = 0.0
    for name in GRAPHS:
        graph = load_graph(name, seed=0)
        for alpha, k in SETTINGS:
            report = verify_lazy_walk(
                graph, alpha, k, run_solver=(k == 3)
            )
            worst = max(worst, report.diffusion_vs_closed_form)
            rows.append(
                [
                    name,
                    alpha,
                    k,
                    1.0 + 1.0 / k,
                    report.diffusion_vs_closed_form,
                    report.kkt_residual,
                ]
            )
    return rows, worst


def test_e6_lazy_walk_equivalence(benchmark):
    rows, worst = benchmark.pedantic(run_verification, rounds=1,
                                     iterations=1)
    print()
    print(
        format_table(
            ["graph", "alpha", "k steps", "p = 1 + 1/k",
             "||W^k - SDP opt||", "KKT residual"],
            rows,
            title="E6: Lazy Walk == p-norm-regularized SDP (Problem 5)",
        )
    )
    matches = worst < 1e-7
    print(f"\nworst diffusion-vs-SDP gap: {worst:.2e}")
    print(format_comparison_verdict(
        "k-step lazy walk exactly solves the p-norm-regularized SDP",
        True, matches,
    ))
    assert matches
