"""E1 — Figure 1(a): size-resolved conductance, spectral vs flow.

Regenerates the paper's Figure 1(a) on the synthetic AtP-DBLP stand-in:
for each cluster-size bucket, the best conductance found by the spectral
ensemble (ACL push + sweep; the paper's blue "LocalSpectral") and by the
flow ensemble (multilevel bisection + MQI; the paper's red "Metis+MQI").

Paper's claim: "the flow-based procedure is unambiguously better than the
spectral procedure at finding good-conductance clusters."
"""

from __future__ import annotations

from conftest import focus_buckets, get_figure1

from repro.core import format_comparison_verdict, format_table


def test_fig1a_conductance_profile(benchmark, shared_cache, atp_graph):
    result = get_figure1(shared_cache, atp_graph, benchmark=benchmark)
    rows = [
        [
            f"[{b.size_low:.0f}, {b.size_high:.0f})",
            b.spectral_phi,
            b.flow_phi,
            "flow" if b.flow_phi <= b.spectral_phi else "spectral",
        ]
        for b in result.joint_buckets()
    ]
    print()
    print(
        format_table(
            ["size bucket", "phi spectral", "phi flow", "winner"],
            rows,
            title=(
                "Figure 1(a): best conductance per size bucket "
                "(lower = better)"
            ),
        )
    )
    overall = result.flow_wins_conductance()
    focus = focus_buckets(result)
    focus_wins = sum(
        1 for b in focus if b.flow_phi <= b.spectral_phi
    ) / max(len(focus), 1)
    print(f"\nflow wins: {overall:.0%} of all joint buckets, "
          f"{focus_wins:.0%} of focus-range buckets")
    matches = focus_wins > 0.5
    print(format_comparison_verdict(
        "Figure 1(a): flow (Metis+MQI) finds better-conductance clusters",
        True, matches,
    ))
    assert matches, "flow did not dominate the conductance profile"
