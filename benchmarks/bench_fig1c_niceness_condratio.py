"""E3 — Figure 1(c): niceness as external/internal conductance ratio.

Regenerates the paper's Figure 1(c) with the same cloud-median reading as
panel (b): for each size bucket, the median over sampled ensemble members
of (external conductance) / (internal conductance). The paper's claim:
the spectral cloud sits lower — flow's aggressively optimized cuts tend to
be internally stringier than the diffusion-grown spectral clusters.
"""

from __future__ import annotations

import numpy as np
from conftest import FOCUS_MIN_SIZE, get_figure1

from repro.core import format_comparison_verdict, format_table
from repro.ncp.compare import bucket_cloud_niceness


def test_fig1c_conductance_ratio(benchmark, shared_cache, atp_graph):
    result = get_figure1(shared_cache, atp_graph)

    def measure_panel():
        if "clouds" not in shared_cache:
            shared_cache["clouds"] = bucket_cloud_niceness(
                atp_graph, result, samples_per_bucket=8, seed=0
            )
        return shared_cache["clouds"]

    clouds = benchmark.pedantic(measure_panel, rounds=1, iterations=1)
    joint = [
        c for c in clouds
        if np.isfinite(c.spectral_ratio) and np.isfinite(c.flow_ratio)
    ]
    print()
    print(
        format_table(
            ["size bucket", "ratio spectral (median)", "ratio flow (median)",
             "nicer"],
            [
                [
                    f"[{c.size_low:.0f}, {c.size_high:.0f})",
                    c.spectral_ratio,
                    c.flow_ratio,
                    "spectral"
                    if c.spectral_ratio <= c.flow_ratio
                    else "flow",
                ]
                for c in joint
            ],
            title=(
                "Figure 1(c): cloud-median external/internal conductance "
                "ratio (lower = nicer)"
            ),
        )
    )
    focus = [c for c in joint if c.size_high > FOCUS_MIN_SIZE]
    wins = sum(
        1 for c in focus if c.spectral_ratio <= c.flow_ratio
    ) / max(len(focus), 1)
    print(f"\nspectral wins: {wins:.0%} of focus-range buckets")
    matches = wins > 0.5
    print(format_comparison_verdict(
        "Figure 1(c): spectral clusters have lower external/internal ratio",
        True, matches,
    ))
    assert matches, "spectral did not win the conductance-ratio niceness"
