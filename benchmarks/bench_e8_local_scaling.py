"""E8 — Section 3.3: push work is output-local, independent of graph size.

"By design these procedures are extremely fast — the running time depends
on the size of the output and is independent even of the number of nodes
in the graph."

Two sweeps on whiskered expanders with a fixed whisker seed:

* graph size n swept over a factor of 16 at fixed (α, ε) — the push work
  and touched-set size must stay (nearly) flat;
* ε swept at fixed n — work must scale like O(1/ε) (the theory bound
  ||s||₁/(ε α) pushes), confirming the output-size dependence.
"""

from __future__ import annotations

from repro.core import format_comparison_verdict, format_table
from repro.diffusion import approximate_ppr_push, indicator_seed
from repro.graph.random_generators import whiskered_expander


def n_sweep():
    rows = []
    for core in (128, 512, 2048):
        graph = whiskered_expander(core, 4, 10, 8, seed=3)
        seed_vector = indicator_seed(graph, [core + 2])
        result = approximate_ppr_push(
            graph, seed_vector, alpha=0.1, epsilon=1e-4
        )
        rows.append(
            [graph.num_nodes, result.work, result.touched.size,
             result.num_pushes]
        )
    return rows


def epsilon_sweep():
    graph = whiskered_expander(512, 4, 10, 8, seed=3)
    seed_vector = indicator_seed(graph, [514])
    rows = []
    for epsilon in (1e-2, 1e-3, 1e-4, 1e-5):
        result = approximate_ppr_push(
            graph, seed_vector, alpha=0.1, epsilon=epsilon
        )
        rows.append(
            [epsilon, result.work, result.touched.size,
             result.work * epsilon]
        )
    return rows


def test_e8_strong_locality(benchmark):
    n_rows, eps_rows = benchmark.pedantic(
        lambda: (n_sweep(), epsilon_sweep()), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["n", "edge work", "touched nodes", "pushes"],
        n_rows,
        title="E8.1: n swept 16x at fixed (alpha, eps) — work must be flat",
    ))
    print()
    print(format_table(
        ["epsilon", "edge work", "touched nodes", "work * eps"],
        eps_rows,
        title="E8.2: eps sweep at fixed n — work scales like O(1/eps)",
    ))
    works = [r[1] for r in n_rows]
    ns = [r[0] for r in n_rows]
    claim_flat = works[-1] < 3 * works[0] and ns[-1] > 10 * ns[0]
    eps_works = [r[1] for r in eps_rows]
    claim_eps = eps_works[-1] > 5 * eps_works[0]
    print()
    print(format_comparison_verdict(
        "push work independent of n (16x larger graph, <3x work)",
        True, claim_flat,
    ))
    print(format_comparison_verdict(
        "push work grows as eps shrinks (output-size dependence)",
        True, claim_eps,
    ))
    assert claim_flat and claim_eps
