"""E9 — Section 3.3: optimization (MOV) vs operational (ACL) local methods.

The paper contrasts the "optimization-based approach" (MOV, Problem (8):
explicit objective, touches all nodes) with the "operational approach"
(ACL push: strongly local, implicit objective). Measured here:

* both recover the planted community from a few seeds with comparable
  conductance (the methods agree on easy instances);
* ACL's touched set is a small fraction of the graph, MOV's is all of it;
* the seed-not-in-own-cluster pathology occurs for ACL with a seed set
  straddling communities (the counterintuitive side-effect of implicit
  regularization the paper warns about).
"""

from __future__ import annotations

import numpy as np

from repro.api import PPR, local_cluster
from repro.core import format_comparison_verdict, format_table
from repro.graph.generators import ring_of_cliques
from repro.graph.random_generators import planted_partition_graph
from repro.partition import mov_cluster


def community_recovery():
    graph = planted_partition_graph(8, 32, 0.3, 0.005, seed=9)
    if not graph.is_connected():
        graph, _ = graph.largest_component()
    rows = []
    rng = np.random.default_rng(1)
    for block in range(4):
        members = np.arange(block * 32, (block + 1) * 32)
        seeds = rng.choice(members, size=3, replace=False)
        cap = 1.6 * float(graph.degrees[members].sum())
        acl = local_cluster(graph, seeds, PPR(alpha=0.05), epsilon=1e-3,
                            max_volume=cap)
        mov = mov_cluster(graph, seeds, gamma_fraction=0.7, max_volume=cap)
        truth = set(members.tolist())
        acl_jaccard = len(set(acl.nodes.tolist()) & truth) / len(
            set(acl.nodes.tolist()) | truth
        )
        mov_jaccard = len(set(mov.nodes.tolist()) & truth) / len(
            set(mov.nodes.tolist()) | truth
        )
        rows.append(
            [block, acl.conductance, mov.conductance, acl_jaccard,
             mov_jaccard, acl.support_size, graph.num_nodes]
        )
    return rows


def pathology_case():
    graph = ring_of_cliques(6, 8)
    seeds = [0, 1, 24]
    result = local_cluster(graph, seeds, PPR(alpha=0.02), epsilon=1e-6,
                           max_volume=70.0)
    stranded = [s for s in seeds if s not in set(result.nodes.tolist())]
    return result, stranded


def test_e9_mov_vs_acl(benchmark):
    rows, (pathology, stranded) = benchmark.pedantic(
        lambda: (community_recovery(), pathology_case()),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["block", "phi ACL", "phi MOV", "Jaccard ACL", "Jaccard MOV",
         "ACL touched", "MOV touched"],
        rows,
        title="E9: planted-community recovery from 3 seeds",
    ))
    recovery_ok = all(r[3] > 0.7 and r[4] > 0.7 for r in rows)
    locality_ok = all(r[5] < r[6] for r in rows)
    pathology_ok = len(stranded) > 0 and pathology.conductance < 0.05
    print()
    print(format_comparison_verdict(
        "both approaches recover planted communities (Jaccard > 0.7)",
        True, recovery_ok,
    ))
    print(format_comparison_verdict(
        "ACL touches fewer nodes than MOV (strong locality)",
        True, locality_ok,
    ))
    print(format_comparison_verdict(
        "seed-not-in-own-cluster pathology exhibited for ACL",
        True, pathology_ok,
    ))
    print(f"  stranded seeds: {stranded}, cluster phi "
          f"{pathology.conductance:.4f}")
    assert recovery_ok and locality_ok and pathology_ok
