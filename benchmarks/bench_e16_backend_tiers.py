"""E16 — backend tiers on the scale graph: every registry entry, timed.

PR 7 made kernel selection a registry (:mod:`repro.backends`); E16 is the
benchmark that keeps the tiers honest.  On an R-MAT scale graph (about a
million edges at the default scale 16) it drains the same strongly-local
PPR grid through ``spec.iter_columns`` once per *registered* backend —
``numpy`` (the vectorized reference), ``scalar`` (the pure-Python parity
oracle), ``numba`` (the optional JIT tier), and anything a user has
registered on top — and merges a backend-tagged section into
``BENCH_engine.json`` at the repository root.

Two rules keep the numbers comparable:

* every backend gets one *untimed* single-seed warm-up drain first, so
  per-process one-time costs (numba JIT compilation above all) never
  reach the timing;
* every timing is best-of-``ROUNDS``, so a one-off scheduler pause on a
  noisy CI runner cannot flip a comparison.

When numba is importable the JIT tier must beat the numpy reference in
wall clock; when it is not, the entry is recorded with ``available:
false`` (the fallback executes numpy kernels, so its time is just a
second numpy measurement) and the assertion is skipped.  Note the
scale-graph twist this benchmark exists to expose: the dense batched
reference pays O(n) per sweep, so on a big graph with tiny push supports
the *scalar* oracle can beat it — the JIT tier reclaims that headroom by
being compiled and support-proportional at once.

The graph scale is configurable via ``REPRO_E16_SCALE`` (an R-MAT scale
exponent, default ``16``) so CI can run a capped size.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro.api import PPR, get_backend, registered_backends
from repro.core import format_comparison_verdict, format_table
from repro.datasets import rmat_graph

DEFAULT_SCALE = 16
ALPHAS = (0.05, 0.15)
EPSILONS = (1e-3, 1e-4)
NUM_SEEDS = 8
ROUNDS = 3
BENCH_NAME = "BENCH_engine.json"


def graph_scale():
    return int(os.environ.get("REPRO_E16_SCALE", DEFAULT_SCALE))


def time_backend(graph, spec, seed_nodes, backend):
    """Best-of-``ROUNDS`` drain of the spec's grid on one backend.

    The single-seed warm-up drain runs first and is never timed: it pays
    any per-process compilation cost (and, for the numba entry without
    numba installed, absorbs the one-shot fallback ``RuntimeWarning``).
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for _ in spec.iter_columns(
            graph, seed_nodes[:1], epsilons=EPSILONS, backend=backend
        ):
            pass
        best = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            columns = 0
            for _ in spec.iter_columns(
                graph, seed_nodes, epsilons=EPSILONS, backend=backend
            ):
                columns += 1
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
    return best, columns


def test_e16_backend_tiers():
    scale = graph_scale()
    graph = rmat_graph(scale, seed=scale)
    rng = np.random.default_rng(0)
    seed_nodes = [
        int(u)
        for u in rng.choice(graph.num_nodes, size=NUM_SEEDS, replace=False)
    ]
    spec = PPR(alpha=ALPHAS)

    entries = {}
    columns = None
    for name in sorted(registered_backends()):
        seconds, columns = time_backend(graph, spec, seed_nodes, name)
        entries[name] = {
            "backend": name,
            "available": get_backend(name).available(),
            "seconds": seconds,
        }
    reference = entries["numpy"]["seconds"]
    for entry in entries.values():
        entry["speedup_vs_numpy"] = (
            reference / entry["seconds"] if entry["seconds"] > 0 else None
        )

    rows = [
        [
            name,
            "yes" if entry["available"] else "no (fallback)",
            f"{entry['seconds']:.3f}",
            f"{entry['speedup_vs_numpy']:.2f}x",
        ]
        for name, entry in sorted(entries.items())
    ]
    print()
    print(format_table(
        ["backend", "available", "seconds", "vs numpy"],
        rows,
        title=(
            f"E16: backend tiers, rmat-{scale} "
            f"({graph.num_nodes:,} nodes / {graph.num_edges:,} edges), "
            f"{NUM_SEEDS} seeds x {len(ALPHAS)} alphas x "
            f"{len(EPSILONS)} epsilons, best of {ROUNDS}"
        ),
    ))

    section = {
        "graph": f"rmat-{scale}",
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "spec": repr(spec),
        "num_seeds": NUM_SEEDS,
        "num_columns": int(columns),
        "epsilons": list(EPSILONS),
        "rounds": ROUNDS,
        "backends": entries,
    }
    out = Path(__file__).resolve().parents[1] / BENCH_NAME
    report = {}
    if out.exists():
        report = json.loads(out.read_text(encoding="utf-8"))
    report["backend_tiers"] = section
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nmerged backend tiers into {out}")

    # Every tier must actually have drained the full grid.
    assert columns == spec.grid_size(EPSILONS) * NUM_SEEDS
    assert all(entry["seconds"] > 0 for entry in entries.values())
    # No numpy-vs-scalar assertion here, deliberately: at scale the dense
    # batched reference pays O(n) per sweep while the scalar push only
    # touches its support, so the oracle can win wall clock on a big
    # graph with tiny supports.  That inversion is the headroom the JIT
    # tier exists to reclaim — compiled *and* support-proportional.
    # The JIT tier earns its keep only where it actually JITs: with numba
    # importable it must win wall clock against the numpy reference
    # (post-warm-up, so compilation is excluded); without numba it *is*
    # the numpy reference and there is nothing to compare.
    numba_entry = entries.get("numba")
    if numba_entry is not None and numba_entry["available"]:
        print()
        print(format_comparison_verdict(
            "numba JIT tier beats the numpy reference at scale",
            True, numba_entry["seconds"] < reference,
        ))
        assert numba_entry["seconds"] <= reference, (
            f"numba JIT tier regressed below numpy: {entries}"
        )
