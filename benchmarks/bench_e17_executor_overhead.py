"""E17 — executor-registry overhead: serial vs pooled vs chaos retries.

The execution layer (:mod:`repro.execution`) promises that the choice
of strategy — in-process serial, shared-memory process pool, or the
fault-injecting chaos executor — changes *when* chunks run but never
*what* comes out.  E17 measures the price of that freedom on one fixed
NCP workload: the process pool's startup + transport overhead relative
to the serial reference, and the wall-clock cost of riding out injected
worker kills and delays through the retry driver.  Every leg asserts
byte-identical candidates against the serial reference, so the table is
also a parity harness — a registered executor benchmarks itself.
"""

from __future__ import annotations

import time

from conftest import bench_workers

from repro.api import DiffusionGrid, PPR, run_ncp_ensemble
from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.execution import Chaos, RetryPolicy

WORKLOAD_GRAPH = "atp"
GRID = DiffusionGrid(
    PPR(alpha=(0.05, 0.15)), epsilons=(1e-3,), num_seeds=16, seed=0
)
SEEDS_PER_CHUNK = 2  # 8 chunks: enough shards for the pool and for faults

# Chaos recipe: two injected worker deaths and one injected delay, all
# seed-derived, with zero sleep so the table isolates retry overhead.
CHAOS = Chaos(seed=3, kills=2, delays=1, delay_seconds=0.0)
RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.0)


def _signature(run):
    return [
        (c.nodes.tobytes(), c.conductance, c.method)
        for c in run.candidates
    ]


def run_executor_comparison():
    """One workload through every strategy, timed against serial."""
    graph = load_graph(WORKLOAD_GRAPH)
    workers = bench_workers()
    legs = [
        ("serial", "serial", 0, None),
        ("process", "process", max(1, workers), None),
        ("chaos", CHAOS, 0, RETRY),
    ]
    rows = []
    seconds = {}
    reference = None
    for label, executor, num_workers, retry in legs:
        start = time.perf_counter()
        run = run_ncp_ensemble(
            graph, GRID,
            num_workers=num_workers,
            seeds_per_chunk=SEEDS_PER_CHUNK,
            executor=executor,
            retry=retry,
        )
        elapsed = time.perf_counter() - start
        signature = _signature(run)
        if reference is None:
            reference = signature
        assert signature == reference, f"{label} changed the ensemble"
        seconds[label] = elapsed
        rows.append([
            label,
            num_workers,
            run.num_chunks,
            run.retries,
            f"{elapsed:.3f}",
            f"{elapsed / seconds['serial']:.2f}x",
        ])
    return rows, seconds


def test_e17_executor_overhead():
    rows, seconds = run_executor_comparison()
    print()
    print(format_table(
        ["executor", "workers", "chunks", "retries", "seconds",
         "vs serial"],
        rows,
        title=(
            f"E17: executor registry over {WORKLOAD_GRAPH} "
            f"(identical candidates asserted per leg)"
        ),
    ))
    print()
    overhead = seconds["chaos"] / seconds["serial"]
    print(format_comparison_verdict(
        "riding out injected kills/delays costs less than one full "
        "re-run of the workload",
        True, overhead < 2.0,
    ))
    # The retry driver re-evaluates only the killed chunks, so chaos
    # stays well under a second serial pass on top of the first.
    assert overhead < 2.0, f"chaos retries cost {overhead:.2f}x serial"
