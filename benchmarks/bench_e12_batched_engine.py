"""E12 — frontier-batched engine vs scalar push: throughput on the suite.

Section 3.3's strong-locality claim makes push *asymptotically* cheap; E12
measures whether the implementation lets the hardware see that. The scalar
deque loop pays Python interpreter overhead per pushed edge, while the
frontier-batched engine (``repro.diffusion.engine``) pushes an entire
seed x alpha x epsilon grid through vectorized CSR sweeps. Same entrywise
guarantee, same work accounting — the only thing that changes is
pushes/second.

The reference workload is the synthetic AtP-DBLP stand-in (the Figure 1
graph); the rest of the suite shows the speedup is not a quirk of one
topology.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import HeatKernel, LazyWalk, PPR
from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.diffusion import approximate_ppr_push, batch_ppr_push
from repro.diffusion.seeds import degree_weighted_indicator_seed

ALPHAS = (0.05, 0.15)
EPSILONS = (1e-3, 1e-4)
HK_TS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
WALK_STEPS = 30
NUM_SEEDS = 10
REFERENCE = "atp"
GRAPHS = ("atp", "whiskered", "expander", "planted")

# The registry-driven multi-dynamics workload (E12b): one grid spec per
# canonical dynamics, timed through the *same* spec.iter_columns entry
# point the NCP pipeline uses, batched engine vs scalar parity oracle.
DYNAMICS_SPECS = (
    PPR(alpha=ALPHAS),
    HeatKernel(t=HK_TS),
    LazyWalk(steps=WALK_STEPS),
)


def seed_vectors(graph, num_seeds, rng):
    nodes = rng.choice(graph.num_nodes, size=num_seeds, replace=False)
    return [
        degree_weighted_indicator_seed(graph, [int(u)]) for u in nodes
    ]


def time_scalar(graph, seeds):
    start = time.perf_counter()
    pushes = 0
    for vector in seeds:
        for alpha in ALPHAS:
            for epsilon in EPSILONS:
                result = approximate_ppr_push(
                    graph, vector, alpha=alpha, epsilon=epsilon
                )
                pushes += result.num_pushes
    return time.perf_counter() - start, pushes


def time_batched(graph, seeds):
    start = time.perf_counter()
    batch = batch_ppr_push(graph, seeds, alphas=ALPHAS, epsilons=EPSILONS)
    return time.perf_counter() - start, int(batch.num_pushes.sum())


def time_spec_columns(graph, spec, seed_nodes, backend):
    """Drain one spec's full diffusion grid through ``iter_columns``.

    One untimed single-seed warm-up drain runs first so per-process
    one-time costs (numba JIT compilation above all) never reach the
    timing.
    """
    for _ in spec.iter_columns(
        graph, seed_nodes[:1], epsilons=EPSILONS, backend=backend
    ):
        pass
    start = time.perf_counter()
    for _ in spec.iter_columns(
        graph, seed_nodes, epsilons=EPSILONS, backend=backend
    ):
        pass
    return time.perf_counter() - start


def run_comparison():
    rng = np.random.default_rng(0)
    rows = []
    speedups = {}
    for name in GRAPHS:
        graph = load_graph(name)
        seeds = seed_vectors(graph, NUM_SEEDS, rng)
        scalar_seconds, scalar_pushes = time_scalar(graph, seeds)
        batched_seconds, batched_pushes = time_batched(graph, seeds)
        speedups[name] = scalar_seconds / batched_seconds
        rows.append([
            name,
            graph.num_nodes,
            f"{scalar_seconds:.3f}",
            f"{batched_seconds:.3f}",
            f"{scalar_pushes / scalar_seconds:,.0f}",
            f"{batched_pushes / batched_seconds:,.0f}",
            f"{speedups[name]:.1f}x",
        ])
    return rows, speedups


def run_dynamics_comparison():
    """Every registered canonical dynamics, batched vs scalar, one loop.

    Dispatch is entirely through the grid specs — adding a dynamics to
    the registry adds a row here without touching the harness.
    """
    rng = np.random.default_rng(0)
    graph = load_graph(REFERENCE)
    seed_nodes = [
        int(u)
        for u in rng.choice(graph.num_nodes, size=NUM_SEEDS, replace=False)
    ]
    rows = []
    speedups = {}
    for spec in DYNAMICS_SPECS:
        scalar = time_spec_columns(graph, spec, seed_nodes, "scalar")
        batched = time_spec_columns(graph, spec, seed_nodes, "numpy")
        speedups[type(spec).name] = scalar / batched
        axes = ", ".join(
            f"{len(values)} {axis}" for axis, values in spec.grid_axes().items()
        )
        rows.append([
            f"{type(spec).name} ({axes} x {len(EPSILONS)} eps)",
            f"{scalar:.3f}",
            f"{batched:.3f}",
            f"{scalar / batched:.1f}x",
        ])
    return rows, speedups


def test_e12_batched_engine_throughput(benchmark):
    rows, speedups = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["graph", "n", "scalar s", "batched s",
         "scalar pushes/s", "batched pushes/s", "speedup"],
        rows,
        title=(
            f"E12: {NUM_SEEDS} seeds x {len(ALPHAS)} alphas x "
            f"{len(EPSILONS)} epsilons, scalar loop vs batched engine"
        ),
    ))
    reference_speedup = speedups[REFERENCE]
    print()
    print(format_comparison_verdict(
        "batched engine >= 3x scalar push on the AtP-DBLP reference",
        True, reference_speedup >= 3.0,
    ))
    assert reference_speedup >= 1.5, (
        f"batched engine only {reference_speedup:.1f}x on {REFERENCE}"
    )


def test_e12_multidynamics_throughput():
    rows, speedups = run_dynamics_comparison()
    print()
    print(format_table(
        ["dynamics", "scalar s", "batched s", "speedup"],
        rows,
        title=(
            f"E12b: registry-driven engines (all canonical dynamics), "
            f"{NUM_SEEDS} seeds on {REFERENCE}"
        ),
    ))
    print()
    print(format_comparison_verdict(
        "batched HK t-grid >= 5x the scalar loop on the reference",
        True, speedups["hk"] >= 5.0,
    ))
    for name, speedup in speedups.items():
        assert speedup >= 1.5, f"batched {name} only {speedup:.1f}x"
