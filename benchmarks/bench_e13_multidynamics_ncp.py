"""E13 — multi-dynamics NCP profiles through the sharded runner.

Section 3.1 names three canonical diffusion dynamics (heat kernel,
PageRank, truncated lazy walk) and Section 3.3 their strongly local
approximations; Figure 1's NCP methodology applies to any of them. E13
runs all three through the batched engines and the process-parallel
runner on the AtP-DBLP stand-in and checks that each yields a
size-resolved profile — i.e., the multi-dynamics engine is a drop-in
candidate generator for the Figure 1 pipeline, not just the PPR path.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_workers

from repro.api import HeatKernel, LazyWalk, PPR
from repro.core import (
    format_comparison_verdict,
    format_table,
    run_multidynamics_ncp,
)


def test_e13_multidynamics_ncp(benchmark, atp_graph):
    record, profiles = benchmark.pedantic(
        run_multidynamics_ncp,
        args=(atp_graph,),
        kwargs=dict(
            dynamics=(PPR(), HeatKernel(), LazyWalk()),
            num_seeds=12,
            seed=11,
            num_workers=bench_workers(),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, profile in profiles.items():
        finite = np.isfinite(profile.best_conductance)
        rows.append([
            name,
            record.details[name]["num_candidates"],
            int(finite.sum()),
            f"{np.nanmin(profile.best_conductance):.4f}",
        ])
    print()
    print(format_table(
        ["dynamics", "candidates", "nonempty buckets", "best phi"],
        rows,
        title="E13: NCP profiles for all three canonical dynamics",
    ))
    print(f"\n{record.observed}")
    print(format_comparison_verdict(
        "every canonical dynamics produces an NCP profile via the "
        "batched engines",
        True, record.shape_matches,
    ))
    assert record.shape_matches
