"""E11 — Section 2.3 + [30]: randomized sketching regularizes least squares.

On an ill-conditioned design, sketch-and-solve least squares behaves like a
ridge estimator: as the sketch shrinks, the solution moves along a path of
increasing loss, comparable to the explicit ridge path — "empirically
similar regularization effects are observed when randomization is included
inside the algorithm".

Measured: for a sweep of sketch sizes, the median (over sketch draws)
unsketched residual and out-of-sample error, placed alongside the ridge
path; the shape claim is that residual decreases monotonically with sketch
size, approaching the OLS optimum, while small sketches sit at ridge-like
points of the tradeoff.
"""

from __future__ import annotations

import numpy as np

from repro.core import format_comparison_verdict, format_table
from repro.linalg.sketch import sketched_least_squares
from repro.regularization import ridge_path


def build_problem(seed=0):
    rng = np.random.default_rng(seed)
    n, d = 600, 20
    U, _ = np.linalg.qr(rng.standard_normal((n, d)))
    V, _ = np.linalg.qr(rng.standard_normal((d, d)))
    spectrum = np.geomspace(1.0, 1e-3, d)
    A = (U * spectrum) @ V.T
    x_true = rng.standard_normal(d)
    noise = 0.05 * rng.standard_normal(n)
    b = A @ x_true + noise
    A_test = (U * spectrum) @ V.T  # same design; fresh noise for testing
    b_test = A @ x_true + 0.05 * rng.standard_normal(n)
    return A, b, A_test, b_test


def run_sweep():
    A, b, A_test, b_test = build_problem()
    ols, *_ = np.linalg.lstsq(A, b, rcond=None)
    ols_residual = float(np.linalg.norm(A @ ols - b))
    rows = []
    for k in (25, 50, 100, 300, 600):
        residuals, test_errors, norms = [], [], []
        for draw in range(9):
            result = sketched_least_squares(
                A, b, k, kind="gaussian", seed=1000 + draw
            )
            residuals.append(result.residual_norm)
            test_errors.append(
                float(np.linalg.norm(A_test @ result.solution - b_test))
            )
            norms.append(result.solution_norm)
        rows.append(
            [k, float(np.median(residuals)), float(np.median(test_errors)),
             float(np.median(norms))]
        )
    ridge_rows = [
        [lam, np.sqrt(sol.loss_value), np.sqrt(sol.penalty_value)]
        for lam, sol in zip(
            (1e-6, 1e-4, 1e-2),
            ridge_path(A, b, (1e-6, 1e-4, 1e-2)),
        )
    ]
    return rows, ridge_rows, ols_residual, float(np.linalg.norm(ols))


def test_e11_sketched_least_squares(benchmark):
    rows, ridge_rows, ols_residual, ols_norm = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["sketch size", "median residual", "median test error",
         "median ||x||"],
        rows,
        title=(
            f"E11: sketch-and-solve path (OLS residual "
            f"{ols_residual:.4f}, ||x_OLS|| = {ols_norm:.3g})"
        ),
    ))
    print()
    print(format_table(
        ["lambda", "ridge residual", "ridge ||x||"],
        ridge_rows,
        title="Explicit ridge path for comparison",
    ))
    residuals = [r[1] for r in rows]
    monotone = all(b <= a + 1e-9 for a, b in zip(residuals, residuals[1:]))
    approaches_ols = residuals[-1] <= 1.05 * ols_residual
    print()
    print(format_comparison_verdict(
        "residual decreases monotonically with sketch size toward OLS",
        True, monotone and approaches_ols,
    ))
    assert monotone and approaches_ols
