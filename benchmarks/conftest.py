"""Shared benchmark fixtures.

The three Figure 1 panels (E1–E3) share one expensive computation: the
spectral and flow cluster ensembles on the AtP-DBLP stand-in. The first
bench that needs it computes it (inside its timed region) and caches it
here for the other panels, which then time only their own panel's work
(the niceness measurements).
"""

from __future__ import annotations

import os

import pytest

FOCUS_MIN_SIZE = 30  # the paper studies "reasonably good clusters" of
# sizes well above the tiny end; on our ~1.3k-node stand-in this means
# buckets from ~30 nodes up.


@pytest.fixture(scope="session")
def shared_cache():
    """Mutable session cache shared across benchmark files."""
    return {}


@pytest.fixture(scope="session")
def atp_graph():
    """The Figure 1 workload: synthetic AtP-DBLP, small scale."""
    from repro.datasets import synthetic_atp_dblp

    return synthetic_atp_dblp(
        scale="small", seed=7, whisker_chains=60, whisker_length=4
    ).graph


def bench_workers():
    """Worker processes for the sharded NCP runner during benchmarks.

    Multi-core machines shard the diffusion grid across processes;
    single-core runners stay in-process (a pool of one only adds
    overhead). The ensembles are identical either way.
    """
    cores = os.cpu_count() or 1
    return min(4, cores) if cores > 1 else 0


def compute_figure1(graph):
    """The full Figure 1 comparison used by E1–E3."""
    from repro.api import PPR, DiffusionGrid
    from repro.ncp import figure1_comparison

    return figure1_comparison(
        graph,
        grid=DiffusionGrid(PPR(), num_seeds=20, seed=11),
        num_buckets=8,
        seed=11,
        num_workers=bench_workers(),
    )


def get_figure1(cache, graph, *, benchmark=None):
    """Fetch (or compute, optionally timed) the shared comparison."""
    if "fig1" not in cache:
        if benchmark is not None:
            cache["fig1"] = benchmark.pedantic(
                compute_figure1, args=(graph,), rounds=1, iterations=1
            )
        else:
            cache["fig1"] = compute_figure1(graph)
    return cache["fig1"]


def focus_buckets(result):
    """Joint buckets in the paper's focus size range."""
    return [
        b for b in result.joint_buckets() if b.size_high > FOCUS_MIN_SIZE
    ]
