"""E7 — Section 3.2: complementary worst cases of spectral and flow.

Three claims from the paper, measured over size sweeps:

1. On "long stringy" graphs (Guattery–Miller roach), the classical spectral
   bisection pays an unboundedly growing factor over the optimal cut — the
   quadratic Cheeger slack "is not an artifact of the analysis" [21].
2. On cycles (the canonical stringy family), the sweep cut *saturates* the
   sqrt side of Cheeger: φ_sweep ≈ sqrt(2 λ2) up to a constant, i.e.
   φ² / λ2 stays Θ(1) while φ / λ2 diverges.
3. On constant-degree expanders, spectral is within a constant of optimal
   (λ2 is Θ(1), and the certificate sandwich is tight to a constant), while
   the flow pipeline finds no better cut — "spectral methods are better for
   expanders ... the quadratic of a constant is a constant" (footnote 23).
"""

from __future__ import annotations

import numpy as np

from repro.core import format_comparison_verdict, format_table
from repro.graph.generators import cycle_graph, roach_graph
from repro.graph.random_generators import random_regular_graph
from repro.linalg.fiedler import fiedler_value
from repro.partition.metrics import conductance
from repro.partition.multilevel import multilevel_bisection
from repro.partition.spectral import spectral_bisection_median, spectral_cut


def roach_sweep():
    rows = []
    for k in (8, 16, 32):
        graph = roach_graph(k, k)
        _, phi_bisect = spectral_bisection_median(
            graph, laplacian="combinatorial"
        )
        length = 2 * k
        antennae = list(range(k, length)) + list(
            range(length + k, 2 * length)
        )
        phi_opt = conductance(graph, antennae)
        rows.append([f"roach({k},{k})", phi_bisect, phi_opt,
                     phi_bisect / phi_opt])
    return rows


def cycle_sweep():
    rows = []
    for n in (32, 128, 512):
        graph = cycle_graph(n)
        lam2 = fiedler_value(graph, method="exact")
        result = spectral_cut(graph, method="exact")
        rows.append(
            [f"cycle({n})", lam2, result.conductance,
             result.conductance / lam2,
             result.conductance**2 / lam2]
        )
    return rows


def expander_sweep():
    rows = []
    for n in (64, 256, 1024):
        graph = random_regular_graph(n, 4, seed=5)
        lam2 = fiedler_value(graph, method="lanczos", seed=0)
        spectral = spectral_cut(graph, method="lanczos", seed=0)
        flow = multilevel_bisection(graph, seed=0)
        rows.append(
            [f"4-regular({n})", lam2, spectral.conductance,
             flow.conductance, spectral.conductance / lam2]
        )
    return rows


def test_e7_worst_cases(benchmark):
    roach_rows, cycle_rows, expander_rows = benchmark.pedantic(
        lambda: (roach_sweep(), cycle_sweep(), expander_sweep()),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["graph", "phi spectral bisection", "phi optimal", "ratio"],
        roach_rows,
        title="E7.1: Guattery-Miller roach (ratio must GROW with size)",
    ))
    print()
    print(format_table(
        ["graph", "lambda2", "phi sweep", "phi/lambda2 (diverges)",
         "phi^2/lambda2 (bounded)"],
        cycle_rows,
        title="E7.2: cycles saturate the quadratic Cheeger bound",
    ))
    print()
    print(format_table(
        ["graph", "lambda2", "phi spectral", "phi flow (Metis-like)",
         "phi/lambda2 (bounded)"],
        expander_rows,
        title="E7.3: expanders — spectral within a constant; no good cuts",
    ))

    roach_ratios = [r[3] for r in roach_rows]
    claim1 = roach_ratios[0] < roach_ratios[-1] and roach_ratios[-1] > 8
    linear_ratios = [r[3] for r in cycle_rows]
    quadratic_ratios = [r[4] for r in cycle_rows]
    claim2 = (
        linear_ratios[-1] > 3 * linear_ratios[0]
        and max(quadratic_ratios) < 8 * min(quadratic_ratios)
    )
    expander_lin = [r[4] for r in expander_rows]
    claim3 = max(expander_lin) < 10 and all(r[1] > 0.05 for r in expander_rows)
    print()
    print(format_comparison_verdict(
        "roach: spectral bisection/optimal ratio grows without bound",
        True, claim1,
    ))
    print(format_comparison_verdict(
        "cycles: sweep saturates sqrt Cheeger (phi^2/lambda2 = Theta(1))",
        True, claim2,
    ))
    print(format_comparison_verdict(
        "expanders: spectral within a constant of lambda2; no good cuts",
        True, claim3,
    ))
    assert claim1 and claim2 and claim3
