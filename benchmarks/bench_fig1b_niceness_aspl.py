"""E2 — Figure 1(b): niceness as average shortest-path length.

Regenerates the paper's Figure 1(b). The paper plots every cluster either
method finds (a scatter cloud) and observes that the spectral cloud sits
lower: spectral clusters are more compact. We reproduce that reading with
per-bucket *cloud medians* — the median ASPL over sampled candidates of
each ensemble — which is the statistic the visual claim is about.

The timed region is this panel's own work: the niceness measurements on
the sampled clouds.
"""

from __future__ import annotations

import numpy as np
from conftest import FOCUS_MIN_SIZE, get_figure1

from repro.core import format_comparison_verdict, format_table
from repro.ncp.compare import bucket_cloud_niceness


def test_fig1b_average_path_length(benchmark, shared_cache, atp_graph):
    result = get_figure1(shared_cache, atp_graph)

    def measure_panel():
        if "clouds" not in shared_cache:
            shared_cache["clouds"] = bucket_cloud_niceness(
                atp_graph, result, samples_per_bucket=8, seed=0
            )
        return shared_cache["clouds"]

    clouds = benchmark.pedantic(measure_panel, rounds=1, iterations=1)
    joint = [
        c for c in clouds
        if np.isfinite(c.spectral_aspl) and np.isfinite(c.flow_aspl)
    ]
    print()
    print(
        format_table(
            ["size bucket", "aspl spectral (median)", "aspl flow (median)",
             "nicer"],
            [
                [
                    f"[{c.size_low:.0f}, {c.size_high:.0f})",
                    c.spectral_aspl,
                    c.flow_aspl,
                    "spectral" if c.spectral_aspl <= c.flow_aspl else "flow",
                ]
                for c in joint
            ],
            title=(
                "Figure 1(b): cloud-median average shortest-path length "
                "(lower = nicer)"
            ),
        )
    )
    focus = [c for c in joint if c.size_high > FOCUS_MIN_SIZE]
    wins = sum(
        1 for c in focus if c.spectral_aspl <= c.flow_aspl
    ) / max(len(focus), 1)
    print(f"\nspectral wins: {wins:.0%} of focus-range buckets")
    matches = wins > 0.5
    print(format_comparison_verdict(
        "Figure 1(b): spectral clusters are more compact (lower ASPL)",
        True, matches,
    ))
    assert matches, "spectral did not dominate the path-length niceness"
