"""E14 — registry-driven refiner pipelines: improvement power and cost.

Figure 1's flow curve is the paper's evidence that flow-based
*improvement* systematically lowers conductance over raw proposals; the
refinement layer (:mod:`repro.refine`) makes that improvement a
first-class registry.  E14 iterates the registry — a registered refiner
benchmarks itself, exactly like a registered dynamics in E12b — and
measures, per refiner, how many multilevel-bisection proposals improve,
by how much, and at what wall-clock cost; plus the vectorized-vs-scalar
``dilate`` micro-benchmark behind the FlowImprove stage.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import registered_refiners
from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.ncp.profile import _unique_clusters
from repro.partition.flow_improve import dilate
from repro.partition.metrics import conductance
from repro.partition.multilevel import recursive_bisection_clusters
from repro.refine import apply_refiners

# MOV solves a global linear system per proposal (the Section 3.3 cost
# contrast), so the shared proposal pool is kept small and on the
# mid-size whiskered graph rather than the full AtP reference.
PROPOSAL_GRAPH = "whiskered"
MAX_PROPOSALS = 12

DILATE_GRAPH = "atp"
DILATE_RADII = (1, 2, 3)
DILATE_TRIALS = 30


def bisection_proposals(graph):
    """Deterministic raw proposals: unique recursive-bisection sides
    whose volume respects the MQI precondition."""
    half = graph.total_volume / 2.0
    proposals = [
        nodes
        for nodes in _unique_clusters(
            recursive_bisection_clusters(graph, min_size=4, seed=0)
        )
        if float(graph.degrees[nodes].sum()) <= half
    ]
    return proposals[:MAX_PROPOSALS]


def run_refiner_comparison():
    """Every registered refiner over the same proposal pool.

    Dispatch is entirely through the registry — registering a refiner
    adds a row here without touching the harness.
    """
    graph = load_graph(PROPOSAL_GRAPH)
    proposals = bisection_proposals(graph)
    rows = []
    improvements = {}
    for key, kind in sorted(registered_refiners().items()):
        spec = kind.default_spec()
        improved = 0
        deltas = []
        start = time.perf_counter()
        for nodes in proposals:
            pre = conductance(graph, nodes)
            trace = apply_refiners(graph, nodes, (spec,))
            assert trace.final_conductance <= pre + 1e-12, key
            if trace.changed:
                improved += 1
                deltas.append(pre - trace.final_conductance)
        seconds = time.perf_counter() - start
        improvements[key] = improved
        rows.append([
            spec.token(),
            len(proposals),
            improved,
            f"{float(np.mean(deltas)):.4f}" if deltas else "--",
            f"{seconds:.3f}",
        ])
    return rows, improvements


def run_dilate_comparison():
    """Vectorized CSR-gather dilation vs the scalar BFS oracle."""
    graph = load_graph(DILATE_GRAPH)
    rng = np.random.default_rng(0)
    starts = [
        rng.choice(graph.num_nodes, size=12, replace=False)
        for _ in range(DILATE_TRIALS)
    ]
    rows = []
    speedups = {}
    for radius in DILATE_RADII:
        begin = time.perf_counter()
        fast_sets = [dilate(graph, s, radius) for s in starts]
        fast = time.perf_counter() - begin
        begin = time.perf_counter()
        slow_sets = [
            dilate(graph, s, radius, backend="scalar")
            for s in starts
        ]
        slow = time.perf_counter() - begin
        for a, b in zip(fast_sets, slow_sets):
            assert np.array_equal(a, b), "dilate parity violated"
        speedups[radius] = slow / fast
        rows.append([
            radius,
            f"{slow:.4f}",
            f"{fast:.4f}",
            f"{slow / fast:.1f}x",
        ])
    return rows, speedups


def test_e14_refiner_pipelines():
    rows, improvements = run_refiner_comparison()
    print()
    print(format_table(
        ["refiner", "proposals", "improved", "mean dphi", "seconds"],
        rows,
        title=(
            f"E14: registered refiners over {PROPOSAL_GRAPH} bisection "
            f"proposals (a registered refiner benchmarks itself)"
        ),
    ))
    print()
    print(format_comparison_verdict(
        "the flow-based refiners improve bisection proposals "
        "(the Figure 1 flow-curve mechanism)",
        True, improvements["mqi"] > 0,
    ))
    assert improvements["mqi"] > 0
    # Every registered refiner at least ran the pool without worsening
    # anything (asserted per proposal inside the loop).
    assert set(improvements) >= {"mqi", "flow", "mov"}


def test_e14_dilate_vectorization():
    rows, speedups = run_dilate_comparison()
    print()
    print(format_table(
        ["radius", "scalar s", "vectorized s", "speedup"],
        rows,
        title=(
            f"E14b: dilate CSR-gather vs scalar BFS, "
            f"{DILATE_TRIALS} seed sets on {DILATE_GRAPH}"
        ),
    ))
    print()
    top = max(DILATE_RADII)
    print(format_comparison_verdict(
        f"vectorized dilate beats the scalar BFS at radius {top}",
        True, speedups[top] > 1.0,
    ))
    # The vectorized gather must win where the frontiers are large; tiny
    # radii are allowed to tie (per-call numpy overhead).
    assert speedups[top] >= 1.0, f"vectorized dilate only {speedups[top]:.2f}x"
