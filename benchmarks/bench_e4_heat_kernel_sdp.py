"""E4 — Section 3.1: Heat Kernel ≡ entropy-regularized SDP.

For a grid of times t on several graph families, verifies that the heat
kernel's density matrix is (to machine precision) the exact optimum of
Problem (5) with the generalized-entropy regularizer and η = t, and that an
independent mirror-descent solver converges to the same matrix. The same
t-grid is also pushed through the batched strongly local engine
(``batch_hk_push``), closing the loop from the SDP characterization down
to the production diffusion path: the engine's output must sit within its
own dropped-mass + Poisson-tail budget of the exact kernel the SDP
optimum certifies.
"""

from __future__ import annotations

import numpy as np

from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.diffusion import batch_hk_push, heat_kernel_vector
from repro.diffusion.seeds import degree_weighted_indicator_seed
from repro.regularization import verify_heat_kernel

GRAPHS = ("barbell", "roach", "grid", "planted")
TIMES = (0.25, 1.0, 4.0, 16.0)
ENGINE_EPSILON = 1e-9


def engine_grid_errors(graph):
    """Batched-engine ℓ1 error and budget per t, against the exact HK."""
    seed = degree_weighted_indicator_seed(graph, [0])
    batch = batch_hk_push(
        graph, [seed], ts=TIMES, epsilons=(ENGINE_EPSILON,)
    )
    errors = {}
    for b in range(batch.num_columns):
        t = float(batch.ts[b])
        exact = heat_kernel_vector(graph, seed, t, kind="random_walk")
        error = float(np.abs(batch.approximation[:, b] - exact).sum())
        budget = float(batch.dropped_mass[b] + batch.tail_bound[b])
        errors[t] = (error, budget)
    return errors


def run_verification():
    rows = []
    worst = 0.0
    worst_engine_excess = 0.0
    for name in GRAPHS:
        graph = load_graph(name, seed=0)
        engine_errors = engine_grid_errors(graph)
        for t in TIMES:
            report = verify_heat_kernel(
                graph, t, run_solver=(t == 1.0)
            )
            worst = max(worst, report.diffusion_vs_closed_form)
            error, budget = engine_errors[t]
            worst_engine_excess = max(
                worst_engine_excess, error - budget
            )
            rows.append(
                [
                    name,
                    t,
                    report.diffusion_vs_closed_form,
                    report.solver_vs_closed_form
                    if report.solver_vs_closed_form is not None
                    else float("nan"),
                    report.kkt_residual,
                    report.rayleigh_value,
                    error,
                ]
            )
    return rows, worst, worst_engine_excess


def test_e4_heat_kernel_equivalence(benchmark):
    rows, worst, engine_excess = benchmark.pedantic(
        run_verification, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["graph", "t (= eta)", "||HK - SDP opt||", "||solver - opt||",
             "KKT residual", "Tr(LX)", "engine l1 err"],
            rows,
            title="E4: Heat Kernel == entropy-regularized SDP (Problem 5)",
        )
    )
    matches = worst < 1e-8
    print(f"\nworst diffusion-vs-SDP gap: {worst:.2e}")
    print(f"worst engine error beyond its budget: {engine_excess:.2e}")
    print(format_comparison_verdict(
        "Heat Kernel exactly solves the entropy-regularized SDP",
        True, matches,
    ))
    assert matches
    assert engine_excess < 1e-7, (
        "batch_hk_push exceeded its dropped-mass + tail error budget"
    )
