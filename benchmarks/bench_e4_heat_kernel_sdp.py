"""E4 — Section 3.1: Heat Kernel ≡ entropy-regularized SDP.

For a grid of times t on several graph families, verifies that the heat
kernel's density matrix is (to machine precision) the exact optimum of
Problem (5) with the generalized-entropy regularizer and η = t, and that an
independent mirror-descent solver converges to the same matrix.
"""

from __future__ import annotations

from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.regularization import verify_heat_kernel

GRAPHS = ("barbell", "roach", "grid", "planted")
TIMES = (0.25, 1.0, 4.0, 16.0)


def run_verification():
    rows = []
    worst = 0.0
    for name in GRAPHS:
        graph = load_graph(name, seed=0)
        for t in TIMES:
            report = verify_heat_kernel(
                graph, t, run_solver=(t == 1.0)
            )
            worst = max(worst, report.diffusion_vs_closed_form)
            rows.append(
                [
                    name,
                    t,
                    report.diffusion_vs_closed_form,
                    report.solver_vs_closed_form
                    if report.solver_vs_closed_form is not None
                    else float("nan"),
                    report.kkt_residual,
                    report.rayleigh_value,
                ]
            )
    return rows, worst


def test_e4_heat_kernel_equivalence(benchmark):
    rows, worst = benchmark.pedantic(run_verification, rounds=1,
                                     iterations=1)
    print()
    print(
        format_table(
            ["graph", "t (= eta)", "||HK - SDP opt||", "||solver - opt||",
             "KKT residual", "Tr(LX)"],
            rows,
            title="E4: Heat Kernel == entropy-regularized SDP (Problem 5)",
        )
    )
    matches = worst < 1e-8
    print(f"\nworst diffusion-vs-SDP gap: {worst:.2e}")
    print(format_comparison_verdict(
        "Heat Kernel exactly solves the entropy-regularized SDP",
        True, matches,
    ))
    assert matches
