"""E5 — Section 3.1: PageRank ≡ log-det-regularized SDP.

For a grid of teleport parameters γ on several graph families, verifies the
second row of the paper's correspondence: the PageRank resolvent's density
matrix exactly optimizes Problem (5) with G = −log det, via the parameter
map μ = γ/(1−γ), η = Σ 1/(λ_i + μ).
"""

from __future__ import annotations

from repro.core import format_comparison_verdict, format_table
from repro.datasets import load_graph
from repro.regularization import verify_pagerank

GRAPHS = ("barbell", "lollipop", "grid", "planted")
GAMMAS = (0.05, 0.2, 0.5, 0.9)


def run_verification():
    rows = []
    worst = 0.0
    for name in GRAPHS:
        graph = load_graph(name, seed=0)
        for gamma in GAMMAS:
            report = verify_pagerank(
                graph, gamma, run_solver=(gamma == 0.2)
            )
            worst = max(worst, report.diffusion_vs_closed_form)
            rows.append(
                [
                    name,
                    gamma,
                    report.eta,
                    report.diffusion_vs_closed_form,
                    report.kkt_residual,
                    report.rayleigh_value,
                ]
            )
    return rows, worst


def test_e5_pagerank_equivalence(benchmark):
    rows, worst = benchmark.pedantic(run_verification, rounds=1,
                                     iterations=1)
    print()
    print(
        format_table(
            ["graph", "gamma", "eta(gamma)", "||PR - SDP opt||",
             "KKT residual", "Tr(LX)"],
            rows,
            title="E5: PageRank == log-det-regularized SDP (Problem 5)",
        )
    )
    matches = worst < 1e-8
    print(f"\nworst diffusion-vs-SDP gap: {worst:.2e}")
    print(format_comparison_verdict(
        "PageRank exactly solves the log-det-regularized SDP",
        True, matches,
    ))
    assert matches
