"""The Figure 1 engine: spectral-vs-flow cluster comparison.

Runs both NCP ensembles on one graph, buckets them by size, attaches the
niceness measures to each bucket representative, and summarizes the three
panels of the paper's Figure 1:

* panel (a): conductance per size — the *flow* curve should dominate
  (lower φ);
* panel (b): average shortest-path length — the *spectral* representatives
  should be more compact (lower);
* panel (c): external/internal conductance ratio — the *spectral*
  representatives should be nicer (lower).
Two statistics per panel are available: the per-bucket *lower envelope*
(best-conductance representative, :func:`figure1_comparison`'s buckets) and
the per-bucket *cloud medians* (:func:`bucket_cloud_niceness`), which match
the paper's scatter-plot reading — Figure 1 plots every cluster found, and
its (b)/(c) claims are about where each method's cloud sits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamics import PPR, DiffusionGrid, warn_deprecated
from repro.exceptions import InvalidParameterError
from repro.ncp.niceness import cluster_niceness
from repro.ncp.profile import (
    best_per_size_bucket,
    flow_cluster_ensemble_ncp,
)
from repro.refine import as_pipeline


@dataclass
class BucketComparison:
    """One size bucket of the Figure 1 comparison.

    Attributes
    ----------
    size_low, size_high:
        Bucket boundaries (node counts).
    spectral_phi, flow_phi:
        Best conductance per method (NaN when the bucket is empty).
    spectral_niceness, flow_niceness:
        :class:`~repro.ncp.niceness.ClusterNiceness` of the representatives
        (None when empty).
    """

    size_low: float
    size_high: float
    spectral_phi: float
    flow_phi: float
    spectral_niceness: object
    flow_niceness: object


@dataclass
class Figure1Result:
    """Full spectral-vs-flow comparison on one graph.

    Attributes
    ----------
    buckets:
        Per-size-bucket comparisons (lower-envelope representatives).
    spectral_candidates, flow_candidates:
        Ensemble sizes.
    spectral_pool, flow_pool:
        The full candidate ensembles (the scatter "clouds" of the paper's
        Figure 1), kept for cloud-level statistics.
    """

    buckets: list = field(default_factory=list)

    spectral_candidates: int = 0
    flow_candidates: int = 0
    spectral_pool: list = field(repr=False, default_factory=list)
    flow_pool: list = field(repr=False, default_factory=list)

    def joint_buckets(self):
        """Buckets where both methods produced a representative."""
        return [
            b for b in self.buckets
            if np.isfinite(b.spectral_phi) and np.isfinite(b.flow_phi)
        ]

    def flow_wins_conductance(self):
        """Fraction of joint buckets where flow finds lower φ (panel a)."""
        joint = self.joint_buckets()
        if not joint:
            return float("nan")
        wins = sum(1 for b in joint if b.flow_phi <= b.spectral_phi)
        return wins / len(joint)

    def spectral_wins_path_length(self):
        """Fraction of joint buckets where spectral clusters are more
        compact (panel b)."""
        joint = [
            b for b in self.joint_buckets()
            if b.spectral_niceness is not None and b.flow_niceness is not None
        ]
        if not joint:
            return float("nan")
        wins = sum(
            1 for b in joint
            if b.spectral_niceness.average_path_length
            <= b.flow_niceness.average_path_length
        )
        return wins / len(joint)

    def spectral_wins_conductance_ratio(self):
        """Fraction of joint buckets where spectral clusters have the lower
        external/internal conductance ratio (panel c)."""
        joint = [
            b for b in self.joint_buckets()
            if b.spectral_niceness is not None and b.flow_niceness is not None
        ]
        if not joint:
            return float("nan")
        wins = sum(
            1 for b in joint
            if b.spectral_niceness.conductance_ratio
            <= b.flow_niceness.conductance_ratio
        )
        return wins / len(joint)


@dataclass
class CloudBucket:
    """Per-bucket cloud-median niceness of the two ensembles.

    Attributes
    ----------
    size_low, size_high:
        Bucket boundaries.
    spectral_ratio, flow_ratio:
        Median external/internal conductance ratio over sampled candidates
        (capped at ``ratio_cap`` so disconnected clusters count as very
        bad instead of breaking the median).
    spectral_aspl, flow_aspl:
        Median average shortest-path length.
    spectral_count, flow_count:
        Candidates sampled per method.
    """

    size_low: float
    size_high: float
    spectral_ratio: float
    flow_ratio: float
    spectral_aspl: float
    flow_aspl: float
    spectral_count: int
    flow_count: int


def bucket_cloud_niceness(graph, result, *, samples_per_bucket=8, seed=0,
                          ratio_cap=50.0):
    """Cloud-median niceness per size bucket for both ensembles.

    Samples up to ``samples_per_bucket`` candidates per method per bucket
    from the pools stored in a :class:`Figure1Result` and reports the median
    niceness values — the statistic corresponding to reading the paper's
    scatter panels (b) and (c) as clouds.
    """
    edges = (
        [b.size_low for b in result.buckets]
        + [result.buckets[-1].size_high]
        if result.buckets
        else []
    )
    rng = np.random.default_rng(seed)
    clouds = []
    for low, high in zip(edges[:-1], edges[1:]):
        stats = {}
        for label, pool in (
            ("spectral", result.spectral_pool),
            ("flow", result.flow_pool),
        ):
            in_bucket = [c for c in pool if low <= c.size < high]
            if len(in_bucket) > samples_per_bucket:
                picks = rng.choice(
                    len(in_bucket), samples_per_bucket, replace=False
                )
                in_bucket = [in_bucket[i] for i in picks]
            ratios, aspls = [], []
            for candidate in in_bucket:
                niceness = cluster_niceness(graph, candidate.nodes, seed=0)
                ratios.append(min(niceness.conductance_ratio, ratio_cap))
                aspls.append(niceness.average_path_length)
            stats[label] = (
                float(np.median(ratios)) if ratios else float("nan"),
                float(np.median(aspls)) if aspls else float("nan"),
                len(in_bucket),
            )
        clouds.append(
            CloudBucket(
                size_low=float(low),
                size_high=float(high),
                spectral_ratio=stats["spectral"][0],
                flow_ratio=stats["flow"][0],
                spectral_aspl=stats["spectral"][1],
                flow_aspl=stats["flow"][1],
                spectral_count=stats["spectral"][2],
                flow_count=stats["flow"][2],
            )
        )
    return clouds


def figure1_comparison(
    graph,
    *,
    grid=None,
    num_buckets=10,
    num_seeds=None,
    alphas=None,
    epsilons=None,
    min_cluster_size=4,
    seed=None,
    niceness_seed=0,
    num_workers=0,
    cache_dir=None,
    flow_refiners=("mqi",),
):
    """Run the complete Figure 1 experiment on one graph.

    Returns a :class:`Figure1Result`.  ``grid`` is the diffusion-side
    workload — a :class:`~repro.dynamics.DiffusionGrid` (or spec /
    registered name), or a :class:`~repro.refine.Pipeline` to refine the
    diffusion cloud too; by default the paper's LocalSpectral grid,
    ``DiffusionGrid(PPR(), num_seeds=num_seeds or 40, seed=seed)``, is
    used.  ``num_seeds`` applies only to that default grid — an explicit
    ``grid`` carries its own seed sampling, and combining the two raises.
    The diffusion ensemble goes through :mod:`repro.ncp.runner`, so
    ``num_workers >= 1`` shards its grid across processes and
    ``cache_dir`` memoizes the shards on disk; both leave the result
    unchanged.  ``seed`` also drives the flow ensemble's recursive
    bisection, ``flow_refiners`` is the refiner chain the flow cloud is
    improved with (the default ``("mqi",)`` is the paper's Metis+MQI;
    any registered chain — e.g. ``(FlowImprove(dilation_radius=2),)`` —
    swaps in through :mod:`repro.refine`), and ``num_buckets`` controls
    the size resolution of the panels.

    Passing the old ``alphas=`` / ``epsilons=`` keywords instead of a
    grid is deprecated; the equivalent PPR grid is constructed and a
    :class:`DeprecationWarning` is emitted.
    """
    from repro.ncp.runner import run_ncp_ensemble

    if grid is None:
        if alphas is not None or epsilons is not None:
            warn_deprecated(
                "figure1_comparison(alphas=..., epsilons=...)",
                "figure1_comparison(graph, grid=DiffusionGrid(PPR(...)))",
            )
        grid = DiffusionGrid(
            PPR(alpha=alphas if alphas is not None else (0.01, 0.05, 0.15)),
            epsilons=epsilons if epsilons is not None else (1e-4, 1e-5),
            num_seeds=num_seeds if num_seeds is not None else 40,
            seed=seed,
        )
    else:
        if (
            alphas is not None
            or epsilons is not None
            or num_seeds is not None
        ):
            raise InvalidParameterError(
                "figure1_comparison received both a grid and per-ensemble "
                "keywords (num_seeds/alphas/epsilons); the grid carries "
                "the full diffusion workload"
            )
        # A Pipeline passes through whole (the runner threads its refiner
        # chain); anything else normalizes to a plain grid.
        grid = as_pipeline(grid)

    spectral = run_ncp_ensemble(
        graph, grid, num_workers=num_workers, cache_dir=cache_dir,
    ).candidates
    flow = flow_cluster_ensemble_ncp(
        graph, min_size=min_cluster_size, seed=seed, refiners=flow_refiners,
    )
    all_sizes = [c.size for c in spectral + flow]
    max_size = max(all_sizes) if all_sizes else graph.num_nodes // 2
    spectral_profile = best_per_size_bucket(
        spectral, num_buckets=num_buckets, min_size=min_cluster_size,
        max_size=max_size,
    )
    flow_profile = best_per_size_bucket(
        flow, num_buckets=num_buckets, min_size=min_cluster_size,
        max_size=max_size,
    )
    result = Figure1Result(
        spectral_candidates=len(spectral),
        flow_candidates=len(flow),
        spectral_pool=spectral,
        flow_pool=flow,
    )
    edges = spectral_profile.bucket_edges
    for i in range(edges.size - 1):
        spectral_rep = spectral_profile.representatives[i]
        flow_rep = (
            flow_profile.representatives[i]
            if i < len(flow_profile.representatives)
            else None
        )
        spectral_nice = (
            cluster_niceness(graph, spectral_rep.nodes, seed=niceness_seed)
            if spectral_rep is not None
            else None
        )
        flow_nice = (
            cluster_niceness(graph, flow_rep.nodes, seed=niceness_seed)
            if flow_rep is not None
            else None
        )
        result.buckets.append(
            BucketComparison(
                size_low=float(edges[i]),
                size_high=float(edges[i + 1]),
                spectral_phi=float(spectral_profile.best_conductance[i]),
                flow_phi=(
                    float(flow_profile.best_conductance[i])
                    if i < flow_profile.best_conductance.size
                    else float("nan")
                ),
                spectral_niceness=spectral_nice,
                flow_niceness=flow_nice,
            )
        )
    return result
