"""Process-parallel, disk-memoized NCP ensemble orchestration.

The Figure 1 pipeline reduces thousands of strongly local diffusions —
a seed × axis × ε grid for any registered dynamics — to candidate
clusters.  The diffusions are embarrassingly parallel across seed nodes,
and the batched engines (:mod:`repro.diffusion.engine`) already amortize
the grid within one process; this module adds the remaining two
production levers:

* **Sharding** — the seed grid is split into fixed-size chunks, each
  evaluated through the chunked batch API, optionally on a pool of worker
  processes. The graph itself crosses the process boundary exactly once,
  through a :mod:`multiprocessing.shared_memory` segment each worker maps
  read-only at startup — the pickle channel carries only the lightweight
  chunk descriptions, so fan-out cost is independent of graph size. Chunk
  boundaries are deterministic functions of the inputs (never of the
  worker count), and chunks are merged in index order, so the candidate
  ensemble is identical for any ``num_workers`` — and identical to the
  serial loop.
* **Memoization** — each chunk's candidates can be persisted under a key
  derived from the graph's CSR bytes and the chunk's exact parameters, so
  repeated suite runs (benchmarks, notebook restarts, CI) recompute only
  the chunks that changed.

Dispatch is dynamics-agnostic: a chunk records the canonical registry
name plus the exact grid parameters, and evaluation reconstructs the spec
through :func:`repro.dynamics.get_dynamics` — a newly registered dynamics
shards, pools, and memoizes with zero changes here.  Refinement is
refiner-agnostic the same way: a :class:`~repro.refine.Pipeline` workload
stamps its resolved refiner chain onto every chunk, each chunk threads
its candidates through the chain (per candidate, so determinism and
worker-count independence are untouched), and refined chunks get their
own versioned cache keys so refined and raw runs never alias.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._validation import as_rng, check_int
from repro.backends import resolve_backend_name
from repro.core.reporting import jsonable
from repro.dynamics import (
    DiffusionGrid,
    get_dynamics,
    resolve_dynamics_name,
    warn_deprecated,
)
from repro.exceptions import InvalidParameterError
from repro.ncp.profile import (
    ClusterCandidate,
    _sample_seed_nodes,
    grid_candidates_for_seed_nodes,
)
from repro.refine import (
    RefinementStep,
    as_pipeline,
    as_refiner_chain,
    get_refiner,
    refine_candidates,
)

__all__ = [
    "GridChunk",
    "NCPRunResult",
    "graph_fingerprint",
    "plan_chunks",
    "run_ncp_ensemble",
]

# Bump when the candidate-generation semantics OR the fingerprint scheme
# change, so stale cache entries from older code are never reused.
# Version 2: :func:`graph_fingerprint` switched to framed, canonical-
# dtype hashing (see its docstring) — version 1 entries were keyed by
# raw-byte hashes that could alias across dtype/shape boundaries.
# Version 3: chunks are keyed by canonical backend name unconditionally
# (the registry replaced the stringly ``engine`` flag, and two backends
# agree only up to eps-scale sweep perturbations, so entries from
# different backends must never alias).
_CACHE_VERSION = 3

# Version of the *refined*-chunk cache-key namespace.  Refiner-bearing
# chunks hash this tag plus the exact refiner chain on top of the base
# key, so refined and raw runs can never alias each other (and a future
# change to refinement semantics invalidates only refined entries).
_REFINE_CACHE_VERSION = 1

# Sentinel distinguishing "kwarg not passed" from an explicit None in the
# deprecated keyword-soup path of :func:`run_ncp_ensemble`.
_UNSET = object()


@dataclass(frozen=True)
class GridChunk:
    """One shard of an NCP diffusion grid: a few seeds × the full grid.

    Attributes
    ----------
    index:
        Position of the chunk in the deterministic merge order.
    dynamics:
        Canonical registry name (``"ppr"``, ``"hk"``, ``"walk"``, ...).
    seed_nodes:
        The seed nodes this chunk covers (tuple of ints).
    params:
        Sorted ``(name, value-tuple)`` pairs pinning the rest of the grid
        (axes/epsilons/max_cluster_size) — part of the cache key.
    backend:
        Canonical :mod:`repro.backends` key evaluating the chunk.  Every
        backend gets its own cache entries: backends agree only up to
        eps-scale sweep perturbations, so a scalar run must never be
        served numpy results (or vice versa).
    refiners:
        Ordered refiner chain (frozen spec instances from
        :mod:`repro.refine`) applied to every candidate the chunk
        produces; empty for raw diffusion chunks.  Part of the cache key
        (see :data:`_REFINE_CACHE_VERSION`), so refined and raw runs
        never alias.
    """

    index: int
    dynamics: str
    seed_nodes: tuple
    params: tuple
    backend: str = "numpy"
    refiners: tuple = ()

    @property
    def engine(self):
        """Deprecated alias for :attr:`backend`."""
        warn_deprecated("GridChunk.engine", "GridChunk.backend")
        return self.backend

    def describe(self):
        parts = [f"{name}={value!r}" for name, value in self.params]
        return (
            f"{self.dynamics}[{self.index}] seeds={list(self.seed_nodes)} "
            + " ".join(parts)
        )

    def refiner_tokens(self):
        """Canonical token per refiner stage (cache keys, diagnostics)."""
        return tuple(spec.token() for spec in self.refiners)

    def spec(self):
        """Reconstruct the dynamics spec this chunk was planned from."""
        params = dict(self.params)
        return get_dynamics(self.dynamics).spec_type.from_grid_params(params)


@dataclass
class NCPRunResult:
    """Outcome of a sharded NCP ensemble run.

    Attributes
    ----------
    candidates:
        The merged :class:`~repro.ncp.profile.ClusterCandidate` ensemble,
        in deterministic (chunk-index, within-chunk) order.
    dynamics:
        Canonical name of the diffusion that produced the ensemble.
    num_chunks:
        Shards the grid was split into.
    cache_hits:
        Chunks served from the on-disk memo instead of recomputed.
    num_workers:
        Worker processes used (0 means in-process serial execution).
    grid:
        The resolved :class:`~repro.dynamics.DiffusionGrid` that was run.
    refiners:
        The resolved refiner chain (frozen spec instances) every
        candidate was threaded through; empty for raw diffusion runs.
    fingerprint:
        :func:`graph_fingerprint` of the graph the ensemble ran on.
    seed_nodes:
        The sampled seed nodes, in grid order.
    wall_seconds:
        Wall-clock time of the run (diffusions + sweeps + cache traffic).
    """

    candidates: list = field(repr=False, default_factory=list)
    dynamics: str = "ppr"
    num_chunks: int = 0
    cache_hits: int = 0
    num_workers: int = 0
    grid: object = field(repr=False, default=None)
    refiners: tuple = ()
    fingerprint: str = ""
    seed_nodes: tuple = ()
    wall_seconds: float = 0.0

    def manifest(self):
        """JSON-able replay record of this run (the CLI's manifest body).

        Everything needed to reproduce the candidate ensemble byte for
        byte — the resolved grid (dynamics axes, epsilons, seed-sampling
        plan, backend), the resolved refiner chain (one
        name/params/token record per stage, in order), the graph
        fingerprint scoping the result to the exact CSR arrays, and the
        execution facts (workers, chunks, cache hits, wall time) that
        are allowed to vary between identical reruns.  ``grid.seed`` is
        recorded only when it is a plain integer or ``None``; a live RNG
        object is not replayable and is recorded as ``"seed": null``
        with ``"seed_is_replayable": false``.
        """
        grid = self.grid
        seed = grid.seed
        replayable = seed is None or isinstance(seed, (int, np.integer))
        return {
            "dynamics": self.dynamics,
            "grid": {
                "params": jsonable(dict(grid.dynamics.grid_params())),
                "epsilons": [float(e) for e in grid.resolved_epsilons()],
                "num_seeds": int(grid.num_seeds),
                "seed": int(seed) if replayable and seed is not None else None,
                "seed_is_replayable": bool(replayable),
                "max_cluster_size": (
                    None if grid.max_cluster_size is None
                    else int(grid.max_cluster_size)
                ),
                "backend": grid.backend,
            },
            "refiners": [
                {
                    "name": get_refiner(spec).key,
                    "params": jsonable(dict(spec.params())),
                    "token": spec.token(),
                }
                for spec in self.refiners
            ],
            "graph_fingerprint": self.fingerprint,
            "seed_nodes": [int(s) for s in self.seed_nodes],
            "num_candidates": len(self.candidates),
            "num_chunks": int(self.num_chunks),
            "cache_hits": int(self.cache_hits),
            "num_workers": int(self.num_workers),
            "wall_seconds": float(self.wall_seconds),
        }


# Elements hashed per block by :func:`graph_fingerprint` — bounds the
# temporary made when canonicalizing a memmapped or int32 array.
_FINGERPRINT_BLOCK = 1 << 20


def _fingerprint_array(digest, tag, array, canonical):
    """Feed one CSR array into ``digest`` with an explicit frame.

    The frame records the array's role and length, and the bytes are the
    array converted to its canonical little-endian dtype in bounded
    blocks — so the hash is a function of the graph's *values*, not of
    the storage dtype or of where one array happens to end.
    """
    array = np.asarray(array)
    digest.update(f"{tag}:{canonical}:{array.size}|".encode())
    for start in range(0, array.size, _FINGERPRINT_BLOCK):
        block = np.ascontiguousarray(
            array[start:start + _FINGERPRINT_BLOCK], dtype=canonical
        )
        digest.update(memoryview(block))


def graph_fingerprint(graph):
    """Content hash of a graph's CSR arrays (hex digest).

    Two graphs with identical structure and weights share a fingerprint,
    which scopes every memoized chunk to the exact graph it was computed
    on.  Hashing is *framed* and *canonical*: each array contributes a
    ``tag:dtype:length`` header plus its values converted to a fixed
    little-endian dtype (int64 ids, float64 weights).  That makes the
    fingerprint independent of storage details — a graph loaded from a
    ``.reprograph`` file with int32 on-disk indices hashes identically
    to the same graph built in memory with int64 indices — while the
    per-array length framing means no byte sequence can alias across an
    array boundary.
    """
    digest = hashlib.sha256()
    _fingerprint_array(digest, "indptr", graph.indptr, "<i8")
    _fingerprint_array(digest, "indices", graph.indices, "<i8")
    _fingerprint_array(digest, "weights", graph.weights, "<f8")
    return digest.hexdigest()


def _grid_params(grid, graph):
    """The non-seed grid axes of a resolved grid, as hashable param pairs.

    Matches the pre-registry encoding exactly (axis pairs first, then
    ``epsilons`` and ``max_cluster_size``), so memo entries written before
    the unified registry stay valid.
    """
    return grid.dynamics.grid_params() + (
        ("epsilons", tuple(float(e) for e in grid.resolved_epsilons())),
        ("max_cluster_size", int(grid.resolve_max_cluster_size(graph))),
    )


def plan_chunks(dynamics, seed_nodes, params, *, seeds_per_chunk=8,
                backend=None, refiners=(), engine=None):
    """Split a seed list into deterministic :class:`GridChunk` shards.

    ``dynamics`` may be a canonical name, an alias, a spec instance, or a
    :class:`~repro.dynamics.DynamicsKind`; chunks always record the
    canonical name.  ``backend`` (any name or alias
    :func:`~repro.backends.resolve_backend_name` accepts; default
    ``"numpy"``) and ``refiners`` (any chain
    :func:`~repro.refine.as_refiner_chain` accepts) are stamped onto
    every chunk; ``engine`` is the deprecated alias for ``backend``.
    The split depends only on the seed list and ``seeds_per_chunk`` —
    never on the worker count — so cache keys and merge order are stable
    across machines and pool sizes.
    """
    check_int(seeds_per_chunk, "seeds_per_chunk", minimum=1)
    if engine is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass backend= or the deprecated engine= to plan_chunks, "
                "not both"
            )
        backend = resolve_backend_name(engine)
        warn_deprecated("plan_chunks(engine=...)", "plan_chunks(backend=...)")
    backend = resolve_backend_name("numpy" if backend is None else backend)
    dynamics = resolve_dynamics_name(dynamics)
    refiners = as_refiner_chain(refiners)
    seed_nodes = [int(s) for s in seed_nodes]
    return [
        GridChunk(
            index=i,
            dynamics=dynamics,
            seed_nodes=tuple(seed_nodes[start:start + seeds_per_chunk]),
            params=tuple(params),
            backend=backend,
            refiners=refiners,
        )
        for i, start in enumerate(
            range(0, len(seed_nodes), seeds_per_chunk)
        )
    ]


def _chunk_cache_key(fingerprint, chunk):
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}|{fingerprint}|".encode())
    digest.update(chunk.describe().encode())
    # Keyed by backend unconditionally: two backends agree only up to
    # eps-scale sweep perturbations, so their entries must never alias.
    digest.update(f"|backend={chunk.backend}".encode())
    if chunk.refiners:
        # Refined chunks live in their own versioned key namespace: a raw
        # run can never be served refined candidates (or vice versa), and
        # unrefined keys predating the refiners field stay valid.
        digest.update(
            f"|refine-v{_REFINE_CACHE_VERSION}|"
            f"{'>'.join(chunk.refiner_tokens())}".encode()
        )
    return digest.hexdigest()


def _encode_refinement(steps):
    """JSON-encode one candidate's per-stage provenance (exact floats)."""
    return json.dumps([
        [
            step.refiner,
            float(step.pre_conductance),
            float(step.post_conductance),
            int(step.rounds),
            bool(step.converged),
            bool(step.changed),
        ]
        for step in steps
    ])


def _decode_refinement(text):
    """Rebuild the :class:`~repro.refine.RefinementStep` tuple."""
    return tuple(
        RefinementStep(
            refiner=str(refiner),
            pre_conductance=float(pre),
            post_conductance=float(post),
            rounds=int(rounds),
            converged=bool(converged),
            changed=bool(changed),
        )
        for refiner, pre, post, rounds, converged, changed in json.loads(text)
    )


def _save_chunk(path, candidates):
    """Persist a chunk's candidates as one flat npz (no pickling)."""
    if candidates:
        nodes_concat = np.concatenate(
            [np.ascontiguousarray(c.nodes, dtype=np.int64)
             for c in candidates]
        )
        lengths = np.asarray([c.nodes.size for c in candidates],
                             dtype=np.int64)
        conductances = np.asarray([c.conductance for c in candidates])
        methods = np.asarray([c.method for c in candidates])
    else:
        nodes_concat = np.empty(0, dtype=np.int64)
        lengths = np.empty(0, dtype=np.int64)
        conductances = np.empty(0)
        methods = np.empty(0, dtype="U1")
    arrays = dict(
        nodes=nodes_concat, lengths=lengths,
        conductances=conductances, methods=methods,
    )
    if any(c.refinement for c in candidates):
        # Refiner provenance rides along as one JSON string per candidate
        # (floats round-trip exactly via repr); raw chunks keep the
        # pre-refinement file layout byte for byte.
        arrays["refinement"] = np.asarray(
            [_encode_refinement(c.refinement) for c in candidates]
        )
    # Per-writer temp name: concurrent processes sharing a cache_dir must
    # never interleave writes into one temp file; each writes its own and
    # the final rename is atomic, last-writer-wins with identical content.
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    tmp.replace(path)


def _load_chunk(path):
    """Load a memoized chunk; ``None`` (cache miss) if unreadable."""
    try:
        with np.load(path, allow_pickle=False) as data:
            offsets = np.concatenate(([0], np.cumsum(data["lengths"])))
            refinement = (
                data["refinement"] if "refinement" in data.files else None
            )
            return [
                ClusterCandidate(
                    nodes=data["nodes"][offsets[i]:offsets[i + 1]].copy(),
                    conductance=float(data["conductances"][i]),
                    method=str(data["methods"][i]),
                    refinement=(
                        _decode_refinement(str(refinement[i]))
                        if refinement is not None
                        else ()
                    ),
                )
                for i in range(data["lengths"].size)
            ]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, TypeError):
        # A truncated or foreign file is a miss, not a crash; the chunk
        # is recomputed and the entry rewritten.  (json.JSONDecodeError
        # is a ValueError; a malformed provenance payload is a miss too.)
        return None


def _evaluate_chunk(graph, chunk):
    """Run one shard's diffusion grid and sweep it into candidates.

    Refinement happens here, inside the shard — per candidate, so the
    refined ensemble is exactly as deterministic (and as worker-count-
    independent) as the raw one.
    """
    params = dict(chunk.params)
    candidates = grid_candidates_for_seed_nodes(
        graph,
        list(chunk.seed_nodes),
        chunk.spec(),
        epsilons=params["epsilons"],
        max_cluster_size=params["max_cluster_size"],
        backend=chunk.backend,
    )
    if chunk.refiners:
        candidates = refine_candidates(graph, candidates, chunk.refiners)
    return candidates


def _share_graph(graph):
    """Copy the graph's CSR arrays into one shared-memory segment.

    Returns ``(shm, layout)`` where ``layout`` is a tuple of
    ``(byte_offset, dtype_str, length)`` triples (indptr, indices,
    weights, each 8-byte aligned) from which :func:`_attach_shared_graph`
    rebuilds zero-copy views in a worker process.  The caller owns the
    segment and must ``close()`` + ``unlink()`` it.
    """
    from multiprocessing import shared_memory

    arrays = (
        np.ascontiguousarray(graph.indptr),
        np.ascontiguousarray(graph.indices),
        np.ascontiguousarray(graph.weights),
    )
    layout = []
    offset = 0
    for array in arrays:
        offset = (offset + 7) & ~7
        layout.append((offset, array.dtype.str, int(array.size)))
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (start, _, _), array in zip(layout, arrays):
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=shm.buf, offset=start
        )
        view[:] = array
    return shm, tuple(layout)


def _attach_shared_graph(shm_name, layout):
    """Map a :func:`_share_graph` segment back into a read-only Graph."""
    from multiprocessing import shared_memory

    # Attaching re-registers the name with the resource tracker, but the
    # tracker process (and its name *set*) is inherited from the parent,
    # so the parent's single close()+unlink() after the pool drains is
    # the one cleanup; workers only close their mapping implicitly at
    # exit.
    shm = shared_memory.SharedMemory(name=shm_name)
    arrays = []
    for start, dtype_str, length in layout:
        view = np.ndarray(
            (length,), dtype=np.dtype(dtype_str), buffer=shm.buf,
            offset=start,
        )
        view.setflags(write=False)
        arrays.append(view)
    from repro.graph.graph import Graph

    return shm, Graph(arrays[0], arrays[1], arrays[2], validate=False)


# Per-worker-process state: the shared graph, attached once by the pool
# initializer and reused by every chunk the worker evaluates.  The shm
# handle is kept alive alongside the Graph so the views stay valid.
_WORKER_SHM = None
_WORKER_GRAPH = None


def _worker_init(shm_name, layout):
    """Pool initializer: attach the shared graph once per worker."""
    global _WORKER_SHM, _WORKER_GRAPH
    _WORKER_SHM, _WORKER_GRAPH = _attach_shared_graph(shm_name, layout)


def _worker_evaluate(chunk):
    """Process-pool entry point: evaluate one chunk on the shared graph.

    Only the chunk travels through the pool's pickle channel; the CSR
    arrays are the shared-memory views attached by :func:`_worker_init`.
    """
    return _evaluate_chunk(_WORKER_GRAPH, chunk)


def _legacy_grid(dynamics, num_seeds, alphas, epsilons, ts, steps,
                 walk_alpha, max_cluster_size, seed):
    """Resolve the deprecated kwarg soup into a :class:`DiffusionGrid`."""
    kind = get_dynamics("ppr" if dynamics is _UNSET else dynamics)
    spec = kind.spec_from_legacy(
        alphas=None if alphas is _UNSET else alphas,
        ts=None if ts is _UNSET else ts,
        steps=None if steps is _UNSET else steps,
        walk_alpha=None if walk_alpha is _UNSET else walk_alpha,
    )
    return DiffusionGrid(
        spec,
        epsilons=None if epsilons is _UNSET else epsilons,
        num_seeds=40 if num_seeds is _UNSET else num_seeds,
        seed=None if seed is _UNSET else seed,
        max_cluster_size=(
            None if max_cluster_size is _UNSET else max_cluster_size
        ),
    )


def run_ncp_ensemble(
    graph,
    grid=None,
    *,
    dynamics=_UNSET,
    num_seeds=_UNSET,
    alphas=_UNSET,
    epsilons=_UNSET,
    ts=_UNSET,
    steps=_UNSET,
    walk_alpha=_UNSET,
    max_cluster_size=_UNSET,
    seed=_UNSET,
    num_workers=0,
    seeds_per_chunk=8,
    cache_dir=None,
):
    """Run one dynamics' NCP candidate ensemble, sharded and memoized.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    grid:
        The workload: a :class:`~repro.dynamics.DiffusionGrid`, a spec
        instance (``PPR(...)`` / ``HeatKernel(...)`` / ``LazyWalk(...)``),
        a registered dynamics name, a
        :class:`~repro.dynamics.DynamicsKind`, or a
        :class:`~repro.refine.Pipeline` (grid + refiner chain, in which
        case every candidate is threaded through the chain inside its
        chunk, and refined chunks get their own versioned cache keys).
        Seed sampling uses the grid's own RNG stream — the same stream
        :func:`~repro.ncp.profile.cluster_ensemble_ncp` uses, so a serial
        generator run and a sharded runner run see identical seeds.
    dynamics, num_seeds, alphas, epsilons, ts, steps, walk_alpha, \
max_cluster_size, seed:
        Deprecated keyword-soup form (used only when ``grid`` is omitted):
        the equivalent :class:`~repro.dynamics.DiffusionGrid` is
        constructed through the registry and a :class:`DeprecationWarning`
        is emitted.
    num_workers:
        ``0`` evaluates chunks serially in-process; ``k >= 1`` fans the
        non-cached chunks out to a pool of ``k`` worker processes. The
        resulting ensemble is identical either way.
    seeds_per_chunk:
        Shard width. Part of each chunk's cache key.
    cache_dir:
        Directory for the per-(graph, chunk) memo; ``None`` disables
        caching. Entries are keyed by graph fingerprint + exact chunk
        parameters + cache version, so a changed graph or grid never
        reuses stale results.

    Returns
    -------
    NCPRunResult
    """
    legacy = (
        dynamics, num_seeds, alphas, epsilons, ts, steps, walk_alpha,
        max_cluster_size, seed,
    )
    refiners = ()
    if grid is None:
        grid = _legacy_grid(*legacy)
        warn_deprecated(
            "run_ncp_ensemble(dynamics=..., alphas=..., ts=..., steps=...)",
            "run_ncp_ensemble(graph, DiffusionGrid(...))",
        )
    else:
        if any(value is not _UNSET for value in legacy):
            raise InvalidParameterError(
                "run_ncp_ensemble received both a grid and deprecated "
                "per-dynamics keywords; the grid carries the full workload"
            )
        pipeline = as_pipeline(grid)
        grid = pipeline.grid
        refiners = pipeline.refiners
    num_workers = check_int(num_workers, "num_workers", minimum=0)
    start_time = time.perf_counter()

    rng = as_rng(grid.seed)
    seed_nodes = _sample_seed_nodes(graph, grid.num_seeds, rng)
    params = _grid_params(grid, graph)
    chunks = plan_chunks(
        grid.dynamics, seed_nodes, params,
        seeds_per_chunk=seeds_per_chunk, backend=grid.backend,
        refiners=refiners,
    )

    # Always fingerprint: the manifest hook needs it even without a cache.
    fingerprint = graph_fingerprint(graph)
    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir)
        cache_path.mkdir(parents=True, exist_ok=True)

    per_chunk = [None] * len(chunks)
    cache_hits = 0
    misses = []
    for chunk in chunks:
        if cache_path is not None:
            entry = cache_path / f"{_chunk_cache_key(fingerprint, chunk)}.npz"
            if entry.exists():
                loaded = _load_chunk(entry)
                if loaded is not None:
                    per_chunk[chunk.index] = loaded
                    cache_hits += 1
                    continue
        misses.append(chunk)

    if misses:
        if num_workers >= 1:
            from concurrent.futures import ProcessPoolExecutor

            # The CSR arrays cross the process boundary exactly once,
            # through a shared-memory segment every worker maps read-only
            # at startup; the pickle channel carries only GridChunks.
            # Merge order is by chunk.index regardless, so the ensemble
            # is byte-identical for any worker count.
            shm, layout = _share_graph(graph)
            try:
                with ProcessPoolExecutor(
                    max_workers=num_workers,
                    initializer=_worker_init,
                    initargs=(shm.name, layout),
                ) as pool:
                    for chunk, candidates in zip(
                        misses, pool.map(_worker_evaluate, misses)
                    ):
                        per_chunk[chunk.index] = candidates
            finally:
                shm.close()
                shm.unlink()
        else:
            for chunk in misses:
                per_chunk[chunk.index] = _evaluate_chunk(graph, chunk)
        if cache_path is not None:
            for chunk in misses:
                entry = (
                    cache_path
                    / f"{_chunk_cache_key(fingerprint, chunk)}.npz"
                )
                _save_chunk(entry, per_chunk[chunk.index])

    merged = []
    for candidates in per_chunk:
        merged.extend(candidates)
    return NCPRunResult(
        candidates=merged,
        dynamics=grid.key,
        num_chunks=len(chunks),
        cache_hits=cache_hits,
        num_workers=num_workers,
        grid=grid,
        refiners=refiners,
        fingerprint=fingerprint,
        seed_nodes=tuple(int(s) for s in seed_nodes),
        wall_seconds=time.perf_counter() - start_time,
    )
