"""Process-parallel, disk-memoized NCP ensemble orchestration.

The Figure 1 pipeline reduces thousands of strongly local diffusions —
a seed × α × ε grid for ACL push, seed × t × ε for the heat kernel,
seed × steps × ε for the truncated walk — to candidate clusters. The
diffusions are embarrassingly parallel across seed nodes, and the batched
engines (:mod:`repro.diffusion.engine`) already amortize the grid within
one process; this module adds the remaining two production levers:

* **Sharding** — the seed grid is split into fixed-size chunks, each
  evaluated through the chunked batch API, optionally on a pool of worker
  processes. Chunk boundaries are deterministic functions of the inputs
  (never of the worker count), and chunks are merged in index order, so
  the candidate ensemble is identical for any ``num_workers`` — and
  identical to the serial loop.
* **Memoization** — each chunk's candidates can be persisted under a key
  derived from the graph's CSR bytes and the chunk's exact parameters, so
  repeated suite runs (benchmarks, notebook restarts, CI) recompute only
  the chunks that changed.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._validation import as_rng, check_int
from repro.exceptions import InvalidParameterError
from repro.ncp.profile import (
    ClusterCandidate,
    _sample_seed_nodes,
    hk_candidates_for_seed_nodes,
    spectral_candidates_for_seed_nodes,
    walk_candidates_for_seed_nodes,
)

__all__ = [
    "GridChunk",
    "NCPRunResult",
    "graph_fingerprint",
    "plan_chunks",
    "run_ncp_ensemble",
]

_DYNAMICS = ("ppr", "hk", "walk")

# Bump when the candidate-generation semantics change, so stale cache
# entries from older code are never reused.
_CACHE_VERSION = 1


@dataclass(frozen=True)
class GridChunk:
    """One shard of an NCP diffusion grid: a few seeds × the full grid.

    Attributes
    ----------
    index:
        Position of the chunk in the deterministic merge order.
    dynamics:
        ``"ppr"``, ``"hk"``, or ``"walk"``.
    seed_nodes:
        The seed nodes this chunk covers (tuple of ints).
    params:
        Sorted ``(name, value-tuple)`` pairs pinning the rest of the grid
        (alphas/epsilons/ts/steps/max_cluster_size) — part of the cache
        key.
    """

    index: int
    dynamics: str
    seed_nodes: tuple
    params: tuple

    def describe(self):
        parts = [f"{name}={value!r}" for name, value in self.params]
        return (
            f"{self.dynamics}[{self.index}] seeds={list(self.seed_nodes)} "
            + " ".join(parts)
        )


@dataclass
class NCPRunResult:
    """Outcome of a sharded NCP ensemble run.

    Attributes
    ----------
    candidates:
        The merged :class:`~repro.ncp.profile.ClusterCandidate` ensemble,
        in deterministic (chunk-index, within-chunk) order.
    dynamics:
        Which diffusion produced the ensemble.
    num_chunks:
        Shards the grid was split into.
    cache_hits:
        Chunks served from the on-disk memo instead of recomputed.
    num_workers:
        Worker processes used (0 means in-process serial execution).
    """

    candidates: list = field(repr=False, default_factory=list)
    dynamics: str = "ppr"
    num_chunks: int = 0
    cache_hits: int = 0
    num_workers: int = 0


def graph_fingerprint(graph):
    """Content hash of a graph's CSR arrays (hex digest).

    Two graphs with identical structure and weights share a fingerprint,
    which scopes every memoized chunk to the exact graph it was computed
    on.
    """
    digest = hashlib.sha256()
    digest.update(graph.indptr.tobytes())
    digest.update(graph.indices.tobytes())
    digest.update(graph.weights.tobytes())
    return digest.hexdigest()


def _grid_params(dynamics, *, alphas, epsilons, ts, steps, walk_alpha,
                 max_cluster_size):
    """The non-seed grid axes for one dynamics, as hashable param pairs."""
    common = (("epsilons", tuple(float(e) for e in epsilons)),
              ("max_cluster_size", int(max_cluster_size)))
    if dynamics == "ppr":
        return (("alphas", tuple(float(a) for a in alphas)),) + common
    if dynamics == "hk":
        return (("ts", tuple(float(t) for t in ts)),) + common
    return (("steps", tuple(int(s) for s in steps)),
            ("walk_alpha", float(walk_alpha))) + common


def plan_chunks(dynamics, seed_nodes, params, *, seeds_per_chunk=8):
    """Split a seed list into deterministic :class:`GridChunk` shards.

    The split depends only on the seed list and ``seeds_per_chunk`` —
    never on the worker count — so cache keys and merge order are stable
    across machines and pool sizes.
    """
    check_int(seeds_per_chunk, "seeds_per_chunk", minimum=1)
    seed_nodes = [int(s) for s in seed_nodes]
    return [
        GridChunk(
            index=i,
            dynamics=dynamics,
            seed_nodes=tuple(seed_nodes[start:start + seeds_per_chunk]),
            params=tuple(params),
        )
        for i, start in enumerate(
            range(0, len(seed_nodes), seeds_per_chunk)
        )
    ]


def _chunk_cache_key(fingerprint, chunk):
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}|{fingerprint}|".encode())
    digest.update(chunk.describe().encode())
    return digest.hexdigest()


def _save_chunk(path, candidates):
    """Persist a chunk's candidates as one flat npz (no pickling)."""
    if candidates:
        nodes_concat = np.concatenate(
            [np.ascontiguousarray(c.nodes, dtype=np.int64)
             for c in candidates]
        )
        lengths = np.asarray([c.nodes.size for c in candidates],
                             dtype=np.int64)
        conductances = np.asarray([c.conductance for c in candidates])
        methods = np.asarray([c.method for c in candidates])
    else:
        nodes_concat = np.empty(0, dtype=np.int64)
        lengths = np.empty(0, dtype=np.int64)
        conductances = np.empty(0)
        methods = np.empty(0, dtype="U1")
    # Per-writer temp name: concurrent processes sharing a cache_dir must
    # never interleave writes into one temp file; each writes its own and
    # the final rename is atomic, last-writer-wins with identical content.
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    with open(tmp, "wb") as handle:
        np.savez_compressed(
            handle, nodes=nodes_concat, lengths=lengths,
            conductances=conductances, methods=methods,
        )
    tmp.replace(path)


def _load_chunk(path):
    """Load a memoized chunk; ``None`` (cache miss) if unreadable."""
    try:
        with np.load(path, allow_pickle=False) as data:
            offsets = np.concatenate(([0], np.cumsum(data["lengths"])))
            return [
                ClusterCandidate(
                    nodes=data["nodes"][offsets[i]:offsets[i + 1]].copy(),
                    conductance=float(data["conductances"][i]),
                    method=str(data["methods"][i]),
                )
                for i in range(data["lengths"].size)
            ]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        # A truncated or foreign file is a miss, not a crash; the chunk
        # is recomputed and the entry rewritten.
        return None


def _evaluate_chunk(graph, chunk):
    """Run one shard's diffusion grid and sweep it into candidates."""
    params = dict(chunk.params)
    seed_nodes = list(chunk.seed_nodes)
    if chunk.dynamics == "ppr":
        return spectral_candidates_for_seed_nodes(
            graph, seed_nodes, alphas=params["alphas"],
            epsilons=params["epsilons"],
            max_cluster_size=params["max_cluster_size"],
        )
    if chunk.dynamics == "hk":
        return hk_candidates_for_seed_nodes(
            graph, seed_nodes, ts=params["ts"],
            epsilons=params["epsilons"],
            max_cluster_size=params["max_cluster_size"],
        )
    return walk_candidates_for_seed_nodes(
        graph, seed_nodes, steps=params["steps"],
        epsilons=params["epsilons"], alpha=params["walk_alpha"],
        max_cluster_size=params["max_cluster_size"],
    )


def _worker_evaluate(payload):
    """Process-pool entry point: rebuild the graph, evaluate one chunk."""
    indptr, indices, weights, chunk = payload
    from repro.graph.graph import Graph

    graph = Graph(indptr, indices, weights, validate=False)
    return _evaluate_chunk(graph, chunk)


def run_ncp_ensemble(
    graph,
    *,
    dynamics="ppr",
    num_seeds=40,
    alphas=(0.01, 0.05, 0.15),
    epsilons=None,
    ts=(3.0, 10.0, 30.0),
    steps=(4, 16, 64),
    walk_alpha=0.5,
    max_cluster_size=None,
    seed=None,
    num_workers=0,
    seeds_per_chunk=8,
    cache_dir=None,
):
    """Run one dynamics' NCP candidate ensemble, sharded and memoized.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    dynamics:
        ``"ppr"`` (ACL push over α × ε), ``"hk"`` (heat-kernel push over
        t × ε), or ``"walk"`` (truncated lazy walk over steps × ε).
    num_seeds:
        Seed nodes sampled by degree from ``seed``'s RNG stream — the
        same stream the direct ensemble generators use, so a serial
        generator run and a sharded runner run see identical seeds.
    alphas, epsilons, ts, steps, walk_alpha:
        Grid axes; only the axes relevant to ``dynamics`` are used.
        ``epsilons=None`` resolves to the matching direct generator's
        default — ``(1e-4, 1e-5)`` for PPR, ``(1e-3, 1e-4)`` for the
        heat kernel and the walk — so a runner run under defaults shards
        exactly the ensemble the generator would produce.
    max_cluster_size:
        Sweep-prefix size cap (defaults to ``n // 2``).
    seed:
        RNG seed (or generator) for seed-node sampling.
    num_workers:
        ``0`` evaluates chunks serially in-process; ``k >= 1`` fans the
        non-cached chunks out to a pool of ``k`` worker processes. The
        resulting ensemble is identical either way.
    seeds_per_chunk:
        Shard width. Part of each chunk's cache key.
    cache_dir:
        Directory for the per-(graph, chunk) memo; ``None`` disables
        caching. Entries are keyed by graph fingerprint + exact chunk
        parameters + cache version, so a changed graph or grid never
        reuses stale results.

    Returns
    -------
    NCPRunResult
    """
    if dynamics not in _DYNAMICS:
        raise InvalidParameterError(
            f"dynamics must be one of {_DYNAMICS}; got {dynamics!r}"
        )
    check_int(num_seeds, "num_seeds", minimum=1)
    num_workers = check_int(num_workers, "num_workers", minimum=0)
    if epsilons is None:
        epsilons = (1e-4, 1e-5) if dynamics == "ppr" else (1e-3, 1e-4)
    if max_cluster_size is None:
        max_cluster_size = graph.num_nodes // 2
    rng = as_rng(seed)
    seed_nodes = _sample_seed_nodes(graph, num_seeds, rng)
    params = _grid_params(
        dynamics, alphas=alphas, epsilons=epsilons, ts=ts, steps=steps,
        walk_alpha=walk_alpha, max_cluster_size=max_cluster_size,
    )
    chunks = plan_chunks(
        dynamics, seed_nodes, params, seeds_per_chunk=seeds_per_chunk
    )

    cache_path = None
    fingerprint = None
    if cache_dir is not None:
        cache_path = Path(cache_dir)
        cache_path.mkdir(parents=True, exist_ok=True)
        fingerprint = graph_fingerprint(graph)

    per_chunk = [None] * len(chunks)
    cache_hits = 0
    misses = []
    for chunk in chunks:
        if cache_path is not None:
            entry = cache_path / f"{_chunk_cache_key(fingerprint, chunk)}.npz"
            if entry.exists():
                loaded = _load_chunk(entry)
                if loaded is not None:
                    per_chunk[chunk.index] = loaded
                    cache_hits += 1
                    continue
        misses.append(chunk)

    if misses:
        if num_workers >= 1:
            from concurrent.futures import ProcessPoolExecutor

            payloads = [
                (graph.indptr, graph.indices, graph.weights, chunk)
                for chunk in misses
            ]
            with ProcessPoolExecutor(max_workers=num_workers) as pool:
                for chunk, candidates in zip(
                    misses, pool.map(_worker_evaluate, payloads)
                ):
                    per_chunk[chunk.index] = candidates
        else:
            for chunk in misses:
                per_chunk[chunk.index] = _evaluate_chunk(graph, chunk)
        if cache_path is not None:
            for chunk in misses:
                entry = (
                    cache_path
                    / f"{_chunk_cache_key(fingerprint, chunk)}.npz"
                )
                _save_chunk(entry, per_chunk[chunk.index])

    merged = []
    for candidates in per_chunk:
        merged.extend(candidates)
    return NCPRunResult(
        candidates=merged,
        dynamics=dynamics,
        num_chunks=len(chunks),
        cache_hits=cache_hits,
        num_workers=num_workers,
    )
