"""Process-parallel, disk-memoized NCP ensemble orchestration.

The Figure 1 pipeline reduces thousands of strongly local diffusions —
a seed × axis × ε grid for any registered dynamics — to candidate
clusters.  The diffusions are embarrassingly parallel across seed nodes,
and the batched engines (:mod:`repro.diffusion.engine`) already amortize
the grid within one process; this module adds the remaining two
production levers:

* **Sharding** — the seed grid is split into fixed-size chunks, each
  evaluated through the chunked batch API.  Chunk boundaries are
  deterministic functions of the inputs (never of the worker count),
  and chunks are merged in index order, so the candidate ensemble is
  identical for any ``num_workers`` — and identical to the serial loop.
* **Memoization** — each chunk's candidates can be persisted under a key
  derived from the graph's CSR bytes and the chunk's exact parameters, so
  repeated suite runs (benchmarks, notebook restarts, CI) recompute only
  the chunks that changed.  Entries are written the moment a chunk
  completes, so a run killed mid-way leaves every finished chunk on
  disk and a rerun with the same ``cache_dir`` resumes from there.

*How* the non-cached chunks actually run is delegated to the
:mod:`repro.execution` layer: ``run_ncp_ensemble(executor=...)``
resolves any registered :class:`~repro.execution.ExecutorKind` (the
``serial`` reference loop, the shared-memory ``process`` pool — whose
workers map the CSR arrays from one
:mod:`multiprocessing.shared_memory` segment, so the pickle channel
carries only the lightweight chunk descriptions — or the
fault-injecting ``chaos`` strategy) and the execution driver adds
retry, straggler re-dispatch, and typed
:class:`~repro.execution.ChunkExecutionError` failures on top.

Dispatch is dynamics-agnostic: a chunk records the canonical registry
name plus the exact grid parameters, and evaluation reconstructs the spec
through :func:`repro.dynamics.get_dynamics` — a newly registered dynamics
shards, pools, and memoizes with zero changes here.  Refinement is
refiner-agnostic the same way: a :class:`~repro.refine.Pipeline` workload
stamps its resolved refiner chain onto every chunk, each chunk threads
its candidates through the chain (per candidate, so determinism and
worker-count independence are untouched), and refined chunks get their
own versioned cache keys so refined and raw runs never alias.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._validation import as_rng, check_int
from repro.backends import resolve_backend_name
from repro.core.reporting import jsonable
from repro.dynamics import (
    DiffusionGrid,
    get_dynamics,
    resolve_dynamics_name,
    warn_deprecated,
)
from repro.exceptions import InvalidParameterError
from repro.execution import (
    as_executor_spec,
    build_executor,
    execute_chunks,
    get_executor,
)
# Compatibility re-exports: the shared-memory transport moved to
# repro.execution.executors with the executor extraction.
from repro.execution.executors import (  # noqa: F401
    _attach_shared_graph,
    _share_graph,
)
from repro.ncp.profile import (
    ClusterCandidate,
    _sample_seed_nodes,
    grid_candidates_for_seed_nodes,
)
from repro.refine import (
    RefinementStep,
    as_pipeline,
    as_refiner_chain,
    get_refiner,
    refine_candidates,
)

__all__ = [
    "GridChunk",
    "NCPRunResult",
    "graph_fingerprint",
    "plan_chunks",
    "run_ncp_ensemble",
]

# Bump when the candidate-generation semantics OR the fingerprint scheme
# change, so stale cache entries from older code are never reused.
# Version 2: :func:`graph_fingerprint` switched to framed, canonical-
# dtype hashing (see its docstring) — version 1 entries were keyed by
# raw-byte hashes that could alias across dtype/shape boundaries.
# Version 3: chunks are keyed by canonical backend name unconditionally
# (the registry replaced the stringly ``engine`` flag, and two backends
# agree only up to eps-scale sweep perturbations, so entries from
# different backends must never alias).
_CACHE_VERSION = 3

# Version of the *refined*-chunk cache-key namespace.  Refiner-bearing
# chunks hash this tag plus the exact refiner chain on top of the base
# key, so refined and raw runs can never alias each other (and a future
# change to refinement semantics invalidates only refined entries).
_REFINE_CACHE_VERSION = 1

# Sentinel distinguishing "kwarg not passed" from an explicit None in the
# deprecated keyword-soup path of :func:`run_ncp_ensemble`.
_UNSET = object()


@dataclass(frozen=True)
class GridChunk:
    """One shard of an NCP diffusion grid: a few seeds × the full grid.

    Attributes
    ----------
    index:
        Position of the chunk in the deterministic merge order.
    dynamics:
        Canonical registry name (``"ppr"``, ``"hk"``, ``"walk"``, ...).
    seed_nodes:
        The seed nodes this chunk covers (tuple of ints).
    params:
        Sorted ``(name, value-tuple)`` pairs pinning the rest of the grid
        (axes/epsilons/max_cluster_size) — part of the cache key.
    backend:
        Canonical :mod:`repro.backends` key evaluating the chunk.  Every
        backend gets its own cache entries: backends agree only up to
        eps-scale sweep perturbations, so a scalar run must never be
        served numpy results (or vice versa).
    refiners:
        Ordered refiner chain (frozen spec instances from
        :mod:`repro.refine`) applied to every candidate the chunk
        produces; empty for raw diffusion chunks.  Part of the cache key
        (see :data:`_REFINE_CACHE_VERSION`), so refined and raw runs
        never alias.
    """

    index: int
    dynamics: str
    seed_nodes: tuple
    params: tuple
    backend: str = "numpy"
    refiners: tuple = ()

    @property
    def engine(self):
        """Deprecated alias for :attr:`backend`."""
        warn_deprecated("GridChunk.engine", "GridChunk.backend")
        return self.backend

    def describe(self):
        parts = [f"{name}={value!r}" for name, value in self.params]
        return (
            f"{self.dynamics}[{self.index}] seeds={list(self.seed_nodes)} "
            + " ".join(parts)
        )

    def refiner_tokens(self):
        """Canonical token per refiner stage (cache keys, diagnostics)."""
        return tuple(spec.token() for spec in self.refiners)

    def spec(self):
        """Reconstruct the dynamics spec this chunk was planned from."""
        params = dict(self.params)
        return get_dynamics(self.dynamics).spec_type.from_grid_params(params)


@dataclass
class NCPRunResult:
    """Outcome of a sharded NCP ensemble run.

    Attributes
    ----------
    candidates:
        The merged :class:`~repro.ncp.profile.ClusterCandidate` ensemble,
        in deterministic (chunk-index, within-chunk) order.
    dynamics:
        Canonical name of the diffusion that produced the ensemble.
    num_chunks:
        Shards the grid was split into.
    cache_hits:
        Chunks served from the on-disk memo instead of recomputed.
    num_workers:
        Worker processes used (0 means in-process serial execution).
    grid:
        The resolved :class:`~repro.dynamics.DiffusionGrid` that was run.
    refiners:
        The resolved refiner chain (frozen spec instances) every
        candidate was threaded through; empty for raw diffusion runs.
    fingerprint:
        :func:`graph_fingerprint` of the graph the ensemble ran on.
    seed_nodes:
        The sampled seed nodes, in grid order.
    wall_seconds:
        Wall-clock time of the run (diffusions + sweeps + cache traffic).
    executor:
        Canonical :mod:`repro.execution` registry key of the strategy
        that ran the non-cached chunks.
    executor_params:
        The resolved executor spec's JSON-able parameter record.
    retries:
        Failed chunk attempts that were re-queued by the driver.
    redispatches:
        Straggler duplicates submitted (first-result-wins).
    chunks:
        One JSON-able completion record per chunk, in merge order:
        ``index``, ``num_seeds``, ``cache_key``, ``source`` (``"cache"``
        or ``"computed"``), ``attempts``, and ``completed``.
    """

    candidates: list = field(repr=False, default_factory=list)
    dynamics: str = "ppr"
    num_chunks: int = 0
    cache_hits: int = 0
    num_workers: int = 0
    grid: object = field(repr=False, default=None)
    refiners: tuple = ()
    fingerprint: str = ""
    seed_nodes: tuple = ()
    wall_seconds: float = 0.0
    executor: str = "serial"
    executor_params: dict = field(repr=False, default_factory=dict)
    retries: int = 0
    redispatches: int = 0
    chunks: list = field(repr=False, default_factory=list)

    def manifest(self):
        """JSON-able replay record of this run (the CLI's manifest body).

        Everything needed to reproduce the candidate ensemble byte for
        byte — the resolved grid (dynamics axes, epsilons, seed-sampling
        plan, backend), the resolved refiner chain (one
        name/params/token record per stage, in order), the graph
        fingerprint scoping the result to the exact CSR arrays, and the
        execution facts (executor, workers, per-chunk completion
        records, retries, re-dispatches, cache hits, wall time) that
        are allowed to vary between identical reruns.  ``grid.seed`` is
        recorded only when it is a plain integer or ``None``; a live RNG
        object is not replayable and is recorded as ``"seed": null``
        with ``"seed_is_replayable": false``.
        """
        grid = self.grid
        seed = grid.seed
        replayable = seed is None or isinstance(seed, (int, np.integer))
        return {
            "dynamics": self.dynamics,
            "grid": {
                "params": jsonable(dict(grid.dynamics.grid_params())),
                "epsilons": [float(e) for e in grid.resolved_epsilons()],
                "num_seeds": int(grid.num_seeds),
                "seed": int(seed) if replayable and seed is not None else None,
                "seed_is_replayable": bool(replayable),
                "max_cluster_size": (
                    None if grid.max_cluster_size is None
                    else int(grid.max_cluster_size)
                ),
                "backend": grid.backend,
            },
            "refiners": [
                {
                    "name": get_refiner(spec).key,
                    "params": jsonable(dict(spec.params())),
                    "token": spec.token(),
                }
                for spec in self.refiners
            ],
            "graph_fingerprint": self.fingerprint,
            "seed_nodes": [int(s) for s in self.seed_nodes],
            "num_candidates": len(self.candidates),
            "num_chunks": int(self.num_chunks),
            "cache_hits": int(self.cache_hits),
            "num_workers": int(self.num_workers),
            "wall_seconds": float(self.wall_seconds),
            "executor": {
                "name": self.executor,
                "params": jsonable(dict(self.executor_params)),
            },
            "retries": int(self.retries),
            "redispatches": int(self.redispatches),
            "chunks": jsonable(list(self.chunks)),
        }


# Elements hashed per block by :func:`graph_fingerprint` — bounds the
# temporary made when canonicalizing a memmapped or int32 array.
_FINGERPRINT_BLOCK = 1 << 20


def _fingerprint_array(digest, tag, array, canonical):
    """Feed one CSR array into ``digest`` with an explicit frame.

    The frame records the array's role and length, and the bytes are the
    array converted to its canonical little-endian dtype in bounded
    blocks — so the hash is a function of the graph's *values*, not of
    the storage dtype or of where one array happens to end.
    """
    array = np.asarray(array)
    digest.update(f"{tag}:{canonical}:{array.size}|".encode())
    for start in range(0, array.size, _FINGERPRINT_BLOCK):
        block = np.ascontiguousarray(
            array[start:start + _FINGERPRINT_BLOCK], dtype=canonical
        )
        digest.update(memoryview(block))


def graph_fingerprint(graph):
    """Content hash of a graph's CSR arrays (hex digest).

    Two graphs with identical structure and weights share a fingerprint,
    which scopes every memoized chunk to the exact graph it was computed
    on.  Hashing is *framed* and *canonical*: each array contributes a
    ``tag:dtype:length`` header plus its values converted to a fixed
    little-endian dtype (int64 ids, float64 weights).  That makes the
    fingerprint independent of storage details — a graph loaded from a
    ``.reprograph`` file with int32 on-disk indices hashes identically
    to the same graph built in memory with int64 indices — while the
    per-array length framing means no byte sequence can alias across an
    array boundary.
    """
    digest = hashlib.sha256()
    _fingerprint_array(digest, "indptr", graph.indptr, "<i8")
    _fingerprint_array(digest, "indices", graph.indices, "<i8")
    _fingerprint_array(digest, "weights", graph.weights, "<f8")
    return digest.hexdigest()


def _grid_params(grid, graph):
    """The non-seed grid axes of a resolved grid, as hashable param pairs.

    Matches the pre-registry encoding exactly (axis pairs first, then
    ``epsilons`` and ``max_cluster_size``), so memo entries written before
    the unified registry stay valid.
    """
    return grid.dynamics.grid_params() + (
        ("epsilons", tuple(float(e) for e in grid.resolved_epsilons())),
        ("max_cluster_size", int(grid.resolve_max_cluster_size(graph))),
    )


def plan_chunks(dynamics, seed_nodes, params, *, seeds_per_chunk=8,
                backend=None, refiners=(), engine=None):
    """Split a seed list into deterministic :class:`GridChunk` shards.

    ``dynamics`` may be a canonical name, an alias, a spec instance, or a
    :class:`~repro.dynamics.DynamicsKind`; chunks always record the
    canonical name.  ``backend`` (any name or alias
    :func:`~repro.backends.resolve_backend_name` accepts; default
    ``"numpy"``) and ``refiners`` (any chain
    :func:`~repro.refine.as_refiner_chain` accepts) are stamped onto
    every chunk; ``engine`` is the deprecated alias for ``backend``.
    The split depends only on the seed list and ``seeds_per_chunk`` —
    never on the worker count — so cache keys and merge order are stable
    across machines and pool sizes.
    """
    check_int(seeds_per_chunk, "seeds_per_chunk", minimum=1)
    if engine is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass backend= or the deprecated engine= to plan_chunks, "
                "not both"
            )
        backend = resolve_backend_name(engine)
        warn_deprecated("plan_chunks(engine=...)", "plan_chunks(backend=...)")
    backend = resolve_backend_name("numpy" if backend is None else backend)
    dynamics = resolve_dynamics_name(dynamics)
    refiners = as_refiner_chain(refiners)
    seed_nodes = [int(s) for s in seed_nodes]
    return [
        GridChunk(
            index=i,
            dynamics=dynamics,
            seed_nodes=tuple(seed_nodes[start:start + seeds_per_chunk]),
            params=tuple(params),
            backend=backend,
            refiners=refiners,
        )
        for i, start in enumerate(
            range(0, len(seed_nodes), seeds_per_chunk)
        )
    ]


def _chunk_cache_key(fingerprint, chunk):
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}|{fingerprint}|".encode())
    digest.update(chunk.describe().encode())
    # Keyed by backend unconditionally: two backends agree only up to
    # eps-scale sweep perturbations, so their entries must never alias.
    digest.update(f"|backend={chunk.backend}".encode())
    if chunk.refiners:
        # Refined chunks live in their own versioned key namespace: a raw
        # run can never be served refined candidates (or vice versa), and
        # unrefined keys predating the refiners field stay valid.
        digest.update(
            f"|refine-v{_REFINE_CACHE_VERSION}|"
            f"{'>'.join(chunk.refiner_tokens())}".encode()
        )
    return digest.hexdigest()


def _encode_refinement(steps):
    """JSON-encode one candidate's per-stage provenance (exact floats)."""
    return json.dumps([
        [
            step.refiner,
            float(step.pre_conductance),
            float(step.post_conductance),
            int(step.rounds),
            bool(step.converged),
            bool(step.changed),
        ]
        for step in steps
    ])


def _decode_refinement(text):
    """Rebuild the :class:`~repro.refine.RefinementStep` tuple."""
    return tuple(
        RefinementStep(
            refiner=str(refiner),
            pre_conductance=float(pre),
            post_conductance=float(post),
            rounds=int(rounds),
            converged=bool(converged),
            changed=bool(changed),
        )
        for refiner, pre, post, rounds, converged, changed in json.loads(text)
    )


def _save_chunk(path, candidates):
    """Persist a chunk's candidates as one flat npz (no pickling)."""
    if candidates:
        nodes_concat = np.concatenate(
            [np.ascontiguousarray(c.nodes, dtype=np.int64)
             for c in candidates]
        )
        lengths = np.asarray([c.nodes.size for c in candidates],
                             dtype=np.int64)
        conductances = np.asarray([c.conductance for c in candidates])
        methods = np.asarray([c.method for c in candidates])
    else:
        nodes_concat = np.empty(0, dtype=np.int64)
        lengths = np.empty(0, dtype=np.int64)
        conductances = np.empty(0)
        methods = np.empty(0, dtype="U1")
    arrays = dict(
        nodes=nodes_concat, lengths=lengths,
        conductances=conductances, methods=methods,
    )
    if any(c.refinement for c in candidates):
        # Refiner provenance rides along as one JSON string per candidate
        # (floats round-trip exactly via repr); raw chunks keep the
        # pre-refinement file layout byte for byte.
        arrays["refinement"] = np.asarray(
            [_encode_refinement(c.refinement) for c in candidates]
        )
    # Per-writer temp name: concurrent processes sharing a cache_dir must
    # never interleave writes into one temp file; each writes its own and
    # the final rename is atomic, last-writer-wins with identical content.
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    tmp.replace(path)


def _load_chunk(path):
    """Load a memoized chunk; ``None`` (cache miss) if unreadable."""
    try:
        with np.load(path, allow_pickle=False) as data:
            offsets = np.concatenate(([0], np.cumsum(data["lengths"])))
            refinement = (
                data["refinement"] if "refinement" in data.files else None
            )
            return [
                ClusterCandidate(
                    nodes=data["nodes"][offsets[i]:offsets[i + 1]].copy(),
                    conductance=float(data["conductances"][i]),
                    method=str(data["methods"][i]),
                    refinement=(
                        _decode_refinement(str(refinement[i]))
                        if refinement is not None
                        else ()
                    ),
                )
                for i in range(data["lengths"].size)
            ]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, TypeError,
            EOFError, zlib.error, struct.error):
        # A truncated or foreign file is a miss, not a crash; the chunk
        # is recomputed and the entry rewritten.  (json.JSONDecodeError
        # is a ValueError; a malformed provenance payload is a miss too.
        # zlib.error/EOFError/struct.error cover deflate streams cut
        # short by a mid-write crash — and the chaos executor's corrupt
        # fault — which np.load surfaces undecorated.)
        return None


def _evaluate_chunk(graph, chunk):
    """Run one shard's diffusion grid and sweep it into candidates.

    Refinement happens here, inside the shard — per candidate, so the
    refined ensemble is exactly as deterministic (and as worker-count-
    independent) as the raw one.
    """
    params = dict(chunk.params)
    candidates = grid_candidates_for_seed_nodes(
        graph,
        list(chunk.seed_nodes),
        chunk.spec(),
        epsilons=params["epsilons"],
        max_cluster_size=params["max_cluster_size"],
        backend=chunk.backend,
    )
    if chunk.refiners:
        candidates = refine_candidates(graph, candidates, chunk.refiners)
    return candidates


def _legacy_grid(dynamics, num_seeds, alphas, epsilons, ts, steps,
                 walk_alpha, max_cluster_size, seed):
    """Resolve the deprecated kwarg soup into a :class:`DiffusionGrid`."""
    kind = get_dynamics("ppr" if dynamics is _UNSET else dynamics)
    spec = kind.spec_from_legacy(
        alphas=None if alphas is _UNSET else alphas,
        ts=None if ts is _UNSET else ts,
        steps=None if steps is _UNSET else steps,
        walk_alpha=None if walk_alpha is _UNSET else walk_alpha,
    )
    return DiffusionGrid(
        spec,
        epsilons=None if epsilons is _UNSET else epsilons,
        num_seeds=40 if num_seeds is _UNSET else num_seeds,
        seed=None if seed is _UNSET else seed,
        max_cluster_size=(
            None if max_cluster_size is _UNSET else max_cluster_size
        ),
    )


def run_ncp_ensemble(
    graph,
    grid=None,
    *,
    dynamics=_UNSET,
    num_seeds=_UNSET,
    alphas=_UNSET,
    epsilons=_UNSET,
    ts=_UNSET,
    steps=_UNSET,
    walk_alpha=_UNSET,
    max_cluster_size=_UNSET,
    seed=_UNSET,
    num_workers=0,
    seeds_per_chunk=8,
    cache_dir=None,
    executor=None,
    retry=None,
):
    """Run one dynamics' NCP candidate ensemble, sharded and memoized.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    grid:
        The workload: a :class:`~repro.dynamics.DiffusionGrid`, a spec
        instance (``PPR(...)`` / ``HeatKernel(...)`` / ``LazyWalk(...)``),
        a registered dynamics name, a
        :class:`~repro.dynamics.DynamicsKind`, or a
        :class:`~repro.refine.Pipeline` (grid + refiner chain, in which
        case every candidate is threaded through the chain inside its
        chunk, and refined chunks get their own versioned cache keys).
        Seed sampling uses the grid's own RNG stream — the same stream
        :func:`~repro.ncp.profile.cluster_ensemble_ncp` uses, so a serial
        generator run and a sharded runner run see identical seeds.
    dynamics, num_seeds, alphas, epsilons, ts, steps, walk_alpha, \
max_cluster_size, seed:
        Deprecated keyword-soup form (used only when ``grid`` is omitted):
        the equivalent :class:`~repro.dynamics.DiffusionGrid` is
        constructed through the registry and a :class:`DeprecationWarning`
        is emitted.
    num_workers:
        ``0`` evaluates chunks serially in-process; ``k >= 1`` fans the
        non-cached chunks out to a pool of ``k`` worker processes. The
        resulting ensemble is identical either way.
    seeds_per_chunk:
        Shard width. Part of each chunk's cache key.
    cache_dir:
        Directory for the per-(graph, chunk) memo; ``None`` disables
        caching. Entries are keyed by graph fingerprint + exact chunk
        parameters + cache version, so a changed graph or grid never
        reuses stale results.  Each entry is written the moment its
        chunk completes, so an interrupted run resumes from the cache.
    executor:
        Execution strategy for the non-cached chunks: any
        :mod:`repro.execution` registry name/alias (``"serial"``,
        ``"process"``, ``"chaos"``, ...), spec instance, or
        :class:`~repro.execution.ExecutorKind`.  ``None`` derives the
        default from ``num_workers`` (``"process"`` when >= 1, else
        ``"serial"``).  Every strategy produces byte-identical
        candidates.
    retry:
        A :class:`~repro.execution.RetryPolicy` for the driver's
        per-chunk retry and straggler re-dispatch (default:
        ``RetryPolicy()``).

    Returns
    -------
    NCPRunResult
    """
    legacy = (
        dynamics, num_seeds, alphas, epsilons, ts, steps, walk_alpha,
        max_cluster_size, seed,
    )
    refiners = ()
    if grid is None:
        grid = _legacy_grid(*legacy)
        warn_deprecated(
            "run_ncp_ensemble(dynamics=..., alphas=..., ts=..., steps=...)",
            "run_ncp_ensemble(graph, DiffusionGrid(...))",
        )
    else:
        if any(value is not _UNSET for value in legacy):
            raise InvalidParameterError(
                "run_ncp_ensemble received both a grid and deprecated "
                "per-dynamics keywords; the grid carries the full workload"
            )
        pipeline = as_pipeline(grid)
        grid = pipeline.grid
        refiners = pipeline.refiners
    num_workers = check_int(num_workers, "num_workers", minimum=0)
    start_time = time.perf_counter()

    executor_spec = as_executor_spec(
        executor if executor is not None
        else ("process" if num_workers >= 1 else "serial")
    )
    executor_kind = get_executor(executor_spec)

    rng = as_rng(grid.seed)
    seed_nodes = _sample_seed_nodes(graph, grid.num_seeds, rng)
    params = _grid_params(grid, graph)
    chunks = plan_chunks(
        grid.dynamics, seed_nodes, params,
        seeds_per_chunk=seeds_per_chunk, backend=grid.backend,
        refiners=refiners,
    )

    # Always fingerprint: the manifest hook needs it even without a cache.
    fingerprint = graph_fingerprint(graph)
    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir)
        cache_path.mkdir(parents=True, exist_ok=True)

    cache_keys = {
        chunk.index: _chunk_cache_key(fingerprint, chunk)
        for chunk in chunks
    }
    per_chunk = [None] * len(chunks)
    hit_indices = set()
    misses = []
    for chunk in chunks:
        if cache_path is not None:
            entry = cache_path / f"{cache_keys[chunk.index]}.npz"
            if entry.exists():
                loaded = _load_chunk(entry)
                if loaded is not None:
                    per_chunk[chunk.index] = loaded
                    hit_indices.add(chunk.index)
                    continue
        misses.append(chunk)

    outcome = None
    if misses:
        # Merge order is by chunk.index regardless of strategy, retries,
        # or straggler re-dispatch, so the ensemble is byte-identical
        # for any executor and any worker count.
        chunk_executor, _, _ = build_executor(
            executor_spec, graph=graph, evaluate=_evaluate_chunk,
            num_workers=num_workers,
        )

        def _on_result(chunk, candidates):
            # Fired the moment a chunk completes: the incremental cache
            # write is what makes an interrupted run resumable.
            per_chunk[chunk.index] = candidates
            if cache_path is not None:
                entry = cache_path / f"{cache_keys[chunk.index]}.npz"
                _save_chunk(entry, candidates)
                chunk_executor.after_cache_write(chunk, entry)

        outcome = execute_chunks(
            chunk_executor, misses, retry=retry,
            fingerprint=fingerprint, on_result=_on_result,
        )

    chunk_records = [
        {
            "index": int(chunk.index),
            "num_seeds": len(chunk.seed_nodes),
            "cache_key": cache_keys[chunk.index],
            "source": (
                "cache" if chunk.index in hit_indices else "computed"
            ),
            "attempts": (
                0 if outcome is None
                else int(outcome.attempts.get(chunk.index, 0))
            ),
            "completed": True,
        }
        for chunk in chunks
    ]

    merged = []
    for candidates in per_chunk:
        merged.extend(candidates)
    return NCPRunResult(
        candidates=merged,
        dynamics=grid.key,
        num_chunks=len(chunks),
        cache_hits=len(hit_indices),
        num_workers=num_workers,
        grid=grid,
        refiners=refiners,
        fingerprint=fingerprint,
        seed_nodes=tuple(int(s) for s in seed_nodes),
        wall_seconds=time.perf_counter() - start_time,
        executor=executor_kind.key,
        executor_params=executor_spec.params(),
        retries=0 if outcome is None else outcome.retries,
        redispatches=0 if outcome is None else outcome.redispatches,
        chunks=chunk_records,
    )
