"""Network community profiles (NCP): size-resolved best conductance.

The NCP plot of Leskovec et al. [27, 28] — the substrate of the paper's
Figure 1 — asks: *for every cluster size k, what is the best conductance
achievable by a size-k cluster, according to a given approximation
algorithm?* Different approximation algorithms draw different curves on the
same graph, and the systematic gap between the spectral and the flow curves
is the paper's empirical evidence for implicit regularization.

Two ensemble generators:

* :func:`cluster_ensemble_ncp` — the diffusion side, for *any* registered
  dynamics: a :class:`~repro.dynamics.DiffusionGrid` (spec × epsilons ×
  seed sampling) is swept column by column through the grid's registered
  backend (:mod:`repro.backends`: the vectorized ``numpy`` reference, the
  ``scalar`` parity oracle, or the JIT ``numba`` tier), and every
  best-per-octave sweep prefix of every column is a candidate cluster.  PPR reproduces the
  paper's "LocalSpectral (blue)" curve; the heat kernel and the truncated
  lazy walk are the other two canonical dynamics of Section 3.1.
* :func:`flow_cluster_ensemble_ncp` — the "Metis+MQI (red)" side: recursive
  multilevel bisection proposes clusters at all scales, each improved by
  a refiner chain from the unified registry (:mod:`repro.refine`;
  ``("mqi",)`` by default — exactly the paper's Metis+MQI pipeline).

Both generators also speak :class:`~repro.refine.Pipeline`:
``cluster_ensemble_ncp(graph, Pipeline(PPR(), refiners=("mqi",)))``
threads every diffusion candidate through the chain, attaching per-stage
:class:`~repro.refine.RefinementStep` provenance.

The pre-registry per-dynamics generators
(:func:`spectral_cluster_ensemble_ncp`, :func:`hk_cluster_ensemble_ncp`,
:func:`walk_cluster_ensemble_ncp`) and the hardwired
``improve_with_mqi``/``max_mqi_size`` keywords remain as deprecation
shims that construct the equivalent spec.

Candidates are reduced to a profile by :func:`best_per_size_bucket`. For
large grids, :mod:`repro.ncp.runner` shards the diffusion ensembles across
worker processes and memoizes chunk results on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_rng, check_int
from repro.backends import resolve_backend_name
from repro.dynamics import (
    DiffusionGrid,
    HeatKernel,
    LazyWalk,
    PPR,
    _resolve_backend,
    as_diffusion_grid,
    get_dynamics,
    warn_deprecated,
)
from repro.exceptions import PartitionError
from repro.partition.metrics import conductance
from repro.partition.multilevel import recursive_bisection_clusters
from repro.partition.sweep import sweep_cut
from repro.refine import (
    apply_refiners,
    as_pipeline,
    as_refiner_chain,
    refine_candidates,
)

# Sentinel distinguishing "kwarg not passed" from an explicit value in
# the deprecated ``improve_with_mqi``/``max_mqi_size`` shim path.
_UNSET = object()


@dataclass
class ClusterCandidate:
    """One candidate cluster in an NCP ensemble.

    Attributes
    ----------
    nodes:
        Sorted node ids.
    conductance:
        φ in the host graph.
    method:
        Producing algorithm (``"spectral"``, ``"hk"``, ``"walk"``, or
        ``"flow"``).
    refinement:
        Per-stage :class:`~repro.refine.RefinementStep` provenance when
        the candidate went through a refiner chain (pre/post
        conductance, refiner token, rounds, convergence per stage);
        empty for raw candidates.
    """

    nodes: np.ndarray
    conductance: float
    method: str
    refinement: tuple = ()

    @property
    def size(self):
        return int(self.nodes.size)

    @property
    def refined(self):
        """Whether any refiner stage replaced this candidate's nodes."""
        return any(step.changed for step in self.refinement)


@dataclass
class NCPProfile:
    """A size-bucketed best-conductance profile.

    Attributes
    ----------
    method:
        Ensemble label.
    bucket_edges:
        Log-spaced size-bucket boundaries (length ``b + 1``).
    best_conductance:
        Best φ per bucket (NaN for empty buckets).
    representatives:
        Best candidate per bucket (None for empty buckets).
    num_candidates:
        Ensemble size before bucketing.
    """

    method: str
    bucket_edges: np.ndarray
    best_conductance: np.ndarray
    representatives: list = field(repr=False, default_factory=list)
    num_candidates: int = 0


def _sample_seed_nodes(graph, num_seeds, rng):
    """Sample seed nodes by degree (stationary measure), as in [27]."""
    probabilities = graph.degrees / graph.total_volume
    return rng.choice(
        graph.num_nodes, size=num_seeds, replace=True, p=probabilities
    )


def _record_sweep_candidates(graph, approximation, candidates, method,
                             max_cluster_size, backend=None):
    """Sweep a diffusion output and record best-per-octave candidates."""
    support = np.flatnonzero(approximation > 0)
    if support.size < 2:
        return
    try:
        sweep = sweep_cut(
            graph, approximation, degree_normalize=True,
            restrict_to=support, max_size=max_cluster_size,
            backend=backend,
        )
    except PartitionError:
        return
    _octave_candidates(graph, sweep, candidates, method, max_cluster_size)


def cluster_ensemble_ncp(graph, grid):
    """Generate the NCP candidate ensemble for one diffusion workload.

    The single generator behind every diffusion dynamics: samples
    ``grid.num_seeds`` seed nodes by degree from ``grid.seed``'s RNG
    stream, runs the spec's full seed × axis × epsilon grid through the
    backend named by ``grid.backend`` (diffusion columns *and* sweep
    scans), and records the best sweep prefix of every diffusion column
    per size octave.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    grid:
        A :class:`~repro.dynamics.DiffusionGrid` — or anything
        :func:`~repro.dynamics.as_diffusion_grid` accepts (a spec instance
        such as ``PPR(alpha=(0.05,))``, a registered name like ``"hk"``,
        or a :class:`~repro.dynamics.DynamicsKind`) — or a
        :class:`~repro.refine.Pipeline`, in which case every candidate is
        additionally threaded through the pipeline's refiner chain
        (carrying :class:`~repro.refine.RefinementStep` provenance).

    Returns
    -------
    list of :class:`ClusterCandidate`, with ``method`` set to the spec's
    candidate label (``"spectral"`` / ``"hk"`` / ``"walk"``).
    """
    pipeline = as_pipeline(grid)
    grid = pipeline.grid
    rng = as_rng(grid.seed)
    seed_nodes = _sample_seed_nodes(graph, grid.num_seeds, rng)
    candidates = grid_candidates_for_seed_nodes(
        graph,
        seed_nodes,
        grid.dynamics,
        epsilons=grid.resolved_epsilons(),
        max_cluster_size=grid.resolve_max_cluster_size(graph),
        backend=grid.backend,
    )
    if pipeline.refiners:
        candidates = refine_candidates(graph, candidates, pipeline.refiners)
    return candidates


def grid_candidates_for_seed_nodes(graph, seed_nodes, spec, *, epsilons,
                                   max_cluster_size, backend=None,
                                   engine=None):
    """NCP candidates of one registered dynamics for explicit seed nodes.

    The sharding entry point used by :mod:`repro.ncp.runner`: the caller
    controls exactly which seed nodes this invocation covers, so grid
    chunks can be distributed across processes and merged
    deterministically.  Dispatch is fully generic — the spec provides the
    diffusion columns through the named backend (default ``"numpy"``;
    ``engine`` is the deprecated alias), this function sweeps them with
    the same backend's prefix scan.
    """
    backend = _resolve_backend(
        backend, engine, "grid_candidates_for_seed_nodes"
    )
    get_dynamics(spec)  # raises UnknownDynamicsError for foreign specs
    label = spec.candidate_label
    candidates = []
    for scores in spec.iter_columns(
        graph, seed_nodes, epsilons=epsilons, backend=backend
    ):
        _record_sweep_candidates(
            graph, scores, candidates, label, max_cluster_size,
            backend=backend,
        )
    return candidates


def spectral_cluster_ensemble_ncp(
    graph,
    *,
    num_seeds=40,
    alphas=(0.01, 0.05, 0.15),
    epsilons=(1e-4, 1e-5),
    max_cluster_size=None,
    seed=None,
    engine="batched",
):
    """Deprecated shim: ACL-push ensemble via the unified grid API.

    Equivalent to ``cluster_ensemble_ncp(graph, DiffusionGrid(PPR(alphas),
    epsilons=...))`` — constructs exactly that grid and emits a
    :class:`DeprecationWarning`.
    """
    grid = DiffusionGrid(
        PPR(alpha=alphas), epsilons=epsilons, num_seeds=num_seeds,
        seed=seed, max_cluster_size=max_cluster_size,
        backend=resolve_backend_name(engine),
    )
    warn_deprecated(
        "spectral_cluster_ensemble_ncp",
        "cluster_ensemble_ncp(graph, DiffusionGrid(PPR(...)))",
    )
    return cluster_ensemble_ncp(graph, grid)


def spectral_candidates_for_seed_nodes(graph, seed_nodes, *, alphas,
                                       epsilons, max_cluster_size,
                                       engine="batched"):
    """Deprecated shim: ACL-push shard via the generic dispatch."""
    spec = PPR(alpha=alphas)
    backend = resolve_backend_name(engine)
    warn_deprecated(
        "spectral_candidates_for_seed_nodes",
        "grid_candidates_for_seed_nodes(graph, seed_nodes, PPR(...))",
    )
    return grid_candidates_for_seed_nodes(
        graph, seed_nodes, spec, epsilons=epsilons,
        max_cluster_size=max_cluster_size,
        backend=backend,
    )


def hk_cluster_ensemble_ncp(
    graph,
    *,
    num_seeds=40,
    ts=(3.0, 10.0, 30.0),
    epsilons=(1e-3, 1e-4),
    max_cluster_size=None,
    seed=None,
    engine="batched",
):
    """Deprecated shim: heat-kernel ensemble via the unified grid API."""
    grid = DiffusionGrid(
        HeatKernel(t=ts), epsilons=epsilons, num_seeds=num_seeds,
        seed=seed, max_cluster_size=max_cluster_size,
        backend=resolve_backend_name(engine),
    )
    warn_deprecated(
        "hk_cluster_ensemble_ncp",
        "cluster_ensemble_ncp(graph, DiffusionGrid(HeatKernel(...)))",
    )
    return cluster_ensemble_ncp(graph, grid)


def hk_candidates_for_seed_nodes(graph, seed_nodes, *, ts, epsilons,
                                 max_cluster_size, engine="batched"):
    """Deprecated shim: heat-kernel shard via the generic dispatch."""
    spec = HeatKernel(t=ts)
    backend = resolve_backend_name(engine)
    warn_deprecated(
        "hk_candidates_for_seed_nodes",
        "grid_candidates_for_seed_nodes(graph, seed_nodes, HeatKernel(...))",
    )
    return grid_candidates_for_seed_nodes(
        graph, seed_nodes, spec, epsilons=epsilons,
        max_cluster_size=max_cluster_size,
        backend=backend,
    )


def walk_cluster_ensemble_ncp(
    graph,
    *,
    num_seeds=40,
    steps=(4, 16, 64),
    epsilons=(1e-3, 1e-4),
    alpha=0.5,
    max_cluster_size=None,
    seed=None,
):
    """Deprecated shim: truncated-lazy-walk ensemble via the grid API."""
    grid = DiffusionGrid(
        LazyWalk(steps=steps, walk_alpha=alpha), epsilons=epsilons,
        num_seeds=num_seeds, seed=seed, max_cluster_size=max_cluster_size,
    )
    warn_deprecated(
        "walk_cluster_ensemble_ncp",
        "cluster_ensemble_ncp(graph, DiffusionGrid(LazyWalk(...)))",
    )
    return cluster_ensemble_ncp(graph, grid)


def walk_candidates_for_seed_nodes(graph, seed_nodes, *, steps, epsilons,
                                   alpha, max_cluster_size):
    """Deprecated shim: truncated-walk shard via the generic dispatch."""
    spec = LazyWalk(steps=steps, walk_alpha=alpha)
    warn_deprecated(
        "walk_candidates_for_seed_nodes",
        "grid_candidates_for_seed_nodes(graph, seed_nodes, LazyWalk(...))",
    )
    return grid_candidates_for_seed_nodes(
        graph, seed_nodes, spec, epsilons=epsilons,
        max_cluster_size=max_cluster_size,
    )


def _octave_candidates(graph, sweep, out, method, max_cluster_size):
    """Push best-per-octave sweep prefixes into ``out``."""
    profile = sweep.profile
    order = sweep.order
    size_limit = min(profile.shape[0], max_cluster_size)
    octave_start = 1
    while octave_start <= size_limit:
        octave_stop = min(2 * octave_start, size_limit + 1)
        window = profile[octave_start - 1:octave_stop - 1]
        if window.size and np.isfinite(window).any():
            local_best = int(np.nanargmin(
                np.where(np.isfinite(window), window, np.nan)
            ))
            k = octave_start + local_best
            out.append(
                ClusterCandidate(
                    nodes=np.sort(order[:k].astype(np.int64)),
                    conductance=float(window[local_best]),
                    method=method,
                )
            )
        octave_start = octave_stop
        if octave_stop > size_limit:
            break


def _unique_clusters(clusters):
    """Drop exact duplicate node sets, preserving first-seen order.

    Keyed on the full sorted membership bytes: summary keys (size,
    endpoints, checksums) can alias distinct clusters and silently drop
    real candidates from the ensemble.
    """
    seen = set()
    unique = []
    for nodes in clusters:
        key = np.ascontiguousarray(nodes, dtype=np.int64).tobytes()
        if key in seen:
            continue
        seen.add(key)
        unique.append(nodes)
    return unique


def flow_cluster_ensemble_ncp(graph, *, min_size=4, seed=None,
                              refiners=("mqi",), max_refine_size=None,
                              improve_with_mqi=_UNSET, max_mqi_size=_UNSET):
    """Generate the flow candidate ensemble: recursive bisection + refiners.

    Every side of every recursive multilevel bisection is a candidate;
    each is additionally threaded through ``refiners`` — any chain from
    the unified registry (:mod:`repro.refine`) — and the refined set is
    appended as a second candidate when it strictly improves conductance.
    The default chain ``("mqi",)`` is exactly the paper's "Metis+MQI"
    pipeline; ``refiners=()`` yields the raw bisection ensemble.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    min_size:
        Bisection recursion floor.
    seed:
        RNG seed for the multilevel coarsening.
    refiners:
        Refiner chain applied to every bisection side — spec instances
        (``MQI(max_rounds=50)``), registered names/aliases (``"mqi"``,
        ``"flow"``, ``"mov"``, ``"metis_mqi"``, ...), or a mix.
    max_refine_size:
        Skip refinement for sides larger than this many nodes
        (``None`` = refine every side whose preconditions hold).
    improve_with_mqi, max_mqi_size:
        Deprecated pre-registry spellings (``improve_with_mqi=False`` ↦
        ``refiners=()``, ``max_mqi_size`` ↦ ``max_refine_size``); using
        them emits a :class:`DeprecationWarning`.

    Returns a list of :class:`ClusterCandidate`; refined candidates carry
    per-stage :class:`~repro.refine.RefinementStep` provenance.
    """
    if improve_with_mqi is not _UNSET or max_mqi_size is not _UNSET:
        warn_deprecated(
            "flow_cluster_ensemble_ncp(improve_with_mqi=..., "
            "max_mqi_size=...)",
            "flow_cluster_ensemble_ncp(refiners=..., max_refine_size=...)",
        )
        if improve_with_mqi is not _UNSET and not improve_with_mqi:
            refiners = ()
        if max_mqi_size is not _UNSET:
            max_refine_size = max_mqi_size
    chain = as_refiner_chain(refiners)
    clusters = recursive_bisection_clusters(
        graph, min_size=min_size, seed=seed
    )
    if max_refine_size is None:
        max_refine_size = graph.num_nodes
    candidates = []
    for nodes in _unique_clusters(clusters):
        phi = conductance(graph, nodes)
        candidates.append(
            ClusterCandidate(nodes=nodes, conductance=phi, method="flow")
        )
        if chain and nodes.size <= max_refine_size:
            trace = apply_refiners(graph, nodes, chain, pre_conductance=phi)
            if trace.changed and trace.final_conductance < phi - 1e-15:
                candidates.append(
                    ClusterCandidate(
                        nodes=trace.nodes,
                        conductance=trace.final_conductance,
                        method="flow",
                        refinement=trace.steps,
                    )
                )
    return candidates


def best_per_size_bucket(candidates, *, num_buckets=12, min_size=2,
                         max_size=None, method=None):
    """Reduce a candidate ensemble to a log-bucketed NCP profile."""
    check_int(num_buckets, "num_buckets", minimum=1)
    pool = [
        c for c in candidates
        if (method is None or c.method == method) and c.size >= min_size
    ]
    if not pool:
        raise PartitionError("no candidates to profile")
    sizes = np.asarray([c.size for c in pool])
    if max_size is None:
        max_size = int(sizes.max())
    edges = np.unique(
        np.geomspace(min_size, max(max_size, min_size + 1), num_buckets + 1)
    )
    best = np.full(edges.size - 1, np.nan)
    representatives = [None] * (edges.size - 1)
    for candidate in pool:
        bucket = int(np.searchsorted(edges, candidate.size, side="right")) - 1
        if candidate.size == edges[-1]:
            # A size exactly on the top bucket edge lands past the last
            # bucket under right-open bucketing; clamp it into the last
            # bucket so the largest cluster is profiled, not dropped.
            bucket = best.size - 1
        if bucket < 0 or bucket >= best.size:
            continue
        if np.isnan(best[bucket]) or candidate.conductance < best[bucket]:
            best[bucket] = candidate.conductance
            representatives[bucket] = candidate
    label = method if method is not None else pool[0].method
    return NCPProfile(
        method=label,
        bucket_edges=edges,
        best_conductance=best,
        representatives=representatives,
        num_candidates=len(pool),
    )
