"""Network community profiles (NCP): size-resolved best conductance.

The NCP plot of Leskovec et al. [27, 28] — the substrate of the paper's
Figure 1 — asks: *for every cluster size k, what is the best conductance
achievable by a size-k cluster, according to a given approximation
algorithm?* Different approximation algorithms draw different curves on the
same graph, and the systematic gap between the spectral and the flow curves
is the paper's empirical evidence for implicit regularization.

Four ensemble generators:

* :func:`spectral_cluster_ensemble_ncp` — the "LocalSpectral (blue)" side:
  ACL push from many random seeds over a grid of (α, ε); every sweep prefix
  of every run is a candidate cluster.
* :func:`hk_cluster_ensemble_ncp` — the heat-kernel dynamics: truncated
  Taylor push over a grid of (t, ε), batched through
  :func:`repro.diffusion.engine.batch_hk_push`.
* :func:`walk_cluster_ensemble_ncp` — the Spielman–Teng truncated lazy
  walk over a grid of (steps, ε), using the vectorized walk kernel.
* :func:`flow_cluster_ensemble_ncp` — the "Metis+MQI (red)" side: recursive
  multilevel bisection proposes clusters at all scales, each improved by
  iterated MQI.

Candidates are reduced to a profile by :func:`best_per_size_bucket`. For
large grids, :mod:`repro.ncp.runner` shards the diffusion ensembles across
worker processes and memoizes chunk results on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_rng, check_int
from repro.diffusion.engine import batch_hk_push, batch_ppr_push
from repro.diffusion.hk_push import heat_kernel_push
from repro.diffusion.push import approximate_ppr_push
from repro.diffusion.seeds import degree_weighted_indicator_seed
from repro.diffusion.truncated_walk import truncated_lazy_walk
from repro.exceptions import InvalidParameterError, PartitionError
from repro.partition.metrics import conductance
from repro.partition.mqi import mqi
from repro.partition.multilevel import recursive_bisection_clusters
from repro.partition.sweep import sweep_cut


@dataclass
class ClusterCandidate:
    """One candidate cluster in an NCP ensemble.

    Attributes
    ----------
    nodes:
        Sorted node ids.
    conductance:
        φ in the host graph.
    method:
        Producing algorithm (``"spectral"`` or ``"flow"``).
    """

    nodes: np.ndarray
    conductance: float
    method: str

    @property
    def size(self):
        return int(self.nodes.size)


@dataclass
class NCPProfile:
    """A size-bucketed best-conductance profile.

    Attributes
    ----------
    method:
        Ensemble label.
    bucket_edges:
        Log-spaced size-bucket boundaries (length ``b + 1``).
    best_conductance:
        Best φ per bucket (NaN for empty buckets).
    representatives:
        Best candidate per bucket (None for empty buckets).
    num_candidates:
        Ensemble size before bucketing.
    """

    method: str
    bucket_edges: np.ndarray
    best_conductance: np.ndarray
    representatives: list = field(repr=False, default_factory=list)
    num_candidates: int = 0


# Cap on the number of dense (node, column) entries per engine batch; seed
# chunks are sized so the batched residual/approximation matrices stay
# within a few dozen megabytes regardless of the seed count.
_BATCH_ENTRY_BUDGET = 2_000_000


def _sample_seed_nodes(graph, num_seeds, rng):
    """Sample seed nodes by degree (stationary measure), as in [27]."""
    probabilities = graph.degrees / graph.total_volume
    return rng.choice(
        graph.num_nodes, size=num_seeds, replace=True, p=probabilities
    )


def _record_sweep_candidates(graph, approximation, candidates, method,
                             max_cluster_size):
    """Sweep a diffusion output and record best-per-octave candidates."""
    support = np.flatnonzero(approximation > 0)
    if support.size < 2:
        return
    try:
        sweep = sweep_cut(
            graph, approximation, degree_normalize=True,
            restrict_to=support, max_size=max_cluster_size,
        )
    except PartitionError:
        return
    _octave_candidates(graph, sweep, candidates, method, max_cluster_size)


def _seed_chunks(seed_nodes, n, grid_size):
    """Chunk seed nodes so each dense engine batch stays within budget."""
    chunk = max(1, _BATCH_ENTRY_BUDGET // max(n * max(grid_size, 1), 1))
    for start in range(0, len(seed_nodes), chunk):
        yield seed_nodes[start:start + chunk]


def spectral_cluster_ensemble_ncp(
    graph,
    *,
    num_seeds=40,
    alphas=(0.01, 0.05, 0.15),
    epsilons=(1e-4, 1e-5),
    max_cluster_size=None,
    seed=None,
    engine="batched",
):
    """Generate the spectral candidate ensemble by ACL push sweeps.

    For each random seed node and each (α, ε), run push and record the best
    sweep prefix at every admissible size (one candidate per run per size
    decade, to bound memory).

    The default ``engine="batched"`` runs the whole seed × α × ε grid
    through :func:`repro.diffusion.engine.batch_ppr_push` (chunked over
    seeds to bound memory); ``engine="scalar"`` is the original
    one-push-at-a-time loop, kept as the parity reference. Both sample the
    same seed nodes from the same RNG stream and emit candidates in the
    same grid order; the diffusions agree up to the shared ε·d entrywise
    guarantee, so the resulting conductance profiles match to within that
    bound.

    Returns a list of :class:`ClusterCandidate`.
    """
    check_int(num_seeds, "num_seeds", minimum=1)
    if engine not in ("batched", "scalar"):
        raise InvalidParameterError(
            f"engine must be 'batched' or 'scalar'; got {engine!r}"
        )
    rng = as_rng(seed)
    if max_cluster_size is None:
        max_cluster_size = graph.num_nodes // 2
    seed_nodes = _sample_seed_nodes(graph, num_seeds, rng)
    return spectral_candidates_for_seed_nodes(
        graph, seed_nodes, alphas=alphas, epsilons=epsilons,
        max_cluster_size=max_cluster_size, engine=engine,
    )


def spectral_candidates_for_seed_nodes(graph, seed_nodes, *, alphas,
                                       epsilons, max_cluster_size,
                                       engine="batched"):
    """Spectral (ACL push) candidates for explicit seed nodes.

    The sharding entry point used by :mod:`repro.ncp.runner`: the caller
    controls exactly which seed nodes this invocation covers, so grid
    chunks can be distributed across processes and merged deterministically.
    """
    candidates = []
    if engine == "scalar":
        for seed_node in seed_nodes:
            seed_vector = degree_weighted_indicator_seed(
                graph, [int(seed_node)]
            )
            for alpha in alphas:
                for epsilon in epsilons:
                    push = approximate_ppr_push(
                        graph, seed_vector, alpha=alpha, epsilon=epsilon
                    )
                    _record_sweep_candidates(
                        graph, push.approximation, candidates, "spectral",
                        max_cluster_size,
                    )
        return candidates

    grid = len(alphas) * len(epsilons)
    for block in _seed_chunks(seed_nodes, graph.num_nodes, grid):
        seed_vectors = [
            degree_weighted_indicator_seed(graph, [int(s)]) for s in block
        ]
        batch = batch_ppr_push(
            graph, seed_vectors, alphas=alphas, epsilons=epsilons
        )
        for b in range(batch.num_columns):
            _record_sweep_candidates(
                graph, batch.approximation[:, b], candidates, "spectral",
                max_cluster_size,
            )
    return candidates


def hk_cluster_ensemble_ncp(
    graph,
    *,
    num_seeds=40,
    ts=(3.0, 10.0, 30.0),
    epsilons=(1e-3, 1e-4),
    max_cluster_size=None,
    seed=None,
    engine="batched",
):
    """Generate the heat-kernel candidate ensemble by HK push sweeps.

    The heat-kernel analogue of :func:`spectral_cluster_ensemble_ncp`: for
    each degree-sampled seed node and each (t, ε) grid point, run the
    truncated-Taylor heat-kernel diffusion and record the best sweep
    prefix per size octave. ``engine="batched"`` runs the whole
    seed × t × ε grid through
    :func:`repro.diffusion.engine.batch_hk_push` (chunked over seeds to
    bound memory); ``engine="scalar"`` is the one-diffusion-at-a-time
    loop, kept as the parity reference.

    Returns a list of :class:`ClusterCandidate` with method ``"hk"``.
    """
    check_int(num_seeds, "num_seeds", minimum=1)
    if engine not in ("batched", "scalar"):
        raise InvalidParameterError(
            f"engine must be 'batched' or 'scalar'; got {engine!r}"
        )
    rng = as_rng(seed)
    if max_cluster_size is None:
        max_cluster_size = graph.num_nodes // 2
    seed_nodes = _sample_seed_nodes(graph, num_seeds, rng)
    return hk_candidates_for_seed_nodes(
        graph, seed_nodes, ts=ts, epsilons=epsilons,
        max_cluster_size=max_cluster_size, engine=engine,
    )


def hk_candidates_for_seed_nodes(graph, seed_nodes, *, ts, epsilons,
                                 max_cluster_size, engine="batched"):
    """Heat-kernel candidates for explicit seed nodes (runner shard)."""
    candidates = []
    if engine == "scalar":
        for seed_node in seed_nodes:
            seed_vector = degree_weighted_indicator_seed(
                graph, [int(seed_node)]
            )
            for t in ts:
                for epsilon in epsilons:
                    push = heat_kernel_push(
                        graph, seed_vector, t, epsilon=epsilon
                    )
                    _record_sweep_candidates(
                        graph, push.approximation, candidates, "hk",
                        max_cluster_size,
                    )
        return candidates

    grid = len(ts) * len(epsilons)
    for block in _seed_chunks(seed_nodes, graph.num_nodes, grid):
        seed_vectors = [
            degree_weighted_indicator_seed(graph, [int(s)]) for s in block
        ]
        batch = batch_hk_push(graph, seed_vectors, ts=ts, epsilons=epsilons)
        for b in range(batch.num_columns):
            _record_sweep_candidates(
                graph, batch.approximation[:, b], candidates, "hk",
                max_cluster_size,
            )
    return candidates


def walk_cluster_ensemble_ncp(
    graph,
    *,
    num_seeds=40,
    steps=(4, 16, 64),
    epsilons=(1e-3, 1e-4),
    alpha=0.5,
    max_cluster_size=None,
    seed=None,
):
    """Generate the truncated-lazy-walk candidate ensemble [39].

    For each degree-sampled seed node and each (steps, ε) grid point, run
    the vectorized truncated lazy walk and record the best sweep prefix of
    the final (degree-normalized) charge per size octave. The step count
    is the aggressiveness parameter of Section 3.1; ε is the implicit
    regularizer.

    Returns a list of :class:`ClusterCandidate` with method ``"walk"``.
    """
    check_int(num_seeds, "num_seeds", minimum=1)
    rng = as_rng(seed)
    if max_cluster_size is None:
        max_cluster_size = graph.num_nodes // 2
    seed_nodes = _sample_seed_nodes(graph, num_seeds, rng)
    return walk_candidates_for_seed_nodes(
        graph, seed_nodes, steps=steps, epsilons=epsilons, alpha=alpha,
        max_cluster_size=max_cluster_size,
    )


def walk_candidates_for_seed_nodes(graph, seed_nodes, *, steps, epsilons,
                                   alpha, max_cluster_size):
    """Truncated-walk candidates for explicit seed nodes (runner shard).

    Walk trajectories are prefix-closed, so each seed × ε pair runs one
    walk to ``max(steps)`` and sweeps the charge vector at every requested
    step count — the trajectory is reused across the steps grid.
    """
    candidates = []
    wanted = sorted(set(check_int(s, "steps", minimum=0) for s in steps))
    if not wanted:
        return candidates
    horizon = wanted[-1]
    for seed_node in seed_nodes:
        seed_vector = degree_weighted_indicator_seed(graph, [int(seed_node)])
        for epsilon in epsilons:
            walk = truncated_lazy_walk(
                graph, seed_vector, horizon, epsilon=epsilon, alpha=alpha,
                keep_trajectory=True,
            )
            for k in wanted:
                _record_sweep_candidates(
                    graph, walk.trajectory[k], candidates, "walk",
                    max_cluster_size,
                )
    return candidates


def _octave_candidates(graph, sweep, out, method, max_cluster_size):
    """Push best-per-octave sweep prefixes into ``out``."""
    profile = sweep.profile
    order = sweep.order
    size_limit = min(profile.shape[0], max_cluster_size)
    octave_start = 1
    while octave_start <= size_limit:
        octave_stop = min(2 * octave_start, size_limit + 1)
        window = profile[octave_start - 1:octave_stop - 1]
        if window.size and np.isfinite(window).any():
            local_best = int(np.nanargmin(
                np.where(np.isfinite(window), window, np.nan)
            ))
            k = octave_start + local_best
            out.append(
                ClusterCandidate(
                    nodes=np.sort(order[:k].astype(np.int64)),
                    conductance=float(window[local_best]),
                    method=method,
                )
            )
        octave_start = octave_stop
        if octave_stop > size_limit:
            break


def _unique_clusters(clusters):
    """Drop exact duplicate node sets, preserving first-seen order.

    Keyed on the full sorted membership bytes: summary keys (size,
    endpoints, checksums) can alias distinct clusters and silently drop
    real candidates from the ensemble.
    """
    seen = set()
    unique = []
    for nodes in clusters:
        key = np.ascontiguousarray(nodes, dtype=np.int64).tobytes()
        if key in seen:
            continue
        seen.add(key)
        unique.append(nodes)
    return unique


def flow_cluster_ensemble_ncp(graph, *, min_size=4, seed=None,
                              improve_with_mqi=True, max_mqi_size=None):
    """Generate the flow candidate ensemble: recursive bisection (+ MQI).

    Every side of every recursive multilevel bisection is a candidate;
    each is MQI-improved (the "Metis+MQI" pipeline) when its volume permits.

    Returns a list of :class:`ClusterCandidate`.
    """
    clusters = recursive_bisection_clusters(
        graph, min_size=min_size, seed=seed
    )
    half = graph.total_volume / 2.0
    if max_mqi_size is None:
        max_mqi_size = graph.num_nodes
    candidates = []
    for nodes in _unique_clusters(clusters):
        phi = conductance(graph, nodes)
        candidates.append(
            ClusterCandidate(nodes=nodes, conductance=phi, method="flow")
        )
        if (
            improve_with_mqi
            and nodes.size <= max_mqi_size
            and float(graph.degrees[nodes].sum()) <= half
        ):
            improved = mqi(graph, nodes)
            if improved.conductance < phi - 1e-15:
                candidates.append(
                    ClusterCandidate(
                        nodes=improved.nodes,
                        conductance=improved.conductance,
                        method="flow",
                    )
                )
    return candidates


def best_per_size_bucket(candidates, *, num_buckets=12, min_size=2,
                         max_size=None, method=None):
    """Reduce a candidate ensemble to a log-bucketed NCP profile."""
    check_int(num_buckets, "num_buckets", minimum=1)
    pool = [
        c for c in candidates
        if (method is None or c.method == method) and c.size >= min_size
    ]
    if not pool:
        raise PartitionError("no candidates to profile")
    sizes = np.asarray([c.size for c in pool])
    if max_size is None:
        max_size = int(sizes.max())
    edges = np.unique(
        np.geomspace(min_size, max(max_size, min_size + 1), num_buckets + 1)
    )
    best = np.full(edges.size - 1, np.nan)
    representatives = [None] * (edges.size - 1)
    for candidate in pool:
        bucket = int(np.searchsorted(edges, candidate.size, side="right")) - 1
        if candidate.size == edges[-1]:
            # A size exactly on the top bucket edge lands past the last
            # bucket under right-open bucketing; clamp it into the last
            # bucket so the largest cluster is profiled, not dropped.
            bucket = best.size - 1
        if bucket < 0 or bucket >= best.size:
            continue
        if np.isnan(best[bucket]) or candidate.conductance < best[bucket]:
            best[bucket] = candidate.conductance
            representatives[bucket] = candidate
    label = method if method is not None else pool[0].method
    return NCPProfile(
        method=label,
        bucket_edges=edges,
        best_conductance=best,
        representatives=representatives,
        num_candidates=len(pool),
    )
