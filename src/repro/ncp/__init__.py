"""Network community profiles and the Figure 1 spectral-vs-flow engine."""

from repro.ncp.compare import (
    BucketComparison,
    CloudBucket,
    Figure1Result,
    bucket_cloud_niceness,
    figure1_comparison,
)
from repro.ncp.niceness import ClusterNiceness, cluster_niceness
from repro.ncp.profile import (
    ClusterCandidate,
    NCPProfile,
    best_per_size_bucket,
    cluster_ensemble_ncp,
    flow_cluster_ensemble_ncp,
    grid_candidates_for_seed_nodes,
    hk_cluster_ensemble_ncp,
    spectral_cluster_ensemble_ncp,
    walk_cluster_ensemble_ncp,
)
from repro.ncp.runner import (
    GridChunk,
    NCPRunResult,
    graph_fingerprint,
    plan_chunks,
    run_ncp_ensemble,
)

__all__ = [
    "BucketComparison",
    "CloudBucket",
    "bucket_cloud_niceness",
    "ClusterCandidate",
    "ClusterNiceness",
    "Figure1Result",
    "GridChunk",
    "NCPProfile",
    "NCPRunResult",
    "best_per_size_bucket",
    "cluster_ensemble_ncp",
    "cluster_niceness",
    "figure1_comparison",
    "flow_cluster_ensemble_ncp",
    "graph_fingerprint",
    "grid_candidates_for_seed_nodes",
    "hk_cluster_ensemble_ncp",
    "plan_chunks",
    "run_ncp_ensemble",
    "spectral_cluster_ensemble_ncp",
    "walk_cluster_ensemble_ncp",
]
