"""Cluster "niceness" measures (the Y-axes of Figure 1(b) and 1(c)).

The paper's Figure 1 evaluates clusters on two axes besides conductance:

* **Figure 1(b)** — average shortest-path length *inside* the cluster:
  compact, ball-like communities score low; stringy flow artifacts score
  high.
* **Figure 1(c)** — the ratio of *external* conductance (how well the
  cluster separates from the rest of the graph; lower = better separated)
  to *internal* conductance (the best conductance of any cut inside the
  induced subgraph; higher = internally well connected). Nice communities
  have a low ratio.

Since the paper performs no explicit regularization, these are exactly the
"empirical niceness properties" whose systematic difference between the
spectral and flow ensembles reveals the implicit regularization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PartitionError
from repro.graph.ops import average_shortest_path_length, diameter
from repro.partition.metrics import conductance, internal_conductance


@dataclass
class ClusterNiceness:
    """Niceness report for one cluster.

    Attributes
    ----------
    size:
        |S|.
    volume:
        vol(S) in the host graph.
    external_conductance:
        φ(S) in the host graph (Figure 1(a)'s axis).
    internal_conductance:
        Best spectral-sweep conductance inside G[S] (∞ for singletons, 0
        for internally disconnected clusters).
    conductance_ratio:
        external / internal (Figure 1(c)'s axis; lower = nicer). 0 when
        internal is ∞; ∞ when the cluster is internally disconnected but
        has boundary.
    average_path_length:
        Average hop distance inside G[S] (Figure 1(b)'s axis), computed on
        the largest component of G[S] when disconnected.
    diameter:
        Hop diameter of (the largest component of) G[S].
    internally_connected:
        Whether G[S] is connected.
    density:
        Induced edge count over binomial(|S|, 2).
    """

    size: int
    volume: float
    external_conductance: float
    internal_conductance: float
    conductance_ratio: float
    average_path_length: float
    diameter: int
    internally_connected: bool
    density: float


def cluster_niceness(graph, nodes, *, aspl_sample_sources=64, seed=None):
    """Compute all niceness measures for one cluster.

    Parameters
    ----------
    graph:
        Host graph.
    nodes:
        Cluster node ids (nonempty proper subset).
    aspl_sample_sources:
        BFS source budget for the average-path-length estimate; clusters
        smaller than this get the exact value.
    seed:
        RNG seed for source sampling and the internal spectral solve.

    Returns
    -------
    ClusterNiceness
    """
    ids = np.asarray(sorted(set(int(u) for u in np.atleast_1d(
        np.asarray(nodes, dtype=np.int64)))), dtype=np.int64)
    if ids.size == 0 or ids.size >= graph.num_nodes:
        raise PartitionError("niceness needs a nonempty proper subset")
    external = conductance(graph, ids)
    volume = float(graph.degrees[ids].sum())
    subgraph, _ = graph.induced_subgraph(ids)
    connected = subgraph.is_connected()
    component = subgraph
    if not connected and subgraph.num_nodes > 0:
        component, _ = subgraph.largest_component()
    if component.num_nodes >= 2:
        if component.num_nodes <= aspl_sample_sources:
            sources = None
        else:
            rng = np.random.default_rng(seed)
            sources = rng.choice(
                component.num_nodes, size=aspl_sample_sources, replace=False
            )
        aspl = average_shortest_path_length(component, sources=sources)
        diam = diameter(
            component,
            sources=None if component.num_nodes <= aspl_sample_sources
            else range(0, component.num_nodes,
                       max(1, component.num_nodes // aspl_sample_sources)),
        )
    else:
        aspl = 0.0
        diam = 0
    internal = internal_conductance(graph, ids, seed=seed)
    if np.isinf(internal):
        ratio = 0.0
    elif internal <= 0:
        ratio = float("inf")
    else:
        ratio = external / internal
    pairs = ids.size * (ids.size - 1) / 2.0
    density = subgraph.num_edges / pairs if pairs > 0 else 0.0
    return ClusterNiceness(
        size=int(ids.size),
        volume=volume,
        external_conductance=external,
        internal_conductance=internal,
        conductance_ratio=ratio,
        average_path_length=float(aspl),
        diameter=int(diam),
        internally_connected=connected,
        density=float(density),
    )
