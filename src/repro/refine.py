"""The unified refiner registry: composable flow/spectral cluster improvement.

The paper's central empirical comparison (Figure 1) is between raw
diffusion clusters and their flow-improved counterparts — the spectral
cloud against the "Metis+MQI" cloud.  This module makes the *improvement*
side first-class, mirroring :mod:`repro.dynamics`: every refiner is a
frozen *spec* dataclass plus a :class:`RefinerKind` registry entry, and
every consumer (the flow NCP ensemble, the sharded runner, the local
cluster driver, the CLI ``--refine`` strings, benchmark E14) dispatches
through the registry instead of hard-wiring ``mqi(...)`` calls.

Three layers:

* **Specs** — :class:`MQI`, :class:`FlowImprove`, :class:`MOV`: frozen
  dataclasses holding one refiner's knobs (``max_rounds`` /
  ``dilation_radius`` / ``gamma_fraction``).  Each spec maps a candidate
  cluster to an improved-or-unchanged cluster via :meth:`refine`,
  recording per-stage provenance (:class:`RefinementStep`: pre/post
  conductance, rounds, convergence, whether the set changed).  A refiner
  **never increases conductance** and always returns a nonempty proper
  subset — the invariants the hypothesis suite pins for every registered
  refiner.
* **Chains** — :func:`apply_refiners` threads a cluster through an
  ordered refiner chain and returns a :class:`RefinementTrace`;
  :func:`refine_candidates` lifts that over whole NCP candidate
  ensembles.
* **Pipelines** — :class:`Pipeline` pairs a diffusion workload (any
  :class:`~repro.dynamics.DiffusionGrid`-compatible value) with a refiner
  chain.  Every NCP and local-clustering entry point accepts one:
  ``run_ncp_ensemble(graph, Pipeline(PPR(), refiners=("mqi",)))``,
  ``cluster_ensemble_ncp(graph, Pipeline("hk", refiners=(FlowImprove(
  dilation_radius=2),)))``, ``local_cluster(graph, seeds,
  Pipeline(PPR(alpha=0.1), refiners=("mqi",)))``.

New refiners plug in by registering a spec type and a
:class:`RefinerKind` — the flow ensemble, the runner, the CLI parser, and
benchmark E14 pick them up with zero changes (see
``tests/test_refine_registry.py`` for a worked example).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro._validation import check_int, check_probability
from repro.backends import resolve_backend_name
from repro.dynamics import as_diffusion_grid
from repro.exceptions import (
    ConvergenceError,
    GraphError,
    InvalidParameterError,
    PartitionError,
)
from repro.partition.flow_improve import flow_improve
from repro.partition.metrics import conductance
from repro.partition.mov import mov_cluster
from repro.partition.mqi import mqi

__all__ = [
    "FlowImprove",
    "MOV",
    "MQI",
    "Pipeline",
    "RefinementStep",
    "RefinementTrace",
    "RefinerKind",
    "UnknownRefinerError",
    "apply_refiners",
    "as_pipeline",
    "as_refiner",
    "as_refiner_chain",
    "get_refiner",
    "refine_candidates",
    "register_refiner",
    "registered_refiners",
    "resolve_refiner_name",
    "unregister_refiner",
]

# A refined set is accepted only when it beats the input by more than this
# slack — the same strict-improvement predicate the pre-registry
# "Metis+MQI" loop used, so refined and raw ensembles stay comparable.
_IMPROVEMENT_EPS = 1e-15


class UnknownRefinerError(InvalidParameterError, KeyError):
    """Raised for a refiner name or spec that is not in the registry.

    Mirrors :class:`~repro.dynamics.UnknownDynamicsError`: inherits both
    :class:`~repro.exceptions.InvalidParameterError` (hence ``ValueError``)
    and ``KeyError`` so callers of either lookup style keep working.
    """

    __str__ = Exception.__str__


@dataclass(frozen=True)
class RefinementStep:
    """Provenance of one refiner application in a chain.

    Attributes
    ----------
    refiner:
        The canonical spec token, e.g. ``"mqi(max_rounds=100)"``.
    pre_conductance:
        φ of the set entering this stage.
    post_conductance:
        φ of the set leaving this stage (== ``pre_conductance`` when the
        stage left the set unchanged).
    rounds:
        Improving rounds the refiner performed (0 when skipped).
    converged:
        Whether the refiner reached its fixed point (MQI/FlowImprove can
        exhaust ``max_rounds``; a failed MOV solve reports ``False``).
    changed:
        Whether the stage replaced the set with a strictly better one.
    """

    refiner: str
    pre_conductance: float
    post_conductance: float
    rounds: int
    converged: bool
    changed: bool


@dataclass(frozen=True)
class RefinementTrace:
    """Outcome of threading one cluster through a refiner chain.

    Attributes
    ----------
    nodes:
        The final (sorted) node set.
    steps:
        One :class:`RefinementStep` per chain stage, in order.
    initial_conductance:
        φ of the input set.
    final_conductance:
        φ of ``nodes``.
    """

    nodes: np.ndarray
    steps: tuple
    initial_conductance: float
    final_conductance: float

    @property
    def changed(self):
        """Whether any stage replaced the set."""
        return any(step.changed for step in self.steps)


class _RefinerBase:
    """Shared behavior of the refiner spec dataclasses.

    Subclasses define the class attribute ``name`` (canonical registry
    key) and implement ``refine(graph, nodes, pre_conductance=None)``
    returning ``(nodes, RefinementStep)``.
    """

    def params(self):
        """Ordered ``(field, value)`` pairs pinning this spec exactly."""
        return tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
        )

    def token(self):
        """Canonical string form, e.g. ``"flow(dilation_radius=2,
        max_rounds=50)"`` — stable across runs, used in cache keys and
        run manifests."""
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params())
        return f"{self.name}({inner})"

    def _unchanged(self, nodes, pre, *, rounds=0, converged=True):
        return nodes, RefinementStep(
            refiner=self.token(),
            pre_conductance=pre,
            post_conductance=pre,
            rounds=rounds,
            converged=converged,
            changed=False,
        )

    def _accept_if_better(self, graph, nodes, candidate_nodes, phi, pre, *,
                          rounds, converged):
        """Keep the refined set only on strict improvement to a nonempty
        proper subset of the graph — the registry-wide invariant."""
        size = int(np.asarray(candidate_nodes).size)
        if (
            phi < pre - _IMPROVEMENT_EPS
            and 0 < size < graph.num_nodes
        ):
            refined = np.sort(
                np.asarray(candidate_nodes, dtype=np.int64)
            )
            return refined, RefinementStep(
                refiner=self.token(),
                pre_conductance=pre,
                post_conductance=float(phi),
                rounds=rounds,
                converged=converged,
                changed=True,
            )
        return self._unchanged(nodes, pre, rounds=rounds, converged=converged)


@dataclass(frozen=True)
class MQI(_RefinerBase):
    """Lang–Rao max-flow quotient-cut improvement (Section 3.3 / [25]).

    Iterated s–t max-flow rounds find the best-conductance *subset* of
    the input side; the strictly flow-based half of the paper's
    "Metis+MQI" pipeline.  Inputs whose volume exceeds half the graph
    (MQI's precondition) pass through unchanged.

    Parameters
    ----------
    max_rounds:
        Safety cap on improving max-flow rounds (each strictly decreases
        φ, so termination is guaranteed anyway for rational weights).
    """

    max_rounds: int = 100

    name: ClassVar[str] = "mqi"

    def __post_init__(self):
        check_int(self.max_rounds, "max_rounds", minimum=1)

    def refine(self, graph, nodes, pre_conductance=None):
        """One chained-refiner stage: iterated MQI inside ``nodes``."""
        pre = (
            float(pre_conductance)
            if pre_conductance is not None
            else conductance(graph, nodes)
        )
        volume = float(graph.degrees[nodes].sum())
        if volume > graph.total_volume / 2.0 + 1e-9:
            return self._unchanged(nodes, pre)
        result = mqi(graph, nodes, max_rounds=self.max_rounds)
        return self._accept_if_better(
            graph, nodes, result.nodes, result.conductance, pre,
            rounds=result.rounds, converged=result.converged,
        )


@dataclass(frozen=True)
class FlowImprove(_RefinerBase):
    """Andersen–Lang dilate-then-MQI improvement (Section 3.3 / [3]).

    BFS dilation lets flow *add* nearby nodes the proposal missed
    (plain MQI cannot), then iterated MQI finds the best-conductance
    subset of the dilated region.  ``dilation_radius=0`` is exactly MQI.

    Parameters
    ----------
    dilation_radius:
        BFS hops of dilation before the flow stage.
    max_rounds:
        MQI round cap inside the dilated region.
    """

    dilation_radius: int = 1
    max_rounds: int = 50

    name: ClassVar[str] = "flow"

    def __post_init__(self):
        check_int(self.dilation_radius, "dilation_radius", minimum=0)
        check_int(self.max_rounds, "max_rounds", minimum=1)

    def refine(self, graph, nodes, pre_conductance=None):
        """One chained-refiner stage: dilation + iterated MQI."""
        pre = (
            float(pre_conductance)
            if pre_conductance is not None
            else conductance(graph, nodes)
        )
        result = flow_improve(
            graph, nodes, dilation_radius=self.dilation_radius,
            max_rounds=self.max_rounds,
        )
        if not result.improved:
            return self._unchanged(
                nodes, pre, rounds=result.rounds, converged=result.converged,
            )
        return self._accept_if_better(
            graph, nodes, result.nodes, result.conductance, pre,
            rounds=result.rounds, converged=result.converged,
        )


@dataclass(frozen=True)
class MOV(_RefinerBase):
    """Locally-biased spectral improvement via Problem (8) [33].

    Treats the input cluster as the MOV seed set, solves the
    locally-biased spectral program, and keeps the sweep cut only when
    it strictly improves conductance.  Unlike the flow refiners this
    touches the whole graph (a global linear system) — exactly the cost
    contrast Section 3.3 draws; a failed solve (disconnected graph,
    degenerate seed) passes the input through unchanged.

    Parameters
    ----------
    gamma_fraction:
        Fraction of λ2 used as the resolvent shift (in [0, 1); larger is
        more global, smaller hugs the seed cluster).
    min_size:
        Minimum cluster size accepted by the MOV sweep.
    """

    gamma_fraction: float = 0.5
    min_size: int = 1

    name: ClassVar[str] = "mov"

    def __post_init__(self):
        check_probability(
            self.gamma_fraction, "gamma_fraction", inclusive_low=True
        )
        check_int(self.min_size, "min_size", minimum=1)

    def refine(self, graph, nodes, pre_conductance=None):
        """One chained-refiner stage: MOV solve + sweep from the set."""
        pre = (
            float(pre_conductance)
            if pre_conductance is not None
            else conductance(graph, nodes)
        )
        try:
            result = mov_cluster(
                graph, nodes, gamma_fraction=self.gamma_fraction,
                min_size=self.min_size,
            )
        except (PartitionError, ConvergenceError, GraphError,
                InvalidParameterError):
            # A degenerate seed (trivial-direction overlap) or a failed
            # solve refines nothing; the chain continues from the input.
            return self._unchanged(nodes, pre, converged=False)
        return self._accept_if_better(
            graph, nodes, result.nodes, result.conductance, pre,
            rounds=1, converged=True,
        )


@dataclass(frozen=True)
class RefinerKind:
    """One registered refiner: identity, spec type, and CLI spellings.

    Attributes
    ----------
    name:
        Display name.
    key:
        Canonical registry name (``"mqi"``, ``"flow"``, ``"mov"``).
    description:
        One-line description (shown by docs and benchmark tables).
    aliases:
        Accepted alternative spellings (``"metis_mqi"``,
        ``"flow_improve"``, ...).
    spec_type:
        The frozen spec dataclass (:class:`MQI` & co).
    field_aliases:
        ``(alias, field)`` pairs mapping short CLI parameter spellings
        (``radius``, ``rounds``, ``gamma``) onto spec fields.
    """

    name: str
    key: str
    description: str
    aliases: tuple = ()
    spec_type: type = None
    field_aliases: tuple = ()

    def default_spec(self):
        """The spec with this refiner's default knobs."""
        return self.spec_type()

    def resolve_field(self, key):
        """Map a CLI parameter spelling onto the spec field it sets."""
        return dict(self.field_aliases).get(key, key)


@dataclass(frozen=True)
class Pipeline:
    """A complete workload: one diffusion grid plus a refiner chain.

    Attributes
    ----------
    grid:
        The diffusion side — anything
        :func:`~repro.dynamics.as_diffusion_grid` accepts (a
        :class:`~repro.dynamics.DiffusionGrid`, a spec instance such as
        ``PPR(alpha=(0.05,))``, a registered name, or a
        :class:`~repro.dynamics.DynamicsKind`); normalized to a grid.
    refiners:
        Ordered refiner chain — spec instances, registered names /
        aliases, or :class:`RefinerKind` entries; normalized to spec
        instances.
    backend:
        Optional :mod:`repro.backends` name stamped onto the grid (a
        convenience for pipelines built from bare names: ``Pipeline("ppr",
        ("mqi",), backend="scalar")``).  ``None`` leaves the grid's own
        backend untouched.  Always ``None`` after normalization — the
        resolved name lives on :attr:`grid`.

    Every NCP and local-clustering entry point accepts a ``Pipeline``
    wherever it accepts a grid: the diffusion candidates are generated
    as usual, then each is threaded through the chain, carrying its
    :class:`RefinementStep` provenance.
    """

    grid: object
    refiners: tuple = ()
    backend: object = dataclasses.field(default=None, repr=False)

    def __post_init__(self):
        grid = as_diffusion_grid(self.grid)
        if self.backend is not None:
            grid = dataclasses.replace(
                grid, backend=resolve_backend_name(self.backend)
            )
            object.__setattr__(self, "backend", None)
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "refiners", as_refiner_chain(self.refiners))

    @property
    def dynamics(self):
        """The pipeline's dynamics spec (the grid's)."""
        return self.grid.dynamics

    @property
    def key(self):
        """Canonical name of the pipeline's dynamics."""
        return self.grid.key

    def refiner_tokens(self):
        """Canonical token per chain stage (manifests, cache keys)."""
        return tuple(spec.token() for spec in self.refiners)

    def describe(self):
        """One-line ``dynamics |> refiner |> refiner`` summary."""
        return " |> ".join((self.key,) + self.refiner_tokens())


def as_pipeline(workload):
    """Coerce a workload (pipeline, grid, spec, kind, or name) to a pipeline.

    A non-pipeline value becomes a refiner-free ``Pipeline`` around the
    equivalent grid, so consumers can treat every workload uniformly.
    """
    if isinstance(workload, Pipeline):
        return workload
    return Pipeline(workload)


# --------------------------------------------------------------------------
# Chain application.


def _as_node_array(nodes):
    array = np.unique(
        np.atleast_1d(np.asarray(nodes, dtype=np.int64))
    )
    if array.size == 0:
        raise PartitionError("refiners need a nonempty node set")
    return array


def apply_refiners(graph, nodes, refiners, *, pre_conductance=None):
    """Thread one cluster through an ordered refiner chain.

    Parameters
    ----------
    graph:
        The host graph.
    nodes:
        The starting cluster (a nonempty proper node subset).
    refiners:
        Chain entries — spec instances, registered names/aliases, or
        :class:`RefinerKind` entries.
    pre_conductance:
        φ of ``nodes`` when the caller already knows it (skips one
        conductance evaluation); computed otherwise.

    Returns
    -------
    :class:`RefinementTrace` — the final set, per-stage provenance, and
    the initial/final conductance.  Every stage either strictly improves
    conductance or passes the set through unchanged, so
    ``final_conductance <= initial_conductance`` always holds.
    """
    chain = as_refiner_chain(refiners)
    current = _as_node_array(nodes)
    phi = (
        float(pre_conductance)
        if pre_conductance is not None
        else conductance(graph, current)
    )
    initial = phi
    steps = []
    for spec in chain:
        current, step = spec.refine(graph, current, pre_conductance=phi)
        steps.append(step)
        phi = step.post_conductance
    return RefinementTrace(
        nodes=current,
        steps=tuple(steps),
        initial_conductance=initial,
        final_conductance=phi,
    )


def refine_candidates(graph, candidates, refiners):
    """Apply a refiner chain to every candidate of an NCP ensemble.

    Each :class:`~repro.ncp.profile.ClusterCandidate` is replaced by its
    refined counterpart (via :func:`dataclasses.replace`, so the
    ``method`` label survives) with the per-stage provenance attached as
    ``candidate.refinement``.  Candidates no stage changed keep their
    exact nodes and conductance, so a refined ensemble stays aligned
    candidate-for-candidate with the raw ensemble it came from.
    """
    chain = as_refiner_chain(refiners)
    if not chain:
        return list(candidates)
    refined = []
    for candidate in candidates:
        trace = apply_refiners(
            graph, candidate.nodes, chain,
            pre_conductance=candidate.conductance,
        )
        if trace.changed:
            refined.append(dataclasses.replace(
                candidate,
                nodes=trace.nodes,
                conductance=trace.final_conductance,
                refinement=trace.steps,
            ))
        else:
            refined.append(
                dataclasses.replace(candidate, refinement=trace.steps)
            )
    return refined


# --------------------------------------------------------------------------
# The registry.

_REGISTRY = {}      # canonical key -> RefinerKind
_ALIASES = {}       # normalized spelling -> canonical key
_SPEC_TYPES = {}    # spec type -> canonical key


def _normalize(name):
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


def register_refiner(kind, *, overwrite=False):
    """Register a :class:`RefinerKind` under its key, aliases, and name.

    Returns the kind, so definitions can be written as
    ``KIND = register_refiner(RefinerKind(...))``.  Registering an
    already-taken spelling raises unless ``overwrite`` is set.
    """
    if not isinstance(kind, RefinerKind):
        raise InvalidParameterError(
            f"register_refiner expects a RefinerKind; got {kind!r}"
        )
    if not kind.key or kind.spec_type is None:
        raise InvalidParameterError(
            "a RefinerKind needs both a canonical key and a spec_type"
        )
    spellings = {_normalize(kind.key), _normalize(kind.name)}
    spellings.update(_normalize(alias) for alias in kind.aliases)
    if not overwrite:
        if kind.key in _REGISTRY:
            raise InvalidParameterError(
                f"refiner key {kind.key!r} is already registered; pass "
                f"overwrite=True to replace it"
            )
        taken = sorted(s for s in spellings if s in _ALIASES)
        if taken:
            raise InvalidParameterError(
                f"refiner spellings already registered: {taken}"
            )
    for spelling in spellings:
        _ALIASES[spelling] = kind.key
    _REGISTRY[kind.key] = kind
    _SPEC_TYPES[kind.spec_type] = kind.key
    return kind


def unregister_refiner(key):
    """Remove a registered refiner (used by extension tests)."""
    key = resolve_refiner_name(key)
    kind = _REGISTRY.pop(key)
    for spelling in [s for s, k in _ALIASES.items() if k == key]:
        del _ALIASES[spelling]
    _SPEC_TYPES.pop(kind.spec_type, None)
    return kind


def resolve_refiner_name(refiner):
    """Canonical key for a name, alias, spec instance, spec type, or kind."""
    if isinstance(refiner, RefinerKind):
        candidate = refiner.key
    elif isinstance(refiner, type):
        candidate = _SPEC_TYPES.get(refiner)
    elif isinstance(refiner, str):
        candidate = _ALIASES.get(_normalize(refiner))
    else:
        # Exact spec-type match only: a subclass is its own refiner and
        # must be registered itself.
        candidate = _SPEC_TYPES.get(type(refiner))
    if candidate is None or candidate not in _REGISTRY:
        raise UnknownRefinerError(
            f"unknown refiner {refiner!r}; choose from "
            f"{sorted(_REGISTRY)} (aliases: {sorted(_ALIASES)})"
        )
    return candidate


def get_refiner(refiner):
    """Look up the registry entry for a name, alias, spec, or kind.

    ``get_refiner("mqi")``, ``get_refiner("metis_mqi")``,
    ``get_refiner(MQI)`` and ``get_refiner(MQI(max_rounds=5))`` all
    return the same :class:`RefinerKind` object.
    """
    return _REGISTRY[resolve_refiner_name(refiner)]


def registered_refiners():
    """Snapshot of the registry: canonical key -> :class:`RefinerKind`."""
    return dict(_REGISTRY)


def as_refiner(refiner):
    """Coerce a chain entry (spec, name, alias, kind, or type) to a spec."""
    if isinstance(refiner, (str, RefinerKind)) or isinstance(refiner, type):
        return get_refiner(refiner).default_spec()
    get_refiner(refiner)  # raises UnknownRefinerError for foreign specs
    return refiner


def as_refiner_chain(refiners):
    """Normalize a chain (a single entry or a sequence) to spec tuples."""
    if refiners is None:
        return ()
    if isinstance(refiners, (str, RefinerKind)) or not hasattr(
        refiners, "__iter__"
    ):
        refiners = (refiners,)
    return tuple(as_refiner(entry) for entry in refiners)


METIS_MQI = register_refiner(RefinerKind(
    name="MQI",
    key="mqi",
    description=(
        "Lang-Rao iterated max-flow quotient-cut improvement: the best-"
        "conductance subset of the proposal (the Metis+MQI flow stage)"
    ),
    aliases=("metis_mqi", "lang_rao", "quotient_improvement"),
    spec_type=MQI,
    field_aliases=(("rounds", "max_rounds"),),
))

FLOW_IMPROVE = register_refiner(RefinerKind(
    name="FlowImprove",
    key="flow",
    description=(
        "Andersen-Lang dilate-then-MQI: BFS dilation lets flow add "
        "nearby nodes before the quotient improvement"
    ),
    aliases=("flow_improve", "flowimprove", "andersen_lang", "improve"),
    spec_type=FlowImprove,
    field_aliases=(("radius", "dilation_radius"), ("rounds", "max_rounds")),
))

MOV_REFINER = register_refiner(RefinerKind(
    name="MOV",
    key="mov",
    description=(
        "locally-biased spectral improvement (Problem (8)): resolvent "
        "solve seeded by the cluster, sweep kept on strict improvement"
    ),
    aliases=("mov_cluster", "locally_biased", "mahoney_orecchia_vishnoi"),
    spec_type=MOV,
    field_aliases=(("gamma", "gamma_fraction"),),
))
