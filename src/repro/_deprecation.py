"""Shared deprecation machinery for the whole package.

Lives in a leaf module (no repro imports) so that low-level modules —
``repro.backends``, ``repro.diffusion.truncated_walk``,
``repro.partition.sweep`` — can emit the shared shim warning without
importing :mod:`repro.dynamics` (which sits *above* them in the import
graph).  ``repro.dynamics`` re-exports both names for backward
compatibility.
"""

from __future__ import annotations

import warnings

__all__ = ["DEPRECATION_REMOVAL_VERSION", "warn_deprecated"]

# Version in which the deprecated pre-registry entry points are scheduled
# for removal (announced in every shim warning and in the README).
DEPRECATION_REMOVAL_VERSION = "2.0"


def warn_deprecated(old, replacement):
    """Emit the shared shim warning (``repro API deprecation: ...``).

    The message prefix is load-bearing: the test suite promotes exactly
    these warnings to errors (see ``pytest.ini``), so no internal code can
    silently depend on a deprecated entry point.
    """
    warnings.warn(
        f"repro API deprecation: {old} is deprecated and scheduled for "
        f"removal in repro {DEPRECATION_REMOVAL_VERSION}; use "
        f"{replacement} instead.",
        DeprecationWarning,
        stacklevel=3,
    )
