"""``repro.analysis`` — repro lint: machine-checked codebase contracts.

The repo's correctness rests on conventions no unit test can see from
the outside: dispatch goes through the registries instead of string
comparisons (PRs 3/5/7), candidate ensembles replay byte-for-byte at
any worker count, ``_CACHE_VERSION`` bumps whenever serialized chunk
fields change, deprecation shims resolve-then-warn under one message
prefix, and ``@njit`` kernels stay in nopython territory.  This package
turns those conventions into an AST-based invariant checker, structured
the same way the runtime is:

* **Registry** — :class:`LintRule` entries under canonical ids with an
  alias table and :class:`UnknownRuleError` did-you-mean errors,
  mirroring :class:`~repro.dynamics.DynamicsKind` /
  :class:`~repro.refine.RefinerKind` /
  :class:`~repro.backends.EngineBackend`.  Registering a rule enrolls
  it in ``repro lint``, ``repro lint --list``, and the fixture-based
  test harness automatically.
* **Harness** — one parse and one AST walk per file no matter how many
  rules run (:mod:`repro.analysis.visitor`); a new rule is a
  ~30-line :class:`RuleVisitor` subclass.
* **Engine** — file/package walking, ``--select``/``--ignore`` rule
  selection, ``# repro-lint: disable=...`` pragmas, human/JSON/GitHub
  output, and a committed shrink-only baseline
  (:func:`~repro.analysis.findings.apply_baseline`).

Run it as ``python -m repro lint src/`` (see
:mod:`repro.cli.lint_cmd`).
"""

from __future__ import annotations

from repro.analysis import rules as _rules
from repro.analysis.engine import (
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.analysis.findings import (
    LintFinding,
    apply_baseline,
    format_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.registry import (
    LintRule,
    SEVERITIES,
    UnknownRuleError,
    get_rule,
    register_rule,
    registered_rules,
    resolve_rule_name,
    unregister_rule,
)
from repro.analysis.visitor import ModuleContext, RuleVisitor, run_rules

__all__ = [
    "LintFinding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "RuleVisitor",
    "SEVERITIES",
    "UnknownRuleError",
    "apply_baseline",
    "format_findings",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "registered_rules",
    "resolve_rule_name",
    "run_rules",
    "select_rules",
    "unregister_rule",
    "write_baseline",
]

_rules.register_builtin_rules()
