"""The lint engine: file walking, rule selection, and report assembly.

:func:`lint_paths` is the library entry point behind ``repro lint``: it
expands files/directories into a deterministic ``.py`` file list, parses
each file once, runs the selected rules through the shared visitor
harness (:mod:`repro.analysis.visitor`), and returns a
:class:`LintReport`.  Syntax errors surface as findings under the
reserved ``syntax-error`` pseudo-rule (code ``E000``) instead of
aborting the run, so one broken file cannot hide the rest of the tree.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import LintFinding, apply_baseline
from repro.analysis.registry import registered_rules, resolve_rule_name
from repro.analysis.visitor import ModuleContext, run_rules
from repro.exceptions import InvalidParameterError

__all__ = [
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "select_rules",
]

# Directory names never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

# Pseudo-rule identifying unparseable files in reports and baselines.
_SYNTAX_RULE = "syntax-error"
_SYNTAX_CODE = "E000"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    Attributes
    ----------
    findings:
        New findings (after baseline subtraction), sorted by location.
    baselined:
        Findings forgiven by the baseline this run.
    stale_baseline:
        ``path::rule`` keys whose baseline allowance exceeded what the
        tree still produces — the signal the baseline should shrink.
    files_checked:
        Number of python files parsed.
    rules:
        Canonical keys of the rules that ran.
    """

    findings: tuple
    files_checked: int
    rules: tuple
    baselined: tuple = ()
    stale_baseline: dict = field(default_factory=dict)

    @property
    def ok(self):
        """True when the run produced no (non-baselined) findings."""
        return not self.findings

    def all_findings(self):
        """New and baselined findings together (for --write-baseline)."""
        return tuple(sorted(self.findings + self.baselined))


def select_rules(select=None, ignore=None):
    """Resolve ``--select``/``--ignore`` name lists to LintRule objects.

    Both accept iterables of names/codes/aliases (or one comma-separated
    string).  Unknown names raise
    :class:`~repro.analysis.registry.UnknownRuleError` with a
    did-you-mean suggestion.  Returns rules in registration order.
    """
    registry = registered_rules()

    def _resolve_list(value, option):
        if value is None:
            return None
        if isinstance(value, str):
            value = value.split(",")
        names = [token for token in (str(v).strip() for v in value) if token]
        if not names:
            raise InvalidParameterError(
                f"{option} needs at least one rule name; registered rules "
                f"are {sorted(registry)}"
            )
        return {resolve_rule_name(name) for name in names}

    selected = _resolve_list(select, "--select")
    ignored = _resolve_list(ignore, "--ignore") or set()
    keys = [
        key for key in registry
        if (selected is None or key in selected) and key not in ignored
    ]
    if not keys:
        raise InvalidParameterError(
            "the --select/--ignore combination leaves no lint rules to run"
        )
    return tuple(registry[key] for key in keys)


def iter_python_files(paths, *, exclude=()):
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    ``exclude`` holds glob patterns matched against each file's
    posix-style path (both as given and repo-relative), e.g.
    ``tests/fixtures/*``.  Missing paths raise
    :class:`~repro.exceptions.InvalidParameterError`.
    """
    files = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(p in _SKIP_DIRS for p in candidate.parts):
                    files.add(candidate)
        elif path.is_file():
            files.add(path)
        else:
            raise InvalidParameterError(
                f"lint path {str(path)!r} does not exist"
            )

    def _excluded(path):
        posix = path.as_posix()
        return any(
            fnmatch.fnmatch(posix, pattern)
            or fnmatch.fnmatch(posix, f"*/{pattern}")
            for pattern in exclude
        )

    return sorted(
        (path for path in files if not _excluded(path)),
        key=lambda p: p.as_posix(),
    )


def lint_source(source, *, path="<string>", rules=None):
    """Lint one source string; returns sorted findings (no baseline)."""
    if rules is None:
        rules = tuple(registered_rules().values())
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        return [LintFinding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 if exc.offset else 1,
            code=_SYNTAX_CODE,
            rule=_SYNTAX_RULE,
            message=f"file does not parse: {exc.msg}",
            severity="error",
        )]
    return run_rules(ctx, rules)


def lint_paths(paths, *, select=None, ignore=None, exclude=(),
               baseline=None):
    """Lint files/directories; returns a :class:`LintReport`.

    Parameters mirror the CLI: ``select``/``ignore`` are rule-name lists
    (see :func:`select_rules`), ``exclude`` holds path glob patterns,
    and ``baseline`` is a loaded ``path::rule -> count`` mapping whose
    allowances are subtracted from the findings.
    """
    rules = select_rules(select, ignore)
    findings = []
    files = iter_python_files(paths, exclude=exclude)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=file_path.as_posix(), rules=rules)
        )
    findings = sorted(findings)
    if baseline:
        fresh, forgiven, stale = apply_baseline(findings, baseline)
    else:
        fresh, forgiven, stale = findings, [], {}
    return LintReport(
        findings=tuple(fresh),
        baselined=tuple(forgiven),
        stale_baseline=stale,
        files_checked=len(files),
        rules=tuple(rule.key for rule in rules),
    )
