"""The shared AST visitor harness every lint rule runs on.

One parse and one tree walk per file, no matter how many rules are
active: the harness builds a :class:`ModuleContext` (source, AST, a
parent map, and the ``# repro-lint: disable=...`` pragma table), then
dispatches every node to each rule's ``visit_<NodeType>`` handlers in a
single pass.  A new rule is a :class:`RuleVisitor` subclass — typically
~30 lines: a couple of handlers calling :meth:`RuleVisitor.add`, plus an
optional :meth:`RuleVisitor.finalize` for whole-module invariants.

Suppression pragmas::

    risky_line()  # repro-lint: disable=exception-policy -- why it is ok

disable one or more rules (by id, code, or alias; ``all`` disables every
rule) on that line; ``# repro-lint: disable-file=<rules>`` within the
first ten lines disables them for the whole file.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import LintFinding
from repro.analysis.registry import _ALIASES, _normalize

__all__ = ["ModuleContext", "RuleVisitor", "run_rules"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([\w,\s._-]+)"
)

# disable-file pragmas must appear near the top of the module, so a
# reader learns about whole-file suppressions before the code starts.
_FILE_PRAGMA_WINDOW = 10

_ALL = "all"


def _pragma_rules(spec):
    """Normalize a pragma's rule list to canonical keys (or ``all``)."""
    names = set()
    for token in spec.split(","):
        token = _normalize(token)
        if not token:
            continue
        if token == _ALL:
            return {_ALL}
        # Unknown pragma names are kept verbatim: a pragma for a rule
        # registered later (or third-party) must not crash the run.
        names.add(_ALIASES.get(token, token))
    return names


def _parse_pragmas(lines):
    """Extract (per-line, whole-file) suppression tables from source."""
    per_line = {}
    whole_file = set()
    for line_no, line in enumerate(lines, 1):
        if "repro-lint" not in line:
            continue
        for kind, spec in _PRAGMA_RE.findall(line):
            names = _pragma_rules(spec)
            if kind == "disable-file" and line_no <= _FILE_PRAGMA_WINDOW:
                whole_file |= names
            else:
                per_line.setdefault(line_no, set()).update(names)
    return per_line, whole_file


class ModuleContext:
    """Everything the rules need to know about one parsed module.

    Attributes
    ----------
    path:
        Display path used in findings (repo-relative when possible).
    source, lines:
        Raw text and its splitlines.
    tree:
        The parsed ``ast.Module``.
    parents:
        Node -> parent-node map over the whole tree, so handlers can ask
        for enclosing statements without threading state through a walk.
    findings:
        The accumulating :class:`~repro.analysis.findings.LintFinding`
        list (shared by every rule on this file).
    """

    def __init__(self, path, source, tree=None):
        self.path = str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source) if tree is None else tree
        self.parents = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._per_line, self._whole_file = _parse_pragmas(self.lines)
        self.findings = []

    def suppressed(self, rule_key, line):
        """Whether ``rule_key`` is pragma-disabled at ``line``."""
        names = self._whole_file | self._per_line.get(line, set())
        return _ALL in names or rule_key in names

    def add(self, rule, node, message, *, severity=None):
        """Record one finding at ``node`` unless a pragma disables it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if self.suppressed(rule.key, line):
            return
        self.findings.append(LintFinding(
            path=self.path,
            line=line,
            col=col,
            code=rule.code,
            rule=rule.key,
            message=message,
            severity=rule.severity if severity is None else severity,
        ))

    def parent(self, node):
        """Immediate parent of ``node`` (None for the module root)."""
        return self.parents.get(node)

    def enclosing(self, node, types):
        """Nearest ancestor of ``node`` that is one of ``types``."""
        current = self.parents.get(node)
        while current is not None and not isinstance(current, types):
            current = self.parents.get(current)
        return current

    def statement(self, node):
        """The statement ancestor of ``node`` (or the node itself)."""
        current = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(current)
        return current


class RuleVisitor:
    """Base class for rule implementations.

    Subclasses define ``visit_<NodeType>(node)`` handlers (any subset;
    the harness only dispatches node types a handler exists for) and may
    override :meth:`finalize`, which runs once after the walk — the hook
    for module-level invariants that need the whole tree seen first.
    """

    def __init__(self, rule, ctx):
        self.rule = rule
        self.ctx = ctx

    def add(self, node, message, *, severity=None):
        """Record one finding for this visitor's rule."""
        self.ctx.add(self.rule, node, message, severity=severity)

    def finalize(self):
        """Post-walk hook (default: nothing)."""


def run_rules(ctx, rules):
    """Run ``rules`` over ``ctx`` in one tree walk; returns the findings.

    Each rule's visitor sees every node (``ast.walk`` order) through its
    ``visit_<NodeType>`` handlers, then gets one :meth:`finalize` call.
    Rules whose :meth:`~repro.analysis.registry.LintRule.applies_to`
    rejects the file are skipped entirely.
    """
    visitors = [
        rule.visitor(rule, ctx)
        for rule in rules
        if rule.applies_to(ctx.path)
    ]
    # One dispatch table per node-type name, built lazily: most node
    # types have no handler in any rule and cost one dict lookup.
    dispatch = {}
    for node in ast.walk(ctx.tree):
        name = type(node).__name__
        handlers = dispatch.get(name)
        if handlers is None:
            handlers = [
                getattr(visitor, f"visit_{name}")
                for visitor in visitors
                if hasattr(visitor, f"visit_{name}")
            ]
            dispatch[name] = handlers
        for handler in handlers:
            handler(node)
    for visitor in visitors:
        visitor.finalize()
    return sorted(ctx.findings)
