"""Structured lint findings, output formats, and the shrink-only baseline.

A :class:`LintFinding` is one violation at one source location.  The
module also owns the three output formats (``human``, ``json``,
``github``) and the committed-baseline mechanics: a baseline file maps
``path::rule`` keys to finding counts, a lint run subtracts up to that
many findings per key, and CI commits a baseline that may only shrink —
new violations always surface, old ones retire as they are fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import InvalidParameterError

__all__ = [
    "BASELINE_SCHEMA",
    "FINDINGS_SCHEMA",
    "LintFinding",
    "OUTPUT_FORMATS",
    "apply_baseline",
    "baseline_entries",
    "format_findings",
    "load_baseline",
    "write_baseline",
]

FINDINGS_SCHEMA = "repro.analysis/findings/v1"
BASELINE_SCHEMA = "repro.analysis/lint-baseline/v1"
OUTPUT_FORMATS = ("human", "json", "github")

# GitHub Actions workflow-command severities, by finding severity.
_GITHUB_LEVELS = {"error": "error", "warning": "warning"}


@dataclass(frozen=True, order=True)
class LintFinding:
    """One lint violation: a rule firing at a source location.

    Orders by (path, line, col, code) so reports and baselines are
    deterministic regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str
    severity: str = "error"

    def to_dict(self):
        """JSON-ready mapping (the ``--format json`` record)."""
        return {
            "rule": self.rule,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def baseline_key(self):
        """Grouping key for the committed baseline (line numbers drift)."""
        return f"{self.path}::{self.rule}"

    def format_human(self):
        """One ``path:line:col: CODE [rule] message`` report line."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.rule}] {self.message}"
        )

    def format_github(self):
        """One GitHub Actions ``::error file=...`` annotation line."""
        level = _GITHUB_LEVELS.get(self.severity, "error")
        # Workflow-command message payloads are newline-escaped.
        message = self.message.replace("%", "%25").replace(
            "\n", "%0A"
        )
        return (
            f"::{level} file={self.path},line={self.line},"
            f"col={self.col},title={self.code} {self.rule}::{message}"
        )


def format_findings(findings, fmt="human"):
    """Render findings in an :data:`OUTPUT_FORMATS` style; returns str."""
    if fmt not in OUTPUT_FORMATS:
        raise InvalidParameterError(
            f"unknown lint output format {fmt!r}; choose from "
            f"{OUTPUT_FORMATS}"
        )
    findings = sorted(findings)
    if fmt == "json":
        return json.dumps(
            {
                "schema": FINDINGS_SCHEMA,
                "findings": [f.to_dict() for f in findings],
            },
            indent=2,
        )
    if fmt == "github":
        return "\n".join(f.format_github() for f in findings)
    return "\n".join(f.format_human() for f in findings)


def baseline_entries(findings):
    """Count findings per ``path::rule`` key (the baseline payload)."""
    entries = {}
    for finding in findings:
        key = finding.baseline_key()
        entries[key] = entries.get(key, 0) + 1
    return dict(sorted(entries.items()))


def write_baseline(path, findings):
    """Write the committed baseline file for ``findings``; returns path."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": baseline_entries(findings),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_baseline(path):
    """Load a baseline file; returns the ``path::rule -> count`` mapping."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise InvalidParameterError(
            f"lint baseline {str(path)!r} does not exist "
            "(create one with: repro lint <paths> --write-baseline PATH)"
        ) from None
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(
            f"lint baseline {str(path)!r} is not valid JSON: {exc}"
        ) from None
    if payload.get("schema") != BASELINE_SCHEMA:
        raise InvalidParameterError(
            f"lint baseline {str(path)!r} has schema "
            f"{payload.get('schema')!r}; expected {BASELINE_SCHEMA!r}"
        )
    entries = payload.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(findings, baseline):
    """Subtract baselined findings; returns ``(fresh, forgiven, stale)``.

    Per ``path::rule`` key, up to ``baseline[key]`` findings are
    forgiven (oldest lines first, deterministically); the rest are
    ``fresh`` and must fail the run.  ``stale`` maps keys whose baseline
    count exceeds what the tree still produces to the unused surplus —
    the shrink signal: a stale entry means the baseline can (and should)
    be regenerated smaller.
    """
    remaining = dict(baseline)
    fresh, forgiven = [], []
    for finding in sorted(findings):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            forgiven.append(finding)
        else:
            fresh.append(finding)
    stale = {k: v for k, v in sorted(remaining.items()) if v > 0}
    return fresh, forgiven, stale
