"""The LintRule registry: canonical rule ids, aliases, did-you-mean.

Mirrors the other three registries (:class:`~repro.dynamics.DynamicsKind`,
:class:`~repro.refine.RefinerKind`, :class:`~repro.backends.EngineBackend`):
frozen records under canonical keys, an alias table, and an unknown-name
error that inherits both :class:`~repro.exceptions.InvalidParameterError`
(hence ``ValueError``) and ``KeyError`` with a did-you-mean suggestion.

Registering a rule is enough to enroll it in the fixture-based test
harness (``tests/test_lint.py`` parametrizes over
:func:`registered_rules`), the ``repro lint --list`` output, and every
``repro lint`` run.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError

__all__ = [
    "LintRule",
    "SEVERITIES",
    "UnknownRuleError",
    "get_rule",
    "register_rule",
    "registered_rules",
    "resolve_rule_name",
    "unregister_rule",
]

# Finding severities, most severe first.  Both fail a lint run; the
# split only affects how CI renders the annotation (::error / ::warning).
SEVERITIES = ("error", "warning")


class UnknownRuleError(InvalidParameterError, KeyError):
    """Raised for a lint-rule name that is not in the registry.

    Inherits both :class:`~repro.exceptions.InvalidParameterError` (hence
    ``ValueError``) and ``KeyError``, matching the other registry errors
    (:class:`~repro.dynamics.UnknownDynamicsError`,
    :class:`~repro.refine.UnknownRefinerError`,
    :class:`~repro.backends.UnknownBackendError`), so callers validating
    either way keep working.
    """

    __str__ = Exception.__str__


@dataclass(frozen=True)
class LintRule:
    """One invariant checker: a visitor class behind a canonical id.

    Attributes
    ----------
    key:
        Canonical registry id (``"no-stringly-dispatch"``, ...).
    code:
        Short stable code (``"R001"``) shown in findings and usable as a
        ``--select``/``--ignore`` alias.
    description:
        One-line summary shown by ``repro lint --list`` and in the docs.
    aliases:
        Accepted alternative names (the ``code`` is always an alias).
    severity:
        Default severity of this rule's findings (``"error"`` or
        ``"warning"``).
    visitor:
        :class:`~repro.analysis.visitor.RuleVisitor` subclass
        implementing the check (``visit_<NodeType>`` handlers plus an
        optional ``finalize``).
    exempt:
        Path substrings (posix-style) naming files the rule never runs
        on — the registry modules themselves are exempt from
        ``no-stringly-dispatch``, for example.
    """

    key: str
    code: str
    description: str
    visitor: type
    aliases: tuple = ()
    severity: str = "error"
    exempt: tuple = ()

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise InvalidParameterError(
                f"rule {self.key!r}: severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    def applies_to(self, path):
        """Whether the rule runs on ``path`` (checks :attr:`exempt`)."""
        posix = str(path).replace("\\", "/")
        return not any(part in posix for part in self.exempt)


_REGISTRY = {}
_ALIASES = {}


def _normalize(name):
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


def _unknown(name):
    known = sorted(_REGISTRY)
    aliases = sorted(
        a for a in _ALIASES if _normalize(_ALIASES[a]) != a
    )
    close = difflib.get_close_matches(_normalize(name), sorted(_ALIASES), n=1)
    hint = ""
    if close:
        hint = f"; did you mean {_ALIASES[close[0]]!r}?"
    return UnknownRuleError(
        f"unknown lint rule {name!r}: registered rules are {known} "
        f"(aliases: {aliases}){hint}"
    )


def register_rule(rule, *, overwrite=False):
    """Register a :class:`LintRule` under its key, code, and aliases.

    Raises :class:`~repro.exceptions.InvalidParameterError` when the key
    or an alias collides with an existing entry (pass ``overwrite=True``
    to replace a previous registration).  Returns the rule, so
    registration can be used as an expression.
    """
    if not isinstance(rule, LintRule):
        raise InvalidParameterError(
            f"register_rule needs a LintRule; got {rule!r}"
        )
    key = rule.key
    names = [_normalize(key), _normalize(rule.code)]
    names += [_normalize(alias) for alias in rule.aliases]
    if not overwrite:
        for name in names:
            if name in _ALIASES and _ALIASES[name] != key:
                raise InvalidParameterError(
                    f"lint-rule name {name!r} already registered "
                    f"for {_ALIASES[name]!r}"
                )
        if key in _REGISTRY:
            raise InvalidParameterError(
                f"lint rule {key!r} already registered; pass "
                "overwrite=True to replace it"
            )
    _REGISTRY[key] = rule
    for name in names:
        _ALIASES[name] = key
    return rule


def unregister_rule(name):
    """Remove a registered rule (and its aliases) by name, code, or alias."""
    key = resolve_rule_name(name)
    del _REGISTRY[key]
    for alias in [a for a, k in _ALIASES.items() if k == key]:
        del _ALIASES[alias]


def resolve_rule_name(rule):
    """Canonical rule key for a name, code, alias, or LintRule."""
    if isinstance(rule, LintRule):
        return rule.key
    key = _ALIASES.get(_normalize(rule))
    if key is None:
        raise _unknown(rule)
    return key


def get_rule(rule):
    """Look up a :class:`LintRule` by name, code, alias, or identity."""
    if isinstance(rule, LintRule):
        return rule
    return _REGISTRY[resolve_rule_name(rule)]


def registered_rules():
    """Mapping of canonical rule key -> :class:`LintRule`."""
    return dict(_REGISTRY)
