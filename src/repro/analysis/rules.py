"""The built-in lint rules: this codebase's contracts, machine-checked.

Each rule is a :class:`~repro.analysis.visitor.RuleVisitor` subclass of
roughly thirty lines, registered as a
:class:`~repro.analysis.registry.LintRule` by
:func:`register_builtin_rules`.  The rules encode the conventions the
past PRs established by hand:

* **R001 no-stringly-dispatch** — branch through the registries
  (:mod:`repro.dynamics`, :mod:`repro.backends`, :mod:`repro.refine`),
  never on registry vocabulary string literals or by reaching into a
  registry's private dict.
* **R002 cache-version-discipline** — modules that persist memo entries
  or compose cache keys must reference a ``_CACHE_VERSION`` constant, so
  serialization changes force a version bump.
* **R003 determinism-hazards** — no global-state RNGs, no wall-clock
  values in results, no iteration over unordered sets: candidates must
  be byte-identical at any worker count.
* **R004 exception-policy** — no bare/swallowing broad handlers (the
  PR 2 bug class), and no raising builtin ``KeyError``/``ValueError``
  where the dual-inheritance ``repro`` exception types are required.
* **R005 shim-policy** — deprecation shims resolve-then-warn and carry
  the ``"repro API deprecation"`` prefix the test suite promotes to an
  error.
* **R006 numba-purity** — ``@njit`` kernels stay in nopython territory:
  no f-strings, dict/set literals, try blocks, or closures over modules
  other than ``np``/``math``.
* **R007 executor-discipline** — process pools are an execution-layer
  concern: ``ProcessPoolExecutor`` is constructed only inside
  :mod:`repro.execution`; everything else goes through the executor
  registry (``run_ncp_ensemble(executor=...)``) so retry, straggler
  re-dispatch, and resume apply uniformly.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import LintRule, register_rule
from repro.analysis.visitor import RuleVisitor

__all__ = ["register_builtin_rules", "registry_vocabulary"]

# Variable names whose string comparisons smell like retired stringly
# dispatch (the left-hand sides PRs 3/5/7 cleaned up).
_DISPATCH_NAMES = frozenset({
    "dynamics", "backend", "engine", "implementation", "refiner",
    "kind", "method", "key", "executor",
})

# The registry modules themselves (and this package) legitimately handle
# registry-name strings.
_REGISTRY_MODULES = (
    "repro/dynamics.py",
    "repro/refine.py",
    "repro/backends/__init__.py",
    "repro/execution/",
    "repro/analysis/",
)

_VOCABULARY_CACHE = []


def registry_vocabulary():
    """Every canonical name and alias across the four live registries.

    Computed from :func:`repro.dynamics.registered_dynamics`,
    :func:`repro.backends.registered_backends`,
    :func:`repro.refine.registered_refiners`, and
    :func:`repro.execution.registered_executors` (imported lazily,
    cached per process), so the no-stringly-dispatch rule tracks the
    registries instead of carrying its own drifting word list.
    """
    if not _VOCABULARY_CACHE:
        from repro.backends import registered_backends
        from repro.dynamics import registered_dynamics
        from repro.execution import registered_executors
        from repro.refine import registered_refiners

        vocabulary = set()
        for registry in (
            registered_dynamics(), registered_backends(),
            registered_refiners(), registered_executors(),
        ):
            for key, entry in registry.items():
                vocabulary.add(key)
                vocabulary.update(getattr(entry, "aliases", ()))
        _VOCABULARY_CACHE.append(frozenset(vocabulary))
    return _VOCABULARY_CACHE[0]


def _terminal_name(node):
    """``backend`` for both the Name ``backend`` and ``chunk.backend``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node):
    """Dotted source text of a Name/Attribute chain (else None)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _string_constants(node):
    """String constants in a comparator (handles tuple/list/set displays)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
    return []


class StringlyDispatchVisitor(RuleVisitor):
    """R001: registry names are compared via the registry, not strings."""

    def visit_Compare(self, node):
        name = _terminal_name(node.left)
        if name not in _DISPATCH_NAMES:
            return
        if not any(
            isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
            for op in node.ops
        ):
            return
        hits = [
            value
            for comparator in node.comparators
            for value in _string_constants(comparator)
            if value in registry_vocabulary()
        ]
        if not hits:
            return
        # Asserting a concrete registry name is a test, not dispatch.
        if isinstance(self.ctx.statement(node), ast.Assert):
            return
        self.add(node, (
            f"stringly dispatch on {name} == {hits[0]!r}: resolve through "
            "the registry (resolve_*_name / get_*) and compare registry "
            "objects instead of registry-vocabulary strings"
        ))

    def visit_Subscript(self, node):
        target = _terminal_name(node.value)
        if target in {"_REGISTRY", "_ALIASES"}:
            self.add(node, (
                f"direct access to the private registry dict {target}: use "
                "the registry's public get_*/resolve_*/registered_* API"
            ))


class CacheVersionVisitor(RuleVisitor):
    """R002: cache writers and key composers reference ``_CACHE_VERSION``."""

    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        self._writers = []       # np.savez* call sites
        self._key_functions = []  # FunctionDefs composing cache keys
        self._module_versioned = False

    @staticmethod
    def _is_version_name(name):
        return name is not None and name.endswith("_CACHE_VERSION")

    def visit_Name(self, node):
        if self._is_version_name(node.id):
            self._module_versioned = True

    def visit_Call(self, node):
        dotted = _dotted(node.func) or ""
        if dotted.endswith((".savez", ".savez_compressed")):
            self._writers.append(node)

    def visit_FunctionDef(self, node):
        # Tests assert on cache keys; only composers must cite the
        # version constant.
        if node.name.startswith("test"):
            return
        if "cache_key" in node.name or "memo_key" in node.name:
            self._key_functions.append(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def finalize(self):
        for function in self._key_functions:
            references_version = any(
                isinstance(inner, ast.Name)
                and self._is_version_name(inner.id)
                for inner in ast.walk(function)
            )
            if not references_version:
                self.add(function, (
                    f"cache-key function {function.name!r} never "
                    "references a _CACHE_VERSION constant: serialized-"
                    "field changes would silently reuse stale entries"
                ))
        if self._writers and not self._module_versioned:
            for writer in self._writers:
                self.add(writer, (
                    "module persists npz memo entries but never "
                    "references a module-level _CACHE_VERSION: bump-on-"
                    "change versioning cannot work here"
                ))


# np.random constructors that carry explicit seeding (allowed); every
# other np.random attribute is the legacy global-state API.
_SEEDED_RANDOM = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64",
})

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
})

# Builtins that materialize an ordered sequence from their argument.
_ORDERING_CALLS = frozenset({"list", "tuple", "enumerate"})


def _is_set_display(node):
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


class DeterminismVisitor(RuleVisitor):
    """R003: no global RNGs, wall clocks, or unordered-set iteration."""

    def visit_Call(self, node):
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted.startswith("random."):
            self.add(node, (
                f"{dotted}() uses the stdlib's global-state RNG: thread "
                "an explicitly seeded np.random.default_rng(seed) "
                "Generator instead"
            ))
        elif dotted.startswith(("np.random.", "numpy.random.")):
            attribute = dotted.split(".", 2)[2]
            if attribute.split(".")[0] not in _SEEDED_RANDOM:
                self.add(node, (
                    f"{dotted}() is the legacy global-state numpy RNG: "
                    "use an explicitly seeded np.random.default_rng(seed)"
                ))
        elif dotted in _CLOCK_CALLS:
            self.add(node, (
                f"{dotted}() reads the wall clock: results must replay "
                "byte-for-byte, so derive values from run parameters "
                "(keep clocks to timing/manifest records only)"
            ))
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDERING_CALLS
            and node.args
            and _is_set_display(node.args[0])
        ):
            self.add(node, (
                f"{node.func.id}() over a set materializes an "
                "unordered iteration: wrap the set in sorted(...) so "
                "downstream output is deterministic"
            ))

    def _check_iteration(self, iterable):
        if _is_set_display(iterable):
            self.add(iterable, (
                "iterating an unordered set: wrap it in sorted(...) so "
                "candidates and serialized output stay byte-identical "
                "across runs and worker counts"
            ))

    def visit_For(self, node):
        self._check_iteration(node.iter)

    def visit_comprehension(self, node):
        self._check_iteration(node.iter)


# Dual-inheritance replacements the policy points to, by builtin raised.
_BUILTIN_RAISES = {
    "KeyError": (
        "a dual-inheritance registry error (InvalidParameterError + "
        "KeyError, like UnknownDynamicsError/UnknownBackendError)"
    ),
    "ValueError": (
        "repro.exceptions.InvalidParameterError (a ReproError and a "
        "ValueError), so callers can catch the library base class"
    ),
}


class ExceptionPolicyVisitor(RuleVisitor):
    """R004: no swallowing broad handlers, no bare builtin raises."""

    def visit_ExceptHandler(self, node):
        if node.type is None:
            self.add(node, (
                "bare 'except:' swallows SystemExit/KeyboardInterrupt "
                "too: catch the narrowest exception the code can "
                "actually handle"
            ))
            return
        caught = _terminal_name(node.type)
        if caught not in {"Exception", "BaseException"}:
            return
        reraises = any(
            isinstance(inner, ast.Raise) for inner in ast.walk(node)
        )
        if not reraises:
            self.add(node, (
                f"'except {caught}:' without a re-raise swallows every "
                "failure (the PR 2 bug class): narrow the exception "
                "type, or re-raise after handling"
            ))

    def visit_Raise(self, node):
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _terminal_name(exc)
        replacement = _BUILTIN_RAISES.get(name)
        if replacement is not None:
            self.add(node, (
                f"raising builtin {name} directly: raise {replacement}"
            ))


_SHIM_PREFIX = "repro API deprecation"


def _first_literal_chunk(node):
    """The leading string literal of a Constant/JoinedStr message."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


class ShimPolicyVisitor(RuleVisitor):
    """R005: shims resolve-then-warn and carry the deprecation prefix."""

    def _category(self, node):
        if len(node.args) >= 2:
            return _terminal_name(node.args[1])
        for keyword in node.keywords:
            if keyword.arg == "category":
                return _terminal_name(keyword.value)
        return None

    def visit_Call(self, node):
        dotted = _dotted(node.func) or ""
        if not dotted.endswith("warnings.warn") and dotted != "warn":
            return
        if self._category(node) != "DeprecationWarning":
            return
        message = _first_literal_chunk(node.args[0]) if node.args else None
        if message is None or not message.startswith(_SHIM_PREFIX):
            self.add(node, (
                "DeprecationWarning without the "
                f"{_SHIM_PREFIX + ': '!r} prefix: emit shim warnings "
                "through repro._deprecation.warn_deprecated so the test "
                "suite's warning-to-error promotion sees them"
            ))

    def visit_FunctionDef(self, node):
        # Resolve-then-warn: inside one shim, the replacement must be
        # resolved (so invalid input raises) before the warning fires.
        warns, resolves = [], []
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            name = _terminal_name(inner.func)
            if name == "warn_deprecated":
                warns.append(inner)
            elif name is not None and name.startswith("resolve_"):
                resolves.append(inner)
        if warns and resolves:
            first_resolve = min(call.lineno for call in resolves)
            for call in warns:
                if call.lineno < first_resolve:
                    self.add(call, (
                        f"shim {node.name!r} warns before resolving: call "
                        "resolve_* first so invalid input raises without "
                        "emitting the deprecation warning"
                    ))

    visit_AsyncFunctionDef = visit_FunctionDef


# Modules an @njit body may close over (numba's nopython-supported set).
_NJIT_ALLOWED_MODULES = frozenset({"np", "numpy", "math", "numba"})


def _is_njit_decorator(node):
    if isinstance(node, ast.Call):
        node = node.func
    name = _terminal_name(node)
    return name in {"njit", "jit"}


class NumbaPurityVisitor(RuleVisitor):
    """R006: @njit kernels avoid object-mode constructs."""

    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        self._imported_modules = set()

    def visit_Import(self, node):
        for alias in node.names:
            self._imported_modules.add(
                (alias.asname or alias.name).split(".")[0]
            )

    def visit_FunctionDef(self, node):
        if not any(_is_njit_decorator(d) for d in node.decorator_list):
            return
        parameters = {a.arg for a in node.args.args}
        parameters |= {a.arg for a in node.args.kwonlyargs}
        for inner in ast.walk(node):
            if isinstance(inner, ast.JoinedStr):
                self.add(inner, (
                    f"f-string inside @njit kernel {node.name!r}: "
                    "nopython mode cannot format strings (build messages "
                    "outside the kernel)"
                ))
            elif isinstance(inner, (ast.Dict, ast.DictComp)):
                self.add(inner, (
                    f"dict literal inside @njit kernel {node.name!r}: "
                    "reflected dicts force object mode; use typed arrays "
                    "or numba.typed.Dict"
                ))
            elif isinstance(inner, ast.Try):
                self.add(inner, (
                    f"try/except inside @njit kernel {node.name!r}: "
                    "exception handling is object-mode; hoist it to the "
                    "python wrapper"
                ))
            elif (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id in self._imported_modules
                and inner.value.id not in _NJIT_ALLOWED_MODULES
                and inner.value.id not in parameters
            ):
                self.add(inner, (
                    f"@njit kernel {node.name!r} closes over module "
                    f"{inner.value.id!r}: only np/math are nopython-"
                    "safe; pass data in as arrays"
                ))


class ExecutorDisciplineVisitor(RuleVisitor):
    """R007: ``ProcessPoolExecutor`` is built only in ``repro.execution``."""

    def visit_Call(self, node):
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted.split(".")[-1] == "ProcessPoolExecutor":
            self.add(node, (
                "direct ProcessPoolExecutor construction: pools live in "
                "the execution layer so retry, straggler re-dispatch, "
                "and resume apply; go through the executor registry "
                "(run_ncp_ensemble(executor=...) or "
                "repro.execution.build_executor)"
            ))


def register_builtin_rules():
    """Register the built-in rule set (idempotent per fresh registry)."""
    register_rule(LintRule(
        key="no-stringly-dispatch",
        code="R001",
        description=(
            "branch through the dynamics/backend/refiner registries, "
            "never on registry-vocabulary string literals or private "
            "registry dicts"
        ),
        aliases=("stringly", "stringly-dispatch"),
        visitor=StringlyDispatchVisitor,
        exempt=_REGISTRY_MODULES,
    ))
    register_rule(LintRule(
        key="cache-version-discipline",
        code="R002",
        description=(
            "modules writing npz memo entries or composing cache keys "
            "must reference a module-level _CACHE_VERSION constant"
        ),
        aliases=("cache-version",),
        visitor=CacheVersionVisitor,
    ))
    register_rule(LintRule(
        key="determinism-hazards",
        code="R003",
        description=(
            "no global-state RNGs, wall-clock reads, or unordered-set "
            "iteration: candidates replay byte-for-byte at any worker "
            "count"
        ),
        aliases=("determinism",),
        visitor=DeterminismVisitor,
    ))
    register_rule(LintRule(
        key="exception-policy",
        code="R004",
        description=(
            "no bare/swallowing broad except handlers, and no raising "
            "builtin KeyError/ValueError where the dual-inheritance "
            "repro exception types are required"
        ),
        aliases=("exceptions",),
        visitor=ExceptionPolicyVisitor,
    ))
    register_rule(LintRule(
        key="shim-policy",
        code="R005",
        description=(
            "deprecation shims resolve-then-warn and carry the 'repro "
            "API deprecation' prefix the suite promotes to an error"
        ),
        aliases=("shims",),
        visitor=ShimPolicyVisitor,
    ))
    register_rule(LintRule(
        key="numba-purity",
        code="R006",
        description=(
            "@njit kernels stay nopython: no f-strings, dict literals, "
            "try blocks, or closures over modules beyond np/math"
        ),
        aliases=("numba",),
        visitor=NumbaPurityVisitor,
    ))
    register_rule(LintRule(
        key="executor-discipline",
        code="R007",
        description=(
            "ProcessPoolExecutor is constructed only inside "
            "repro.execution; all other code selects strategies through "
            "the executor registry"
        ),
        aliases=("executors",),
        visitor=ExecutorDisciplineVisitor,
        exempt=("repro/execution/",),
    ))
