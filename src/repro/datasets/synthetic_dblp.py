"""The AtP-DBLP stand-in dataset.

The paper's Figure 1 uses *AtP-DBLP*, the bipartite author-to-paper network
of DBLP [27, 28]. That snapshot is not distributable here, so this module
generates a synthetic network with the structural features Figure 1 depends
on (see DESIGN.md §2 for the substitution argument):

* power-law author productivity and paper sizes (heavy-tailed degrees),
* planted research communities at a range of scales (good small
  conductance clusters in the 10^1–10^3 node range),
* cross-community collaborations making the graph expander-like at large
  scales (no good large cuts),
* single-author papers and one-paper authors forming low-degree whiskers.

:func:`synthetic_atp_dblp` returns the largest connected component of the
bipartite graph; :func:`synthetic_coauthorship` returns the one-mode
projection onto authors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_int
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import community_bipartite_graph, project_left


class UnknownScaleError(InvalidParameterError, KeyError):
    """Raised for a dataset scale name that is not in ``_SCALES``.

    Dual-inheritance like the registry errors: historically this path
    raised ``KeyError``, and parameter validation raises ``ValueError``
    (via :class:`~repro.exceptions.InvalidParameterError`) — callers
    catching either style keep working.
    """

    __str__ = Exception.__str__


def _unknown_scale(scale):
    return UnknownScaleError(
        f"unknown scale {scale!r}; choose from {sorted(_SCALES)}"
    )


@dataclass
class AtPDataset:
    """A generated author-to-paper dataset.

    Attributes
    ----------
    graph:
        The largest connected component of the bipartite AtP graph.
    original_ids:
        Map from the component's node ids back to the generator's ids
        (authors first, then papers).
    num_authors:
        Author count in the *generator* id space.
    author_communities:
        Community memberships per author (generator ids).
    paper_communities:
        Community id per paper (generator ids).
    """

    graph: object
    original_ids: np.ndarray
    num_authors: int
    author_communities: list
    paper_communities: np.ndarray

    def community_members(self, community):
        """Component node ids of the authors in a community."""
        wanted = {
            a for a, comms in enumerate(self.author_communities)
            if community in comms
        }
        members = [
            new_id for new_id, old_id in enumerate(self.original_ids)
            if int(old_id) < self.num_authors and int(old_id) in wanted
        ]
        return np.asarray(members, dtype=np.int64)


_SCALES = {
    "tiny": (120, 260, 6),
    "small": (400, 900, 12),
    "medium": (1200, 2600, 25),
    "large": (3000, 7000, 45),
}


def attach_whisker_chains(graph, num_chains, chain_length, seed=0):
    """Attach path "whisker" chains to low-degree nodes of a graph.

    Real DBLP's AtP graph carries a large sparse periphery (long chains of
    single-author papers and one-paper authors) that the core generative
    model underproduces; Figure 1's flow-side behaviour (MQI assembling
    stringy low-conductance pieces) depends on it. Anchors are sampled with
    probability proportional to ``1/degree`` so chains hang off the fringe,
    as in the real network.

    Returns a new graph with ``num_chains * chain_length`` extra nodes.
    """
    from repro._validation import as_rng, check_int
    from repro.graph.build import from_edges

    num_chains = check_int(num_chains, "num_chains", minimum=0)
    chain_length = check_int(chain_length, "chain_length", minimum=1)
    if num_chains == 0:
        return graph
    rng = as_rng(seed)
    us, vs, _ws = graph.edge_array()
    edges = list(zip(us.tolist(), vs.tolist()))
    n = graph.num_nodes
    inverse_degree = 1.0 / np.maximum(graph.degrees, 1e-12)
    anchors = rng.choice(
        n, size=min(num_chains, n), replace=False,
        p=inverse_degree / inverse_degree.sum(),
    )
    for anchor in anchors:
        chain = [int(anchor)] + list(range(n, n + chain_length))
        edges.extend(zip(chain[:-1], chain[1:]))
        n += chain_length
    return from_edges(n, edges)


def synthetic_atp_dblp(scale="small", seed=0, *, whisker_chains=0,
                       whisker_length=4, **overrides):
    """Generate the AtP-DBLP stand-in at a named scale.

    Parameters
    ----------
    scale:
        One of ``"tiny"``, ``"small"``, ``"medium"``, ``"large"`` —
        (authors, papers, communities) presets; or pass explicit
        ``num_authors``/``num_papers``/``num_communities`` overrides.
    seed:
        RNG seed (the dataset is deterministic given the seed).
    whisker_chains, whisker_length:
        Number and length of peripheral whisker chains attached after
        generation (see :func:`attach_whisker_chains`); the Figure 1
        benchmarks enable these to match DBLP's sparse periphery. Whisker
        nodes carry no community metadata (their generator ids are past
        the author/paper ranges).
    overrides:
        Forwarded to
        :func:`repro.graph.bipartite.community_bipartite_graph`.

    Returns
    -------
    AtPDataset
    """
    if scale not in _SCALES:
        raise _unknown_scale(scale)
    num_authors, num_papers, num_communities = _SCALES[scale]
    num_authors = check_int(
        overrides.pop("num_authors", num_authors), "num_authors", minimum=2
    )
    num_papers = check_int(
        overrides.pop("num_papers", num_papers), "num_papers", minimum=1
    )
    num_communities = check_int(
        overrides.pop("num_communities", num_communities),
        "num_communities", minimum=1,
    )
    graph, author_communities, paper_communities = community_bipartite_graph(
        num_authors, num_papers, num_communities, seed=seed, **overrides
    )
    if whisker_chains:
        graph = attach_whisker_chains(
            graph, whisker_chains, whisker_length, seed=seed + 1
        )
    component, original_ids = graph.largest_component()
    return AtPDataset(
        graph=component,
        original_ids=original_ids,
        num_authors=num_authors,
        author_communities=author_communities,
        paper_communities=paper_communities,
    )


def synthetic_coauthorship(scale="small", seed=0, **overrides):
    """Co-authorship projection of the AtP stand-in (largest component).

    Returns ``(graph, original_author_ids)``.
    """
    if scale not in _SCALES:
        raise _unknown_scale(scale)
    num_authors, num_papers, num_communities = _SCALES[scale]
    num_authors = overrides.pop("num_authors", num_authors)
    num_papers = overrides.pop("num_papers", num_papers)
    num_communities = overrides.pop("num_communities", num_communities)
    graph, _, _ = community_bipartite_graph(
        num_authors, num_papers, num_communities, seed=seed, **overrides
    )
    projected = project_left(graph, num_authors)
    component, original_ids = projected.largest_component()
    return component, original_ids
