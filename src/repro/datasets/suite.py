"""The named graph suite used across tests, examples, and benchmarks.

Each entry pairs a generator with the role it plays in the paper's story:
expanders are flow's worst case, stringy graphs are spectral's worst case,
planted-community graphs have ground truth, and the AtP stand-in is the
Figure 1 workload. Keeping the suite in one place makes every experiment's
workload reproducible by name.
"""

from __future__ import annotations

import difflib
import warnings
from pathlib import Path

from repro.datasets.synthetic_dblp import synthetic_atp_dblp
from repro.exceptions import InvalidParameterError
from repro.graph.generators import (
    barbell_graph,
    grid_graph,
    lollipop_graph,
    ring_of_cliques,
    roach_graph,
)
from repro.graph.random_generators import (
    planted_partition_graph,
    random_regular_graph,
    whiskered_expander,
)


class UnknownGraphError(InvalidParameterError, KeyError):
    """Raised for a graph name that is not in the suite (nor a file).

    Mirrors :class:`~repro.dynamics.UnknownDynamicsError`: inherits both
    :class:`~repro.exceptions.InvalidParameterError` (hence ``ValueError``)
    and ``KeyError``, so callers that historically caught either style of
    lookup failure keep working.  The message carries a did-you-mean
    suggestion when a suite name is a close match.
    """

    __str__ = Exception.__str__


def _scale_suite():
    """The scale-tier registry, imported lazily (cheap, but keeps the
    reference suite importable even if the scale module grows heavier)."""
    from repro.datasets.scale import SCALE_SUITE

    return SCALE_SUITE


def _unknown_graph(name, *, extra=""):
    """Build the :class:`UnknownGraphError` with a did-you-mean hint."""
    known = suite_names() + sorted(_scale_suite())
    close = difflib.get_close_matches(
        str(name).strip().lower(), known, n=3, cutoff=0.5
    )
    hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
    return UnknownGraphError(
        f"unknown suite graph {name!r}; choose from {known}{extra}{hint}"
    )


def _atp(seed):
    return synthetic_atp_dblp(scale="small", seed=seed).graph


_SUITE = {
    # name: (builder(seed) -> Graph, role)
    "barbell": (
        lambda seed: barbell_graph(16, 2),
        "two dense cores, one planted cut (oracle graph)",
    ),
    "lollipop": (
        lambda seed: lollipop_graph(16, 32),
        "clique + long path: early-stopping and MQI stress input",
    ),
    "roach": (
        lambda seed: roach_graph(16, 16),
        "Guattery–Miller: spectral saturates the Cheeger quadratic",
    ),
    "grid": (
        lambda seed: grid_graph(16, 16),
        "manifold discretization; spectral-friendly geometry",
    ),
    "expander": (
        lambda seed: random_regular_graph(256, 4, seed=seed),
        "constant-degree expander: flow pays O(log n)",
    ),
    "whiskered": (
        lambda seed: whiskered_expander(200, 4, 20, 8, seed=seed),
        "expander core + stringy whiskers: the social-graph cartoon",
    ),
    "planted": (
        lambda seed: planted_partition_graph(8, 32, 0.3, 0.01, seed=seed),
        "planted communities with known conductance scale",
    ),
    "atp": (
        _atp,
        "synthetic AtP-DBLP stand-in (the Figure 1 workload)",
    ),
}


def suite_names():
    """Names of the reference-tier suite graphs.

    Scale-tier names (:func:`repro.datasets.scale.scale_suite_names`) are
    deliberately *not* included: everything here is cheap enough to build
    eagerly (listings, ``load_suite``), which million-edge graphs are not.
    :func:`load_graph`, :func:`describe`, and :func:`load_any_graph` all
    accept names from either tier.
    """
    return sorted(_SUITE)


def load_graph(name, seed=0):
    """Build a suite graph by name (largest component, deterministic).

    Accepts both reference-tier names (``"atp"``, ``"barbell"``, ...) and
    scale-tier names (``"rmat-18"``, ``"lfr-50k"``, ...).
    """
    if name in _SUITE:
        builder, _role = _SUITE[name]
        graph = builder(seed)
        if not graph.is_connected():
            graph, _ = graph.largest_component()
        return graph
    scale_suite = _scale_suite()
    if name in scale_suite:
        return scale_suite[name].build(seed)
    raise _unknown_graph(name)


def describe(name):
    """Human-readable role of a suite graph (either tier)."""
    if name in _SUITE:
        return _SUITE[name][1]
    scale_suite = _scale_suite()
    if name in scale_suite:
        return scale_suite[name].role
    raise _unknown_graph(name)


def load_any_graph(source, *, seed=0):
    """Load a graph from a suite name *or* an external graph file.

    The bridge between the named suite and :mod:`repro.graph.io`, so every
    workload entry point (notably the ``python -m repro`` CLI) accepts
    arbitrary user-supplied graphs with the same one-argument vocabulary:

    * a suite name — reference tier (``"atp"``, ``"barbell"``, ...) or
      scale tier (``"rmat-18"``, ``"lfr-50k"``, ...) — builds that graph
      via :func:`load_graph` (``seed`` feeds the generator);
    * a path to an existing ``.reprograph`` binary file is memory-mapped
      via :func:`repro.graph.storage.read_binary` (zero-copy; pages
      fault in as algorithms touch them);
    * a path to an existing ``.json`` file reads
      :func:`repro.graph.io.read_json` output;
    * any other existing path is parsed as an edge-list text file
      (``u<TAB>v[<TAB>weight]``, ``#`` comments) via
      :func:`repro.graph.io.read_edge_list`.

    External graphs get the same normalization the suite applies: if the
    file's graph is disconnected, the largest connected component is
    returned (computed with the vectorized scale-tier helpers, so this
    stays cheap even for multi-million-edge files).  Because the
    component's nodes are **relabeled** to a compact ``0..n-1`` range,
    any node ids from the original file (e.g. explicit ``repro cluster
    --seeds`` ids) no longer apply; a ``UserWarning`` reporting the
    dropped node count flags this loudly instead of letting ids shift
    silently.

    Raises
    ------
    UnknownGraphError
        If ``source`` is neither a suite name nor an existing file.  The
        message distinguishes a path that looks like a file but does not
        exist from a misspelled suite name (which gets a did-you-mean
        suggestion).
    """
    name = str(source)
    if name in _SUITE or name in _scale_suite():
        return load_graph(name, seed=seed)
    path = Path(name)
    if path.is_file():
        from repro.graph.build import (
            connected_component_labels,
            largest_component_fast,
        )
        from repro.graph.io import read_edge_list, read_json
        from repro.graph.storage import BINARY_SUFFIX, read_binary

        suffix = path.suffix.lower()
        if suffix == BINARY_SUFFIX:
            reader = read_binary
        elif suffix == ".json":
            reader = read_json
        else:
            reader = read_edge_list
        graph = reader(path)
        _labels, component_count = connected_component_labels(graph)
        if graph.num_nodes and component_count > 1:
            full_size = graph.num_nodes
            graph, _original_ids = largest_component_fast(graph)
            warnings.warn(
                f"graph file {name!r} is disconnected: kept the largest "
                f"component ({graph.num_nodes} of {full_size} nodes) and "
                f"relabeled its nodes to 0..{graph.num_nodes - 1}; node "
                f"ids from the file (e.g. --seeds) no longer apply",
                UserWarning,
                stacklevel=2,
            )
        return graph
    looks_like_path = path.suffix != "" or any(
        sep in name for sep in ("/", "\\")
    )
    if looks_like_path:
        raise UnknownGraphError(
            f"graph file {name!r} does not exist (and it is not a suite "
            f"name; those are {suite_names()})"
        )
    raise _unknown_graph(name, extra=" or pass a path to an edge-list file")


def load_suite(seed=0, *, names=None):
    """Build several suite graphs; returns ``{name: graph}``."""
    chosen = suite_names() if names is None else list(names)
    return {name: load_graph(name, seed=seed) for name in chosen}
