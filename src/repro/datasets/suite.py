"""The named graph suite used across tests, examples, and benchmarks.

Each entry pairs a generator with the role it plays in the paper's story:
expanders are flow's worst case, stringy graphs are spectral's worst case,
planted-community graphs have ground truth, and the AtP stand-in is the
Figure 1 workload. Keeping the suite in one place makes every experiment's
workload reproducible by name.
"""

from __future__ import annotations

from repro.datasets.synthetic_dblp import synthetic_atp_dblp
from repro.graph.generators import (
    barbell_graph,
    grid_graph,
    lollipop_graph,
    ring_of_cliques,
    roach_graph,
)
from repro.graph.random_generators import (
    planted_partition_graph,
    random_regular_graph,
    whiskered_expander,
)


def _atp(seed):
    return synthetic_atp_dblp(scale="small", seed=seed).graph


_SUITE = {
    # name: (builder(seed) -> Graph, role)
    "barbell": (
        lambda seed: barbell_graph(16, 2),
        "two dense cores, one planted cut (oracle graph)",
    ),
    "lollipop": (
        lambda seed: lollipop_graph(16, 32),
        "clique + long path: early-stopping and MQI stress input",
    ),
    "roach": (
        lambda seed: roach_graph(16, 16),
        "Guattery–Miller: spectral saturates the Cheeger quadratic",
    ),
    "grid": (
        lambda seed: grid_graph(16, 16),
        "manifold discretization; spectral-friendly geometry",
    ),
    "expander": (
        lambda seed: random_regular_graph(256, 4, seed=seed),
        "constant-degree expander: flow pays O(log n)",
    ),
    "whiskered": (
        lambda seed: whiskered_expander(200, 4, 20, 8, seed=seed),
        "expander core + stringy whiskers: the social-graph cartoon",
    ),
    "planted": (
        lambda seed: planted_partition_graph(8, 32, 0.3, 0.01, seed=seed),
        "planted communities with known conductance scale",
    ),
    "atp": (
        _atp,
        "synthetic AtP-DBLP stand-in (the Figure 1 workload)",
    ),
}


def suite_names():
    """Names of all suite graphs."""
    return sorted(_SUITE)


def load_graph(name, seed=0):
    """Build a suite graph by name (largest component, deterministic)."""
    if name not in _SUITE:
        raise KeyError(f"unknown suite graph {name!r}; see suite_names()")
    builder, _role = _SUITE[name]
    graph = builder(seed)
    if not graph.is_connected():
        graph, _ = graph.largest_component()
    return graph


def describe(name):
    """Human-readable role of a suite graph."""
    if name not in _SUITE:
        raise KeyError(f"unknown suite graph {name!r}; see suite_names()")
    return _SUITE[name][1]


def load_suite(seed=0, *, names=None):
    """Build several suite graphs; returns ``{name: graph}``."""
    chosen = suite_names() if names is None else list(names)
    return {name: load_graph(name, seed=seed) for name in chosen}
