"""Scale-tier synthetic graphs: R-MAT and LFR-style generators.

The reference suite (:mod:`repro.datasets.suite`) tops out around a
thousand nodes — enough to validate correctness, far too small to show
the paper's headline phenomenon: the downward-then-upward conductance
profile only emerges on graphs with millions of edges.  This module
provides parameterized generators that reach that scale in seconds,
entirely through vectorized NumPy (no per-edge Python):

* :func:`rmat_graph` — the Kronecker/R-MAT recursive quadrant sampler
  (Graph500's generator), producing heavy-tailed, community-free
  "social-network-like" topologies at any power-of-two size;
* :func:`lfr_graph` — an LFR-style planted-community benchmark: power-law
  degrees, power-law community sizes, and a mixing parameter ``mu``
  giving each node a tunable fraction of inter-community stubs.

Both return compacted largest components by default (via the vectorized
:func:`~repro.graph.build.largest_component_fast`, never the per-node
Python BFS), are deterministic given an integer seed, and register a
named tier in :data:`SCALE_SUITE` so the CLI and
:func:`repro.datasets.load_any_graph` reach them by name — e.g.
``rmat-18`` or ``lfr-50k`` anywhere a suite name is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_int, check_probability
from repro.exceptions import InvalidParameterError
from repro.graph.build import from_edges, largest_component_fast

__all__ = [
    "SCALE_SUITE",
    "ScaleGraphSpec",
    "lfr_graph",
    "load_scale_graph",
    "rmat_graph",
    "scale_describe",
    "scale_suite_names",
]


def rmat_graph(scale, edge_factor=16, *, a=0.57, b=0.19, c=0.19,
               seed=None, permute=True, keep="largest"):
    """R-MAT recursive-matrix random graph on ``2**scale`` nodes.

    ``edge_factor * 2**scale`` directed edge slots are sampled by
    recursively descending ``scale`` levels of the adjacency matrix's
    quadrants with probabilities ``(a, b, c, d = 1-a-b-c)`` (the
    defaults are the Graph500 parameters).  Self-loops are dropped and
    duplicates collapsed, so the realized simple-edge count lands a few
    percent below ``edge_factor * n``.  Each level's draws are
    whole-array NumPy operations: a million-edge graph generates in
    well under a second.

    Parameters
    ----------
    scale:
        log2 of the node count (``n = 2**scale``).
    edge_factor:
        Edge slots sampled per node (Graph500 uses 16).
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be positive.
    seed:
        RNG seed (int, Generator, or None).
    permute:
        Randomly relabel nodes (default), destroying the bit-pattern
        degree locality of the raw recursion.
    keep:
        ``"largest"`` (default) compacts to the largest connected
        component; ``"all"`` keeps every sampled node, including any
        isolated ones.
    """
    scale = check_int(scale, "scale", minimum=1, maximum=30)
    edge_factor = check_int(edge_factor, "edge_factor", minimum=1)
    for name, value in (("a", a), ("b", b), ("c", c)):
        check_probability(value, name)
    d = 1.0 - (a + b + c)
    if d <= 0:
        raise InvalidParameterError(
            f"a + b + c must be < 1 (d = {d:.4g} must be positive)"
        )
    if keep not in ("largest", "all"):
        raise InvalidParameterError(
            f"keep must be 'largest' or 'all'; got {keep!r}"
        )
    rng = as_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    p_lower = a + b  # probability the row bit stays in the upper half
    for _ in range(scale):
        row_bit = rng.random(m) >= p_lower
        p_left = np.where(row_bit, c / (c + d), a / (a + b))
        col_bit = rng.random(m) >= p_left
        u = (u << 1) | row_bit
        v = (v << 1) | col_bit
    if permute:
        relabeling = rng.permutation(n)
        u = relabeling[u]
        v = relabeling[v]
    simple = u != v
    graph = from_edges(
        n, np.stack([u[simple], v[simple]], axis=1), combine="max"
    )
    if keep == "largest":
        graph, _ = largest_component_fast(graph)
    return graph


def _bounded_powerlaw(rng, exponent, low, high, size):
    """Inverse-CDF samples from a power law on ``[low, high]`` (floats)."""
    one_minus = 1.0 - exponent
    lo, hi = float(low) ** one_minus, float(high) ** one_minus
    return (lo + rng.random(size) * (hi - lo)) ** (1.0 / one_minus)


def _paired_stub_edges(stub_nodes):
    """Pair consecutive stubs ``(0,1), (2,3), ...``; drops a trailing odd."""
    pairs = stub_nodes[: (stub_nodes.size // 2) * 2].reshape(-1, 2)
    return pairs


def lfr_graph(num_nodes, *, mu=0.1, min_degree=8, max_degree=None,
              degree_exponent=2.5, min_community=32, max_community=None,
              community_exponent=1.5, seed=None, keep="largest",
              return_communities=False):
    """LFR-style planted-community benchmark graph.

    A simplified, fully vectorized take on the Lancichinetti–Fortunato–
    Radicchi benchmark: node degrees follow a bounded power law with
    exponent ``degree_exponent``, community sizes follow a bounded power
    law with exponent ``community_exponent``, and each node wires
    ``round(mu * degree)`` of its stubs to the global inter-community
    pool and the rest inside its community.  Stubs are paired by a
    segment-sorted shuffle (one :func:`np.lexsort` over all internal
    stubs), so generation is near-linear in the edge count.  Self-loops
    and duplicate pairings are dropped, which shifts realized degrees
    slightly below their targets — this is a benchmark *style*, not a
    bit-exact LFR reimplementation.

    Parameters
    ----------
    num_nodes:
        Number of nodes before compaction.
    mu:
        Mixing parameter in ``[0, 1]``: fraction of each node's stubs
        leaving its community.
    min_degree, max_degree, degree_exponent:
        Degree power-law bounds and exponent.  ``max_degree`` defaults
        to ``~sqrt(num_nodes)`` (capped below ``num_nodes``).
    min_community, max_community, community_exponent:
        Community-size power-law bounds and exponent.  ``max_community``
        defaults to ``max(4 * min_community, num_nodes // 20)``.
    seed:
        RNG seed.
    keep:
        ``"largest"`` (default) or ``"all"``, as in :func:`rmat_graph`.
    return_communities:
        When true, return ``(graph, labels)`` where ``labels[i]`` is the
        planted community of node ``i`` (relabeled alongside the nodes
        if compaction dropped anything).
    """
    n = check_int(num_nodes, "num_nodes", minimum=4)
    mu = check_probability(mu, "mu", inclusive_low=True, inclusive_high=True)
    min_degree = check_int(min_degree, "min_degree", minimum=1,
                           maximum=n - 1)
    if max_degree is None:
        max_degree = min(n - 1, max(min_degree + 1, int(round(n ** 0.5))))
    max_degree = check_int(max_degree, "max_degree", minimum=min_degree,
                           maximum=n - 1)
    min_community = check_int(min_community, "min_community", minimum=2,
                              maximum=n)
    if max_community is None:
        max_community = min(n, max(4 * min_community, n // 20))
    max_community = check_int(max_community, "max_community",
                              minimum=min_community, maximum=n)
    for name, value in (("degree_exponent", degree_exponent),
                        ("community_exponent", community_exponent)):
        if not (1.0 < float(value) < 6.0):
            raise InvalidParameterError(
                f"{name} must lie in (1, 6); got {value}"
            )
    if keep not in ("largest", "all"):
        raise InvalidParameterError(
            f"keep must be 'largest' or 'all'; got {keep!r}"
        )
    rng = as_rng(seed)

    degrees = np.rint(_bounded_powerlaw(
        rng, degree_exponent, min_degree, max_degree, n
    )).astype(np.int64)

    # Community sizes: sample until they cover n, then trim the excess
    # off the last community (merging it away if it falls below bound).
    sizes = []
    covered = 0
    while covered < n:
        block = np.rint(_bounded_powerlaw(
            rng, community_exponent, min_community, max_community,
            max(16, n // min_community),
        )).astype(np.int64)
        for s in block.tolist():
            if covered >= n:
                break
            sizes.append(min(s, n - covered))
            covered += sizes[-1]
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size > 1 and sizes[-1] < min_community:
        sizes[-2] += sizes[-1]
        sizes = sizes[:-1]
    labels = np.empty(n, dtype=np.int64)
    labels[rng.permutation(n)] = np.repeat(
        np.arange(sizes.size), sizes
    )
    community_size = sizes[labels]

    internal_degree = np.rint((1.0 - mu) * degrees).astype(np.int64)
    # A node cannot have more internal partners than its community offers.
    np.minimum(internal_degree, community_size - 1, out=internal_degree)
    external_degree = degrees - internal_degree

    # Internal stubs: shuffle within each community with one lexsort,
    # then pair consecutive stubs inside each community segment.
    stub_nodes = np.repeat(np.arange(n, dtype=np.int64), internal_degree)
    stub_labels = labels[stub_nodes]
    order = np.lexsort((rng.random(stub_nodes.size), stub_labels))
    stub_nodes = stub_nodes[order]
    stub_labels = stub_labels[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], stub_labels[1:] != stub_labels[:-1]))
    )
    seg_sizes = np.diff(np.concatenate((boundaries, [stub_labels.size])))
    position = np.arange(stub_labels.size) - np.repeat(boundaries, seg_sizes)
    seg_len = np.repeat(seg_sizes, seg_sizes)
    left = np.flatnonzero((position % 2 == 0) & (position + 1 < seg_len))
    internal_edges = np.stack(
        [stub_nodes[left], stub_nodes[left + 1]], axis=1
    )

    # External stubs: one global shuffled pairing.
    ext_nodes = np.repeat(np.arange(n, dtype=np.int64), external_degree)
    rng.shuffle(ext_nodes)
    external_edges = _paired_stub_edges(ext_nodes)

    edges = np.concatenate([internal_edges, external_edges])
    simple = edges[:, 0] != edges[:, 1]
    graph = from_edges(n, edges[simple], combine="max")
    original_ids = np.arange(n)
    if keep == "largest":
        graph, original_ids = largest_component_fast(graph)
    if return_communities:
        return graph, labels[original_ids]
    return graph


@dataclass(frozen=True)
class ScaleGraphSpec:
    """One named scale-tier workload: builder + role + expected size.

    ``approx_nodes`` / ``approx_edges`` are pre-compaction design
    targets, recorded so listings can describe the tier without paying
    for generation (realized counts land a few percent lower after
    self-loop/duplicate removal and largest-component compaction).
    """

    name: str
    builder: object
    role: str
    approx_nodes: int
    approx_edges: int

    def build(self, seed=0):
        return self.builder(seed)


def _rmat_spec(scale, role):
    return ScaleGraphSpec(
        name=f"rmat-{scale}",
        builder=lambda seed: rmat_graph(scale, seed=seed),
        role=role,
        approx_nodes=1 << scale,
        approx_edges=(1 << scale) * 16,
    )


def _lfr_spec(label, n, mu, role):
    return ScaleGraphSpec(
        name=f"lfr-{label}",
        builder=lambda seed: lfr_graph(n, mu=mu, seed=seed),
        role=role,
        approx_nodes=n,
        approx_edges=int(n * 6),  # mean of the default degree power law
    )


SCALE_SUITE = {
    spec.name: spec
    for spec in (
        _rmat_spec(14, "R-MAT 2^14: scale-tier warm-up (~250k edges)"),
        _rmat_spec(16, "R-MAT 2^16: the ~1M-edge CI smoke point"),
        _rmat_spec(18, "R-MAT 2^18: ~4M edges, memmap territory"),
        _rmat_spec(20, "R-MAT 2^20: ~16M edges, the full scale tier"),
        _lfr_spec("50k", 50_000, 0.2,
                  "LFR-style 50k nodes: planted communities at scale"),
        _lfr_spec("200k", 200_000, 0.3,
                  "LFR-style 200k nodes: high-mixing community recovery"),
    )
}


def scale_suite_names():
    """Names of all scale-tier graphs."""
    return sorted(SCALE_SUITE)


def load_scale_graph(name, seed=0):
    """Build a scale-tier graph by name (compacted, deterministic)."""
    try:
        spec = SCALE_SUITE[name]
    except KeyError:
        from repro.datasets.suite import _unknown_graph

        raise _unknown_graph(name) from None
    return spec.build(seed)


def scale_describe(name):
    """Human-readable role of a scale-tier graph."""
    try:
        return SCALE_SUITE[name].role
    except KeyError:
        from repro.datasets.suite import _unknown_graph

        raise _unknown_graph(name) from None
