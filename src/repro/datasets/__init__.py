"""Synthetic datasets: the AtP-DBLP stand-in and the named graph suite."""

from repro.datasets.suite import describe, load_graph, load_suite, suite_names
from repro.datasets.synthetic_dblp import (
    AtPDataset,
    attach_whisker_chains,
    synthetic_atp_dblp,
    synthetic_coauthorship,
)

__all__ = [
    "AtPDataset",
    "attach_whisker_chains",
    "describe",
    "load_graph",
    "load_suite",
    "suite_names",
    "synthetic_atp_dblp",
    "synthetic_coauthorship",
]
