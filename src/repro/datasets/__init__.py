"""Synthetic datasets: the AtP-DBLP stand-in and the named graph suites.

Two tiers: the reference suite (:mod:`repro.datasets.suite`, hundreds of
nodes, built eagerly everywhere) and the scale tier
(:mod:`repro.datasets.scale`, R-MAT / LFR-style generators reaching
millions of edges, built only on explicit request).
"""

from repro.datasets.scale import (
    SCALE_SUITE,
    ScaleGraphSpec,
    lfr_graph,
    load_scale_graph,
    rmat_graph,
    scale_describe,
    scale_suite_names,
)
from repro.datasets.suite import (
    UnknownGraphError,
    describe,
    load_any_graph,
    load_graph,
    load_suite,
    suite_names,
)
from repro.datasets.synthetic_dblp import (
    AtPDataset,
    attach_whisker_chains,
    synthetic_atp_dblp,
    synthetic_coauthorship,
)

__all__ = [
    "AtPDataset",
    "SCALE_SUITE",
    "ScaleGraphSpec",
    "UnknownGraphError",
    "attach_whisker_chains",
    "describe",
    "lfr_graph",
    "load_any_graph",
    "load_graph",
    "load_scale_graph",
    "load_suite",
    "rmat_graph",
    "scale_describe",
    "scale_suite_names",
    "suite_names",
    "synthetic_atp_dblp",
    "synthetic_coauthorship",
]
