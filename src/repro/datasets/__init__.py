"""Synthetic datasets: the AtP-DBLP stand-in and the named graph suite."""

from repro.datasets.suite import (
    UnknownGraphError,
    describe,
    load_any_graph,
    load_graph,
    load_suite,
    suite_names,
)
from repro.datasets.synthetic_dblp import (
    AtPDataset,
    attach_whisker_chains,
    synthetic_atp_dblp,
    synthetic_coauthorship,
)

__all__ = [
    "AtPDataset",
    "UnknownGraphError",
    "attach_whisker_chains",
    "describe",
    "load_any_graph",
    "load_graph",
    "load_suite",
    "suite_names",
    "synthetic_atp_dblp",
    "synthetic_coauthorship",
]
