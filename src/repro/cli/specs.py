"""Spec-string parsing: ``--dynamics ppr:alpha=0.1,eps=1e-4`` and friends.

The CLI addresses the dynamics registry — and, with the same grammar,
the refiner registry (``--refine mqi,flow:radius=2``, see
:func:`parse_refiner_chain`) — with compact spec strings so a whole
workload fits on one command line.  Dynamics strings:

* ``ppr`` — a bare registered name or alias (``pagerank``, ``acl``, ...)
  selects that dynamics with its default axes;
* ``ppr:alpha=0.1`` — ``name:key=value`` pairs override spec fields; the
  valid keys are exactly the spec dataclass's fields (``alpha`` for PPR,
  ``t`` for the heat kernel, ``steps``/``walk_alpha`` for the lazy walk
  — and whatever fields a newly registered dynamics declares);
* ``alpha=0.05/0.15`` — ``/``-separated values give a multi-point axis;
* ``eps=1e-4`` (aliases ``epsilon``, ``epsilons``) sets the truncation
  epsilons of the enclosing :class:`~repro.dynamics.DiffusionGrid` rather
  than a spec field;
* ``ppr:alpha=0.1,hk:t=5,walk`` — commas separate both parameters and
  specs: a token containing ``:`` (or a bare name) starts a new spec, a
  ``key=value`` token extends the one before it.

Parsing resolves names through :func:`repro.dynamics.get_dynamics`, so
alias spellings and registered extension dynamics work unchanged, and an
unknown name fails with the registry's own did-you-mean-style error.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass

from repro.dynamics import DiffusionGrid, get_dynamics
from repro.exceptions import InvalidParameterError
from repro.execution import get_executor
from repro.refine import get_refiner

__all__ = [
    "DynamicsRequest",
    "parse_dynamics_list",
    "parse_dynamics_spec",
    "parse_executor_spec",
    "parse_refiner_chain",
]

# Keys routed to the grid's epsilon axis instead of a spec field.
_EPSILON_KEYS = ("eps", "epsilon", "epsilons")

_INT_RE = re.compile(r"[+-]?\d+")


def _parse_number(text, *, context):
    """Parse one numeric literal (int preferred, float otherwise)."""
    token = text.strip()
    if _INT_RE.fullmatch(token):
        return int(token)
    try:
        return float(token)
    except ValueError:
        raise InvalidParameterError(
            f"{context}: expected a number, got {text!r}"
        ) from None


def _parse_value(text, *, context):
    """Parse a scalar or a ``/``-separated axis of numeric values."""
    parts = [p for p in str(text).split("/") if p.strip()]
    if not parts:
        raise InvalidParameterError(f"{context}: empty value")
    values = tuple(_parse_number(p, context=context) for p in parts)
    return values[0] if len(values) == 1 else values


@dataclass
class DynamicsRequest:
    """One parsed ``--dynamics`` entry: a registry kind plus overrides.

    Attributes
    ----------
    kind:
        The resolved :class:`~repro.dynamics.DynamicsKind`.
    params:
        Spec-field overrides parsed from the string (empty for a bare
        name, which means "use the registered defaults").
    epsilons:
        Grid epsilons parsed from ``eps=...`` (``None`` = spec defaults).
    raw:
        The original spec-string token, recorded verbatim in manifests.
    """

    kind: object
    params: dict
    epsilons: tuple
    raw: str

    @property
    def key(self):
        """Canonical registry name of the requested dynamics."""
        return self.kind.key

    def spec(self):
        """The frozen spec instance: overrides applied to the spec type."""
        return self.kind.spec_type(**self.params)

    def local_spec(self, graph=None):
        """Single-point spec for the seed → cluster driver.

        A bare name resolves to the dynamics' registered default local
        point (e.g. the walk's step count depends on the graph size);
        explicit parameters are honored as given.
        """
        if not self.params:
            return self.kind.local_spec(graph)
        return self.spec()

    def grid(self, *, epsilons=None, **overrides):
        """Build the :class:`~repro.dynamics.DiffusionGrid` for this entry.

        Per-spec ``eps=...`` overrides win over the caller's ``epsilons``
        (the CLI-level ``--epsilons`` default).
        """
        resolved = self.epsilons if self.epsilons is not None else epsilons
        return DiffusionGrid(self.spec(), epsilons=resolved, **overrides)


def _build_request(name, pairs, raw):
    kind = get_dynamics(name)  # UnknownDynamicsError lists names + aliases
    fields = {f.name for f in dataclasses.fields(kind.spec_type)}
    params, epsilons = {}, None
    for key, value in pairs:
        key = key.strip().lower()
        context = f"--dynamics {raw!r}: {key}"
        if key in _EPSILON_KEYS:
            parsed = _parse_value(value, context=context)
            epsilons = parsed if isinstance(parsed, tuple) else (parsed,)
        elif key in fields:
            params[key] = _parse_value(value, context=context)
        else:
            raise InvalidParameterError(
                f"--dynamics {raw!r}: unknown parameter {key!r} for "
                f"{kind.key!r}; expected one of {sorted(fields)} or "
                f"eps=..."
            )
    return DynamicsRequest(kind=kind, params=params, epsilons=epsilons,
                           raw=raw)


def _group_spec_tokens(text, *, option, kind):
    """Split a comma-separated spec string into (name, pairs, raw) groups.

    The shared grammar of ``--dynamics`` and ``--refine``: a token
    containing ``:`` (or a bare name) starts a new spec, a ``key=value``
    token extends the one before it.
    """
    groups = []  # [name, [(key, value), ...], raw_tokens]
    for token in str(text).split(","):
        token = token.strip()
        if not token:
            continue
        head, sep, tail = token.partition(":")
        if sep:
            group = [head.strip(), [], [token]]
            groups.append(group)
            if tail.strip():
                key, eq, value = tail.partition("=")
                if not eq:
                    raise InvalidParameterError(
                        f"{option}: expected key=value after ':' in "
                        f"{token!r}"
                    )
                group[1].append((key, value))
        elif "=" in token:
            if not groups:
                raise InvalidParameterError(
                    f"{option}: parameter {token!r} appears before any "
                    f"{kind} name (write name:key=value)"
                )
            key, _, value = token.partition("=")
            groups[-1][1].append((key, value))
            groups[-1][2].append(token)
        else:
            groups.append([token, [], [token]])
    if not groups:
        raise InvalidParameterError(
            f"{option}: expected at least one {kind} name"
        )
    return groups


def parse_dynamics_list(text):
    """Parse a full ``--dynamics`` value into :class:`DynamicsRequest`\\ s.

    ``"ppr,hk,walk"`` gives three default-axis requests;
    ``"ppr:alpha=0.1,eps=1e-4"`` one request with overrides; mixtures
    like ``"ppr:alpha=0.1,hk"`` work because a ``key=value`` token binds
    to the most recent spec while any other token starts a new one.
    """
    groups = _group_spec_tokens(text, option="--dynamics", kind="dynamics")
    return [
        _build_request(name, pairs, ",".join(raw_tokens))
        for name, pairs, raw_tokens in groups
    ]


def parse_dynamics_spec(text):
    """Parse a ``--dynamics`` value that must name exactly one dynamics."""
    requests = parse_dynamics_list(text)
    if len(requests) != 1:
        raise InvalidParameterError(
            f"expected exactly one dynamics, got "
            f"{[r.key for r in requests]} from {text!r}"
        )
    return requests[0]


def parse_executor_spec(text):
    """Parse a ``--executor`` value into a frozen executor spec.

    One spec in the shared ``--dynamics`` grammar, resolved through the
    executor registry (:mod:`repro.execution`): ``"serial"`` /
    ``"process"`` select those strategies with their defaults, and
    ``"chaos:seed=3,kills=2,abort_after=4"`` parameterizes the fault
    injector — valid keys are exactly the registered spec dataclass's
    fields.  Unknown names fail with the registry's did-you-mean error.
    """
    groups = _group_spec_tokens(text, option="--executor", kind="executor")
    if len(groups) != 1:
        raise InvalidParameterError(
            f"--executor: expected exactly one executor, got "
            f"{[group[0] for group in groups]} from {text!r}"
        )
    name, pairs, raw_tokens = groups[0]
    raw = ",".join(raw_tokens)
    kind = get_executor(name)  # UnknownExecutorError lists names + aliases
    if kind.spec_type is None:
        raise InvalidParameterError(
            f"--executor {raw!r}: executor {kind.key!r} declares no spec "
            "type, so it cannot be addressed from the command line"
        )
    fields = {f.name for f in dataclasses.fields(kind.spec_type)}
    params = {}
    for key, value in pairs:
        key = key.strip().lower()
        context = f"--executor {raw!r}: {key}"
        if key not in fields:
            raise InvalidParameterError(
                f"--executor {raw!r}: unknown parameter {key!r} for "
                f"{kind.key!r}; expected one of {sorted(fields)}"
            )
        params[key] = _parse_value(value, context=context)
    return kind.spec_type(**params)


def _build_refiner(name, pairs, raw):
    kind = get_refiner(name)  # UnknownRefinerError lists names + aliases
    fields = {f.name for f in dataclasses.fields(kind.spec_type)}
    params = {}
    for key, value in pairs:
        key = kind.resolve_field(key.strip().lower())
        context = f"--refine {raw!r}: {key}"
        if key not in fields:
            aliases = sorted(alias for alias, _ in kind.field_aliases)
            raise InvalidParameterError(
                f"--refine {raw!r}: unknown parameter {key!r} for "
                f"{kind.key!r}; expected one of {sorted(fields)}"
                + (f" (aliases: {aliases})" if aliases else "")
            )
        params[key] = _parse_value(value, context=context)
    return kind.spec_type(**params)


def parse_refiner_chain(text):
    """Parse a ``--refine`` value into an ordered tuple of refiner specs.

    The same grammar as ``--dynamics``, resolved through the refiner
    registry (:mod:`repro.refine`): ``"mqi"`` is one default-knob stage,
    ``"mqi,flow:radius=2"`` a two-stage chain, and short parameter
    aliases (``radius`` → ``dilation_radius``, ``rounds`` →
    ``max_rounds``, ``gamma`` → ``gamma_fraction``) come from each
    :class:`~repro.refine.RefinerKind`'s ``field_aliases`` table.
    Unknown names fail with the registry's own error (listing canonical
    names and aliases).
    """
    groups = _group_spec_tokens(text, option="--refine", kind="refiner")
    return tuple(
        _build_refiner(name, pairs, ",".join(raw_tokens))
        for name, pairs, raw_tokens in groups
    )
