"""``repro cluster`` — seeded strongly local clustering from the CLI.

Runs :func:`repro.partition.local.local_cluster` from an explicit seed
set with any single-point dynamics spec parsed from a
``--dynamics ppr:alpha=0.1,eps=1e-4`` style string (bare names resolve
to the dynamics' registered default local point, e.g. the walk's step
count scales with the graph).  With ``--out`` set, the cluster and a run
manifest are written as JSON.
"""

from __future__ import annotations

from repro.backends import resolve_backend_name
from repro.cli import manifest as manifest_mod
from repro.cli._common import (
    Stopwatch,
    add_graph_arguments,
    ensure_out_dir,
    parse_int_list,
    resolve_graph,
)
from repro.cli.specs import parse_dynamics_spec, parse_refiner_chain
from repro.core.reporting import format_table
from repro.exceptions import InvalidParameterError
from repro.partition.local import local_cluster

CLUSTER_NAME = "cluster.json"

# Seed-set sizes above this are elided in the stdout node listing; the
# full membership always goes to cluster.json.
_PRINT_LIMIT = 40


def configure_parser(subparsers):
    """Register the ``cluster`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "cluster",
        help="seeded local clustering with any single-point dynamics",
        description=(
            "Compute one strongly local cluster from a seed set: a "
            "single diffusion (PPR / heat kernel / lazy walk / any "
            "registered dynamics) plus a degree-normalized sweep over "
            "its support.  --dynamics takes a spec string such as "
            "'ppr:alpha=0.1,eps=1e-4'; a bare name uses the dynamics' "
            "default local point."
        ),
    )
    add_graph_arguments(parser)
    parser.add_argument(
        "--seeds",
        required=True,
        metavar="U1,U2",
        help="comma-separated seed node ids",
    )
    parser.add_argument(
        "--dynamics",
        default="ppr",
        metavar="SPEC",
        help="one dynamics spec string; eps=... sets the truncation "
             "epsilon (default: ppr with its default local point)",
    )
    parser.add_argument(
        "--refine",
        default=None,
        metavar="CHAIN",
        help="refiner chain applied to the sweep cluster, e.g. 'mqi' or "
             "'mqi,flow:radius=2' (default: no refinement)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=None,
        metavar="E",
        help="truncation epsilon when the spec string has no eps=... "
             "(default: 1e-4)",
    )
    parser.add_argument(
        "--max-volume",
        type=float,
        default=None,
        metavar="V",
        help="optional volume cap on the sweep (Problem (9)'s k)",
    )
    parser.add_argument(
        "--min-size",
        type=int,
        default=1,
        metavar="K",
        help="minimum cluster size accepted by the sweep (default: 1)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the diffusion and sweep (numpy, scalar, "
             "numba, ...; default: each dynamics' historical local "
             "default)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="optional output directory for cluster.json + manifest.json",
    )
    parser.set_defaults(run=run)
    return parser


def _resolve_epsilon(request, args):
    if request.epsilons is not None:
        if len(request.epsilons) != 1:
            raise InvalidParameterError(
                f"--dynamics {request.raw!r}: local clustering needs a "
                f"single eps, got {list(request.epsilons)}"
            )
        return float(request.epsilons[0])
    return 1e-4 if args.epsilon is None else float(args.epsilon)


def _result_record(result, *, dynamics_key, epsilon, refiners):
    import dataclasses

    return {
        "dynamics": dynamics_key,
        "method": result.method,
        "epsilon": epsilon,
        "refiners": [spec.token() for spec in refiners],
        "refinement": [
            dataclasses.asdict(step) for step in result.refinement
        ],
        "seed_nodes": result.seed_nodes,
        "nodes": result.nodes,
        "size": int(result.nodes.size),
        "conductance": float(result.conductance),
        "support_size": int(result.support_size),
        "work": int(result.work),
        "contains_seed": bool(result.contains_seed),
    }


def _replay_argv(args):
    argv = [
        "cluster",
        "--graph", args.graph,
        "--graph-seed", str(args.graph_seed),
        "--seeds", args.seeds,
        "--dynamics", args.dynamics,
        "--min-size", str(args.min_size),
    ]
    if args.refine is not None:
        argv += ["--refine", args.refine]
    if args.epsilon is not None:
        argv += ["--epsilon", repr(float(args.epsilon))]
    if args.max_volume is not None:
        argv += ["--max-volume", repr(float(args.max_volume))]
    if args.backend is not None:
        argv += ["--backend", resolve_backend_name(args.backend)]
    return argv


def run(args):
    """Execute ``repro cluster`` (see :func:`configure_parser`)."""
    watch = Stopwatch()
    graph, record = resolve_graph(args)
    seeds = parse_int_list(args.seeds, name="--seeds")
    request = parse_dynamics_spec(args.dynamics)
    refiners = (
        parse_refiner_chain(args.refine) if args.refine is not None else ()
    )
    epsilon = _resolve_epsilon(request, args)
    # None keeps each dynamics' historical local default (see
    # local_cluster); an explicit name is canonicalized up front so the
    # manifest and replay argv record the registry key.
    backend = (
        None if args.backend is None
        else resolve_backend_name(args.backend)
    )
    spec = request.local_spec(graph)

    result = local_cluster(
        graph, seeds, spec, epsilon=epsilon,
        max_volume=args.max_volume, min_size=args.min_size,
        refiners=refiners, backend=backend,
    )

    print(format_table(
        ["field", "value"],
        [["graph", f"{args.graph} (n={graph.num_nodes}, "
                   f"m={graph.num_edges})"],
         ["dynamics", f"{request.key} ({spec!r})"],
         ["method", result.method],
         ["refiners", ">".join(s.token() for s in refiners) or "--"],
         ["epsilon", epsilon],
         ["seed nodes", " ".join(str(s) for s in result.seed_nodes)],
         ["cluster size", int(result.nodes.size)],
         ["conductance", float(result.conductance)],
         ["support size", result.support_size],
         ["edge work", result.work],
         ["contains seed", result.contains_seed]],
        title="local cluster",
    ))
    nodes = [int(u) for u in result.nodes]
    shown = nodes if len(nodes) <= _PRINT_LIMIT else nodes[:_PRINT_LIMIT]
    suffix = "" if len(nodes) <= _PRINT_LIMIT else \
        f" ... (+{len(nodes) - _PRINT_LIMIT} more)"
    print(f"nodes: {' '.join(str(u) for u in shown)}{suffix}")

    if args.out is None:
        return 0
    out = ensure_out_dir(args.out)
    cluster_record = _result_record(
        result, dynamics_key=request.key, epsilon=epsilon, refiners=refiners
    )
    cluster_path = out / CLUSTER_NAME
    import json

    cluster_path.write_text(
        json.dumps(manifest_mod.jsonable(cluster_record), indent=2,
                   sort_keys=True) + "\n",
        encoding="utf-8",
    )
    built = manifest_mod.build_manifest(
        "cluster",
        arguments={
            "graph": args.graph,
            "graph_seed": args.graph_seed,
            "seeds": seeds,
            "dynamics": args.dynamics,
            "refine": args.refine,
            "epsilon": epsilon,
            "max_volume": args.max_volume,
            "min_size": args.min_size,
            "backend": backend,
        },
        replay_argv=_replay_argv(args),
        graph=record,
        outputs=[CLUSTER_NAME],
        wall_seconds=watch.elapsed(),
        result=cluster_record,
    )
    manifest_path = manifest_mod.write_manifest(out, built)
    print(f"wrote {cluster_path}, {manifest_path}")
    return 0
