"""``repro bench`` — the registry-driven engine benchmark (E12b).

Times every registered dynamics' full diffusion grid twice through the
same ``spec.iter_columns`` entry point the NCP pipeline uses — once on
the batched/vectorized engine, once on the scalar parity oracle — and
writes ``BENCH_engine.json`` (one section per dynamics) plus a run
manifest into ``--out``.  Because dispatch goes through the registry, a
newly registered dynamics benchmarks itself with no changes here.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.cli import manifest as manifest_mod
from repro.cli._common import (
    Stopwatch,
    add_graph_arguments,
    ensure_out_dir,
    parse_float_list,
    resolve_graph,
)
from repro.core.reporting import format_table
from repro.dynamics import registered_dynamics
from repro.ncp.profile import _sample_seed_nodes

BENCH_NAME = "BENCH_engine.json"


def configure_parser(subparsers):
    """Register the ``bench`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "bench",
        help="benchmark every registered dynamics' batched engine",
        description=(
            "Benchmark the batched diffusion engines against their "
            "scalar parity oracles: every registered dynamics' default "
            "grid is drained through spec.iter_columns on both engines "
            "and the speedups are written to BENCH_engine.json "
            "(+ manifest.json) in --out."
        ),
    )
    add_graph_arguments(parser, default="atp")
    parser.add_argument(
        "--num-seeds",
        type=int,
        default=10,
        metavar="N",
        help="seed nodes per dynamics, sampled by degree (default: 10)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed for seed-node sampling (default: 0)",
    )
    parser.add_argument(
        "--epsilons",
        default="1e-3,1e-4",
        metavar="E1,E2",
        help="truncation epsilons for every grid (default: 1e-3,1e-4)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=1,
        metavar="R",
        help="timing rounds per engine; the best round is reported "
             "(default: 1)",
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="output directory for BENCH_engine.json and manifest.json "
             "(default: current directory)",
    )
    parser.set_defaults(run=run)
    return parser


def _time_columns(graph, spec, seed_nodes, epsilons, engine, rounds):
    """Best-of-``rounds`` wall time to drain one spec's diffusion grid."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        for _column in spec.iter_columns(
            graph, seed_nodes, epsilons=epsilons, engine=engine
        ):
            pass
        best = min(best, time.perf_counter() - start)
    return best


def run(args):
    """Execute ``repro bench`` (see :func:`configure_parser`)."""
    watch = Stopwatch()
    graph, record = resolve_graph(args)
    epsilons = parse_float_list(args.epsilons, name="--epsilons")
    rng = np.random.default_rng(args.seed)
    seed_nodes = [
        int(u) for u in _sample_seed_nodes(graph, args.num_seeds, rng)
    ]

    print(
        f"bench: graph={args.graph} (n={graph.num_nodes}, "
        f"m={graph.num_edges}) seeds={len(seed_nodes)} "
        f"epsilons={list(epsilons)}"
    )
    sections = {}
    rows = []
    for key in sorted(registered_dynamics()):
        kind = registered_dynamics()[key]
        spec = kind.default_spec()
        scalar = _time_columns(
            graph, spec, seed_nodes, epsilons, "scalar", args.rounds
        )
        batched = _time_columns(
            graph, spec, seed_nodes, epsilons, "batched", args.rounds
        )
        columns = spec.grid_size(epsilons) * len(seed_nodes)
        sections[key] = {
            "spec": repr(spec),
            "num_columns": int(columns),
            "scalar_seconds": scalar,
            "batched_seconds": batched,
            "speedup": scalar / batched if batched > 0 else float("inf"),
        }
        axes = ", ".join(
            f"{len(values)} {axis}"
            for axis, values in spec.grid_axes().items()
        )
        rows.append([
            f"{key} ({axes} x {len(epsilons)} eps)",
            scalar,
            batched,
            f"{sections[key]['speedup']:.1f}x",
        ])
    print()
    print(format_table(
        ["dynamics", "scalar s", "batched s", "speedup"],
        rows,
        title="E12b: registry-driven engines, batched vs scalar oracle",
    ))

    out = ensure_out_dir(args.out)
    report = {
        "graph": record["source"],
        "num_nodes": record["num_nodes"],
        "num_edges": record["num_edges"],
        "num_seeds": len(seed_nodes),
        "epsilons": list(epsilons),
        "rounds": int(args.rounds),
        "dynamics": sections,
    }
    bench_path = out / BENCH_NAME
    bench_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    built = manifest_mod.build_manifest(
        "bench",
        arguments={
            "graph": args.graph,
            "graph_seed": args.graph_seed,
            "num_seeds": args.num_seeds,
            "seed": args.seed,
            "epsilons": list(epsilons),
            "rounds": args.rounds,
        },
        replay_argv=[
            "bench",
            "--graph", args.graph,
            "--graph-seed", str(args.graph_seed),
            "--num-seeds", str(args.num_seeds),
            "--seed", str(args.seed),
            "--epsilons", args.epsilons,
            "--rounds", str(args.rounds),
        ],
        graph=record,
        outputs=[BENCH_NAME],
        wall_seconds=watch.elapsed(),
    )
    manifest_path = manifest_mod.write_manifest(out, built)
    print()
    print(f"wrote {bench_path}, {manifest_path}")
    return 0
