"""``repro bench`` — the registry-driven backend benchmark (E12b).

Times every registered dynamics' full diffusion grid through the same
``spec.iter_columns`` entry point the NCP pipeline uses, once per
registered :mod:`repro.backends` backend (numpy / scalar / numba / any
third-party registration), and writes ``BENCH_engine.json`` (one
section per dynamics, one timing entry per backend) plus a run manifest
into ``--out``.  Each (dynamics, backend) pair gets one untimed warm-up
drain first, so numba JIT compilation never pollutes the timings.
Because dispatch goes through both registries, a newly registered
dynamics or backend benchmarks itself with no changes here.  The
pre-backend ``scalar_seconds`` / ``batched_seconds`` / ``speedup`` keys
are kept per section whenever both the ``scalar`` and ``numpy``
backends were timed.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.cli import manifest as manifest_mod
from repro.cli._common import (
    Stopwatch,
    add_graph_arguments,
    ensure_out_dir,
    parse_float_list,
    resolve_graph,
)
from repro.backends import registered_backends, resolve_backend_name
from repro.core.reporting import format_table
from repro.dynamics import registered_dynamics
from repro.ncp.profile import _sample_seed_nodes

BENCH_NAME = "BENCH_engine.json"


def configure_parser(subparsers):
    """Register the ``bench`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "bench",
        help="benchmark every registered dynamics on every backend",
        description=(
            "Benchmark the registered kernel backends against each "
            "other: every registered dynamics' default grid is drained "
            "through spec.iter_columns once per backend (after an "
            "untimed warm-up, so numba JIT compilation is excluded) and "
            "the timings are written to BENCH_engine.json "
            "(+ manifest.json) in --out."
        ),
    )
    add_graph_arguments(parser, default="atp")
    parser.add_argument(
        "--num-seeds",
        type=int,
        default=10,
        metavar="N",
        help="seed nodes per dynamics, sampled by degree (default: 10)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed for seed-node sampling (default: 0)",
    )
    parser.add_argument(
        "--epsilons",
        default="1e-3,1e-4",
        metavar="E1,E2",
        help="truncation epsilons for every grid (default: 1e-3,1e-4)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=1,
        metavar="R",
        help="timing rounds per backend; the best round is reported "
             "(default: 1)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAMES",
        help="comma-separated backends to time (names or aliases; "
             "default: every registered backend)",
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="output directory for BENCH_engine.json and manifest.json "
             "(default: current directory)",
    )
    parser.set_defaults(run=run)
    return parser


def _time_columns(graph, spec, seed_nodes, epsilons, backend, rounds):
    """Best-of-``rounds`` wall time to drain one spec's diffusion grid.

    One untimed warm-up drain (a single seed) runs first so one-time
    costs — numba JIT compilation above all — never reach the timings.
    """
    for _column in spec.iter_columns(
        graph, seed_nodes[:1], epsilons=epsilons, backend=backend
    ):
        pass
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        for _column in spec.iter_columns(
            graph, seed_nodes, epsilons=epsilons, backend=backend
        ):
            pass
        best = min(best, time.perf_counter() - start)
    return best


def _backend_names(argument):
    """The canonical backends to time (``--backend`` or the registry)."""
    if argument is None:
        return sorted(registered_backends())
    names = []
    for part in argument.split(","):
        if part.strip():
            key = resolve_backend_name(part.strip())
            if key not in names:
                names.append(key)
    return names


def run(args):
    """Execute ``repro bench`` (see :func:`configure_parser`)."""
    watch = Stopwatch()
    graph, record = resolve_graph(args)
    epsilons = parse_float_list(args.epsilons, name="--epsilons")
    rng = np.random.default_rng(args.seed)
    seed_nodes = [
        int(u) for u in _sample_seed_nodes(graph, args.num_seeds, rng)
    ]

    backends = _backend_names(args.backend)
    print(
        f"bench: graph={args.graph} (n={graph.num_nodes}, "
        f"m={graph.num_edges}) seeds={len(seed_nodes)} "
        f"epsilons={list(epsilons)} backends={backends}"
    )
    sections = {}
    rows = []
    for key in sorted(registered_dynamics()):
        kind = registered_dynamics()[key]
        spec = kind.default_spec()
        timings = {}
        for name in backends:
            timings[name] = _time_columns(
                graph, spec, seed_nodes, epsilons, name, args.rounds
            )
        reference = timings.get("numpy")
        columns = spec.grid_size(epsilons) * len(seed_nodes)
        section = {
            "spec": repr(spec),
            "num_columns": int(columns),
            "backends": {
                name: {
                    "backend": name,
                    "available": registered_backends()[name].available(),
                    "seconds": seconds,
                    "speedup_vs_numpy": (
                        reference / seconds
                        if reference is not None and seconds > 0
                        else None
                    ),
                }
                for name, seconds in timings.items()
            },
        }
        if "scalar" in timings and "numpy" in timings:
            # Pre-backend report keys, kept for downstream consumers:
            # 'batched' was the numpy backend's historical name.
            section["scalar_seconds"] = timings["scalar"]
            section["batched_seconds"] = timings["numpy"]
            section["speedup"] = (
                timings["scalar"] / timings["numpy"]
                if timings["numpy"] > 0 else float("inf")
            )
        sections[key] = section
        axes = ", ".join(
            f"{len(values)} {axis}"
            for axis, values in spec.grid_axes().items()
        )
        for name in backends:
            entry = section["backends"][name]
            vs = entry["speedup_vs_numpy"]
            rows.append([
                f"{key} ({axes} x {len(epsilons)} eps)",
                name + ("" if entry["available"] else " (fallback)"),
                timings[name],
                f"{vs:.1f}x" if vs is not None else "--",
            ])
    print()
    print(format_table(
        ["dynamics", "backend", "seconds", "vs numpy"],
        rows,
        title="E12b: registry-driven kernels, one timing per backend",
    ))

    out = ensure_out_dir(args.out)
    report = {
        "graph": record["source"],
        "num_nodes": record["num_nodes"],
        "num_edges": record["num_edges"],
        "num_seeds": len(seed_nodes),
        "epsilons": list(epsilons),
        "rounds": int(args.rounds),
        "backends": backends,
        "dynamics": sections,
    }
    bench_path = out / BENCH_NAME
    bench_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    built = manifest_mod.build_manifest(
        "bench",
        arguments={
            "graph": args.graph,
            "graph_seed": args.graph_seed,
            "num_seeds": args.num_seeds,
            "seed": args.seed,
            "epsilons": list(epsilons),
            "rounds": args.rounds,
            "backends": backends,
        },
        replay_argv=[
            "bench",
            "--graph", args.graph,
            "--graph-seed", str(args.graph_seed),
            "--num-seeds", str(args.num_seeds),
            "--seed", str(args.seed),
            "--epsilons", args.epsilons,
            "--rounds", str(args.rounds),
            "--backend", ",".join(backends),
        ],
        graph=record,
        outputs=[BENCH_NAME],
        wall_seconds=watch.elapsed(),
    )
    manifest_path = manifest_mod.write_manifest(out, built)
    print()
    print(f"wrote {bench_path}, {manifest_path}")
    return 0
