"""``repro`` — the command-line workbench over the ``repro.api`` facade.

One executable (``python -m repro``, or the ``repro`` console script once
the package is installed) turns every experiment the library supports
into a reproducible one-liner:

* ``repro datasets`` — list/describe the named graph suite, or export
  any suite graph to an edge-list file;
* ``repro ncp`` — sharded, memoized NCP candidate ensembles for any
  registered dynamics grid, on a suite graph or an external edge list;
* ``repro cluster`` — seeded strongly local clustering with any
  single-point dynamics spec (``--dynamics ppr:alpha=0.1,eps=1e-4``);
* ``repro bench`` — the registry-driven engine benchmark (E12b),
  writing ``BENCH_engine.json``;
* ``repro lint`` — the AST-based invariant checker
  (:mod:`repro.analysis`): registry dispatch, determinism, cache
  versioning, exception/shim policy, @njit purity.

Every run that produces files also writes a JSON **run manifest**
(:mod:`repro.cli.manifest`) next to them — resolved spec, graph
fingerprint, seed, worker count, package version, wall time — so any
result can be replayed byte for byte from its recorded parameters.

Library errors (:class:`~repro.exceptions.ReproError`, which includes
unknown graph/dynamics names with did-you-mean suggestions) are printed
as one ``error:`` line and exit with status 2.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cli import (
    bench_cmd,
    cluster_cmd,
    datasets_cmd,
    lint_cmd,
    ncp_cmd,
)
from repro.exceptions import ReproError

__all__ = ["build_parser", "main"]

_DESCRIPTION = (
    "Workbench for the repro library: run NCP ensembles, local "
    "clustering, and engine benchmarks on the named graph suite or on "
    "your own edge-list files, with a JSON run manifest written next to "
    "every result."
)

_EPILOG = (
    "Examples:\n"
    "  python -m repro datasets --markdown\n"
    "  python -m repro ncp --graph atp --dynamics ppr,hk,walk "
    "--workers 2 --out runs/atp\n"
    "  python -m repro cluster --graph barbell --seeds 0 "
    "--dynamics ppr:alpha=0.1,eps=1e-4\n"
    "  python -m repro bench --graph atp --out runs/bench\n"
    "  python -m repro lint src/ --format github\n"
)

# The subcommand modules, in help-listing order.  Each exposes
# configure_parser(subparsers) -> parser and a run(args) -> int handler.
_COMMAND_MODULES = (datasets_cmd, ncp_cmd, cluster_cmd, bench_cmd, lint_cmd)


def _version_string():
    import repro

    return f"repro {getattr(repro, '__version__', 'unknown')}"


def build_parser():
    """Build the ``repro`` argument parser with every subcommand attached.

    The returned parser carries a ``repro_subparsers`` attribute mapping
    subcommand name -> its :class:`argparse.ArgumentParser`, which the
    help-coverage tests use to assert that every subcommand and option
    documents itself.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description=_DESCRIPTION,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=_version_string()
    )
    subparsers = parser.add_subparsers(
        dest="command",
        metavar="<command>",
        required=True,
        help="what to run (each accepts --help)",
    )
    parser.repro_subparsers = {}
    for module in _COMMAND_MODULES:
        sub = module.configure_parser(subparsers)
        parser.repro_subparsers[sub.prog.split()[-1]] = sub
    return parser


def main(argv=None):
    """CLI entry point; returns a process exit status.

    ``argv`` defaults to ``sys.argv[1:]``.  Library failures
    (:class:`~repro.exceptions.ReproError`) exit 2 with a single
    ``error:`` line on stderr instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro datasets | head`);
        # point stdout at devnull so the interpreter's exit flush does
        # not raise a second time, and exit with the SIGPIPE convention.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
