"""``repro ncp`` — sharded NCP candidate ensembles from the command line.

One command runs :func:`repro.ncp.runner.run_ncp_ensemble` for any list
of registered dynamics on any suite graph or external edge-list file,
writing three artifacts into ``--out``:

* ``candidates.csv`` — the merged candidate ensemble, one row per
  candidate (dynamics, method label, size, conductance, node ids).  The
  runner's determinism guarantee makes this file byte-identical for any
  ``--workers`` value.
* ``profile.txt`` — the log-bucketed best-conductance NCP profile per
  dynamics (also printed).
* ``manifest.json`` — the run manifest; replaying its ``replay_argv``
  (with any worker count) reproduces ``candidates.csv`` byte for byte.

The manifest doubles as the resume record: it is written with
``"status": "started"`` before the first chunk runs and rewritten as
``"status": "complete"`` at the end, so ``repro ncp --resume <dir>``
after a crash rebuilds the exact workload from ``arguments``, probes the
chunk memo (``--cache-dir``), and executes only the missing chunks.
``--executor`` selects the execution strategy by registry name
(``serial`` / ``process`` / ``chaos:seed=3,kills=2``, see
:mod:`repro.execution`); the candidate bytes are identical under every
strategy.
"""

from __future__ import annotations

import numpy as np

from repro.cli import manifest as manifest_mod
from repro.cli._common import (
    Stopwatch,
    add_graph_arguments,
    ensure_out_dir,
    parse_float_list,
    resolve_graph,
)
from repro.backends import resolve_backend_name
from repro.cli.specs import (
    parse_dynamics_list,
    parse_executor_spec,
    parse_refiner_chain,
)
from repro.core.reporting import format_table
from repro.exceptions import InvalidParameterError, PartitionError
from repro.execution import get_executor
from repro.ncp.profile import best_per_size_bucket
from repro.ncp.runner import run_ncp_ensemble
from repro.refine import Pipeline

CANDIDATES_NAME = "candidates.csv"
PROFILE_NAME = "profile.txt"


def configure_parser(subparsers):
    """Register the ``ncp`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "ncp",
        help="run a sharded NCP candidate ensemble (any dynamics grid)",
        description=(
            "Run the network-community-profile candidate ensemble for "
            "one or more registered dynamics through the process-"
            "parallel, disk-memoized runner.  Writes candidates.csv + "
            "profile.txt + manifest.json into --out; the candidate file "
            "is byte-identical for any --workers value."
        ),
    )
    add_graph_arguments(parser, required=False)
    parser.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help="resume an interrupted run from its manifest.json (or the "
             "directory holding it): the workload is rebuilt from the "
             "manifest's arguments and only chunks missing from the "
             "chunk memo are recomputed (mutually exclusive with "
             "--graph; --workers/--executor/--out come from this "
             "command line)",
    )
    parser.add_argument(
        "--dynamics",
        default="ppr",
        metavar="SPECS",
        help="comma-separated dynamics spec strings, e.g. 'ppr,hk,walk' "
             "or 'ppr:alpha=0.05/0.15,eps=1e-4,hk:t=5' (default: ppr)",
    )
    parser.add_argument(
        "--refine",
        default=None,
        metavar="CHAIN",
        help="refiner chain applied to every candidate of every "
             "dynamics, e.g. 'mqi' or 'mqi,flow:radius=2' (registry "
             "names/aliases; default: no refinement)",
    )
    parser.add_argument(
        "--num-seeds",
        type=int,
        default=40,
        metavar="N",
        help="seed nodes sampled by degree per dynamics (default: 40)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed for seed-node sampling (default: 0)",
    )
    parser.add_argument(
        "--epsilons",
        default=None,
        metavar="E1,E2",
        help="truncation epsilons applied to every dynamics without its "
             "own eps=... override (default: each spec's defaults)",
    )
    parser.add_argument(
        "--max-cluster-size",
        type=int,
        default=None,
        metavar="K",
        help="sweep-prefix size cap (default: n // 2)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the diffusion and sweep inner loops: "
             "any registered repro.backends name or alias (numpy, "
             "scalar, numba, ...; default: numpy)",
    )
    parser.add_argument(
        "--engine",
        choices=("batched", "scalar"),
        default=None,
        help="(deprecated) legacy alias for --backend "
             "(batched -> numpy)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="W",
        help="worker processes for chunk evaluation; 0 = in-process "
             "serial (default: 0). The ensemble is identical either way.",
    )
    parser.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help="execution strategy: any registered repro.execution name "
             "or alias, optionally parameterized ('serial', 'process', "
             "'chaos:seed=3,kills=2'); default: process when --workers "
             ">= 1, serial otherwise. The ensemble is identical under "
             "every strategy.",
    )
    parser.add_argument(
        "--seeds-per-chunk",
        type=int,
        default=8,
        metavar="S",
        help="seeds per shard (cache-key granularity; default: 8)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk chunk memo directory (default: caching disabled)",
    )
    parser.add_argument(
        "--buckets",
        type=int,
        default=12,
        metavar="B",
        help="size buckets in the printed NCP profile (default: 12)",
    )
    parser.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory for candidates.csv, profile.txt, and "
             "manifest.json (created if missing)",
    )
    parser.set_defaults(run=run)
    return parser


def _candidate_lines(runs):
    """Deterministic CSV lines for the merged ensembles, header first."""
    lines = ["dynamics,method,size,conductance,nodes"]
    for run_result in runs:
        for candidate in run_result.candidates:
            nodes = " ".join(str(int(u)) for u in candidate.nodes)
            lines.append(
                f"{run_result.dynamics},{candidate.method},"
                f"{candidate.size},{candidate.conductance!r},{nodes}"
            )
    return lines


def _profile_text(run_result, num_buckets):
    """Render one run's NCP profile as an aligned table (or a note)."""
    title = (
        f"NCP profile: dynamics={run_result.dynamics} "
        f"candidates={len(run_result.candidates)} "
        f"chunks={run_result.num_chunks} cache_hits={run_result.cache_hits}"
    )
    try:
        profile = best_per_size_bucket(
            run_result.candidates, num_buckets=num_buckets
        )
    except PartitionError as exc:
        return f"{title}\n  (no profile: {exc})"
    rows = []
    edges = profile.bucket_edges
    for i, phi in enumerate(profile.best_conductance):
        representative = profile.representatives[i]
        rows.append([
            f"[{edges[i]:.0f}, {edges[i + 1]:.0f})",
            float(phi) if np.isfinite(phi) else float("nan"),
            representative.size if representative is not None else "--",
        ])
    return format_table(
        ["size bucket", "best conductance", "best size"], rows, title=title
    )


def _replay_argv(args, backend, executor_kind=None, executor_spec=None):
    argv = [
        "ncp",
        "--graph", args.graph,
        "--graph-seed", str(args.graph_seed),
        "--dynamics", args.dynamics,
        "--num-seeds", str(args.num_seeds),
        "--seed", str(args.seed),
        "--backend", backend,
        "--seeds-per-chunk", str(args.seeds_per_chunk),
        "--buckets", str(args.buckets),
    ]
    if args.refine is not None:
        argv += ["--refine", args.refine]
    if args.epsilons is not None:
        argv += ["--epsilons", args.epsilons]
    if args.max_cluster_size is not None:
        argv += ["--max-cluster-size", str(args.max_cluster_size)]
    # Executors never change the candidate bytes, so the replay only pins
    # one when it was requested explicitly AND the registry marks it
    # replayable (chaos is not: its faults are execution facts, and an
    # abort_after fault would crash the replay).
    if executor_kind is not None and executor_kind.replayable:
        argv += ["--executor", executor_spec.token()]
    return argv


def _apply_resume_arguments(args, arguments):
    """Rebuild the workload half of ``args`` from a manifest record.

    Everything that determines the candidate bytes comes from the
    manifest; execution facts (``--workers``, ``--executor``, ``--out``)
    stay with the resuming command line, and ``--cache-dir`` falls back
    to the original run's memo directory so completed chunks are found.
    """
    args.graph = arguments["graph"]
    args.graph_seed = int(arguments.get("graph_seed", 0))
    args.dynamics = arguments["dynamics"]
    args.refine = arguments.get("refine")
    args.num_seeds = int(arguments["num_seeds"])
    args.seed = int(arguments["seed"])
    epsilons = arguments.get("epsilons")
    args.epsilons = (
        None if epsilons is None
        # repr round-trips floats exactly, so the resumed grid matches.
        else ",".join(repr(float(e)) for e in epsilons)
    )
    max_size = arguments.get("max_cluster_size")
    args.max_cluster_size = None if max_size is None else int(max_size)
    args.backend = arguments.get("backend")
    args.engine = None
    args.seeds_per_chunk = int(arguments["seeds_per_chunk"])
    args.buckets = int(arguments["buckets"])
    if args.cache_dir is None:
        args.cache_dir = arguments.get("cache_dir")


def run(args):
    """Execute ``repro ncp`` (see :func:`configure_parser`)."""
    watch = Stopwatch()
    if args.resume is not None:
        if args.graph is not None:
            raise InvalidParameterError(
                "pass --graph or --resume, not both: a resumed run takes "
                "its workload from the manifest"
            )
        resumed = manifest_mod.load_manifest(args.resume)
        if resumed["command"] != "ncp":
            raise InvalidParameterError(
                f"--resume: manifest records a {resumed['command']!r} "
                "run, not an ncp run"
            )
        _apply_resume_arguments(args, resumed["arguments"])
    elif args.graph is None:
        raise InvalidParameterError(
            "one of --graph or --resume is required"
        )
    graph, record = resolve_graph(args)
    backend = args.backend
    if args.engine is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass --backend or the deprecated --engine, not both"
            )
        backend = args.engine
    # resolve_backend_name canonicalizes legacy values without warning:
    # replaying an old manifest's '--engine batched' argv must stay quiet.
    backend = resolve_backend_name("numpy" if backend is None else backend)
    requests = parse_dynamics_list(args.dynamics)
    refiners = (
        parse_refiner_chain(args.refine) if args.refine is not None else ()
    )
    shared_epsilons = (
        parse_float_list(args.epsilons, name="--epsilons")
        if args.epsilons is not None else None
    )
    executor_spec = (
        parse_executor_spec(args.executor)
        if args.executor is not None else None
    )
    executor_kind = (
        get_executor(executor_spec) if executor_spec is not None else None
    )
    out = ensure_out_dir(args.out)

    arguments = {
        "graph": args.graph,
        "graph_seed": args.graph_seed,
        "dynamics": args.dynamics,
        "refine": args.refine,
        "num_seeds": args.num_seeds,
        "seed": args.seed,
        "epsilons": shared_epsilons,
        "max_cluster_size": args.max_cluster_size,
        "backend": backend,
        "workers": args.workers,
        "executor": (
            executor_spec.token() if executor_spec is not None else None
        ),
        "seeds_per_chunk": args.seeds_per_chunk,
        "cache_dir": args.cache_dir,
        "buckets": args.buckets,
    }
    replay_argv = _replay_argv(args, backend, executor_kind, executor_spec)
    # The started manifest is the resume record: written before the first
    # chunk runs, so a crashed run leaves behind everything --resume
    # needs to rebuild the workload and probe the chunk memo.
    manifest_mod.write_manifest(out, manifest_mod.build_manifest(
        "ncp",
        arguments=arguments,
        replay_argv=replay_argv,
        graph=record,
        outputs=[],
        wall_seconds=watch.elapsed(),
        status="started",
        runs=[],
    ))

    chain_note = (
        " refine=" + ">".join(spec.token() for spec in refiners)
        if refiners else ""
    )
    print(
        f"ncp: graph={args.graph} (n={graph.num_nodes}, "
        f"m={graph.num_edges}) dynamics="
        f"{','.join(r.key for r in requests)}{chain_note} "
        f"workers={args.workers}"
    )
    runs = []
    for request in requests:
        grid = request.grid(
            epsilons=shared_epsilons,
            num_seeds=args.num_seeds,
            seed=args.seed,
            max_cluster_size=args.max_cluster_size,
            backend=backend,
        )
        workload = Pipeline(grid, refiners=refiners) if refiners else grid
        runs.append(run_ncp_ensemble(
            graph,
            workload,
            num_workers=args.workers,
            seeds_per_chunk=args.seeds_per_chunk,
            cache_dir=args.cache_dir,
            executor=executor_spec,
        ))

    candidates_path = out / CANDIDATES_NAME
    candidates_path.write_text(
        "\n".join(_candidate_lines(runs)) + "\n", encoding="utf-8"
    )
    profile_blocks = [_profile_text(r, args.buckets) for r in runs]
    profile_path = out / PROFILE_NAME
    profile_path.write_text(
        "\n\n".join(profile_blocks) + "\n", encoding="utf-8"
    )
    print()
    print("\n\n".join(profile_blocks))

    built = manifest_mod.build_manifest(
        "ncp",
        arguments=arguments,
        replay_argv=replay_argv,
        graph=record,
        outputs=[CANDIDATES_NAME, PROFILE_NAME],
        wall_seconds=watch.elapsed(),
        status="complete",
        runs=[r.manifest() for r in runs],
    )
    manifest_path = manifest_mod.write_manifest(out, built)
    print()
    total = sum(len(r.candidates) for r in runs)
    print(f"wrote {candidates_path} ({total} candidates), {profile_path}, "
          f"{manifest_path}")
    return 0
