"""``repro datasets`` — list, describe, and export the named graph suite."""

from __future__ import annotations

from pathlib import Path

from repro.cli import manifest as manifest_mod
from repro.cli._common import Stopwatch, ensure_out_dir
from repro.core.reporting import format_markdown_table, format_table
from repro.datasets.scale import SCALE_SUITE
from repro.datasets.suite import describe, load_graph, suite_names
from repro.exceptions import InvalidParameterError
from repro.graph.io import write_edge_list, write_json
from repro.graph.storage import write_binary

# --export serializers: writer + the default output suffix each implies.
_EXPORT_FORMATS = {
    "edgelist": (write_edge_list, ".tsv"),
    "json": (write_json, ".json"),
    "binary": (write_binary, ".reprograph"),
}


def configure_parser(subparsers):
    """Register the ``datasets`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "datasets",
        help="list, describe, or export the named suite graphs",
        description=(
            "List the named graph suite (every graph reachable by name "
            "from --graph), describe one graph's role in the paper's "
            "story, or export a suite graph to an edge-list file that "
            "any --graph option accepts back."
        ),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--markdown",
        action="store_true",
        help="emit the listing as a GitHub-flavored markdown table "
             "(the README's dataset table is generated this way)",
    )
    mode.add_argument(
        "--describe",
        metavar="NAME",
        default=None,
        help="print one suite graph's role and statistics",
    )
    mode.add_argument(
        "--export",
        metavar="NAME",
        default=None,
        help="write a suite graph to a file (see --format and --out)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_EXPORT_FORMATS),
        default="edgelist",
        help="serialization for --export: edgelist (.tsv text), json, or "
             "binary (.reprograph, memory-mapped on load — use this for "
             "scale-tier graphs) (default: edgelist)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output path for --export (default: <name> plus the "
             "format's suffix, in the current directory); a run manifest "
             "is written next to it",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="generator seed for randomized suite graphs (default: 0)",
    )
    parser.set_defaults(run=run)
    return parser


def _rows(seed):
    rows = []
    for name in suite_names():
        graph = load_graph(name, seed=seed)
        rows.append([name, graph.num_nodes, graph.num_edges, describe(name)])
    # Scale-tier rows report design targets instead of building: listing
    # the suite must never cost a multi-million-edge generation.
    for name in sorted(SCALE_SUITE):
        spec = SCALE_SUITE[name]
        rows.append([name, f"~{spec.approx_nodes}", f"~{spec.approx_edges}",
                     spec.role])
    return rows


def _run_export(args):
    watch = Stopwatch()
    graph = load_graph(args.export, seed=args.seed)
    writer, suffix = _EXPORT_FORMATS[args.format]
    out = Path(args.out) if args.out else Path(f"{args.export}{suffix}")
    ensure_out_dir(out.parent)
    writer(graph, out)
    record = manifest_mod.graph_record(
        graph, source=args.export, graph_seed=args.seed
    )
    built = manifest_mod.build_manifest(
        "datasets",
        arguments={"export": args.export, "seed": args.seed,
                   "format": args.format, "out": str(out)},
        replay_argv=["datasets", "--export", args.export,
                     "--format", args.format, "--seed", str(args.seed)],
        graph=record,
        outputs=[out.name],
        wall_seconds=watch.elapsed(),
    )
    # Named after the exported file: an export into a directory that
    # already holds another run's manifest.json must not clobber it.
    manifest_path = manifest_mod.write_manifest(
        out.parent, built, name=f"{out.name}.manifest.json"
    )
    print(f"exported {args.export} ({graph.num_nodes} nodes, "
          f"{graph.num_edges} edges) -> {out}")
    print(f"wrote {manifest_path}")
    return 0


def run(args):
    """Execute ``repro datasets`` (see :func:`configure_parser`)."""
    if args.out is not None and not args.export:
        raise InvalidParameterError(
            "--out only applies to --export; nothing would be written"
        )
    if args.export:
        return _run_export(args)
    if args.describe:
        name = args.describe
        role = describe(name)  # raises UnknownGraphError with a hint
        if name in SCALE_SUITE:
            # Describing must stay instant; report the design targets and
            # leave generation to --export / --graph.
            spec = SCALE_SUITE[name]
            print(format_table(
                ["field", "value"],
                [["name", name],
                 ["role", role],
                 ["nodes", f"~{spec.approx_nodes} (target, not built)"],
                 ["edges", f"~{spec.approx_edges} (target, not built)"],
                 ["tier", "scale"]],
                title=f"scale-tier graph {name!r}",
            ))
            return 0
        graph = load_graph(name, seed=args.seed)
        print(format_table(
            ["field", "value"],
            [["name", name],
             ["role", role],
             ["nodes", graph.num_nodes],
             ["edges", graph.num_edges],
             ["volume", float(graph.total_volume)],
             ["connected", bool(graph.is_connected())]],
            title=f"suite graph {name!r}",
        ))
        return 0
    headers = ["name", "nodes", "edges", "role"]
    rows = _rows(args.seed)
    if args.markdown:
        print(format_markdown_table(headers, rows, align="lrrl"))
    else:
        print(format_table(headers, rows,
                           title=f"graph suite (seed={args.seed})"))
    return 0
