"""``repro datasets`` — list, describe, and export the named graph suite."""

from __future__ import annotations

from pathlib import Path

from repro.cli import manifest as manifest_mod
from repro.cli._common import Stopwatch, ensure_out_dir
from repro.core.reporting import format_markdown_table, format_table
from repro.datasets.suite import describe, load_graph, suite_names
from repro.exceptions import InvalidParameterError
from repro.graph.io import write_edge_list


def configure_parser(subparsers):
    """Register the ``datasets`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "datasets",
        help="list, describe, or export the named suite graphs",
        description=(
            "List the named graph suite (every graph reachable by name "
            "from --graph), describe one graph's role in the paper's "
            "story, or export a suite graph to an edge-list file that "
            "any --graph option accepts back."
        ),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--markdown",
        action="store_true",
        help="emit the listing as a GitHub-flavored markdown table "
             "(the README's dataset table is generated this way)",
    )
    mode.add_argument(
        "--describe",
        metavar="NAME",
        default=None,
        help="print one suite graph's role and statistics",
    )
    mode.add_argument(
        "--export",
        metavar="NAME",
        default=None,
        help="write a suite graph as an edge-list file (see --out)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output path for --export (default: <name>.tsv in the "
             "current directory); a run manifest is written next to it",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="generator seed for randomized suite graphs (default: 0)",
    )
    parser.set_defaults(run=run)
    return parser


def _rows(seed):
    rows = []
    for name in suite_names():
        graph = load_graph(name, seed=seed)
        rows.append([name, graph.num_nodes, graph.num_edges, describe(name)])
    return rows


def _run_export(args):
    watch = Stopwatch()
    graph = load_graph(args.export, seed=args.seed)
    out = Path(args.out) if args.out else Path(f"{args.export}.tsv")
    ensure_out_dir(out.parent)
    write_edge_list(graph, out)
    record = manifest_mod.graph_record(
        graph, source=args.export, graph_seed=args.seed
    )
    built = manifest_mod.build_manifest(
        "datasets",
        arguments={"export": args.export, "seed": args.seed,
                   "out": str(out)},
        replay_argv=["datasets", "--export", args.export,
                     "--seed", str(args.seed)],
        graph=record,
        outputs=[out.name],
        wall_seconds=watch.elapsed(),
    )
    # Named after the exported file: an export into a directory that
    # already holds another run's manifest.json must not clobber it.
    manifest_path = manifest_mod.write_manifest(
        out.parent, built, name=f"{out.name}.manifest.json"
    )
    print(f"exported {args.export} ({graph.num_nodes} nodes, "
          f"{graph.num_edges} edges) -> {out}")
    print(f"wrote {manifest_path}")
    return 0


def run(args):
    """Execute ``repro datasets`` (see :func:`configure_parser`)."""
    if args.out is not None and not args.export:
        raise InvalidParameterError(
            "--out only applies to --export; nothing would be written"
        )
    if args.export:
        return _run_export(args)
    if args.describe:
        name = args.describe
        role = describe(name)  # raises UnknownGraphError with a hint
        graph = load_graph(name, seed=args.seed)
        print(format_table(
            ["field", "value"],
            [["name", name],
             ["role", role],
             ["nodes", graph.num_nodes],
             ["edges", graph.num_edges],
             ["volume", float(graph.total_volume)],
             ["connected", bool(graph.is_connected())]],
            title=f"suite graph {name!r}",
        ))
        return 0
    headers = ["name", "nodes", "edges", "role"]
    rows = _rows(args.seed)
    if args.markdown:
        print(format_markdown_table(headers, rows, align="lrrl"))
    else:
        print(format_table(headers, rows,
                           title=f"graph suite (seed={args.seed})"))
    return 0
