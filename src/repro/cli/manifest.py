"""Run manifests: the JSON replay record every CLI run writes.

Every ``python -m repro`` subcommand that produces output files writes a
``manifest.json`` next to them, holding everything needed to reproduce
the result byte for byte:

* the **resolved arguments** — graph source, dynamics spec strings, seed,
  seed count, epsilons, engine — plus a ready-made ``replay_argv`` token
  list that omits execution-only flags (``--out``, ``--workers``,
  ``--cache-dir``), since those may vary without changing the result;
* the **graph record** — suite name or file path, node/edge counts, and
  the :func:`~repro.ncp.runner.graph_fingerprint` CSR-bytes hash scoping
  the result to the exact graph;
* the **execution facts** — package version, worker count, wall time,
  cache hits — which document the run without participating in replay;
* the **outputs** — the files written, relative to the manifest.

``repro ncp``'s manifest embeds one
:meth:`~repro.ncp.runner.NCPRunResult.manifest` record per dynamics, so
the exact seed nodes, chunking, executor, and per-chunk completion of
each ensemble are on disk too.  ``ncp`` also writes the manifest twice:
once with ``"status": "started"`` before the first chunk runs and again
with ``"status": "complete"`` at the end — the started copy is what
``repro ncp --resume`` rebuilds an interrupted run from.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.reporting import jsonable
from repro.datasets.suite import suite_names
from repro.exceptions import InvalidParameterError
from repro.ncp.runner import graph_fingerprint

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "check_manifest",
    "graph_record",
    "jsonable",
    "load_manifest",
    "write_manifest",
]

#: Schema identifier stamped into (and required of) every manifest.
MANIFEST_SCHEMA = "repro.cli/run-manifest/v1"

#: File name the manifest is written under, next to the run's outputs.
MANIFEST_NAME = "manifest.json"

# Keys every valid manifest must carry (see check_manifest).
_REQUIRED_KEYS = (
    "schema",
    "command",
    "repro_version",
    "arguments",
    "replay_argv",
    "graph",
    "outputs",
    "wall_seconds",
)


def _package_version():
    """The installed ``repro`` version (imported lazily to avoid cycles)."""
    import repro

    return getattr(repro, "__version__", "unknown")


def graph_record(graph, *, source, graph_seed=0):
    """Describe a loaded graph for the manifest.

    Records whether ``source`` was a suite name or an external file, the
    CSR-bytes fingerprint, and the basic counts, so a replay can verify
    it is diffusing on the same graph before trusting byte-level
    comparisons.
    """
    name = str(source)
    is_suite = name in suite_names()
    record = {
        "source": name,
        "kind": "suite" if is_suite else "file",
        "fingerprint": graph_fingerprint(graph),
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
    }
    if is_suite:
        record["graph_seed"] = int(graph_seed)
    else:
        record["path"] = str(Path(name).resolve())
    return record


def build_manifest(command, *, arguments, replay_argv, graph, outputs,
                   wall_seconds, **extra):
    """Assemble a manifest dict (see the module docstring for the shape).

    ``extra`` key/value pairs (e.g. ``runs=[...]`` for ``ncp``,
    ``result={...}`` for ``cluster``) are merged at the top level after
    being made JSON-able.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "command": str(command),
        "repro_version": _package_version(),
        "arguments": jsonable(arguments),
        "replay_argv": [str(token) for token in replay_argv],
        "graph": jsonable(graph),
        "outputs": [str(o) for o in outputs],
        "wall_seconds": float(wall_seconds),
    }
    for key, value in extra.items():
        manifest[key] = jsonable(value)
    return check_manifest(manifest)


def check_manifest(manifest):
    """Validate the manifest shape; returns it unchanged.

    Raised errors are :class:`~repro.exceptions.InvalidParameterError`,
    so both the writer (a CLI bug) and a reader handed a foreign JSON
    file fail with the library's own exception style.
    """
    if not isinstance(manifest, dict):
        raise InvalidParameterError(
            f"manifest must be a JSON object; got {type(manifest).__name__}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise InvalidParameterError(f"manifest is missing keys: {missing}")
    if manifest["schema"] != MANIFEST_SCHEMA:
        raise InvalidParameterError(
            f"unsupported manifest schema {manifest['schema']!r}; "
            f"expected {MANIFEST_SCHEMA!r}"
        )
    return manifest


def write_manifest(directory, manifest, *, name=MANIFEST_NAME):
    """Write the manifest into ``directory``; returns the path.

    ``name`` overrides the file name for commands whose output is a
    single file in a shared directory (``datasets --export`` writes
    ``<file>.manifest.json`` so it can never clobber another run's
    ``manifest.json``).
    """
    path = Path(directory) / name
    path.write_text(
        json.dumps(check_manifest(manifest), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_manifest(path):
    """Read and validate a manifest from a file or its directory."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    return check_manifest(json.loads(path.read_text(encoding="utf-8")))
