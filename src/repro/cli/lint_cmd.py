"""``repro lint`` — run the AST invariant checker over the codebase.

Exit codes follow the linter convention: 0 on a clean tree, 1 when
findings survive the baseline, 2 on usage errors (unknown rules, missing
paths — any :class:`~repro.exceptions.ReproError`), and the shared
BrokenPipeError -> 141 convention of :func:`repro.cli.main` holds for
every output path.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (
    format_findings,
    lint_paths,
    load_baseline,
    registered_rules,
    write_baseline,
)
from repro.analysis.findings import OUTPUT_FORMATS
from repro.core.reporting import format_table
from repro.exceptions import InvalidParameterError


def configure_parser(subparsers):
    """Register the ``lint`` subcommand on the CLI parser."""
    parser = subparsers.add_parser(
        "lint",
        help="check the registry/determinism/cache-versioning contracts",
        description=(
            "Run the AST-based invariant checker (repro.analysis) over "
            "python files or directories: registry dispatch instead of "
            "string comparisons, cache-version discipline, determinism "
            "hazards, exception policy, deprecation-shim policy, and "
            "@njit kernel purity.  Exits 0 on a clean tree, 1 on "
            "findings, 2 on usage errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (directories are walked for "
             "*.py; required unless --list is given)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids/codes/aliases to run "
             "(default: every registered rule; see --list)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids/codes/aliases to skip",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help="path glob to skip (repeatable), e.g. 'tests/fixtures/*'",
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default="human",
        help="finding output style: human (path:line:col lines), json "
             "(machine-readable report), or github (GitHub Actions "
             "::error annotations) (default: human)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="shrink-only baseline file: known findings listed there are "
             "forgiven (new ones still fail); see --write-baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the --baseline path (or "
             "lint-baseline.json) instead of failing on them",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list every registered rule (id, code, severity, one-line "
             "description, aliases) and exit",
    )
    parser.set_defaults(run=run)
    return parser


def _run_list():
    rows = [
        [rule.key, rule.code, rule.severity, rule.description,
         ", ".join(rule.aliases)]
        for rule in registered_rules().values()
    ]
    print(format_table(
        ["rule", "code", "severity", "description", "aliases"],
        rows,
        title=f"registered lint rules ({len(rows)})",
    ))
    return 0


def run(args):
    """Execute ``repro lint`` (see :func:`configure_parser`)."""
    if args.list_rules:
        return _run_list()
    if not args.paths:
        raise InvalidParameterError(
            "lint needs at least one file or directory to check "
            "(or --list to show the registered rules)"
        )
    baseline = None
    if args.baseline is not None and not args.write_baseline:
        baseline = load_baseline(args.baseline)
    report = lint_paths(
        args.paths,
        select=args.select,
        ignore=args.ignore,
        exclude=tuple(args.exclude),
        baseline=baseline,
    )
    if args.write_baseline:
        target = Path(args.baseline or "lint-baseline.json")
        write_baseline(target, report.all_findings())
        print(
            f"wrote {target} ({len(report.all_findings())} finding(s) "
            f"across {report.files_checked} file(s))"
        )
        return 0
    output = format_findings(report.findings, args.format)
    if output:
        print(output)
    if args.format == "human":
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s) "
            f"[{len(report.rules)} rule(s)"
        )
        if report.baselined:
            summary += f"; {len(report.baselined)} baselined"
        summary += "]"
        print(summary)
        for key, surplus in report.stale_baseline.items():
            print(
                f"note: baseline entry {key!r} is stale by {surplus} "
                "(the tree improved; regenerate with --write-baseline)"
            )
    return 0 if report.ok else 1
