"""Shared CLI plumbing: graph resolution, list parsing, output dirs."""

from __future__ import annotations

from pathlib import Path

from repro.cli.manifest import graph_record
# Re-exported: the CLI manifests time themselves with the same stopwatch
# the experiment records use.
from repro.core.experiments import Stopwatch  # noqa: F401
from repro.datasets.suite import load_any_graph, suite_names
from repro.exceptions import InvalidParameterError


def add_graph_arguments(parser, *, default=None, required=None):
    """Attach the shared ``--graph`` / ``--graph-seed`` options.

    By default ``--graph`` is required exactly when no ``default`` is
    given; pass ``required=False`` for commands that can obtain the
    graph elsewhere (``repro ncp --resume`` reads it from the manifest)
    and validate the either/or themselves.
    """
    names = ", ".join(suite_names())
    parser.add_argument(
        "--graph",
        default=default,
        required=(default is None) if required is None else required,
        metavar="NAME|PATH",
        help=(
            f"workload graph: a suite name ({names}), a scale-tier name "
            f"(rmat-*/lfr-*, see 'repro datasets'), or a path to an "
            f"edge-list (.tsv), .json, or binary .reprograph graph file"
        ),
    )
    parser.add_argument(
        "--graph-seed",
        type=int,
        default=0,
        metavar="N",
        help="generator seed used when --graph names a suite graph "
             "(default: 0)",
    )


def resolve_graph(args):
    """Load ``args.graph`` via the suite/file bridge; return (graph, record).

    The record is the manifest's ``graph`` section.  Unknown names raise
    :class:`~repro.datasets.UnknownGraphError` (with a did-you-mean
    suggestion), which :func:`repro.cli.main` turns into a clean
    ``error:`` line and exit code 2.
    """
    graph = load_any_graph(args.graph, seed=args.graph_seed)
    return graph, graph_record(
        graph, source=args.graph, graph_seed=args.graph_seed
    )


def parse_int_list(text, *, name):
    """Parse ``"0,5,12"`` into a list of ints."""
    try:
        values = [int(p) for p in str(text).split(",") if p.strip()]
    except ValueError:
        raise InvalidParameterError(
            f"{name}: expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise InvalidParameterError(f"{name}: expected at least one integer")
    return values


def parse_float_list(text, *, name):
    """Parse ``"1e-3,1e-4"`` into a tuple of floats."""
    try:
        values = tuple(float(p) for p in str(text).split(",") if p.strip())
    except ValueError:
        raise InvalidParameterError(
            f"{name}: expected comma-separated numbers, got {text!r}"
        ) from None
    if not values:
        raise InvalidParameterError(f"{name}: expected at least one number")
    return values


def ensure_out_dir(path):
    """Create (if needed) and return the output directory."""
    out = Path(path)
    out.mkdir(parents=True, exist_ok=True)
    return out
