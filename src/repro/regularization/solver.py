"""Generic solvers for the regularized SDP (Problem (5)).

Two first-order methods over the spectrahedron ``{Y ⪰ 0, Tr Y = 1}`` in the
deflated coordinates of :class:`~repro.regularization.sdp.SpectralSDP`:

* :func:`mirror_descent` — matrix exponentiated gradient (entropic mirror
  descent), the natural geometry for density matrices; iterates stay
  strictly positive definite, so even the log-det barrier's gradient is
  well-defined along the path.
* :func:`projected_gradient` — Euclidean projected gradient with projection
  onto the spectrahedron (eigendecomposition + simplex projection of the
  eigenvalues).

These are validation tools: the closed forms of
:mod:`repro.regularization.closed_forms` are exact, and experiments E4–E6
check that an *independent* numerical optimizer converges to the same
matrices (the ablation of DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_int, check_positive
from repro.exceptions import ConvergenceError


@dataclass
class SDPSolveResult:
    """Result of a first-order SDP solve.

    Attributes
    ----------
    solution:
        Final deflated density matrix ``Y``.
    objective:
        Final value of ``Tr(L̂ Y) + (1/η) G(Y)``.
    iterations:
        Iterations performed.
    converged:
        Whether the iterate change fell below tolerance.
    objective_history:
        Objective value per iteration.
    """

    solution: np.ndarray
    objective: float
    iterations: int
    converged: bool
    objective_history: list = field(default_factory=list)


def _objective(deflated_laplacian, regularizer, eta, Y):
    return float(np.trace(deflated_laplacian @ Y)) + regularizer.value(Y) / eta


def _gradient(deflated_laplacian, regularizer, eta, Y):
    return deflated_laplacian + regularizer.gradient(Y) / eta


def simplex_projection(values):
    """Euclidean projection of a vector onto the probability simplex."""
    v = np.asarray(values, dtype=float)
    sorted_desc = np.sort(v)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    rho_candidates = sorted_desc - cumulative / (np.arange(v.size) + 1)
    rho = int(np.max(np.nonzero(rho_candidates > 0)[0]))
    theta = cumulative[rho] / (rho + 1)
    return np.maximum(v - theta, 0.0)


def spectrahedron_projection(matrix):
    """Projection onto ``{Y ⪰ 0, Tr Y = 1}`` in Frobenius norm."""
    sym = (np.asarray(matrix, dtype=float) + np.asarray(matrix).T) / 2.0
    values, vectors = np.linalg.eigh(sym)
    projected = simplex_projection(values)
    return (vectors * projected) @ vectors.T


def mirror_descent(
    deflated_laplacian,
    regularizer,
    eta,
    *,
    step_size=None,
    max_iterations=2000,
    tol=1e-10,
    initial=None,
    raise_on_failure=False,
):
    """Matrix exponentiated gradient for the regularized SDP.

    Update: ``Y_{k+1} ∝ exp(log Y_k − s ∇F(Y_k))``, normalized to unit
    trace. With ``Y_0 = I/(n−1)`` every iterate is strictly positive
    definite and feasible.

    Parameters
    ----------
    deflated_laplacian:
        ``L̂`` in deflated coordinates.
    regularizer:
        Object with ``value``/``gradient`` (see
        :mod:`repro.regularization.closed_forms`).
    eta:
        Regularization strength (``1/η`` multiplies the regularizer).
    step_size:
        Mirror step; default ``0.5 η / (1 + ||L̂||)`` which is stable for
        all three regularizers in practice.
    max_iterations, tol:
        Convergence control on the Frobenius change of the iterate.
    initial:
        Starting density (default maximally mixed).
    raise_on_failure:
        Raise :class:`ConvergenceError` when the tolerance is not met.
    """
    L = np.asarray(deflated_laplacian, dtype=float)
    eta = check_positive(eta, "eta")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    tol = check_positive(tol, "tol")
    d = L.shape[0]
    Y = np.eye(d) / d if initial is None else np.asarray(initial, dtype=float)
    history = []
    converged = False
    iterations = 0
    # Maintain the iterate through its matrix logarithm for stability.
    values, vectors = np.linalg.eigh((Y + Y.T) / 2.0)
    log_Y = (vectors * np.log(np.maximum(values, 1e-300))) @ vectors.T
    current_value = _objective(L, regularizer, eta, Y)
    for iterations in range(1, max_iterations + 1):
        grad = _gradient(L, regularizer, eta, Y)
        if step_size is None:
            # Normalize the step by the gradient scale so the log-space move
            # is O(1) regardless of η and the regularizer's curvature.
            step = 1.0 / (1.0 + float(np.linalg.norm(grad, 2)))
        else:
            step = step_size
        # Backtracking on the (convex) objective: halve until non-increase.
        for _ in range(60):
            candidate_log = log_Y - step * grad
            candidate_log = (candidate_log + candidate_log.T) / 2.0
            values, vectors = np.linalg.eigh(candidate_log)
            shifted = values - values.max()
            weights = np.exp(shifted)
            weights /= weights.sum()
            new_Y = (vectors * weights) @ vectors.T
            new_value = _objective(L, regularizer, eta, new_Y)
            if new_value <= current_value + 1e-14 * (1.0 + abs(current_value)):
                break
            step /= 2.0
        log_Y = (
            vectors * (shifted - np.log(np.sum(np.exp(shifted))))
        ) @ vectors.T
        history.append(new_value)
        delta = float(np.linalg.norm(new_Y - Y))
        Y = new_Y
        current_value = new_value
        if delta < tol:
            converged = True
            break
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"mirror descent did not converge in {max_iterations} iterations",
            iterations=iterations,
        )
    return SDPSolveResult(
        solution=Y,
        objective=_objective(L, regularizer, eta, Y),
        iterations=iterations,
        converged=converged,
        objective_history=history,
    )


def projected_gradient(
    deflated_laplacian,
    regularizer,
    eta,
    *,
    step_size=None,
    max_iterations=5000,
    tol=1e-10,
    initial=None,
    raise_on_failure=False,
):
    """Euclidean projected gradient descent on the spectrahedron.

    Suitable for the entropy and p-norm regularizers; the log-det barrier's
    gradient blows up at the boundary, where the Euclidean projection may
    land — use :func:`mirror_descent` for log-det.
    """
    L = np.asarray(deflated_laplacian, dtype=float)
    eta = check_positive(eta, "eta")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    tol = check_positive(tol, "tol")
    d = L.shape[0]
    Y = np.eye(d) / d if initial is None else np.asarray(initial, dtype=float)
    if step_size is None:
        step_size = 0.25 * eta / (1.0 + float(np.linalg.norm(L, 2)))
    history = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = _gradient(L, regularizer, eta, Y)
        new_Y = spectrahedron_projection(Y - step_size * grad)
        history.append(_objective(L, regularizer, eta, new_Y))
        delta = float(np.linalg.norm(new_Y - Y))
        Y = new_Y
        if delta < tol:
            converged = True
            break
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"projected gradient did not converge in {max_iterations} "
            "iterations",
            iterations=iterations,
        )
    return SDPSolveResult(
        solution=Y,
        objective=_objective(L, regularizer, eta, Y),
        iterations=iterations,
        converged=converged,
        objective_history=history,
    )


def kkt_stationarity_residual(deflated_laplacian, regularizer, eta, Y,
                              *, support_tol=1e-10):
    """How far ``Y`` is from stationarity of Problem (5).

    At an optimum, ``∇F(Y) = L̂ + (1/η) ∇G(Y)`` must equal ``μ I`` on the
    support of ``Y`` and dominate ``μ`` off the support (complementary
    slackness with the PSD constraint). Returns the maximum violation:
    spread of the gradient's eigenvalues on the support plus any deficit off
    the support.
    """
    L = np.asarray(deflated_laplacian, dtype=float)
    grad = _gradient(L, regularizer, eta, Y)
    values_Y, vectors_Y = np.linalg.eigh((Y + np.asarray(Y).T) / 2.0)
    grad_in_basis = vectors_Y.T @ grad @ vectors_Y
    diag = np.diag(grad_in_basis)
    on_support = values_Y > support_tol
    if not np.any(on_support):
        return float("inf")
    mu = float(diag[on_support].mean())
    spread = float(np.abs(diag[on_support] - mu).max())
    off_diag = grad_in_basis - np.diag(diag)
    # Off-diagonal blocks between support eigenvectors must vanish too.
    coupling = float(
        np.abs(off_diag[np.ix_(on_support, on_support)]).max()
        if on_support.sum() > 1
        else 0.0
    )
    deficit = 0.0
    if np.any(~on_support):
        deficit = float(max(0.0, mu - diag[~on_support].min()))
    return max(spread, coupling, deficit)
