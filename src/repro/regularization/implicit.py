"""Implicit regularization via early stopping, truncation, and randomness.

Section 2.3 lists the practitioner's implicit regularizers: early stopping
of iterative algorithms, truncating small entries to zero, binning, and
randomization inside the algorithm. This module turns those into measurable
estimators used by experiment E10:

* :func:`early_stopping_path` — treat the power-method iteration count as a
  regularization parameter; report solution quality (Rayleigh quotient) per
  iterate;
* :func:`noise_sensitivity` — the operational meaning of "regularized":
  how much does the output move when the *input graph* is noise-resampled?
  Regularized (early-stopped / truncated) outputs should move less;
* :func:`truncation_path` — the push threshold ε as a regularization
  parameter, reporting support size and distance to the exact answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_int, check_probability
from repro.graph.matrices import (
    normalized_laplacian,
    rayleigh_quotient,
    trivial_eigenvector,
)
from repro.linalg.power import power_method_trajectory


@dataclass
class EarlyStoppingPoint:
    """Power-method iterate treated as a regularized estimator.

    Attributes
    ----------
    iteration:
        Iteration count (the implicit regularization parameter).
    rayleigh:
        Rayleigh quotient of the iterate under the normalized Laplacian
        (solution quality; converges to λ2 from above).
    alignment:
        |cosine| between the iterate and the exact Fiedler vector.
    """

    iteration: int
    rayleigh: float
    alignment: float


def early_stopping_path(graph, num_iterations, *, seed=None, x0=None):
    """Rayleigh/alignment trajectory of the deflated power method.

    Runs the power method for the Fiedler direction (on ``2I − 𝓛`` with the
    trivial eigenvector deflated) and evaluates every iterate, giving the
    regularization path in the iteration count.
    """
    from repro.linalg.fiedler import fiedler_vector

    num_iterations = check_int(num_iterations, "num_iterations", minimum=1)
    laplacian = normalized_laplacian(graph)
    trivial = trivial_eigenvector(graph)

    def flipped(vector):
        return 2.0 * vector - laplacian @ vector

    iterates = power_method_trajectory(
        flipped, graph.num_nodes, num_iterations,
        deflate=[trivial], seed=seed, x0=x0,
    )
    exact = fiedler_vector(graph, method="exact")
    points = []
    for k, iterate in enumerate(iterates, start=1):
        points.append(
            EarlyStoppingPoint(
                iteration=k,
                rayleigh=rayleigh_quotient(laplacian, iterate),
                alignment=float(abs(exact @ iterate)),
            )
        )
    return points


def noise_sensitivity(graph, estimator, *, flip_probability=0.05,
                      num_trials=8, seed=None):
    """Output variability of a graph algorithm under input-noise resampling.

    Parameters
    ----------
    graph:
        The base graph.
    estimator:
        Callable ``estimator(graph, rng) -> vector``; the algorithm whose
        robustness is being measured (e.g. "power method stopped at k").
    flip_probability:
        Edge resampling rate per trial.
    num_trials:
        Number of noise resamples.
    seed:
        RNG seed.

    Returns
    -------
    mean_deviation:
        Average sign-aligned distance between the noisy outputs and the
        clean output — small means robust, i.e. statistically regularized
        in the operational sense of Section 2.3.
    deviations:
        Per-trial distances.
    """
    from repro.graph.random_generators import noisy_graph

    flip_probability = check_probability(
        flip_probability, "flip_probability", inclusive_low=True
    )
    num_trials = check_int(num_trials, "num_trials", minimum=1)
    rng = as_rng(seed)
    baseline = np.asarray(estimator(graph, as_rng(12345)), dtype=float)
    baseline = baseline / (np.linalg.norm(baseline) + 1e-300)
    deviations = []
    for _ in range(num_trials):
        trial_seed = int(rng.integers(2**31 - 1))
        perturbed = noisy_graph(graph, flip_probability, seed=trial_seed)
        if not perturbed.is_connected():
            perturbed, _ = perturbed.largest_component()
            if perturbed.num_nodes != graph.num_nodes:
                # Nodes were lost; skip this resample (rare at small noise).
                continue
        output = np.asarray(estimator(perturbed, as_rng(12345)), dtype=float)
        output = output / (np.linalg.norm(output) + 1e-300)
        deviations.append(
            min(
                float(np.linalg.norm(output - baseline)),
                float(np.linalg.norm(output + baseline)),
            )
        )
    if not deviations:
        return float("nan"), []
    return float(np.mean(deviations)), deviations


@dataclass
class TruncationPoint:
    """Push output at one truncation threshold ε.

    Attributes
    ----------
    epsilon:
        The threshold.
    support_size:
        Nodes with nonzero approximation.
    work:
        Edge work performed.
    error:
        Infinity-norm distance to the exact personalized PageRank, in
        degree-normalized units (the guarantee is ``error <= ε``).
    """

    epsilon: float
    support_size: int
    work: int
    error: float


def truncation_path(graph, seed_nodes, epsilons, *, alpha=0.15):
    """Push truncation threshold as a regularization parameter.

    For each ε, run ACL push and compare with the exact lazy PPR; returns
    :class:`TruncationPoint` records showing the accuracy/locality tradeoff.
    """
    from repro.diffusion.pagerank import lazy_pagerank_exact
    from repro.diffusion.push import approximate_ppr_push
    from repro.diffusion.seeds import indicator_seed

    seed_vector = indicator_seed(graph, seed_nodes)
    exact = lazy_pagerank_exact(graph, alpha, seed_vector)
    degrees = graph.degrees
    points = []
    for epsilon in epsilons:
        result = approximate_ppr_push(
            graph, seed_vector, alpha=alpha, epsilon=float(epsilon)
        )
        error = float(
            np.max(np.abs(result.approximation - exact) / degrees)
        )
        points.append(
            TruncationPoint(
                epsilon=float(epsilon),
                support_size=int(np.count_nonzero(result.approximation)),
                work=result.work,
                error=error,
            )
        )
    return points
