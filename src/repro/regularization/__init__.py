"""Regularization: the explicit f(x)+λg(x) framework (Eq. 1), the spectral
SDP (Problems 3–5), closed-form regularized optima, first-order SDP solvers,
the diffusion ≡ regularized-SDP verification harness, and implicit
regularization estimators."""

from repro.regularization.closed_forms import (
    GeneralizedEntropy,
    LogDeterminant,
    MatrixPNorm,
    eta_for_heat_kernel,
    eta_for_lazy_walk,
    eta_for_pagerank,
    heat_kernel_density,
    lazy_walk_density,
    pagerank_density,
)
from repro.regularization.equivalence import (
    EquivalenceReport,
    assert_equivalence,
    verify_all,
    verify_heat_kernel,
    verify_lazy_walk,
    verify_pagerank,
)
from repro.regularization.implicit import (
    EarlyStoppingPoint,
    TruncationPoint,
    early_stopping_path,
    noise_sensitivity,
    truncation_path,
)
from repro.regularization.objectives import (
    RegularizedSolution,
    effective_degrees_of_freedom,
    graph_tikhonov,
    lasso_ista,
    ridge_path,
    ridge_regression,
    soft_threshold,
)
from repro.regularization.path import (
    PathPoint,
    heat_kernel_path,
    lazy_walk_path,
    pagerank_path,
    path_is_monotone,
    tradeoff_table,
)
from repro.regularization.sdp import (
    SpectralSDP,
    deflation_basis,
    density_from_vector,
    normalize_to_density,
)
from repro.regularization.solver import (
    SDPSolveResult,
    kkt_stationarity_residual,
    mirror_descent,
    projected_gradient,
    simplex_projection,
    spectrahedron_projection,
)

__all__ = [
    "EarlyStoppingPoint",
    "EquivalenceReport",
    "GeneralizedEntropy",
    "LogDeterminant",
    "MatrixPNorm",
    "PathPoint",
    "RegularizedSolution",
    "SDPSolveResult",
    "SpectralSDP",
    "TruncationPoint",
    "assert_equivalence",
    "deflation_basis",
    "density_from_vector",
    "early_stopping_path",
    "effective_degrees_of_freedom",
    "eta_for_heat_kernel",
    "eta_for_lazy_walk",
    "eta_for_pagerank",
    "graph_tikhonov",
    "heat_kernel_density",
    "heat_kernel_path",
    "kkt_stationarity_residual",
    "lasso_ista",
    "lazy_walk_density",
    "lazy_walk_path",
    "mirror_descent",
    "noise_sensitivity",
    "normalize_to_density",
    "pagerank_density",
    "pagerank_path",
    "path_is_monotone",
    "projected_gradient",
    "ridge_path",
    "ridge_regression",
    "simplex_projection",
    "soft_threshold",
    "spectrahedron_projection",
    "tradeoff_table",
    "truncation_path",
    "verify_all",
    "verify_heat_kernel",
    "verify_lazy_walk",
    "verify_pagerank",
]
