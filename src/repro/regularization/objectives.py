"""Explicit regularization: the ``f(x) + λ g(x)`` framework of Equation (1).

Section 2.3 of the paper formulates classical (explicit) statistical
regularization as

    x̂ = argmin_x f(x) + λ g(x),

with a loss ``f`` and a "geometric capacity control" ``g``. This module
implements that framework and its canonical instances — ridge (Tikhonov),
lasso (via ISTA, the iterative soft-thresholding the paper's Section 3.3
compares push-style truncation to), and graph-Laplacian (smoothness)
regularization — so that the *implicit* regularization experiments have an
explicit baseline to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro._validation import check_int, check_positive
from repro.exceptions import ConvergenceError, InvalidParameterError


@dataclass
class RegularizedSolution:
    """Solution record of an explicitly regularized problem.

    Attributes
    ----------
    solution:
        The minimizer x̂.
    loss_value:
        ``f(x̂)``.
    penalty_value:
        ``g(x̂)``.
    lam:
        The tradeoff parameter λ.
    iterations:
        Iterations used (0 for closed-form solves).
    """

    solution: np.ndarray
    loss_value: float
    penalty_value: float
    lam: float
    iterations: int = 0


def ridge_regression(design, target, lam):
    """Ridge (ℓ2-regularized ℓ2) regression, solved in closed form.

    ``x̂ = (A^T A + λ I)^{-1} A^T b`` — the paper's example of a regularized
    problem "at least no easier" than the original.
    """
    A = np.asarray(design, dtype=float)
    b = np.asarray(target, dtype=float)
    lam = check_positive(lam, "lam", allow_zero=True)
    if A.ndim != 2 or b.shape != (A.shape[0],):
        raise InvalidParameterError("design/target shapes are inconsistent")
    d = A.shape[1]
    gram = A.T @ A + lam * np.eye(d)
    solution = np.linalg.solve(gram, A.T @ b)
    residual = A @ solution - b
    return RegularizedSolution(
        solution=solution,
        loss_value=float(residual @ residual),
        penalty_value=float(solution @ solution),
        lam=lam,
    )


def soft_threshold(vector, threshold):
    """Elementwise soft-thresholding ``sign(v) max(|v| − τ, 0)``.

    The proximal operator of the ℓ1 norm; the paper (Section 3.3) points out
    its structural kinship with the push algorithm's truncation step.
    """
    v = np.asarray(vector, dtype=float)
    threshold = check_positive(threshold, "threshold", allow_zero=True)
    return np.sign(v) * np.maximum(np.abs(v) - threshold, 0.0)


def lasso_ista(design, target, lam, *, tol=1e-10, max_iterations=50_000,
               raise_on_failure=True):
    """Lasso (ℓ1-regularized ℓ2) regression by ISTA.

    Minimizes ``0.5 ||A x − b||² + λ ||x||₁`` with iterative
    soft-thresholding at step ``1/||A||²``.
    """
    A = np.asarray(design, dtype=float)
    b = np.asarray(target, dtype=float)
    lam = check_positive(lam, "lam", allow_zero=True)
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    tol = check_positive(tol, "tol")
    step = 1.0 / (np.linalg.norm(A, 2) ** 2 + 1e-300)
    x = np.zeros(A.shape[1])
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        gradient_step = x - step * (A.T @ (A @ x - b))
        new_x = soft_threshold(gradient_step, lam * step)
        if np.linalg.norm(new_x - x) < tol:
            x = new_x
            converged = True
            break
        x = new_x
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"ISTA did not converge in {max_iterations} iterations",
            iterations=iterations,
        )
    residual = A @ x - b
    return RegularizedSolution(
        solution=x,
        loss_value=float(0.5 * residual @ residual),
        penalty_value=float(np.abs(x).sum()),
        lam=lam,
        iterations=iterations,
    )


def graph_tikhonov(graph, observations, lam, *, tol=1e-8):
    """Laplacian-smoothed signal recovery on a graph.

    ``x̂ = argmin ||x − y||² + λ x^T L x``, solved via CG on the SPD system
    ``(I + λ L) x = y`` — the graph version of requiring "a smoothness
    condition on the solution" (Section 2.3).
    """
    from repro.graph.matrices import combinatorial_laplacian
    from repro.linalg.solvers import conjugate_gradient

    y = np.asarray(observations, dtype=float)
    lam = check_positive(lam, "lam", allow_zero=True)
    if y.shape != (graph.num_nodes,):
        raise InvalidParameterError(
            f"observations must have shape ({graph.num_nodes},)"
        )
    n = graph.num_nodes
    system = (
        sparse.identity(n, format="csr")
        + lam * combinatorial_laplacian(graph)
    )
    result = conjugate_gradient(system, y, tol=tol, max_iterations=100_000)
    x = result.solution
    from repro.graph.matrices import laplacian_quadratic_form

    return RegularizedSolution(
        solution=x,
        loss_value=float(np.sum((x - y) ** 2)),
        penalty_value=laplacian_quadratic_form(graph, x),
        lam=lam,
        iterations=result.iterations,
    )


def ridge_path(design, target, lams):
    """Ridge solutions along a λ grid (the explicit regularization path).

    Returns a list of :class:`RegularizedSolution`; E11 compares this path
    with the implicit path traced by sketch size.
    """
    return [ridge_regression(design, target, lam) for lam in lams]


def effective_degrees_of_freedom(design, lam):
    """Ridge effective degrees of freedom ``Tr[A (A^T A + λI)^{-1} A^T]``.

    A standard scalar summary of "how regularized" a linear smoother is;
    used to place implicit regularizers on a common axis with explicit ones.
    """
    A = np.asarray(design, dtype=float)
    lam = check_positive(lam, "lam", allow_zero=True)
    singular_values = np.linalg.svd(A, compute_uv=False)
    return float(np.sum(singular_values**2 / (singular_values**2 + lam)))
