"""Regularization paths for the three diffusion dynamics.

Each dynamics has an "aggressiveness" parameter (t, γ, or k; Section 3.1).
Sweeping it traces a path through the quality/niceness plane: the
unregularized end approaches the Fiedler optimum ``λ2`` of Problem (3)-(4),
the heavily regularized end approaches the maximally mixed density. This
module computes those paths and the associated tradeoff curves — the SDP
analogue of a ridge path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.regularization.closed_forms import (
    GeneralizedEntropy,
    LogDeterminant,
    MatrixPNorm,
    eta_for_lazy_walk,
    eta_for_pagerank,
    heat_kernel_density,
    lazy_walk_density,
    pagerank_density,
)
from repro.regularization.sdp import SpectralSDP


@dataclass
class PathPoint:
    """One point on a diffusion regularization path.

    Attributes
    ----------
    parameter:
        The dynamics parameter (t, γ, or k).
    eta:
        Equivalent SDP regularization strength.
    rayleigh:
        Solution quality ``Tr(𝓛 X)`` (lower = better objective).
    regularizer_value:
        ``G(X)`` (lower = "nicer" under that G).
    entropy:
        Von Neumann entropy of X (a G-independent niceness summary:
        high entropy = smooth/spread, low = concentrated).
    effective_rank:
        ``exp(entropy)`` — participation dimension of the density.
    distance_to_optimum:
        Frobenius distance to the rank-one unregularized optimum.
    """

    parameter: float
    eta: float
    rayleigh: float
    regularizer_value: float
    entropy: float
    effective_rank: float
    distance_to_optimum: float


def _point(sdp, ambient, parameter, eta, regularizer, optimum):
    eigenvalues = np.linalg.eigvalsh((ambient + ambient.T) / 2.0)
    positive = eigenvalues[eigenvalues > 1e-15]
    entropy = float(-np.sum(positive * np.log(positive)))
    return PathPoint(
        parameter=float(parameter),
        eta=float(eta),
        rayleigh=sdp.objective(ambient),
        regularizer_value=float(regularizer.value(sdp.restrict(ambient))),
        entropy=entropy,
        effective_rank=float(np.exp(entropy)),
        distance_to_optimum=float(np.linalg.norm(ambient - optimum)),
    )


def heat_kernel_path(graph, times):
    """Path of Heat Kernel densities over a grid of times ``t = η``."""
    sdp = SpectralSDP.from_graph(graph)
    optimum, _ = sdp.exact_solution()
    regularizer = GeneralizedEntropy()
    return [
        _point(sdp, heat_kernel_density(sdp, t), t, t, regularizer, optimum)
        for t in times
    ]


def pagerank_path(graph, gammas):
    """Path of PageRank densities over a grid of teleport parameters."""
    sdp = SpectralSDP.from_graph(graph)
    optimum, _ = sdp.exact_solution()
    regularizer = LogDeterminant()
    points = []
    for gamma in gammas:
        eta, _mu = eta_for_pagerank(sdp, gamma)
        ambient = pagerank_density(sdp, gamma)
        points.append(_point(sdp, ambient, gamma, eta, regularizer, optimum))
    return points


def lazy_walk_path(graph, step_counts, *, alpha=0.6):
    """Path of lazy-walk densities over a grid of step counts ``k``."""
    sdp = SpectralSDP.from_graph(graph)
    optimum, _ = sdp.exact_solution()
    points = []
    for k in step_counts:
        eta, p = eta_for_lazy_walk(sdp, alpha, int(k))
        regularizer = MatrixPNorm(p)
        ambient = lazy_walk_density(sdp, alpha, int(k))
        points.append(_point(sdp, ambient, k, eta, regularizer, optimum))
    return points


def tradeoff_table(points):
    """Summarize a path as (parameter, rayleigh, entropy, distance) rows."""
    return [
        (p.parameter, p.rayleigh, p.entropy, p.distance_to_optimum)
        for p in points
    ]


def path_is_monotone(points, attribute, *, increasing=True, atol=1e-9):
    """Check monotonicity of an attribute along a path.

    The theory predicts, e.g., that ``rayleigh`` decreases and ``entropy``
    decreases as the heat-kernel time grows (less regularization); tests use
    this helper to assert those shapes.
    """
    values = [getattr(p, attribute) for p in points]
    pairs = zip(values[:-1], values[1:])
    if increasing:
        return all(b >= a - atol for a, b in pairs)
    return all(b <= a + atol for a, b in pairs)
