"""Numerical verification of the diffusion ≡ regularized-SDP theorem.

This module is the harness behind experiments E4–E6: for each of the three
dynamics it assembles

1. the density matrix the *diffusion* computes
   (:func:`~repro.regularization.closed_forms.heat_kernel_density` etc.),
2. the *closed-form optimum* of the matching regularized SDP,
3. optionally an *independent first-order solve* of the same SDP,

and reports the pairwise distances, the KKT stationarity residual, the
feasibility violations, and the objective gap. If the paper's Section 3.1
claim holds, (1) and (2) coincide to machine precision and (3) converges to
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.regularization.closed_forms import (
    GeneralizedEntropy,
    LogDeterminant,
    MatrixPNorm,
    eta_for_heat_kernel,
    eta_for_lazy_walk,
    eta_for_pagerank,
    heat_kernel_density,
    lazy_walk_density,
    pagerank_density,
)
from repro.regularization.sdp import SpectralSDP
from repro.regularization.solver import (
    kkt_stationarity_residual,
    mirror_descent,
)


@dataclass
class EquivalenceReport:
    """Verification record for one (dynamics, parameter) pair.

    Attributes
    ----------
    dynamics:
        ``"heat_kernel"``, ``"pagerank"``, or ``"lazy_walk"``.
    parameter_description:
        Human-readable parameter setting (e.g. ``"t=2.0"``).
    eta:
        The SDP regularization strength the parameter maps to.
    diffusion_vs_closed_form:
        Frobenius distance between the diffusion density and the SDP
        closed-form optimum (the theorem says ~0).
    solver_vs_closed_form:
        Frobenius distance between the first-order solver's answer and the
        closed form (``None`` when the solver was skipped).
    kkt_residual:
        Stationarity violation of the closed form.
    feasibility:
        Feasibility violations of the diffusion density.
    objective_value:
        Regularized objective at the closed form.
    rayleigh_value:
        Unregularized objective ``Tr(𝓛 X)`` at the closed form (the
        "solution quality" axis of the quality/niceness tradeoff).
    """

    dynamics: str
    parameter_description: str
    eta: float
    diffusion_vs_closed_form: float
    solver_vs_closed_form: float | None
    kkt_residual: float
    feasibility: dict
    objective_value: float
    rayleigh_value: float


def _verify(sdp, regularizer, eta, diffusion_ambient, description,
            run_solver, solver_iterations):
    closed_deflated = regularizer.closed_form(sdp.deflated_laplacian, eta)
    closed_ambient = sdp.lift(closed_deflated)
    diffusion_gap = float(
        np.linalg.norm(diffusion_ambient - closed_ambient)
    )
    solver_gap = None
    if run_solver:
        solve = mirror_descent(
            sdp.deflated_laplacian, regularizer, eta,
            max_iterations=solver_iterations, tol=1e-12,
        )
        solver_gap = float(np.linalg.norm(solve.solution - closed_deflated))
    kkt = kkt_stationarity_residual(
        sdp.deflated_laplacian, regularizer, eta, closed_deflated
    )
    objective = float(
        np.trace(sdp.deflated_laplacian @ closed_deflated)
        + regularizer.value(closed_deflated) / eta
    )
    rayleigh = sdp.objective(closed_ambient)
    return EquivalenceReport(
        dynamics=regularizer.dynamics,
        parameter_description=description,
        eta=eta,
        diffusion_vs_closed_form=diffusion_gap,
        solver_vs_closed_form=solver_gap,
        kkt_residual=kkt,
        feasibility=sdp.feasibility_violations(diffusion_ambient),
        objective_value=objective,
        rayleigh_value=rayleigh,
    )


def verify_heat_kernel(graph, t, *, run_solver=False, solver_iterations=3000):
    """Check Heat Kernel(t) ≡ entropy-regularized SDP with ``η = t``."""
    sdp = SpectralSDP.from_graph(graph)
    eta = eta_for_heat_kernel(t)
    diffusion = heat_kernel_density(sdp, t)
    return _verify(
        sdp, GeneralizedEntropy(), eta, diffusion, f"t={t:g}",
        run_solver, solver_iterations,
    )


def verify_pagerank(graph, gamma, *, run_solver=False, solver_iterations=3000):
    """Check PageRank(γ) ≡ log-det-regularized SDP with the η(γ) map."""
    sdp = SpectralSDP.from_graph(graph)
    eta, _mu = eta_for_pagerank(sdp, gamma)
    diffusion = pagerank_density(sdp, gamma)
    return _verify(
        sdp, LogDeterminant(), eta, diffusion, f"gamma={gamma:g}",
        run_solver, solver_iterations,
    )


def verify_lazy_walk(graph, alpha, num_steps, *, run_solver=False,
                     solver_iterations=3000):
    """Check LazyWalk(α, k) ≡ p-norm-regularized SDP, ``p = 1 + 1/k``."""
    sdp = SpectralSDP.from_graph(graph)
    eta, p = eta_for_lazy_walk(sdp, alpha, num_steps)
    diffusion = lazy_walk_density(sdp, alpha, num_steps)
    return _verify(
        sdp, MatrixPNorm(p), eta, diffusion,
        f"alpha={alpha:g}, k={num_steps}", run_solver, solver_iterations,
    )


def verify_all(graph, *, t=2.0, gamma=0.2, alpha=0.6, num_steps=5,
               run_solver=False):
    """Run all three verifications on one graph; returns a list of reports."""
    return [
        verify_heat_kernel(graph, t, run_solver=run_solver),
        verify_pagerank(graph, gamma, run_solver=run_solver),
        verify_lazy_walk(graph, alpha, num_steps, run_solver=run_solver),
    ]


def assert_equivalence(report, *, atol=1e-8):
    """Raise if a report's diffusion/closed-form gap exceeds ``atol``."""
    if report.diffusion_vs_closed_form > atol:
        raise InvalidParameterError(
            f"{report.dynamics} ({report.parameter_description}): diffusion "
            f"and regularized-SDP optimum differ by "
            f"{report.diffusion_vs_closed_form:.3e} > {atol:.1e}"
        )
    return report
