"""The three regularizers of Problem (5) and their closed-form optima.

Problem (5) of the paper is the regularized SDP

    minimize    Tr(𝓛 X) + (1/η) G(X)
    subject to  X ⪰ 0,  Tr(X) = 1,  X D^{1/2} 1 = 0,

and the theorem restated in Section 3.1 (from Mahoney–Orecchia [32]) says
that its exact solution *is* the output of one of the three diffusion
dynamics, for the matching choice of regularizer:

=====================  =============================  =====================
G(X)                   closed-form optimum            diffusion dynamics
=====================  =============================  =====================
generalized entropy    ``∝ exp(-η L̂)``                Heat Kernel, t = η
``Tr(X log X)``
log-determinant        ``∝ (L̂ + μI)^{-1}``            PageRank, μ = γ/(1−γ)
``−log det X``
matrix p-norm          ``∝ ((μI − L̂)_+)^{1/(p−1)}``   Lazy Walk, p = 1+1/k
``(1/p) Tr(X^p)``
=====================  =============================  =====================

All solutions commute with the deflated Laplacian ``L̂``, so each closed form
is computed in L̂'s eigenbasis; the Lagrange multiplier μ of the trace
constraint is found by a monotone scalar root-find.

Every regularizer class exposes ``value``/``gradient`` (for the generic
solver in :mod:`repro.regularization.solver`) and ``closed_form`` (the
analytic optimum used in experiments E4–E6).
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_int, check_positive, check_probability
from repro.exceptions import InvalidParameterError
from repro.regularization.sdp import normalize_to_density


def _symmetric_eigh(matrix):
    sym = (np.asarray(matrix, dtype=float) + np.asarray(matrix).T) / 2.0
    return np.linalg.eigh(sym)


def _assemble(vectors, eigenvalues):
    return (vectors * eigenvalues) @ vectors.T


class GeneralizedEntropy:
    """Negative von Neumann entropy ``G(X) = Tr(X log X)``.

    Its regularized optimum is the (trace-normalized) heat kernel — the
    first row of the paper's correspondence.
    """

    name = "generalized_entropy"
    dynamics = "heat_kernel"

    def value(self, density):
        values, _ = _symmetric_eigh(density)
        positive = values[values > 1e-300]
        return float(np.sum(positive * np.log(positive)))

    def gradient(self, density):
        values, vectors = _symmetric_eigh(density)
        clipped = np.maximum(values, 1e-300)
        return _assemble(vectors, np.log(clipped) + 1.0)

    def closed_form(self, deflated_laplacian, eta):
        """``Y* = exp(-η L̂) / Tr exp(-η L̂)``."""
        eta = check_positive(eta, "eta")
        values, vectors = _symmetric_eigh(deflated_laplacian)
        # Shift for numerical stability; the shift cancels in normalization.
        weights = np.exp(-eta * (values - values.min()))
        return _assemble(vectors, weights / weights.sum())


class LogDeterminant:
    """Log-determinant barrier ``G(X) = −log det X``.

    Its regularized optimum is the (trace-normalized) PageRank resolvent —
    the second row of the correspondence.
    """

    name = "log_determinant"
    dynamics = "pagerank"

    def value(self, density):
        values, _ = _symmetric_eigh(density)
        if np.any(values <= 0):
            return float("inf")
        return float(-np.sum(np.log(values)))

    def gradient(self, density, *, floor=1e-14):
        """Gradient ``−X^{-1}``.

        Eigenvalues are floored at ``floor`` so that iterates of first-order
        solvers that graze the boundary (where the barrier is +inf) receive a
        large-but-finite restoring gradient instead of an overflow.
        """
        values, vectors = _symmetric_eigh(density)
        if np.any(values < -1e-8):
            raise InvalidParameterError(
                "log-det gradient needs a (near-)PSD density"
            )
        return _assemble(vectors, -1.0 / np.maximum(values, floor))

    def closed_form(self, deflated_laplacian, eta):
        """``Y* = (1/η) (L̂ + μ I)^{-1}`` with μ solving ``Tr Y* = 1``.

        The trace is strictly decreasing in μ on ``(−λ_min, ∞)``, so a
        bracketed bisection finds the unique root.
        """
        eta = check_positive(eta, "eta")
        values, vectors = _symmetric_eigh(deflated_laplacian)
        lam_min = float(values.min())

        def trace_at(mu):
            return float(np.sum(1.0 / (eta * (values + mu))))

        mu = self._solve_mu(trace_at, lower_open=-lam_min)
        return _assemble(vectors, 1.0 / (eta * (values + mu)))

    @staticmethod
    def _solve_mu(trace_at, *, lower_open, tol=1e-14, max_iterations=500):
        """Bisection for ``trace_at(μ) = 1`` on ``(lower_open, ∞)``."""
        span = 1.0
        low = lower_open + 1e-12
        while trace_at(low) < 1.0:
            # Even arbitrarily close to the pole the trace is below 1 only
            # if the problem is degenerate; tighten toward the pole.
            low = lower_open + (low - lower_open) / 16.0
            if low - lower_open < 1e-300:
                raise InvalidParameterError(
                    "log-det closed form: trace constraint unreachable"
                )
        high = lower_open + span
        while trace_at(high) > 1.0:
            span *= 2.0
            high = lower_open + span
            if span > 1e18:
                raise InvalidParameterError(
                    "log-det closed form: failed to bracket μ"
                )
        for _ in range(max_iterations):
            mid = (low + high) / 2.0
            if trace_at(mid) > 1.0:
                low = mid
            else:
                high = mid
            if high - low < tol * max(1.0, abs(high)):
                break
        return (low + high) / 2.0


class MatrixPNorm:
    """Matrix p-norm penalty ``G(X) = (1/p) Tr(X^p)`` for ``p > 1``.

    Its regularized optimum is the (trace-normalized, positive-part) power of
    an affine image of the Laplacian — which for ``p = 1 + 1/k`` is the
    ``k``-step lazy random walk: the third row of the correspondence.
    """

    name = "matrix_p_norm"
    dynamics = "lazy_walk"

    def __init__(self, p):
        self.p = check_positive(p, "p")
        if self.p <= 1:
            raise InvalidParameterError(f"p must be > 1; got {p}")

    def value(self, density):
        values, _ = _symmetric_eigh(density)
        clipped = np.maximum(values, 0.0)
        return float(np.sum(clipped ** self.p) / self.p)

    def gradient(self, density):
        values, vectors = _symmetric_eigh(density)
        clipped = np.maximum(values, 0.0)
        return _assemble(vectors, clipped ** (self.p - 1.0))

    def closed_form(self, deflated_laplacian, eta):
        """``Y* = (η (μ I − L̂))_+^{1/(p−1)}`` with μ solving ``Tr Y* = 1``.

        The trace is strictly increasing in μ, so bisection applies. Negative
        parts are truncated to zero; complementary slackness holds because on
        the truncated eigendirections the constraint gradient dominates.
        """
        eta = check_positive(eta, "eta")
        values, vectors = _symmetric_eigh(deflated_laplacian)
        exponent = 1.0 / (self.p - 1.0)

        def trace_at(mu):
            positive = np.maximum(eta * (mu - values), 0.0)
            return float(np.sum(positive ** exponent))

        low = float(values.min())
        high = low + 1.0
        while trace_at(high) < 1.0:
            high = low + (high - low) * 2.0
            if high - low > 1e18:
                raise InvalidParameterError(
                    "p-norm closed form: failed to bracket μ"
                )
        for _ in range(500):
            mid = (low + high) / 2.0
            if trace_at(mid) < 1.0:
                low = mid
            else:
                high = mid
            if high - low < 1e-15 * max(1.0, abs(high)):
                break
        mu = (low + high) / 2.0
        weights = np.maximum(eta * (mu - values), 0.0) ** exponent
        if weights.sum() <= 0:
            raise InvalidParameterError("p-norm closed form degenerate")
        return _assemble(vectors, weights / weights.sum())


# ---------------------------------------------------------------------------
# Diffusion-derived density matrices (the "approximation algorithm" side).
# ---------------------------------------------------------------------------

def heat_kernel_density(sdp, t):
    """Density matrix computed by the Heat Kernel dynamics at time ``t``.

    ``X_H(t) ∝ Q exp(-t L̂) Q^T`` — the heat kernel restricted to the
    complement of the trivial eigenvector and trace-normalized.
    """
    t = check_positive(t, "t")
    values, vectors = _symmetric_eigh(sdp.deflated_laplacian)
    weights = np.exp(-t * (values - values.min()))
    deflated = _assemble(vectors, weights / weights.sum())
    return sdp.lift(deflated)


def pagerank_density(sdp, gamma):
    """Density matrix computed by the PageRank dynamics at teleport ``γ``.

    The symmetrized resolvent ``γ (γ I + (1−γ) 𝓛)^{-1}`` restricted off the
    trivial direction and trace-normalized. (Symmetrization by ``D^{±1/2}``
    turns Equation (2)'s ``R_γ`` into this form; the restriction and
    normalization are basis-independent.)
    """
    gamma = check_probability(gamma, "gamma")
    values, vectors = _symmetric_eigh(sdp.deflated_laplacian)
    weights = 1.0 / (gamma + (1.0 - gamma) * values)
    deflated = _assemble(vectors, weights / weights.sum())
    return sdp.lift(deflated)


def lazy_walk_density(sdp, alpha, num_steps):
    """Density matrix computed by ``k`` steps of the lazy walk.

    The symmetrized lazy walk is ``S_α = I − (1−α) 𝓛``; the dynamics
    computes ``S_α^k``, restricted and normalized. Requires ``α ≥ 1/2`` so
    that ``S_α ⪰ 0`` (eigenvalues ``1 − (1−α) λ`` with ``λ ≤ 2``).
    """
    alpha = check_probability(alpha, "alpha")
    num_steps = check_int(num_steps, "num_steps", minimum=1)
    if alpha < 0.5:
        raise InvalidParameterError(
            "lazy_walk_density requires alpha >= 1/2 for a PSD walk matrix"
        )
    values, vectors = _symmetric_eigh(sdp.deflated_laplacian)
    weights = (1.0 - (1.0 - alpha) * values) ** num_steps
    deflated = _assemble(vectors, weights / weights.sum())
    return sdp.lift(deflated)


# ---------------------------------------------------------------------------
# Parameter maps between aggressiveness (t, γ, k) and the SDP's η.
# ---------------------------------------------------------------------------

def eta_for_heat_kernel(t):
    """Heat kernel time ↔ SDP regularization: ``η = t`` exactly."""
    return check_positive(t, "t")


def eta_for_pagerank(sdp, gamma):
    """The η for which the log-det SDP optimum equals PageRank at ``γ``.

    With ``μ = γ / (1−γ)``, the closed form ``(1/η)(L̂ + μI)^{-1}`` has unit
    trace iff ``η = Σ_i 1 / (λ_i + μ)``.
    """
    gamma = check_probability(gamma, "gamma")
    mu = gamma / (1.0 - gamma)
    values = np.linalg.eigvalsh(sdp.deflated_laplacian)
    return float(np.sum(1.0 / (values + mu))), mu


def eta_for_lazy_walk(sdp, alpha, num_steps):
    """The (η, p) for which the p-norm SDP optimum equals ``S_α^k``.

    Matching spectra requires ``p = 1 + 1/k``, ``μ = 1/(1−α)`` and
    ``η = (1−α) / Z^{1/k}`` with ``Z = Σ_i (1 − (1−α) λ_i)^k``.
    """
    alpha = check_probability(alpha, "alpha")
    num_steps = check_int(num_steps, "num_steps", minimum=1)
    if alpha < 0.5:
        raise InvalidParameterError("alpha must be >= 1/2 (PSD walk matrix)")
    values = np.linalg.eigvalsh(sdp.deflated_laplacian)
    z = float(np.sum((1.0 - (1.0 - alpha) * values) ** num_steps))
    eta = (1.0 - alpha) / z ** (1.0 / num_steps)
    p = 1.0 + 1.0 / num_steps
    return eta, p
