"""The spectral SDP (Problem (4)) and its feasible region.

Problem (3) of the paper — minimize the Rayleigh quotient ``x^T 𝓛 x`` over
unit vectors orthogonal to the trivial eigenvector — relaxes to the SDP of
Problem (4):

    minimize    Tr(𝓛 X)
    subject to  X ⪰ 0,  Tr(X) = 1,  X D^{1/2} 1 = 0,

an optimization over *density matrices* supported on the complement of the
trivial direction. The relaxation is tight: the optimum is the rank-one
matrix ``X* = v2 v2^T``.

The linear constraint ``X D^{1/2} 1 = 0`` is handled here by **deflation**:
choose an orthonormal basis ``Q`` (an ``n × (n-1)`` matrix) of the subspace
orthogonal to ``D^{1/2} 1`` and parameterize ``X = Q Y Q^T`` with ``Y`` on
the standard spectrahedron ``{Y ⪰ 0, Tr Y = 1}``. All regularized solvers in
this package work in the deflated coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.matrices import normalized_laplacian, trivial_eigenvector


def deflation_basis(unit_vector):
    """Orthonormal basis ``Q`` of the hyperplane orthogonal to a unit vector.

    Returns an ``(n, n-1)`` matrix with orthonormal columns spanning
    ``unit_vector^⊥``, computed from a Householder reflection (exact
    orthogonality, no Gram–Schmidt drift).
    """
    v = np.asarray(unit_vector, dtype=float)
    n = v.shape[0]
    if n < 2:
        raise InvalidParameterError("deflation needs dimension >= 2")
    norm = np.linalg.norm(v)
    if not np.isclose(norm, 1.0, atol=1e-8):
        raise InvalidParameterError("deflation vector must be unit norm")
    # Householder vector mapping e_1 to v: H = I - 2 w w^T, H e_1 = ±v.
    sign = 1.0 if v[0] >= 0 else -1.0
    w = v.copy()
    w[0] += sign
    w /= np.linalg.norm(w)
    # Columns 2..n of H = I - 2 w w^T are an orthonormal basis of v^⊥.
    H = np.eye(n) - 2.0 * np.outer(w, w)
    return H[:, 1:]


@dataclass
class SpectralSDP:
    """The deflated spectral SDP for a graph.

    Attributes
    ----------
    laplacian:
        Dense normalized Laplacian ``𝓛`` (n × n).
    trivial:
        Unit trivial eigenvector ``D^{1/2} 1 / ||·||``.
    basis:
        ``(n, n-1)`` deflation basis ``Q``.
    deflated_laplacian:
        ``L̂ = Q^T 𝓛 Q`` — the operator the density matrix actually sees.
    """

    laplacian: np.ndarray
    trivial: np.ndarray
    basis: np.ndarray
    deflated_laplacian: np.ndarray

    @classmethod
    def from_graph(cls, graph):
        """Build the deflated SDP data for a connected graph."""
        laplacian = normalized_laplacian(graph).toarray()
        trivial = trivial_eigenvector(graph)
        basis = deflation_basis(trivial)
        deflated = basis.T @ laplacian @ basis
        deflated = (deflated + deflated.T) / 2.0
        return cls(
            laplacian=laplacian,
            trivial=trivial,
            basis=basis,
            deflated_laplacian=deflated,
        )

    @property
    def dimension(self):
        """Ambient dimension ``n``."""
        return self.laplacian.shape[0]

    def lift(self, deflated_matrix):
        """Map a deflated density matrix ``Y`` to ambient ``X = Q Y Q^T``."""
        return self.basis @ deflated_matrix @ self.basis.T

    def restrict(self, ambient_matrix):
        """Map an ambient symmetric matrix to deflated coordinates."""
        return self.basis.T @ ambient_matrix @ self.basis

    def objective(self, ambient_density):
        """``Tr(𝓛 X)`` for an ambient density matrix."""
        return float(np.trace(self.laplacian @ ambient_density))

    def exact_solution(self):
        """The unregularized optimum ``X* = v2 v2^T`` and its value λ2."""
        values, vectors = np.linalg.eigh(self.deflated_laplacian)
        y = vectors[:, 0]
        x = self.basis @ y
        return np.outer(x, x), float(values[0])

    def feasibility_violations(self, ambient_density):
        """Measure how far a matrix is from the feasible region.

        Returns a dict with keys ``symmetry``, ``trace`` (|Tr X − 1|),
        ``psd`` (magnitude of the most negative eigenvalue), and
        ``deflation`` (norm of ``X D^{1/2} 1``).
        """
        X = np.asarray(ambient_density, dtype=float)
        sym = float(np.abs(X - X.T).max())
        trace = abs(float(np.trace(X)) - 1.0)
        eigenvalues = np.linalg.eigvalsh((X + X.T) / 2.0)
        psd = float(max(0.0, -eigenvalues.min()))
        deflation = float(np.linalg.norm(X @ self.trivial))
        return {
            "symmetry": sym,
            "trace": trace,
            "psd": psd,
            "deflation": deflation,
        }

    def is_feasible(self, ambient_density, *, tol=1e-8):
        """Whether all feasibility violations are below ``tol``."""
        violations = self.feasibility_violations(ambient_density)
        return all(v <= tol for v in violations.values())


def density_from_vector(vector):
    """Rank-one density matrix ``x x^T / ||x||^2`` of a nonzero vector."""
    x = np.asarray(vector, dtype=float)
    norm_sq = float(x @ x)
    if norm_sq == 0:
        raise InvalidParameterError("cannot form a density from the zero vector")
    return np.outer(x, x) / norm_sq


def normalize_to_density(matrix):
    """Scale a nonzero PSD matrix to unit trace."""
    M = np.asarray(matrix, dtype=float)
    trace = float(np.trace(M))
    if trace <= 0:
        raise InvalidParameterError("matrix must have positive trace")
    return M / trace
