"""Exception hierarchy for the ``repro`` library.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class. Subclasses are split by the layer that raises
them (graph construction, numerical algorithms, partitioning, experiments) so
that tests and downstream users can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for invalid graph construction or malformed graph inputs."""


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph."""


class ConvergenceError(ReproError):
    """Raised when an iterative numerical method fails to converge.

    Attributes
    ----------
    iterations:
        Number of iterations completed before giving up.
    residual:
        Final residual norm (or ``None`` when not applicable).
    """

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class InvalidParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is outside its valid range."""


class PartitionError(ReproError):
    """Raised for invalid partitions (empty side, out-of-range nodes, ...)."""


class FlowError(ReproError):
    """Raised for malformed flow networks or flow-algorithm failures."""


class ExperimentError(ReproError):
    """Raised when an experiment driver receives an inconsistent setup."""
