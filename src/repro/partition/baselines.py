"""Baseline partitioners: random, BFS balls, and Kernighan–Lin.

These are the naive comparators every experiment needs: any method worth its
name must beat random bisection, and geodesic (BFS-ball) growth is the
metric-space baseline the paper's Section 2.1 contrasts with diffusion
geometry.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_int
from repro.exceptions import PartitionError
from repro.partition.metrics import conductance


def random_bisection(graph, seed=None):
    """Uniformly random half/half split (by node count).

    Returns ``(nodes, conductance)``.
    """
    n = graph.num_nodes
    if n < 2:
        raise PartitionError("cannot bisect fewer than 2 nodes")
    rng = as_rng(seed)
    order = rng.permutation(n)
    side = np.sort(order[: n // 2])
    return side, conductance(graph, side)


def bfs_ball_cluster(graph, center, target_size):
    """Geodesic ball: the ``target_size`` nodes closest to ``center`` in hops.

    Ties at the outermost shell are broken by node id. Returns
    ``(nodes, conductance)``.
    """
    target_size = check_int(target_size, "target_size", minimum=1,
                            maximum=graph.num_nodes - 1)
    dist = graph.bfs_distances(center)
    reachable = np.flatnonzero(dist >= 0)
    if reachable.size < target_size:
        raise PartitionError(
            f"only {reachable.size} nodes reachable from {center}"
        )
    order = reachable[np.lexsort((reachable, dist[reachable]))]
    nodes = np.sort(order[:target_size])
    return nodes, conductance(graph, nodes)


def kernighan_lin_bisection(graph, *, seed=None, max_passes=10):
    """Kernighan–Lin bisection with node-count balance.

    Starts from a random equal split and runs KL passes: in each pass,
    greedily select the best sequence of node swaps (each node moves at most
    once per pass) and apply the best prefix of the sequence. Stops when a
    pass yields no improvement.

    Returns ``(nodes, conductance)`` for the smaller-volume side.
    """
    n = graph.num_nodes
    if n < 4:
        raise PartitionError("Kernighan–Lin needs at least 4 nodes")
    check_int(max_passes, "max_passes", minimum=1)
    rng = as_rng(seed)
    mask = np.zeros(n, dtype=bool)
    mask[rng.permutation(n)[: n // 2]] = True
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    def gain(u, current):
        external = internal = 0.0
        for k in range(indptr[u], indptr[u + 1]):
            w = weights[k]
            if current[indices[k]] == current[u]:
                internal += w
            else:
                external += w
        return external - internal

    for _ in range(max_passes):
        working = mask.copy()
        locked = np.zeros(n, dtype=bool)
        sequence = []
        cumulative = []
        total_gain = 0.0
        tolerance = max(1, n // 8)
        low_count = n // 2 - tolerance
        high_count = n // 2 + tolerance
        for _ in range(n - 2):
            best_u, best_g = -1, -np.inf
            side_count = int(working.sum())
            for u in range(n):
                if locked[u]:
                    continue
                # Keep the split near-balanced in node counts (the KL
                # constraint; without it the pass peels off single nodes).
                new_count = side_count + (-1 if working[u] else +1)
                if not low_count <= new_count <= high_count:
                    continue
                g = gain(u, working)
                if g > best_g:
                    best_u, best_g = u, g
            if best_u < 0:
                break
            working[best_u] = not working[best_u]
            locked[best_u] = True
            total_gain += best_g
            sequence.append(best_u)
            cumulative.append(total_gain)
        if not cumulative:
            break
        best_prefix = int(np.argmax(cumulative))
        if cumulative[best_prefix] <= 1e-12:
            break
        for u in sequence[: best_prefix + 1]:
            mask[u] = not mask[u]
    if not mask.any() or mask.all():
        raise PartitionError("Kernighan–Lin degenerated to one side")
    if graph.degrees[mask].sum() > graph.total_volume / 2.0:
        mask = ~mask
    nodes = np.flatnonzero(mask)
    return nodes, conductance(graph, nodes)
