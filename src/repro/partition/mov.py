"""MOV locally-biased spectral partitioning (Problem (8) of the paper).

The "optimization approach" of Section 3.3 [33]: modify the global spectral
program with a locality constraint,

    minimize    x^T 𝓛 x
    subject to  x^T x = 1,   x ⟂ D^{1/2} 1,   (x^T D^{1/2} s)^2 >= κ,

whose solution (for a correlation requirement κ and seed vector s) is, by
the KKT conditions, a *Personalized PageRank-like resolvent*: for some
γ < λ2,

    x*(γ)  ∝  (𝓛 − γ I)^{+} D^{1/2} s        (restricted to  ⟂ D^{1/2}1).

Sweeping x*(γ) gives a locally-biased partition with Cheeger-type
guarantees. Unlike the operational methods in :mod:`repro.partition.local`,
this computation touches the entire graph (it solves a global linear
system) — exactly the cost contrast the paper draws between the two
approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive
from repro.exceptions import InvalidParameterError, PartitionError
from repro.graph.matrices import normalized_laplacian, trivial_eigenvector
from repro.linalg.fiedler import fiedler_value
from repro.linalg.solvers import conjugate_gradient
from repro.partition.sweep import sweep_cut


@dataclass
class MOVResult:
    """Locally-biased spectral vector and its sweep cut.

    Attributes
    ----------
    vector:
        The unit solution x* (coordinates of the normalized Laplacian).
    embedding:
        ``D^{-1/2} x*`` (what gets swept).
    gamma:
        The shift used (γ < λ2).
    correlation:
        ``(x*^T D^{1/2} s)^2`` — the achieved seed correlation κ.
    nodes:
        Best sweep-cut cluster.
    conductance:
        φ(cluster).
    rayleigh:
        ``x*^T 𝓛 x*`` — the locally-biased objective value.
    """

    vector: np.ndarray
    embedding: np.ndarray
    gamma: float
    correlation: float
    nodes: np.ndarray
    conductance: float
    rayleigh: float


def mov_vector(graph, seed_nodes, *, gamma=None, gamma_fraction=0.5,
               tol=1e-10):
    """Solve the MOV system ``(𝓛 − γ I) x = c · P s̃`` on the nontrivial space.

    Parameters
    ----------
    graph:
        Connected graph.
    seed_nodes:
        The seed set defining ``s`` (an indicator, degree-normalized and
        projected off the trivial direction).
    gamma:
        The shift; must satisfy ``γ < λ2`` for positive definiteness on the
        working subspace. Computed as ``gamma_fraction * λ2`` when omitted.
    gamma_fraction:
        Fraction of λ2 used when ``gamma`` is None (in [0, 1); larger means
        more localized — γ → λ2 recovers the global Fiedler vector, γ → −∞
        recovers the seed itself).
    tol:
        CG tolerance.

    Returns
    -------
    vector:
        Unit-norm solution x*, orthogonal to the trivial eigenvector.
    gamma:
        The shift used.
    """
    laplacian = normalized_laplacian(graph)
    trivial = trivial_eigenvector(graph)
    lambda2 = fiedler_value(graph, method="exact" if graph.num_nodes <= 400
                            else "lanczos")
    if gamma is None:
        if not 0.0 <= gamma_fraction < 1.0:
            raise InvalidParameterError(
                f"gamma_fraction must be in [0, 1); got {gamma_fraction}"
            )
        gamma = gamma_fraction * lambda2
    gamma = float(gamma)
    if gamma >= lambda2:
        raise InvalidParameterError(
            f"gamma must be < λ2 = {lambda2:.6g}; got {gamma:.6g}"
        )
    # Seed in D^{1/2} coordinates, projected off the trivial direction.
    seed = np.zeros(graph.num_nodes)
    idx = np.asarray(sorted(set(int(u) for u in seed_nodes)), dtype=np.int64)
    if idx.size == 0:
        raise PartitionError("MOV needs a nonempty seed set")
    seed[idx] = np.sqrt(graph.degrees[idx])
    seed /= np.linalg.norm(seed)
    seed -= (trivial @ seed) * trivial
    if np.linalg.norm(seed) < 1e-12:
        raise PartitionError("seed coincides with the trivial direction")

    def operator(vector):
        # Keep the iterates in the nontrivial subspace, where 𝓛 − γI ≻ 0.
        projected = vector - (trivial @ vector) * trivial
        image = laplacian @ projected - gamma * projected
        return image - (trivial @ image) * trivial

    result = conjugate_gradient(
        operator, seed, tol=tol, max_iterations=100_000
    )
    x = result.solution
    x -= (trivial @ x) * trivial
    norm = np.linalg.norm(x)
    if norm == 0:
        raise PartitionError("MOV solve returned the zero vector")
    return x / norm, gamma


def mov_cluster(graph, seed_nodes, *, gamma=None, gamma_fraction=0.5,
                max_volume=None, min_size=1):
    """Locally-biased spectral cluster: MOV vector + sweep cut.

    Returns
    -------
    MOVResult
    """
    x, gamma = mov_vector(
        graph, seed_nodes, gamma=gamma, gamma_fraction=gamma_fraction
    )
    seed_vec = np.zeros(graph.num_nodes)
    idx = np.asarray(sorted(set(int(u) for u in seed_nodes)), dtype=np.int64)
    seed_vec[idx] = np.sqrt(graph.degrees[idx])
    seed_vec /= np.linalg.norm(seed_vec)
    # Orient toward the seed: the locally-biased cluster lives on the side
    # of the embedding correlated with the seed set, so only that sweep
    # direction is meaningful (the anti-correlated side is the "far" cut).
    if float(x @ seed_vec) < 0:
        x = -x
    embedding = x / np.sqrt(graph.degrees)
    laplacian = normalized_laplacian(graph)
    try:
        best = sweep_cut(
            graph, embedding, degree_normalize=False,
            max_volume=max_volume, min_size=min_size,
        )
    except PartitionError as exc:
        raise PartitionError("MOV sweep produced no admissible prefix") from exc
    return MOVResult(
        vector=x,
        embedding=embedding,
        gamma=gamma,
        correlation=float((x @ seed_vec) ** 2),
        nodes=best.nodes,
        conductance=best.conductance,
        rayleigh=float(x @ (laplacian @ x)),
    )


def kappa_for_gamma(graph, seed_nodes, gamma_values):
    """Trace the κ(γ) curve: achieved seed correlation per shift γ.

    As γ ↑ λ2 the solution decorrelates from the seed (global limit); as
    γ ↓ −∞ it converges to the seed itself (κ → 1). Used in tests to verify
    the locality knob behaves as Problem (8) predicts.
    """
    rows = []
    for gamma in gamma_values:
        check_positive(abs(float(gamma)) + 1.0, "gamma")  # finite check
        result = mov_cluster(graph, seed_nodes, gamma=float(gamma))
        rows.append((float(gamma), result.correlation, result.rayleigh))
    return rows
