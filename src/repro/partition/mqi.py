"""MQI — Max-flow Quotient-cut Improvement (Lang–Rao).

The paper's Figure 1 flow-based curve is produced by "Metis+MQI": a balanced
partitioner proposes a side ``A``, then MQI repeatedly asks, *is there a
subset A' ⊆ A with strictly better conductance?* — a question that reduces
exactly to an s–t max-flow:

Given ``A`` with cut weight ``c`` and volume ``v = vol(A) <= vol(G)/2``,
build the network

* an arc of capacity ``v · w(u, x)`` for each internal edge ``{u, x} ⊆ A``
  (both directions),
* ``source → u`` with capacity ``v · (weight of edges from u to Ā)``,
* ``u → sink`` with capacity ``c · d(u)``.

Then a subset ``A' ⊆ A`` with ``φ(A') < φ(A) = c/v`` exists **iff** the
max-flow is less than ``c · v``, and the source side of the min cut (minus
the source) is such an ``A'``. Iterating to a fixed point yields a set that
is *optimal among subsets of the original side* — a strictly flow-based
object, which is why its clusters score well on conductance but can be
stringy (the Figure 1 tradeoff).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PartitionError
from repro.partition.maxflow import FlowNetwork
from repro.partition.metrics import conductance

_REL_EPS = 1e-12


@dataclass
class MQIResult:
    """Outcome of iterated MQI.

    Attributes
    ----------
    nodes:
        The improved set A* (sorted node ids).
    conductance:
        φ(A*).
    initial_conductance:
        φ of the starting set.
    rounds:
        Number of improving max-flow rounds performed.
    history:
        Conductance after each round (strictly decreasing).
    converged:
        Whether a round found no improving subset (the fixed point was
        reached).  ``False`` means ``max_rounds`` was exhausted while
        rounds were still improving, so the result may not be
        subset-optimal; :func:`mqi` also warns in that case.
    """

    nodes: np.ndarray
    conductance: float
    initial_conductance: float
    rounds: int
    history: list = field(default_factory=list)
    converged: bool = True


def _one_round(graph, side):
    """One MQI max-flow round; returns an improved subset or ``None``."""
    side = np.asarray(sorted(int(u) for u in side), dtype=np.int64)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[side] = True
    degrees = graph.degrees
    cut = graph.cut_weight(mask)
    volume = float(degrees[mask].sum())
    if cut <= 0:
        return None  # disconnected side: conductance already 0
    local_id = {int(u): i for i, u in enumerate(side)}
    k = side.size
    source, sink = k, k + 1
    network = FlowNetwork(k + 2)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for i, u in enumerate(side):
        boundary = 0.0
        for arc in range(indptr[u], indptr[u + 1]):
            v = int(indices[arc])
            w = float(weights[arc])
            if mask[v]:
                if v > u:  # add each internal edge once, both directions
                    network.add_edge(
                        i, local_id[v], volume * w,
                        reverse_capacity=volume * w,
                    )
            else:
                boundary += w
        if boundary > 0:
            network.add_edge(source, i, volume * boundary)
        network.add_edge(i, sink, cut * float(degrees[u]))
    result = network.max_flow(source, sink)
    target = cut * volume
    if result.value >= target * (1.0 - _REL_EPS) - 1e-6:
        return None  # no subset improves the quotient
    # The min cut with source side {s} ∪ (A \ A') has capacity
    # c·v + v·cut(A') − c·vol(A'), so the *improving* subset A' is the part
    # of A on the SINK side of the minimum cut.
    reachable = set(int(r) for r in result.min_cut_source_side())
    improved = side[[i for i in range(k) if i not in reachable]]
    if improved.size == 0 or improved.size == side.size:
        return None
    return improved


def mqi(graph, nodes, *, max_rounds=100):
    """Iterate MQI rounds until no subset of the side improves conductance.

    Parameters
    ----------
    graph:
        The graph.
    nodes:
        Starting side; its volume must be at most half the total (swap to
        the complement before calling otherwise).
    max_rounds:
        Safety cap (each round strictly decreases φ, so termination is
        guaranteed anyway for rational weights).

    Returns
    -------
    MQIResult
    """
    side = np.asarray(sorted(int(u) for u in np.atleast_1d(
        np.asarray(nodes, dtype=np.int64))), dtype=np.int64)
    if side.size == 0 or side.size >= graph.num_nodes:
        raise PartitionError("MQI needs a nonempty proper subset")
    volume = float(graph.degrees[side].sum())
    if volume > graph.total_volume / 2.0 + 1e-9:
        raise PartitionError(
            "MQI requires vol(side) <= vol(G)/2; pass the smaller side"
        )
    initial_phi = conductance(graph, side)
    history = []
    current = side
    converged = False
    for _ in range(max_rounds):
        improved = _one_round(graph, current)
        if improved is None:
            converged = True
            break
        current = improved
        history.append(conductance(graph, current))
    if not converged:
        warnings.warn(
            f"mqi exhausted max_rounds={max_rounds} while rounds were "
            f"still improving; the result may not be subset-optimal "
            f"(MQIResult.converged is False)",
            RuntimeWarning,
            stacklevel=2,
        )
    final_phi = conductance(graph, current)
    return MQIResult(
        nodes=np.sort(current),
        conductance=final_phi,
        initial_conductance=initial_phi,
        rounds=len(history),
        history=history,
        converged=converged,
    )


def mqi_certificate(graph, nodes, *, trials=200, seed=None):
    """Sanity check of MQI optimality: random subsets of an MQI fixed point
    should never beat its conductance.

    A randomized test oracle (not part of the algorithm); returns the best
    φ found over random subsets, which must be >= φ(nodes) when MQI has
    converged.
    """
    from repro._validation import as_rng

    rng = as_rng(seed)
    side = np.asarray(sorted(int(u) for u in nodes), dtype=np.int64)
    base = conductance(graph, side)
    best = float("inf")
    for _ in range(trials):
        keep = rng.random(side.size) < rng.uniform(0.3, 0.95)
        subset = side[keep]
        if subset.size == 0 or subset.size == side.size:
            continue
        best = min(best, conductance(graph, subset))
    return base, best
