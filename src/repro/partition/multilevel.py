"""Multilevel graph bisection (the "Metis" role in Metis+MQI).

The paper's Figure 1 flow curve comes from Metis+MQI. Metis itself is the
classic multilevel heuristic:

1. **Coarsen** — repeatedly contract a heavy-edge matching until the graph
   is small;
2. **Initial partition** — solve the small instance directly (greedy
   volume-balanced region growing from several seeds, keeping the best cut);
3. **Uncoarsen + refine** — project the partition back up, running
   boundary Fiduccia–Mattheyses (FM) refinement at every level: move single
   nodes across the cut when that reduces cut weight without wrecking the
   volume balance.

Node "weights" carried through coarsening are the *original* volumes
(weighted degrees), so balance at every level means volume balance in the
input graph — the right invariant for conductance.

:func:`recursive_bisection_clusters` applies the bisector recursively and
returns every intermediate cluster, which is how the flow-side NCP ensemble
of experiment E1 is generated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_int, check_positive
from repro.exceptions import PartitionError
from repro.graph.build import from_edges
from repro.partition.metrics import conductance


@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    graph: object
    node_volumes: np.ndarray
    fine_to_coarse: np.ndarray  # map from the finer level into this one


def heavy_edge_matching(graph, rng):
    """Greedy heavy-edge matching.

    Visits nodes in random order; each unmatched node matches its heaviest
    unmatched neighbor. Returns ``match`` with ``match[u] = v`` (and
    ``match[v] = u``) or ``match[u] = u`` for unmatched nodes.
    """
    n = graph.num_nodes
    match = np.arange(n)
    matched = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for u in order:
        if matched[u]:
            continue
        best_v, best_w = -1, -1.0
        for k in range(indptr[u], indptr[u + 1]):
            v = int(indices[k])
            if not matched[v] and v != u and weights[k] > best_w:
                best_v, best_w = v, float(weights[k])
        if best_v >= 0:
            match[u], match[best_v] = best_v, u
            matched[u] = matched[best_v] = True
    return match


def contract(graph, node_volumes, match):
    """Contract matched pairs into supernodes.

    Returns ``(coarse_graph, coarse_volumes, fine_to_coarse)``. Edge weights
    between supernodes are summed; intra-pair edges vanish (they become
    self-loops, which are dropped — their weight is interior, not cut).
    """
    n = graph.num_nodes
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if fine_to_coarse[u] >= 0:
            continue
        fine_to_coarse[u] = next_id
        v = int(match[u])
        if v != u and fine_to_coarse[v] < 0:
            fine_to_coarse[v] = next_id
        next_id += 1
    coarse_volumes = np.zeros(next_id)
    np.add.at(coarse_volumes, fine_to_coarse, node_volumes)
    us, vs, ws = graph.edge_array()
    cu, cv = fine_to_coarse[us], fine_to_coarse[vs]
    keep = cu != cv
    coarse = from_edges(
        next_id,
        np.stack([cu[keep], cv[keep]], axis=1) if keep.any() else [],
        ws[keep] if keep.any() else None,
        combine="sum",
    )
    return coarse, coarse_volumes, fine_to_coarse


def _greedy_initial_bisection(graph, node_volumes, rng, *, attempts=8):
    """Volume-balanced region growing on the coarsest graph.

    Grows a side from a random start, always absorbing the frontier node
    with the largest (gain / volume) ratio, until half the volume is
    reached; repeats from several starts and keeps the best conductance.
    """
    n = graph.num_nodes
    if n < 2:
        raise PartitionError("cannot bisect a graph with < 2 nodes")
    total = float(node_volumes.sum())
    target = total / 2.0
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    best_mask, best_phi = None, float("inf")
    for _ in range(attempts):
        start = int(rng.integers(n))
        mask = np.zeros(n, dtype=bool)
        mask[start] = True
        volume = float(node_volumes[start])
        # connection[u] = weight from u into the growing side
        connection = np.zeros(n)
        for k in range(indptr[start], indptr[start + 1]):
            connection[indices[k]] += weights[k]
        while volume < target:
            frontier = np.flatnonzero((connection > 0) & ~mask)
            if frontier.size == 0:
                remaining = np.flatnonzero(~mask)
                if remaining.size == 0:
                    break
                frontier = remaining  # disconnected: jump components
            gains = connection[frontier] / np.maximum(
                node_volumes[frontier], 1e-12
            )
            u = int(frontier[int(np.argmax(gains))])
            mask[u] = True
            volume += float(node_volumes[u])
            for k in range(indptr[u], indptr[u + 1]):
                connection[indices[k]] += weights[k]
        if mask.all() or not mask.any():
            continue
        phi = _phi(graph, node_volumes, mask)
        if phi < best_phi:
            best_phi, best_mask = phi, mask.copy()
    if best_mask is None:
        # Fall back to an arbitrary nontrivial split.
        best_mask = np.zeros(n, dtype=bool)
        best_mask[: max(1, n // 2)] = True
    return best_mask


def _phi(graph, node_volumes, mask):
    """Conductance with respect to the carried (original) volumes."""
    cut = graph.cut_weight(mask)
    vol_s = float(node_volumes[mask].sum())
    vol_rest = float(node_volumes.sum()) - vol_s
    denominator = min(vol_s, vol_rest)
    if denominator <= 0:
        return float("inf")
    return cut / denominator


def fm_refine(graph, node_volumes, mask, *, max_passes=8,
              balance_tolerance=0.1):
    """Boundary Fiduccia–Mattheyses refinement.

    Repeated passes over boundary nodes; each pass greedily applies the
    single-node move with the best cut-weight gain whose resulting balance
    stays within ``(0.5 ± tolerance)`` of the volume. Stops when a pass
    makes no improving move.
    """
    check_int(max_passes, "max_passes", minimum=1)
    check_positive(balance_tolerance, "balance_tolerance")
    mask = mask.copy()
    n = graph.num_nodes
    total = float(node_volumes.sum())
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    # internal/external connection weights per node w.r.t. current side
    internal = np.zeros(n)
    external = np.zeros(n)
    for u in range(n):
        for k in range(indptr[u], indptr[u + 1]):
            w = weights[k]
            if mask[indices[k]] == mask[u]:
                internal[u] += w
            else:
                external[u] += w
    vol_s = float(node_volumes[mask].sum())
    low = total * (0.5 - balance_tolerance)
    high = total * (0.5 + balance_tolerance)
    for _ in range(max_passes):
        moved_any = False
        boundary = np.flatnonzero(external > 0)
        gains = external[boundary] - internal[boundary]
        for idx in np.argsort(-gains):
            u = int(boundary[idx])
            gain = external[u] - internal[u]
            if gain <= 1e-12:
                break
            new_vol = vol_s + (-1 if mask[u] else +1) * float(node_volumes[u])
            if not (low <= new_vol <= high or low <= total - new_vol <= high):
                continue
            # Apply the move.
            mask[u] = not mask[u]
            vol_s = new_vol
            internal[u], external[u] = external[u], internal[u]
            for k in range(indptr[u], indptr[u + 1]):
                v = int(indices[k])
                w = weights[k]
                if mask[v] == mask[u]:
                    internal[v] += w
                    external[v] -= w
                else:
                    internal[v] -= w
                    external[v] += w
            moved_any = True
        if not moved_any:
            break
    return mask


@dataclass
class BisectionResult:
    """A two-way partition of a graph.

    Attributes
    ----------
    side:
        Boolean mask of the (first) side.
    conductance:
        φ of the side in the input graph.
    cut_weight:
        Total weight crossing the partition.
    levels:
        Number of coarsening levels used.
    """

    side: np.ndarray
    conductance: float
    cut_weight: float
    levels: int


def multilevel_bisection(graph, *, coarsest_size=32, balance_tolerance=0.12,
                         seed=None, refine_passes=6):
    """Metis-style multilevel bisection of a connected graph.

    Returns a :class:`BisectionResult`; the mask side is the smaller-volume
    side.
    """
    if graph.num_nodes < 2:
        raise PartitionError("cannot bisect a graph with < 2 nodes")
    coarsest_size = check_int(coarsest_size, "coarsest_size", minimum=2)
    rng = as_rng(seed)
    levels = [
        _Level(graph=graph, node_volumes=graph.degrees.copy(),
               fine_to_coarse=None)
    ]
    current, volumes = graph, graph.degrees.copy()
    while current.num_nodes > coarsest_size:
        match = heavy_edge_matching(current, rng)
        coarse, coarse_volumes, mapping = contract(current, volumes, match)
        if coarse.num_nodes >= current.num_nodes:
            break  # matching found nothing; stop coarsening
        levels.append(
            _Level(graph=coarse, node_volumes=coarse_volumes,
                   fine_to_coarse=mapping)
        )
        current, volumes = coarse, coarse_volumes
    mask = _greedy_initial_bisection(current, volumes, rng)
    mask = fm_refine(
        current, volumes, mask, max_passes=refine_passes,
        balance_tolerance=balance_tolerance,
    )
    # Project back through the hierarchy, refining at every level.
    for level_index in range(len(levels) - 1, 0, -1):
        coarse_level = levels[level_index]
        finer = levels[level_index - 1]
        fine_mask = mask[coarse_level.fine_to_coarse]
        mask = fm_refine(
            finer.graph, finer.node_volumes, fine_mask,
            max_passes=refine_passes, balance_tolerance=balance_tolerance,
        )
    if not mask.any() or mask.all():
        raise PartitionError("multilevel bisection degenerated to one side")
    # Report the smaller-volume side.
    if graph.degrees[mask].sum() > graph.total_volume / 2.0:
        mask = ~mask
    return BisectionResult(
        side=mask,
        conductance=conductance(graph, mask),
        cut_weight=graph.cut_weight(mask),
        levels=len(levels),
    )


def recursive_bisection_clusters(graph, *, min_size=8, max_depth=20,
                                 seed=None, balance_tolerance=0.12):
    """All clusters produced by recursive multilevel bisection.

    Bisects the graph, then recurses into each side (as an induced
    subgraph), collecting every side at every depth as a candidate cluster
    in *original* node ids. This is the flow-side ensemble generator of
    experiment E1; each candidate is typically post-processed with MQI.

    Returns a list of sorted node-id arrays.
    """
    min_size = check_int(min_size, "min_size", minimum=2)
    rng = as_rng(seed)
    clusters = []

    def recurse(subgraph, original_ids, depth):
        if subgraph.num_nodes < 2 * min_size or depth > max_depth:
            return
        if not subgraph.is_connected():
            labels, count = subgraph.connected_components()
            for component in range(count):
                members = np.flatnonzero(labels == component)
                if members.size >= min_size:
                    clusters.append(np.sort(original_ids[members]))
                    inner, inner_ids = subgraph.induced_subgraph(members)
                    recurse(inner, original_ids[inner_ids], depth + 1)
            return
        try:
            result = multilevel_bisection(
                subgraph, seed=int(rng.integers(2**31 - 1)),
                balance_tolerance=balance_tolerance,
            )
        except PartitionError:
            return
        for side_mask in (result.side, ~result.side):
            members = np.flatnonzero(side_mask)
            if members.size < min_size:
                continue
            clusters.append(np.sort(original_ids[members]))
            inner, inner_ids = subgraph.induced_subgraph(members)
            recurse(inner, original_ids[inner_ids], depth + 1)

    recurse(graph, np.arange(graph.num_nodes), 0)
    return clusters
