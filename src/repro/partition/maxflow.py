"""Maximum s–t flow (Dinic's algorithm) and minimum cuts, from scratch.

The flow-based side of the paper's Section 3.2 needs exact max-flow/min-cut
as a primitive: MQI solves a sequence of s–t max-flow problems, and the
max-flow = min-cut duality is one of the "embedding theorems and duality"
tools (Section 2.2) that give flow methods their O(log n) guarantees.

Dinic's algorithm: repeatedly build a BFS level graph and saturate it with
blocking flows found by DFS with iterator pointers. Complexity ``O(V^2 E)``
in general; on the unit-ish networks MQI builds it behaves much better.
Capacities are floats; comparisons use a relative tolerance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._validation import check_int
from repro.exceptions import FlowError

_EPS = 1e-9


class FlowNetwork:
    """A directed flow network with residual bookkeeping.

    Arcs are stored in pairs: arc ``2k`` is the forward arc, arc ``2k+1`` its
    residual reverse. Use :meth:`add_edge` to build, :meth:`max_flow` to
    solve.
    """

    def __init__(self, num_nodes):
        self.num_nodes = check_int(num_nodes, "num_nodes", minimum=2)
        self._heads = []
        self._capacities = []
        self._adjacency = [[] for _ in range(num_nodes)]

    def add_edge(self, tail, head, capacity, *, reverse_capacity=0.0):
        """Add a directed arc ``tail → head`` with the given capacity.

        ``reverse_capacity`` lets callers add an undirected edge (equal
        capacity both ways) in one call.
        """
        if not 0 <= tail < self.num_nodes or not 0 <= head < self.num_nodes:
            raise FlowError(
                f"arc ({tail}, {head}) out of range [0, {self.num_nodes})"
            )
        if capacity < 0 or reverse_capacity < 0:
            raise FlowError("capacities must be nonnegative")
        self._adjacency[tail].append(len(self._heads))
        self._heads.append(head)
        self._capacities.append(float(capacity))
        self._adjacency[head].append(len(self._heads))
        self._heads.append(tail)
        self._capacities.append(float(reverse_capacity))

    @property
    def num_arcs(self):
        return len(self._heads) // 2

    def _bfs_levels(self, source, sink, capacities):
        levels = np.full(self.num_nodes, -1, dtype=np.int64)
        levels[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._adjacency[u]:
                v = self._heads[arc]
                if levels[v] < 0 and capacities[arc] > _EPS:
                    levels[v] = levels[u] + 1
                    queue.append(v)
        return levels if levels[sink] >= 0 else None

    def _blocking_flow(self, source, sink, capacities, levels, pointers):
        """Iterative DFS computing one blocking flow in the level graph."""
        total = 0.0
        while True:
            # Find an augmenting path in the level graph.
            path_arcs = []
            u = source
            while u != sink:
                advanced = False
                while pointers[u] < len(self._adjacency[u]):
                    arc = self._adjacency[u][pointers[u]]
                    v = self._heads[arc]
                    if capacities[arc] > _EPS and levels[v] == levels[u] + 1:
                        path_arcs.append(arc)
                        u = v
                        advanced = True
                        break
                    pointers[u] += 1
                if not advanced:
                    if u == source:
                        return total
                    # Dead end: retreat one arc and advance its pointer.
                    dead = path_arcs.pop()
                    u = self._heads[dead ^ 1]
                    pointers[u] += 1
            bottleneck = min(capacities[arc] for arc in path_arcs)
            for arc in path_arcs:
                capacities[arc] -= bottleneck
                capacities[arc ^ 1] += bottleneck
            total += bottleneck
            # Restart the walk from the source (pointers persist).
            u = source

    def max_flow(self, source, sink):
        """Compute the maximum flow value and the residual capacities.

        Returns
        -------
        MaxFlowResult
        """
        source = check_int(source, "source", minimum=0,
                           maximum=self.num_nodes - 1)
        sink = check_int(sink, "sink", minimum=0, maximum=self.num_nodes - 1)
        if source == sink:
            raise FlowError("source and sink must differ")
        residual = np.asarray(self._capacities, dtype=float).copy()
        value = 0.0
        while True:
            levels = self._bfs_levels(source, sink, residual)
            if levels is None:
                break
            pointers = [0] * self.num_nodes
            pushed = self._blocking_flow(
                source, sink, residual, levels, pointers
            )
            if pushed <= _EPS:
                break
            value += pushed
        return MaxFlowResult(
            value=value,
            residual=residual,
            network=self,
            source=source,
            sink=sink,
        )


@dataclass
class MaxFlowResult:
    """Solved max-flow instance.

    Attributes
    ----------
    value:
        The maximum flow value.
    residual:
        Residual capacities per arc (paired forward/backward).
    network, source, sink:
        The instance solved.
    """

    value: float
    residual: np.ndarray
    network: FlowNetwork
    source: int
    sink: int

    def min_cut_source_side(self):
        """Nodes reachable from the source in the residual graph.

        By max-flow/min-cut duality this is the source side of a minimum
        cut.
        """
        seen = np.zeros(self.network.num_nodes, dtype=bool)
        seen[self.source] = True
        queue = deque([self.source])
        while queue:
            u = queue.popleft()
            for arc in self.network._adjacency[u]:
                v = self.network._heads[arc]
                if not seen[v] and self.residual[arc] > _EPS:
                    seen[v] = True
                    queue.append(v)
        return np.flatnonzero(seen)

    def cut_capacity(self, source_side):
        """Total original capacity crossing from ``source_side`` outward.

        For a correct min cut this equals :attr:`value` (the duality check
        used in tests).
        """
        side = set(int(v) for v in source_side)
        total = 0.0
        original = self.network._capacities
        for u in side:
            for arc in self.network._adjacency[u]:
                v = self.network._heads[arc]
                if v not in side and original[arc] > 0:
                    total += original[arc]
        return total
