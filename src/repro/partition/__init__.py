"""Graph partitioning: metrics, sweep cuts, spectral and flow-based global
partitioners, strongly local methods, MOV locally-biased spectral, and
baselines."""

from repro.partition.baselines import (
    bfs_ball_cluster,
    kernighan_lin_bisection,
    random_bisection,
)
from repro.partition.flow_improve import (
    FlowImproveResult,
    dilate,
    flow_improve,
)
from repro.partition.local import (
    LocalClusterResult,
    acl_cluster,
    best_local_cluster,
    hk_cluster,
    local_cluster,
    nibble_cluster,
    seed_excluded_from_own_cluster,
)
from repro.partition.maxflow import FlowNetwork, MaxFlowResult
from repro.partition.metrics import (
    balance,
    cheeger_lower_bound,
    cheeger_upper_bound,
    conductance,
    cut_and_volumes,
    expansion,
    graph_conductance_exact,
    internal_conductance,
    normalized_cut,
)
from repro.partition.mov import MOVResult, kappa_for_gamma, mov_cluster, mov_vector
from repro.partition.mqi import MQIResult, mqi, mqi_certificate
from repro.partition.multilevel import (
    BisectionResult,
    contract,
    fm_refine,
    heavy_edge_matching,
    multilevel_bisection,
    recursive_bisection_clusters,
)
from repro.partition.spectral import (
    SpectralCutResult,
    cheeger_certificate,
    spectral_bisection_median,
    spectral_cluster_ensemble,
    spectral_cut,
)
from repro.partition.sweep import SweepCutResult, all_prefix_clusters, sweep_cut

__all__ = [
    "BisectionResult",
    "FlowImproveResult",
    "FlowNetwork",
    "LocalClusterResult",
    "MOVResult",
    "MQIResult",
    "MaxFlowResult",
    "SpectralCutResult",
    "SweepCutResult",
    "acl_cluster",
    "all_prefix_clusters",
    "balance",
    "best_local_cluster",
    "bfs_ball_cluster",
    "cheeger_certificate",
    "cheeger_lower_bound",
    "cheeger_upper_bound",
    "conductance",
    "contract",
    "cut_and_volumes",
    "dilate",
    "expansion",
    "flow_improve",
    "fm_refine",
    "graph_conductance_exact",
    "heavy_edge_matching",
    "hk_cluster",
    "internal_conductance",
    "kappa_for_gamma",
    "kernighan_lin_bisection",
    "local_cluster",
    "mov_cluster",
    "mov_vector",
    "mqi",
    "mqi_certificate",
    "multilevel_bisection",
    "nibble_cluster",
    "normalized_cut",
    "random_bisection",
    "recursive_bisection_clusters",
    "seed_excluded_from_own_cluster",
    "spectral_bisection_median",
    "spectral_cluster_ensemble",
    "spectral_cut",
    "sweep_cut",
]
