"""Sweep cuts: turning an embedding vector into a partition.

Given a score vector, order the nodes by score and examine every prefix set;
return the prefix of minimum conductance. This is the rounding step shared by
every spectral method in the paper — global (Section 3.2), locally-biased
(Problem (8)), and strongly local (Section 3.3). The incremental update makes
a full sweep cost ``O(m + n log n)``; the default scan vectorizes that
incremental update into a single bincount/cumsum pass over the CSR arrays
(the scalar loop survives as the parity reference).

Conventions: diffusion outputs are degree-normalized before ordering
(``p_u / d_u``), which is the ordering for which the Cheeger-style guarantees
of [1, 15, 33, 39] are stated; eigenvector embeddings coming from
:func:`repro.linalg.fiedler.fiedler_embedding` are already in the right
coordinates and use ``degree_normalize=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_vector
from repro.diffusion.engine import gather_csr_arcs
from repro.exceptions import InvalidParameterError, PartitionError


@dataclass
class SweepCutResult:
    """Best prefix cut of a sweep.

    Attributes
    ----------
    nodes:
        Sorted array of node ids in the best prefix S.
    conductance:
        φ(S).
    size:
        |S|.
    volume:
        vol(S).
    order:
        The node ordering swept (all candidates, best first by score).
    profile:
        Conductance of every prefix (``profile[k]`` = φ of the first k+1
        nodes); the raw material of conductance-vs-size plots.
    """

    nodes: np.ndarray
    conductance: float
    size: int
    volume: float
    order: np.ndarray
    profile: np.ndarray = field(repr=False, default=None)


def _prefix_scan_scalar(graph, order, max_size, max_volume, min_size):
    """Reference prefix-conductance scan: one node at a time.

    Kept as the parity oracle for the vectorized scan (and for
    instructional clarity — it is the loop the incremental-update analysis
    in the module docstring describes).
    """
    degrees = graph.degrees
    total_volume = graph.total_volume
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    in_prefix = np.zeros(graph.num_nodes, dtype=bool)
    cut = 0.0
    volume = 0.0
    best = (float("inf"), -1, 0.0)
    profile = np.full(max_size, np.inf)
    for position in range(max_size):
        if position + 1 >= graph.num_nodes:
            break  # the full node set is not a valid cut
        u = int(order[position])
        du = degrees[u]
        internal = 0.0
        for k in range(indptr[u], indptr[u + 1]):
            if in_prefix[indices[k]]:
                internal += weights[k]
        cut += du - 2.0 * internal
        volume += du
        in_prefix[u] = True
        if max_volume is not None and volume > max_volume:
            break
        other = total_volume - volume
        if other <= 0:
            break
        denominator = min(volume, other)
        if denominator > 0:
            phi = cut / denominator
            profile[position] = phi
            if position + 1 >= min_size and phi < best[0]:
                best = (phi, position, volume)
    return profile, best


def _prefix_scan_vectorized(graph, order, max_size, max_volume, min_size):
    """Vectorized prefix-conductance scan over the CSR arrays.

    Each arc ``(u, v)`` with both endpoints in the sweep order becomes
    internal at step ``max(rank(u), rank(v))``; a bincount over that step
    index plus a cumulative sum reproduces the scalar scan's incremental
    ``cut``/``volume`` updates without the per-edge Python loop. Ties are
    broken identically to the scalar scan (first minimum wins).
    """
    degrees = graph.degrees
    total_volume = graph.total_volume
    n = graph.num_nodes
    profile = np.full(max_size, np.inf)
    limit = min(max_size, max(n - 1, 0))
    if limit <= 0:
        return profile, (float("inf"), -1, 0.0)
    prefix = order[:limit].astype(np.int64)
    volumes = np.cumsum(degrees[prefix])

    rank = np.full(n, limit, dtype=np.int64)
    rank[prefix] = np.arange(limit)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    arc_positions, counts = gather_csr_arcs(indptr, prefix)
    if arc_positions.size:
        src_rank = np.repeat(np.arange(limit), counts)
        dst_rank = rank[indices[arc_positions]]
        internal = dst_rank < limit
        step = np.maximum(src_rank[internal], dst_rank[internal])
        # Each internal undirected edge contributes two arcs with the same
        # step, so this bincount accumulates exactly 2 x internal weight.
        twice_internal = np.cumsum(np.bincount(
            step, weights=weights[arc_positions][internal], minlength=limit
        ))
    else:
        twice_internal = np.zeros(limit)
    cut = volumes - twice_internal
    other = total_volume - volumes

    # Replicate the scalar scan's early exits: once a prefix exceeds the
    # volume cap or swallows the whole volume, no later prefix is scored.
    valid = np.ones(limit, dtype=bool)
    if max_volume is not None:
        over = volumes > max_volume
        if over.any():
            valid[int(np.argmax(over)):] = False
    exhausted = other <= 0
    if exhausted.any():
        valid[int(np.argmax(exhausted)):] = False

    denominator = np.minimum(volumes, other)
    scored = valid & (denominator > 0)
    phi = np.full(limit, np.inf)
    phi[scored] = cut[scored] / denominator[scored]
    profile[:limit] = phi

    best = (float("inf"), -1, 0.0)
    low = min_size - 1
    if low < limit:
        position = low + int(np.argmin(phi[low:]))
        if np.isfinite(phi[position]):
            best = (
                float(phi[position]), position, float(volumes[position])
            )
    return profile, best


_PREFIX_SCANS = {
    "scalar": _prefix_scan_scalar,
    "vectorized": _prefix_scan_vectorized,
}


def sweep_cut(graph, scores, *, degree_normalize=True, restrict_to=None,
              max_volume=None, min_size=1, max_size=None,
              implementation="vectorized"):
    """Find the minimum-conductance prefix of the score ordering.

    Parameters
    ----------
    graph:
        The graph.
    scores:
        Node scores; higher score = earlier in the sweep.
    degree_normalize:
        Divide scores by weighted degree before ordering (the diffusion
        convention).
    restrict_to:
        Optional node subset to sweep over (the *local* sweep of Section
        3.3: only the support of a truncated diffusion is examined, so the
        sweep cost is independent of n). Nodes outside are never included.
    max_volume:
        Stop the sweep once the prefix volume exceeds this (the volume cap
        ``vol(S) <= k`` of Problem (9)).
    min_size, max_size:
        Restrict the admissible prefix sizes.
    implementation:
        ``"vectorized"`` (default) scans every prefix with NumPy bincount
        arithmetic; ``"scalar"`` is the node-at-a-time reference loop kept
        for parity testing. Both scans visit prefixes in the same order
        and break ties identically.

    Returns
    -------
    SweepCutResult

    Raises
    ------
    PartitionError
        When no admissible prefix exists (e.g. empty restriction).
    """
    if implementation not in _PREFIX_SCANS:
        raise InvalidParameterError(
            "implementation must be one of "
            f"{sorted(_PREFIX_SCANS)}; got {implementation!r}"
        )
    scores = check_vector(scores, graph.num_nodes, "scores")
    degrees = graph.degrees
    if degree_normalize:
        if np.any(degrees <= 0):
            raise PartitionError("degree normalization needs positive degrees")
        keys = scores / degrees
    else:
        keys = scores
    if restrict_to is not None:
        candidates = np.asarray(restrict_to, dtype=np.int64)
        if candidates.size == 0:
            raise PartitionError("restrict_to must be nonempty")
    else:
        candidates = np.arange(graph.num_nodes)
    order = candidates[np.argsort(-keys[candidates], kind="stable")]
    if max_size is None:
        max_size = order.size
    max_size = min(max_size, order.size)

    profile, best = _PREFIX_SCANS[implementation](
        graph, order, max_size, max_volume, min_size
    )
    phi_best, position_best, volume_best = best
    if position_best < 0:
        raise PartitionError("sweep found no admissible prefix")
    chosen = np.sort(order[: position_best + 1])
    return SweepCutResult(
        nodes=chosen,
        conductance=phi_best,
        size=position_best + 1,
        volume=volume_best,
        order=order,
        profile=profile,
    )


def all_prefix_clusters(graph, scores, *, degree_normalize=True,
                        restrict_to=None, max_size=None):
    """Every sweep prefix with its conductance, as ``(size, φ, volume)`` rows.

    The cluster-ensemble generator for NCP profiles: a single diffusion
    yields one candidate cluster per prefix size.
    """
    result = sweep_cut(
        graph, scores, degree_normalize=degree_normalize,
        restrict_to=restrict_to, max_size=max_size,
    )
    rows = []
    degrees = graph.degrees
    volume = 0.0
    for position, phi in enumerate(result.profile):
        volume += float(degrees[int(result.order[position])])
        if np.isfinite(phi):
            rows.append((position + 1, float(phi), volume))
    return rows, result.order
