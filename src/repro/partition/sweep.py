"""Sweep cuts: turning an embedding vector into a partition.

Given a score vector, order the nodes by score and examine every prefix set;
return the prefix of minimum conductance. This is the rounding step shared by
every spectral method in the paper — global (Section 3.2), locally-biased
(Problem (8)), and strongly local (Section 3.3). The incremental update makes
a full sweep cost ``O(m + n log n)``; the default (``numpy`` backend) scan
vectorizes that incremental update into a single bincount/cumsum pass over
the CSR arrays, the ``scalar`` backend keeps the node-at-a-time parity
reference, and the optional ``numba`` backend JIT-compiles the incremental
loop (see :mod:`repro.backends`).

Conventions: diffusion outputs are degree-normalized before ordering
(``p_u / d_u``), which is the ordering for which the Cheeger-style guarantees
of [1, 15, 33, 39] are stated; eigenvector embeddings coming from
:func:`repro.linalg.fiedler.fiedler_embedding` are already in the right
coordinates and use ``degree_normalize=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import warn_deprecated
from repro._validation import check_vector
from repro.backends import get_backend, resolve_backend_name
from repro.exceptions import InvalidParameterError, PartitionError


@dataclass
class SweepCutResult:
    """Best prefix cut of a sweep.

    Attributes
    ----------
    nodes:
        Sorted array of node ids in the best prefix S.
    conductance:
        φ(S).
    size:
        |S|.
    volume:
        vol(S).
    order:
        The node ordering swept (all candidates, best first by score).
    profile:
        Conductance of every prefix (``profile[k]`` = φ of the first k+1
        nodes); the raw material of conductance-vs-size plots.
    """

    nodes: np.ndarray
    conductance: float
    size: int
    volume: float
    order: np.ndarray
    profile: np.ndarray = field(repr=False, default=None)


def sweep_cut(graph, scores, *, degree_normalize=True, restrict_to=None,
              max_volume=None, min_size=1, max_size=None,
              backend=None, implementation=None):
    """Find the minimum-conductance prefix of the score ordering.

    Parameters
    ----------
    graph:
        The graph.
    scores:
        Node scores; higher score = earlier in the sweep.
    degree_normalize:
        Divide scores by weighted degree before ordering (the diffusion
        convention).
    restrict_to:
        Optional node subset to sweep over (the *local* sweep of Section
        3.3: only the support of a truncated diffusion is examined, so the
        sweep cost is independent of n). Nodes outside are never included.
    max_volume:
        Stop the sweep once the prefix volume exceeds this (the volume cap
        ``vol(S) <= k`` of Problem (9)).
    min_size, max_size:
        Restrict the admissible prefix sizes.
    backend:
        Registered backend name or :class:`~repro.backends.EngineBackend`
        providing the prefix scan; default ``"numpy"``. All backends visit
        prefixes in the same order and break ties identically.
    implementation:
        Deprecated alias for ``backend`` (``"vectorized"`` -> ``"numpy"``).

    Returns
    -------
    SweepCutResult

    Raises
    ------
    PartitionError
        When no admissible prefix exists (e.g. empty restriction).
    """
    if implementation is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass backend= or the deprecated implementation=, not both"
            )
        backend = resolve_backend_name(implementation)
        warn_deprecated(
            "sweep_cut(implementation=...)", "sweep_cut(backend=...)"
        )
    ops = get_backend("numpy" if backend is None else backend)
    scores = check_vector(scores, graph.num_nodes, "scores")
    degrees = graph.degrees
    if degree_normalize:
        if np.any(degrees <= 0):
            raise PartitionError("degree normalization needs positive degrees")
        keys = scores / degrees
    else:
        keys = scores
    if restrict_to is not None:
        candidates = np.asarray(restrict_to, dtype=np.int64)
        if candidates.size == 0:
            raise PartitionError("restrict_to must be nonempty")
    else:
        candidates = np.arange(graph.num_nodes)
    order = candidates[np.argsort(-keys[candidates], kind="stable")]
    if max_size is None:
        max_size = order.size
    max_size = min(max_size, order.size)

    profile, best = ops.prefix_scan(
        graph, order, max_size, max_volume, min_size
    )
    phi_best, position_best, volume_best = best
    if position_best < 0:
        raise PartitionError("sweep found no admissible prefix")
    chosen = np.sort(order[: position_best + 1])
    return SweepCutResult(
        nodes=chosen,
        conductance=phi_best,
        size=position_best + 1,
        volume=volume_best,
        order=order,
        profile=profile,
    )


def all_prefix_clusters(graph, scores, *, degree_normalize=True,
                        restrict_to=None, max_size=None, backend=None):
    """Every sweep prefix with its conductance, as ``(size, φ, volume)`` rows.

    The cluster-ensemble generator for NCP profiles: a single diffusion
    yields one candidate cluster per prefix size.
    """
    result = sweep_cut(
        graph, scores, degree_normalize=degree_normalize,
        restrict_to=restrict_to, max_size=max_size, backend=backend,
    )
    rows = []
    degrees = graph.degrees
    volume = 0.0
    for position, phi in enumerate(result.profile):
        volume += float(degrees[int(result.order[position])])
        if np.isfinite(phi):
            rows.append((position + 1, float(phi), volume))
    return rows, result.order
