"""Cut-quality metrics: conductance, expansion, and friends.

Equation (6) of the paper defines the conductance of a node set ``S``:

    φ(S) = |E(S, S̄)| / min(vol(S), vol(S̄)),

the objective whose intractable minimization (Problem (7)) both the spectral
and flow-based pipelines approximate. Footnote 19 defines the companion
*expansion*; both are implemented here along with the sweep-profile helpers
shared by every partitioner.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    ConvergenceError,
    InvalidParameterError,
    PartitionError,
)


def _validated_mask(graph, nodes):
    mask = graph._node_mask(nodes)
    inside = int(mask.sum())
    if inside == 0 or inside == graph.num_nodes:
        raise PartitionError(
            "conductance needs a nonempty proper subset of the nodes"
        )
    return mask


def conductance(graph, nodes):
    """Conductance ``φ(S) = cut(S) / min(vol(S), vol(S̄))`` (Equation (6))."""
    mask = _validated_mask(graph, nodes)
    cut = graph.cut_weight(mask)
    vol_s = float(graph.degrees[mask].sum())
    vol_rest = graph.total_volume - vol_s
    denominator = min(vol_s, vol_rest)
    if denominator <= 0:
        raise PartitionError("conductance undefined: zero-volume side")
    return cut / denominator


def expansion(graph, nodes):
    """Expansion ``α(S) = cut(S) / min(|S|, |S̄|)`` (footnote 19)."""
    mask = _validated_mask(graph, nodes)
    cut = graph.cut_weight(mask)
    inside = int(mask.sum())
    return cut / min(inside, graph.num_nodes - inside)


def normalized_cut(graph, nodes):
    """Normalized cut ``cut(S) (1/vol(S) + 1/vol(S̄))``."""
    mask = _validated_mask(graph, nodes)
    cut = graph.cut_weight(mask)
    vol_s = float(graph.degrees[mask].sum())
    vol_rest = graph.total_volume - vol_s
    if vol_s <= 0 or vol_rest <= 0:
        raise PartitionError("normalized cut undefined: zero-volume side")
    return cut * (1.0 / vol_s + 1.0 / vol_rest)


def cut_and_volumes(graph, nodes):
    """Return ``(cut weight, vol(S), vol(S̄))`` in one pass."""
    mask = _validated_mask(graph, nodes)
    cut = graph.cut_weight(mask)
    vol_s = float(graph.degrees[mask].sum())
    return cut, vol_s, graph.total_volume - vol_s

def balance(graph, nodes):
    """Volume balance ``min(vol(S), vol(S̄)) / vol(V)`` in ``(0, 0.5]``."""
    _, vol_s, vol_rest = cut_and_volumes(graph, nodes)
    return min(vol_s, vol_rest) / graph.total_volume


def graph_conductance_exact(graph):
    """Exact minimum conductance φ(G) by exhaustion (Problem (7)).

    Exponential in ``n``; usable only as a test oracle for ``n <= ~18``.
    """
    n = graph.num_nodes
    if n < 2:
        raise PartitionError("conductance needs at least 2 nodes")
    if n > 18:
        raise PartitionError(
            f"exact conductance is exponential; refusing n={n} > 18"
        )
    best = float("inf")
    best_set = None
    for bits in range(1, (1 << n) - 1):
        members = [i for i in range(n) if bits & (1 << i)]
        # Each split is enumerated twice (S and its complement); keep S
        # containing node 0 to halve the work.
        if 0 not in members:
            continue
        value = conductance(graph, members)
        if value < best:
            best = value
            best_set = members
    return best, np.asarray(best_set, dtype=np.int64)


def cheeger_upper_bound(lambda2):
    """Cheeger: ``φ(G) <= sqrt(2 λ2)`` (the "quadratically good" direction)."""
    return float(np.sqrt(2.0 * max(lambda2, 0.0)))


def cheeger_lower_bound(lambda2):
    """Cheeger: ``φ(G) >= λ2 / 2``."""
    return float(lambda2 / 2.0)


def internal_conductance(graph, nodes, *, method="lanczos", seed=None):
    """Conductance of the best spectral sweep *inside* ``G[S]``.

    The "internal connectivity" half of the paper's Figure 1(c) niceness
    measure: a set whose induced subgraph has high internal conductance is a
    well-knit community; a stringy set has low internal conductance. Returns
    ``inf`` for sets whose induced subgraph cannot be cut (fewer than 2
    nodes), and 0 for disconnected induced subgraphs.
    """
    from repro.partition.spectral import spectral_cut

    subgraph, _ = graph.induced_subgraph(nodes)
    if subgraph.num_nodes < 2:
        return float("inf")
    if not subgraph.is_connected():
        return 0.0
    if np.any(subgraph.degrees <= 0):
        return 0.0
    try:
        result = spectral_cut(subgraph, method=method, seed=seed)
    except (ConvergenceError, InvalidParameterError, PartitionError,
            np.linalg.LinAlgError):
        # Degenerate tiny subgraphs (eigensolver or LAPACK breakdown, no
        # admissible sweep): fall back to exhaustive search. Anything
        # else — a bug, a keyboard interrupt — propagates.
        if subgraph.num_nodes <= 18:
            value, _ = graph_conductance_exact(subgraph)
            return value
        raise
    return result.conductance
