"""Local flow-based improvement of a seed cluster.

Section 3.3 cites Andersen–Lang's "An algorithm for improving graph
partitions" [3] as the flow-based counterpart of local spectral methods. We
implement the practical variant used throughout the Figure 1 literature:

1. dilate the proposed seed set by a few BFS hops (so flow can *add*
   nearby nodes that the proposal missed, which plain MQI cannot do);
2. run iterated MQI inside the dilated set to find the best-conductance
   subset;
3. keep the result only if it actually improves the proposal.

The dilation radius trades locality for improvement power: radius 0 is
exactly MQI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._deprecation import warn_deprecated
from repro._validation import check_int
from repro.backends import get_backend, resolve_backend_name
from repro.diffusion._csr import gather_csr_arcs
from repro.exceptions import InvalidParameterError, PartitionError
from repro.partition.metrics import conductance
from repro.partition.mqi import mqi


@dataclass
class FlowImproveResult:
    """Outcome of dilate-then-MQI improvement.

    Attributes
    ----------
    nodes:
        The improved cluster.
    conductance:
        φ(improved).
    initial_conductance:
        φ of the proposal.
    dilation_radius:
        BFS hops of dilation used.
    improved:
        Whether the output strictly beats the proposal.
    rounds:
        Improving MQI rounds performed inside the dilated region (0 when
        the flow stage was skipped).
    converged:
        Whether the inner MQI reached its fixed point.  ``False`` means
        ``max_rounds`` was exhausted mid-improvement (see
        :class:`~repro.partition.mqi.MQIResult.converged`).
    """

    nodes: np.ndarray
    conductance: float
    initial_conductance: float
    dilation_radius: int
    improved: bool
    rounds: int = 0
    converged: bool = True


def dilate(graph, nodes, radius, *, backend=None, implementation=None):
    """All nodes within ``radius`` hops of the set (including the set).

    The ``numpy`` backend (the default) expands each BFS frontier with
    one shared CSR gather (:func:`gather_csr_arcs`) plus a boolean-mask
    scatter — no per-node Python loop; the ``scalar`` backend is the
    original set-based BFS, kept as the parity oracle (benchmark E14
    measures the gap).  Any other registered backend name resolves but
    runs the numpy BFS (dilation has no JIT kernel).  ``implementation``
    is the deprecated alias (``"vectorized"`` -> ``"numpy"``).
    """
    radius = check_int(radius, "radius", minimum=0)
    if implementation is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass backend= or the deprecated implementation=, not both"
            )
        backend = resolve_backend_name(implementation)
        warn_deprecated(
            "dilate(implementation=...)", "dilate(backend=...)"
        )
    resolved = get_backend("numpy" if backend is None else backend)
    if resolved is get_backend("scalar"):
        return _dilate_scalar(graph, nodes, radius)
    seen = np.zeros(graph.num_nodes, dtype=bool)
    frontier = np.unique(np.atleast_1d(np.asarray(nodes, dtype=np.int64)))
    seen[frontier] = True
    indptr, indices = graph.indptr, graph.indices
    for _ in range(radius):
        if frontier.size == 0:
            break
        arcs, _counts = gather_csr_arcs(indptr, frontier)
        neighbors = indices[arcs]
        fresh = np.unique(neighbors[~seen[neighbors]])
        seen[fresh] = True
        frontier = fresh
    return np.flatnonzero(seen).astype(np.int64)


def _dilate_scalar(graph, nodes, radius):
    """Scalar parity oracle: the original pure-Python set-based BFS."""
    frontier = set(int(u) for u in nodes)
    seen = set(frontier)
    for _ in range(radius):
        next_frontier = set()
        for u in frontier:
            for v in graph.neighbors(u):
                v = int(v)
                if v not in seen:
                    seen.add(v)
                    next_frontier.add(v)
        frontier = next_frontier
        if not frontier:
            break
    return np.asarray(sorted(seen), dtype=np.int64)


def flow_improve(graph, nodes, *, dilation_radius=1, max_rounds=50):
    """Improve a proposed cluster by dilation + iterated MQI.

    Parameters
    ----------
    graph:
        The graph.
    nodes:
        Proposed cluster (nonempty proper subset).
    dilation_radius:
        BFS dilation before the flow stage. The dilated set is clipped to
        at most half the graph volume (MQI's requirement) by discarding the
        highest-degree dilation nodes first.
    max_rounds:
        MQI round cap.

    Returns
    -------
    FlowImproveResult
    """
    base = np.asarray(sorted(set(int(u) for u in nodes)), dtype=np.int64)
    if base.size == 0 or base.size >= graph.num_nodes:
        raise PartitionError("flow_improve needs a nonempty proper subset")
    initial_phi = conductance(graph, base)
    region = dilate(graph, base, dilation_radius)
    if region.size >= graph.num_nodes:
        region = base
    # Respect MQI's volume precondition, preferring to keep the original set.
    half = graph.total_volume / 2.0
    if float(graph.degrees[region].sum()) > half:
        added = np.setdiff1d(region, base)
        added = added[np.argsort(graph.degrees[added])]  # cheap first
        kept = list(base)
        volume = float(graph.degrees[base].sum())
        for u in added:
            du = float(graph.degrees[u])
            if volume + du > half:
                continue
            kept.append(int(u))
            volume += du
        region = np.asarray(sorted(kept), dtype=np.int64)
    if float(graph.degrees[region].sum()) > half:
        # The proposal itself exceeds half the volume: fall back to it.
        return FlowImproveResult(
            nodes=base,
            conductance=initial_phi,
            initial_conductance=initial_phi,
            dilation_radius=dilation_radius,
            improved=False,
        )
    result = mqi(graph, region, max_rounds=max_rounds)
    if result.conductance < initial_phi - 1e-15:
        return FlowImproveResult(
            nodes=result.nodes,
            conductance=result.conductance,
            initial_conductance=initial_phi,
            dilation_radius=dilation_radius,
            improved=True,
            rounds=result.rounds,
            converged=result.converged,
        )
    return FlowImproveResult(
        nodes=base,
        conductance=initial_phi,
        initial_conductance=initial_phi,
        dilation_radius=dilation_radius,
        improved=False,
        rounds=result.rounds,
        converged=result.converged,
    )
