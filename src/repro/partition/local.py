"""Seed → cluster drivers: the "operational approach" of Section 3.3.

Each driver runs a strongly local diffusion from a seed set and sweeps the
(degree-normalized) output over its support only, so that the total work —
diffusion plus sweep — depends on the output size, not on ``n``:

* :func:`acl_cluster` — ACL push on personalized PageRank [1]; the method
  the paper identifies behind the "LocalSpectral" curve of Figure 1;
* :func:`nibble_cluster` — Spielman–Teng truncated random walks [39],
  sweeping every step of the trajectory;
* :func:`hk_cluster` — heat-kernel push [15].

Each returns a :class:`LocalClusterResult` carrying both the cluster and the
work accounting used by experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_int, check_positive, check_probability
from repro.diffusion.hk_push import heat_kernel_push
from repro.diffusion.push import approximate_ppr_push
from repro.diffusion.seeds import degree_weighted_indicator_seed
from repro.diffusion.truncated_walk import truncated_lazy_walk
from repro.exceptions import PartitionError
from repro.partition.metrics import conductance
from repro.partition.sweep import sweep_cut


@dataclass
class LocalClusterResult:
    """A locally computed cluster.

    Attributes
    ----------
    nodes:
        Sorted node ids of the cluster.
    conductance:
        φ(cluster).
    seed_nodes:
        The seed set used.
    support_size:
        Nodes touched by the diffusion (the locality certificate).
    work:
        Edge work performed by the diffusion.
    method:
        ``"acl"``, ``"nibble"``, or ``"hk"``.
    contains_seed:
        Whether every seed node ended up inside the cluster — Section 3.3
        warns this can be False ("a seed node not being part of 'its own
        cluster' can easily happen"), and experiment E9 counts how often.
    """

    nodes: np.ndarray
    conductance: float
    seed_nodes: np.ndarray
    support_size: int
    work: int
    method: str
    contains_seed: bool


def _finish(graph, scores, restrict_to, seed_nodes, work, method,
            max_volume, min_size):
    if restrict_to.size == 0:
        raise PartitionError(f"{method}: diffusion support is empty")
    sweep = sweep_cut(
        graph, scores, degree_normalize=True, restrict_to=restrict_to,
        max_volume=max_volume, min_size=min_size,
    )
    seed_arr = np.asarray(sorted(set(int(s) for s in seed_nodes)),
                          dtype=np.int64)
    cluster = sweep.nodes
    contains = bool(np.isin(seed_arr, cluster).all())
    return LocalClusterResult(
        nodes=cluster,
        conductance=sweep.conductance,
        seed_nodes=seed_arr,
        support_size=int(restrict_to.size),
        work=int(work),
        method=method,
        contains_seed=contains,
    )


def acl_cluster(graph, seed_nodes, *, alpha=0.1, epsilon=1e-4,
                max_volume=None, min_size=1):
    """Local cluster via ACL push + sweep (the paper's LocalSpectral).

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seed_nodes:
        Seed set (ids).
    alpha:
        Teleport probability; larger α keeps mass closer to the seed
        (stronger locality / regularization).
    epsilon:
        Push threshold; smaller ε = larger support = weaker regularization.
    max_volume:
        Optional volume cap on the sweep (Problem (9)'s k).
    min_size:
        Minimum cluster size accepted by the sweep.

    Returns
    -------
    LocalClusterResult
    """
    alpha = check_probability(alpha, "alpha")
    epsilon = check_probability(epsilon, "epsilon")
    seed_vector = degree_weighted_indicator_seed(graph, seed_nodes)
    push = approximate_ppr_push(
        graph, seed_vector, alpha=alpha, epsilon=epsilon
    )
    support = np.flatnonzero(push.approximation > 0)
    return _finish(
        graph, push.approximation, support, seed_nodes, push.work, "acl",
        max_volume, min_size,
    )


def nibble_cluster(graph, seed_nodes, *, num_steps=None, epsilon=1e-4,
                   max_volume=None, min_size=1):
    """Local cluster via truncated lazy walks + per-step sweeps [39].

    Sweeps the truncated charge vector after *every* step and keeps the best
    cut found along the trajectory, as Nibble does.
    """
    epsilon = check_probability(epsilon, "epsilon")
    if num_steps is None:
        num_steps = max(10, int(np.ceil(np.log2(graph.num_nodes + 1) ** 2)))
    num_steps = check_int(num_steps, "num_steps", minimum=1)
    seed_vector = degree_weighted_indicator_seed(graph, seed_nodes)
    walk = truncated_lazy_walk(
        graph, seed_vector, num_steps, epsilon=epsilon, keep_trajectory=True
    )
    work = int(sum(walk.support_volumes))
    best = None
    for charge in walk.trajectory[1:]:
        support = np.flatnonzero(charge)
        if support.size == 0:
            continue
        try:
            candidate = _finish(
                graph, charge, support, seed_nodes, work, "nibble",
                max_volume, min_size,
            )
        except PartitionError:
            continue
        if best is None or candidate.conductance < best.conductance:
            best = candidate
    if best is None:
        raise PartitionError("nibble: no step produced an admissible sweep")
    return best


def hk_cluster(graph, seed_nodes, *, t=5.0, epsilon=1e-4, max_volume=None,
               min_size=1):
    """Local cluster via strongly local heat-kernel diffusion [15]."""
    t = check_positive(t, "t")
    epsilon = check_probability(epsilon, "epsilon")
    seed_vector = degree_weighted_indicator_seed(graph, seed_nodes)
    result = heat_kernel_push(graph, seed_vector, t, epsilon=epsilon)
    support = np.flatnonzero(result.approximation > 0)
    return _finish(
        graph, result.approximation, support, seed_nodes, result.work, "hk",
        max_volume, min_size,
    )


def best_local_cluster(graph, seed_nodes, *, methods=("acl", "nibble", "hk"),
                       **kwargs):
    """Run several local methods from the same seed; keep the best φ."""
    drivers = {"acl": acl_cluster, "nibble": nibble_cluster, "hk": hk_cluster}
    best = None
    for name in methods:
        if name not in drivers:
            raise PartitionError(f"unknown local method {name!r}")
        try:
            candidate = drivers[name](graph, seed_nodes, **kwargs.get(name, {}))
        except PartitionError:
            continue
        if best is None or candidate.conductance < best.conductance:
            best = candidate
    if best is None:
        raise PartitionError("no local method produced a cluster")
    return best


def seed_excluded_from_own_cluster(graph, seed_node, **acl_kwargs):
    """Exhibit the Section 3.3 pathology for a given seed, if present.

    Returns ``(result, excluded)`` where ``excluded`` is True when the ACL
    sweep cluster does not contain the seed node.
    """
    result = acl_cluster(graph, [seed_node], **acl_kwargs)
    return result, not result.contains_seed
