"""Seed → cluster drivers: the "operational approach" of Section 3.3.

One generic driver, :func:`local_cluster`, runs a strongly local diffusion
from a seed set — any single-point spec from the unified dynamics registry
(:mod:`repro.dynamics`) — and sweeps the (degree-normalized) output over
its support only, so that the total work — diffusion plus sweep — depends
on the output size, not on ``n``.  The spec supplies the diffusion
vectors; dynamics whose trajectory matters (the truncated walk) yield one
vector per step and the driver keeps the best cut, as Nibble does.  A
:class:`~repro.refine.Pipeline` (or the ``refiners=...`` keyword) chains
registered refiners — MQI, FlowImprove, MOV — onto the sweep cluster,
with per-stage provenance on the result.

The pre-registry per-dynamics drivers remain as thin spec-constructing
deprecation shims:

* :func:`acl_cluster` — ``local_cluster(graph, seeds, PPR(alpha))``: ACL
  push on personalized PageRank [1]; the method the paper identifies
  behind the "LocalSpectral" curve of Figure 1;
* :func:`nibble_cluster` — ``local_cluster(graph, seeds,
  LazyWalk(steps))``: Spielman–Teng truncated random walks [39], sweeping
  every step of the trajectory;
* :func:`hk_cluster` — ``local_cluster(graph, seeds, HeatKernel(t))``:
  heat-kernel push [15].

Each returns a :class:`LocalClusterResult` carrying both the cluster and the
work accounting used by experiment E8.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro._validation import check_int, check_positive, check_probability
from repro.diffusion.seeds import degree_weighted_indicator_seed
from repro.dynamics import (
    HeatKernel,
    LazyWalk,
    PPR,
    UnknownDynamicsError,
    get_dynamics,
    warn_deprecated,
)
from repro.exceptions import InvalidParameterError, PartitionError
from repro.partition.sweep import sweep_cut


@dataclass
class LocalClusterResult:
    """A locally computed cluster.

    Attributes
    ----------
    nodes:
        Sorted node ids of the cluster.
    conductance:
        φ(cluster).
    seed_nodes:
        The seed set used.
    support_size:
        Nodes touched by the diffusion (the locality certificate).
    work:
        Edge work performed by the diffusion.
    method:
        ``"acl"``, ``"nibble"``, or ``"hk"`` (a registered spec's
        ``local_method`` label in general).
    contains_seed:
        Whether every seed node ended up inside the cluster — Section 3.3
        warns this can be False ("a seed node not being part of 'its own
        cluster' can easily happen"), and experiment E9 counts how often.
    refinement:
        Per-stage :class:`~repro.refine.RefinementStep` provenance when a
        refiner chain post-processed the sweep cluster; empty otherwise.
        ``nodes``/``conductance``/``contains_seed`` describe the refined
        cluster; ``support_size``/``work`` keep the diffusion accounting.
    """

    nodes: np.ndarray
    conductance: float
    seed_nodes: np.ndarray
    support_size: int
    work: int
    method: str
    contains_seed: bool
    refinement: tuple = ()


def _finish(graph, scores, restrict_to, seed_nodes, work, method,
            max_volume, min_size, backend=None):
    if restrict_to.size == 0:
        raise PartitionError(f"{method}: diffusion support is empty")
    sweep = sweep_cut(
        graph, scores, degree_normalize=True, restrict_to=restrict_to,
        max_volume=max_volume, min_size=min_size, backend=backend,
    )
    seed_arr = np.asarray(sorted(set(int(s) for s in seed_nodes)),
                          dtype=np.int64)
    cluster = sweep.nodes
    contains = bool(np.isin(seed_arr, cluster).all())
    return LocalClusterResult(
        nodes=cluster,
        conductance=sweep.conductance,
        seed_nodes=seed_arr,
        support_size=int(restrict_to.size),
        work=int(work),
        method=method,
        contains_seed=contains,
    )


def _as_point_spec(graph, dynamics):
    """Resolve a name / alias / spec into a single-point dynamics spec."""
    if isinstance(dynamics, str):
        return get_dynamics(dynamics).local_spec(graph)
    get_dynamics(dynamics)  # raises UnknownDynamicsError for foreign specs
    return dynamics


def local_cluster(graph, seed_nodes, dynamics="ppr", *, epsilon=1e-4,
                  max_volume=None, min_size=1, refiners=(), backend=None):
    """Local cluster via one registered dynamics' diffusion + sweep.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seed_nodes:
        Seed set (ids).
    dynamics:
        A single-point spec — ``PPR(alpha=0.1)``, ``HeatKernel(t=5.0)``,
        ``LazyWalk(steps=40)`` — or a registered name / alias
        (``"ppr"``/``"acl"``, ``"hk"``, ``"walk"``/``"nibble"``), which
        resolves to the dynamics' default local point spec (the walk's
        default step count depends on the graph size).  Grid-valued specs
        are rejected: a local driver needs one aggressiveness point.
        A :class:`~repro.refine.Pipeline` is accepted too: its dynamics
        spec drives the diffusion and its refiner chain post-processes
        the sweep cluster (exclusive with the ``refiners`` keyword).
    epsilon:
        Truncation threshold; smaller ε = larger support = weaker
        regularization.
    max_volume:
        Optional volume cap on the sweep (Problem (9)'s k).
    min_size:
        Minimum cluster size accepted by the sweep.
    refiners:
        Optional refiner chain (:mod:`repro.refine` specs, names, or
        aliases) applied to the best sweep cluster; per-stage provenance
        lands in ``LocalClusterResult.refinement``.
    backend:
        Registered backend name or :class:`~repro.backends.EngineBackend`
        for the diffusion and sweep kernels; ``None`` keeps each spec's
        historical local default (the scalar push drivers for PPR / hk,
        the vectorized walk).

    Returns
    -------
    LocalClusterResult

    Notes
    -----
    Dynamics with a trajectory (the truncated walk) yield one score vector
    per step; every vector is swept and the best admissible cut wins, as
    Nibble does.  Single-vector dynamics (ACL push, heat-kernel push)
    reduce to one diffusion + one sweep.
    """
    from repro.refine import Pipeline, apply_refiners, as_refiner_chain

    if isinstance(dynamics, Pipeline):
        if refiners:
            raise InvalidParameterError(
                "local_cluster received both a Pipeline and a refiners "
                "keyword; the pipeline carries the full chain"
            )
        refiners = dynamics.refiners
        dynamics = dynamics.grid.dynamics
    chain = as_refiner_chain(refiners)
    spec = _as_point_spec(graph, dynamics)
    epsilon = check_probability(epsilon, "epsilon")
    method = spec.local_method
    seed_vector = degree_weighted_indicator_seed(graph, seed_nodes)
    best = None
    for scores, work in spec.local_sweep_vectors(
        graph, seed_vector, epsilon=epsilon, backend=backend
    ):
        support = np.flatnonzero(scores > 0)
        if support.size == 0:
            continue
        try:
            candidate = _finish(
                graph, scores, support, seed_nodes, work, method,
                max_volume, min_size, backend=backend,
            )
        except PartitionError:
            continue
        if best is None or candidate.conductance < best.conductance:
            best = candidate
    if best is None:
        raise PartitionError(
            f"{method}: no diffusion vector produced an admissible sweep"
        )
    if chain:
        trace = apply_refiners(
            graph, best.nodes, chain, pre_conductance=best.conductance
        )
        if trace.changed:
            best = dataclasses.replace(
                best,
                nodes=trace.nodes,
                conductance=trace.final_conductance,
                contains_seed=bool(
                    np.isin(best.seed_nodes, trace.nodes).all()
                ),
                refinement=trace.steps,
            )
        else:
            best = dataclasses.replace(best, refinement=trace.steps)
    return best


def acl_cluster(graph, seed_nodes, *, alpha=0.1, epsilon=1e-4,
                max_volume=None, min_size=1):
    """Deprecated shim: ACL push + sweep via :func:`local_cluster`.

    Equivalent to ``local_cluster(graph, seed_nodes, PPR(alpha=alpha),
    epsilon=epsilon, ...)``; emits a :class:`DeprecationWarning`.
    """
    warn_deprecated(
        "acl_cluster", "local_cluster(graph, seeds, PPR(alpha=...))"
    )
    return _acl_cluster(
        graph, seed_nodes, alpha=alpha, epsilon=epsilon,
        max_volume=max_volume, min_size=min_size,
    )


def _acl_cluster(graph, seed_nodes, *, alpha=0.1, epsilon=1e-4,
                 max_volume=None, min_size=1):
    alpha = check_probability(alpha, "alpha")
    return local_cluster(
        graph, seed_nodes, PPR(alpha=alpha), epsilon=epsilon,
        max_volume=max_volume, min_size=min_size,
    )


def nibble_cluster(graph, seed_nodes, *, num_steps=None, epsilon=1e-4,
                   max_volume=None, min_size=1):
    """Deprecated shim: truncated lazy walks via :func:`local_cluster`.

    Equivalent to ``local_cluster(graph, seed_nodes,
    LazyWalk(steps=num_steps), epsilon=epsilon, ...)``; emits a
    :class:`DeprecationWarning`.
    """
    warn_deprecated(
        "nibble_cluster", "local_cluster(graph, seeds, LazyWalk(steps=...))"
    )
    return _nibble_cluster(
        graph, seed_nodes, num_steps=num_steps, epsilon=epsilon,
        max_volume=max_volume, min_size=min_size,
    )


def _nibble_cluster(graph, seed_nodes, *, num_steps=None, epsilon=1e-4,
                    max_volume=None, min_size=1):
    if num_steps is None:
        spec = get_dynamics("walk").local_spec(graph)
    else:
        num_steps = check_int(num_steps, "num_steps", minimum=1)
        spec = LazyWalk(steps=num_steps)
    return local_cluster(
        graph, seed_nodes, spec, epsilon=epsilon, max_volume=max_volume,
        min_size=min_size,
    )


def hk_cluster(graph, seed_nodes, *, t=5.0, epsilon=1e-4, max_volume=None,
               min_size=1):
    """Deprecated shim: heat-kernel diffusion via :func:`local_cluster`.

    Equivalent to ``local_cluster(graph, seed_nodes, HeatKernel(t=t),
    epsilon=epsilon, ...)``; emits a :class:`DeprecationWarning`.
    """
    warn_deprecated(
        "hk_cluster", "local_cluster(graph, seeds, HeatKernel(t=...))"
    )
    return _hk_cluster(
        graph, seed_nodes, t=t, epsilon=epsilon, max_volume=max_volume,
        min_size=min_size,
    )


def _hk_cluster(graph, seed_nodes, *, t=5.0, epsilon=1e-4, max_volume=None,
                min_size=1):
    t = check_positive(t, "t")
    return local_cluster(
        graph, seed_nodes, HeatKernel(t=t), epsilon=epsilon,
        max_volume=max_volume, min_size=min_size,
    )


def best_local_cluster(graph, seed_nodes, *, methods=("acl", "nibble", "hk"),
                       **kwargs):
    """Run several local methods from the same seed; keep the best φ.

    ``methods`` entries are the classic driver names (``"acl"``,
    ``"nibble"``, ``"hk"``, with their historical per-method keyword
    overrides in ``kwargs``, e.g. ``acl={"alpha": 0.05}``), any other
    registry name or alias, or single-point specs; non-classic entries
    take :func:`local_cluster` keyword overrides instead.
    """
    legacy_drivers = {
        "acl": _acl_cluster, "nibble": _nibble_cluster, "hk": _hk_cluster,
    }
    best = None
    for name in methods:
        overrides = kwargs.get(name, {}) if isinstance(name, str) else {}
        if isinstance(name, str) and name in legacy_drivers:
            driver, args = legacy_drivers[name], (graph, seed_nodes)
        else:
            try:
                spec = _as_point_spec(graph, name)
            except UnknownDynamicsError:
                raise PartitionError(f"unknown local method {name!r}")
            driver, args = local_cluster, (graph, seed_nodes, spec)
        try:
            candidate = driver(*args, **overrides)
        except PartitionError:
            continue
        if best is None or candidate.conductance < best.conductance:
            best = candidate
    if best is None:
        raise PartitionError("no local method produced a cluster")
    return best


def seed_excluded_from_own_cluster(graph, seed_node, **acl_kwargs):
    """Exhibit the Section 3.3 pathology for a given seed, if present.

    Returns ``(result, excluded)`` where ``excluded`` is True when the ACL
    sweep cluster does not contain the seed node.
    """
    result = _acl_cluster(graph, [seed_node], **acl_kwargs)
    return result, not result.contains_seed
