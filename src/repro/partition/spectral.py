"""Global spectral partitioning: Fiedler embedding + sweep cut.

The spectral pipeline of Section 3.2: solve Problem (3) (exactly or
approximately), embed the nodes on the line spanned by the Fiedler
direction, and take the best sweep cut. The result is "quadratically good"
— Cheeger's inequality guarantees

    λ2 / 2  <=  φ(G)  <=  φ(sweep)  <=  sqrt(2 λ2),

and :func:`cheeger_certificate` checks both sides on every run (the
quadratic slack is *real* on long stringy graphs; experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PartitionError
from repro.linalg.fiedler import fiedler_pair
from repro.partition.metrics import cheeger_lower_bound, cheeger_upper_bound
from repro.partition.sweep import SweepCutResult, sweep_cut


@dataclass
class SpectralCutResult:
    """Spectral sweep-cut output with its Cheeger certificate.

    Attributes
    ----------
    nodes:
        The best sweep prefix (smaller-volume side not guaranteed).
    conductance:
        φ of that prefix.
    lambda2:
        The (approximate) second eigenvalue used.
    cheeger_lower, cheeger_upper:
        λ2/2 and sqrt(2 λ2).
    embedding:
        The D^{-1/2}-scaled Fiedler embedding that was swept.
    sweep:
        The full :class:`~repro.partition.sweep.SweepCutResult`.
    """

    nodes: np.ndarray
    conductance: float
    lambda2: float
    cheeger_lower: float
    cheeger_upper: float
    embedding: np.ndarray
    sweep: SweepCutResult

    def satisfies_cheeger(self, *, slack=1e-8):
        """Whether λ2/2 − slack <= φ(sweep) <= sqrt(2 λ2) + slack."""
        return (
            self.conductance >= self.cheeger_lower - slack
            and self.conductance <= self.cheeger_upper + slack
        )


def spectral_cut(graph, *, method="lanczos", seed=None, max_size=None):
    """Spectral bisection by Fiedler sweep.

    Parameters
    ----------
    graph:
        Connected graph with positive degrees.
    method:
        Eigensolver route (``"exact"``, ``"lanczos"``, ``"power"``).
    seed:
        RNG seed for the iterative eigensolvers.
    max_size:
        Optional cap on the prefix size examined.

    Returns
    -------
    SpectralCutResult
    """
    lambda2, x = fiedler_pair(graph, method=method, seed=seed)
    embedding = x / np.sqrt(graph.degrees)
    # Sweep both orientations; Cheeger's proof guarantees one of them.
    best = None
    for direction in (embedding, -embedding):
        result = sweep_cut(
            graph, direction, degree_normalize=False, max_size=max_size
        )
        if best is None or result.conductance < best.conductance:
            best = result
    return SpectralCutResult(
        nodes=best.nodes,
        conductance=best.conductance,
        lambda2=lambda2,
        cheeger_lower=cheeger_lower_bound(lambda2),
        cheeger_upper=cheeger_upper_bound(lambda2),
        embedding=embedding,
        sweep=best,
    )


def cheeger_certificate(graph, *, method="exact", seed=None):
    """Return ``(λ2/2, φ(sweep), sqrt(2 λ2))`` and verify the sandwich.

    Raises :class:`PartitionError` if the certificate fails — which would
    indicate an implementation bug, since the inequality is a theorem.
    """
    result = spectral_cut(graph, method=method, seed=seed)
    if not result.satisfies_cheeger(slack=1e-6):
        raise PartitionError(
            f"Cheeger certificate violated: λ2/2={result.cheeger_lower:.6g}, "
            f"φ={result.conductance:.6g}, "
            f"sqrt(2λ2)={result.cheeger_upper:.6g}"
        )
    return result.cheeger_lower, result.conductance, result.cheeger_upper


def spectral_bisection_median(graph, *, laplacian="combinatorial",
                              method="exact", seed=None):
    """Classical spectral bisection: split at the median of the Fiedler vector.

    This is the *bisection* (not sweep) rounding that Guattery–Miller [21]
    analyze: with ``laplacian="combinatorial"`` (their setting), the roach
    graph makes this cut all body rungs — conductance Θ(1) — while the
    optimal bisection severs the two antennae at cost 2. The paper's
    Section 3.2 cites exactly this as the proof that the spectral method's
    quadratic Cheeger factor "is not an artifact of the analysis".

    Returns ``(nodes, conductance)`` for the lower-median half (node count
    ``floor(n/2)``).
    """
    import numpy as np

    from repro.partition.metrics import conductance as _conductance

    n = graph.num_nodes
    if laplacian == "combinatorial":
        from repro.graph.matrices import combinatorial_laplacian

        L = combinatorial_laplacian(graph).toarray()
        values, vectors = np.linalg.eigh(L)
        y = vectors[:, 1]
    elif laplacian == "normalized":
        from repro.linalg.fiedler import fiedler_embedding

        y = fiedler_embedding(graph, method=method, seed=seed)
    else:
        raise PartitionError(
            f"laplacian must be 'combinatorial' or 'normalized'; "
            f"got {laplacian!r}"
        )
    order = np.argsort(y, kind="stable")
    half = np.sort(order[: n // 2])
    return half, _conductance(graph, half)


def spectral_cluster_ensemble(graph, *, method="lanczos", seed=None,
                              max_size=None):
    """All sweep prefixes of the Fiedler embedding as candidate clusters.

    The global-spectral contribution to an NCP: each prefix of the sweep is
    a candidate cluster with a known conductance. Returns ``(sizes, phis,
    volumes, order)`` arrays aligned by prefix.
    """
    lambda2, x = fiedler_pair(graph, method=method, seed=seed)
    embedding = x / np.sqrt(graph.degrees)
    from repro.partition.sweep import all_prefix_clusters

    rows_fwd, order_fwd = all_prefix_clusters(
        graph, embedding, degree_normalize=False, max_size=max_size
    )
    rows_bwd, order_bwd = all_prefix_clusters(
        graph, -embedding, degree_normalize=False, max_size=max_size
    )
    return (rows_fwd, order_fwd), (rows_bwd, order_bwd)
