"""The pluggable chunk executors: serial, process pool, and chaos.

One :class:`ChunkExecutor` is a *strategy* for evaluating
:class:`~repro.ncp.runner.GridChunk` shards: the driver
(:func:`~repro.execution.driver.execute_chunks`) owns the queueing,
retry, straggler re-dispatch, and first-result-wins bookkeeping, while
the executor only knows how to turn one ``(chunk, attempt)`` submission
into a :class:`concurrent.futures.Future`.

* :class:`SerialExecutor` — evaluates in-process, one chunk at a time;
  the reference strategy every other executor must match byte for byte.
* :class:`ProcessExecutor` — today's production path: a
  ``ProcessPoolExecutor`` whose workers map the graph's CSR arrays from
  one shared-memory segment (the pickle channel carries only chunk
  descriptions), recreated transparently after a worker death.
* :class:`ChaosExecutor` — a serial executor driven by a frozen
  :class:`~repro.execution.faults.FaultPlan`: it injects worker deaths,
  delays, memo-entry corruption, and whole-run aborts deterministically,
  so every robustness guarantee has a test that exercises it by
  construction.

This module is the one place in the tree allowed to construct a
``ProcessPoolExecutor`` directly (lint rule R007 flags it anywhere
else): all other code goes through the registry.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

import numpy as np

from repro._validation import check_int, check_positive
from repro.exceptions import InvalidParameterError, ReproError
from repro.execution.errors import InjectedFaultError, RunAbortedError
from repro.execution.faults import Fault, FaultPlan

__all__ = [
    "Chaos",
    "ChaosExecutor",
    "ChunkExecutor",
    "ProcessExecutor",
    "ProcessPool",
    "Serial",
    "SerialExecutor",
]


# ---------------------------------------------------------------------------
# Shared-memory graph transport (moved here from repro.ncp.runner; the
# runner re-exports the two public-ish helpers for compatibility).


def _share_graph(graph):
    """Copy the graph's CSR arrays into one shared-memory segment.

    Returns ``(shm, layout)`` where ``layout`` is a tuple of
    ``(byte_offset, dtype_str, length)`` triples (indptr, indices,
    weights, each 8-byte aligned) from which :func:`_attach_shared_graph`
    rebuilds zero-copy views in a worker process.  The caller owns the
    segment and must ``close()`` + ``unlink()`` it.
    """
    from multiprocessing import shared_memory

    arrays = (
        np.ascontiguousarray(graph.indptr),
        np.ascontiguousarray(graph.indices),
        np.ascontiguousarray(graph.weights),
    )
    layout = []
    offset = 0
    for array in arrays:
        offset = (offset + 7) & ~7
        layout.append((offset, array.dtype.str, int(array.size)))
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (start, _, _), array in zip(layout, arrays):
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=shm.buf, offset=start
        )
        view[:] = array
    return shm, tuple(layout)


def _attach_shared_graph(shm_name, layout):
    """Map a :func:`_share_graph` segment back into a read-only Graph."""
    from multiprocessing import shared_memory

    # Attaching re-registers the name with the resource tracker, but the
    # tracker process (and its name *set*) is inherited from the parent,
    # so the parent's single close()+unlink() after the pool drains is
    # the one cleanup; workers only close their mapping implicitly at
    # exit.
    shm = shared_memory.SharedMemory(name=shm_name)
    arrays = []
    for start, dtype_str, length in layout:
        view = np.ndarray(
            (length,), dtype=np.dtype(dtype_str), buffer=shm.buf,
            offset=start,
        )
        view.setflags(write=False)
        arrays.append(view)
    from repro.graph.graph import Graph

    return shm, Graph(arrays[0], arrays[1], arrays[2], validate=False)


# Per-worker-process state: the shared graph, attached once by the pool
# initializer and reused by every chunk the worker evaluates.  The shm
# handle is kept alive alongside the Graph so the views stay valid.
_WORKER_SHM = None
_WORKER_GRAPH = None


def _worker_init(shm_name, layout):
    """Pool initializer: attach the shared graph once per worker."""
    global _WORKER_SHM, _WORKER_GRAPH
    _WORKER_SHM, _WORKER_GRAPH = _attach_shared_graph(shm_name, layout)


def _worker_call(evaluate, chunk):
    """Process-pool entry point: evaluate one chunk on the shared graph.

    Only the chunk (and the module-level ``evaluate`` reference) travel
    through the pool's pickle channel; the CSR arrays are the shared-
    memory views attached by :func:`_worker_init`.
    """
    return evaluate(_WORKER_GRAPH, chunk)


# ---------------------------------------------------------------------------
# Frozen executor specs (the registry's spec types).


@dataclass(frozen=True)
class Serial:
    """Spec for the in-process serial executor (no knobs)."""

    name: ClassVar[str] = "serial"

    def token(self):
        """Canonical CLI token for this spec."""
        return type(self).name

    def params(self):
        """JSON-able parameter record for manifests."""
        return {}


@dataclass(frozen=True)
class ProcessPool:
    """Spec for the shared-memory process-pool executor (no knobs).

    The worker count is an execution fact, not part of the workload, so
    it stays a separate ``num_workers`` argument (the runner's
    determinism contract makes results independent of it).
    """

    name: ClassVar[str] = "process"

    def token(self):
        """Canonical CLI token for this spec."""
        return type(self).name

    def params(self):
        """JSON-able parameter record for manifests."""
        return {}


@dataclass(frozen=True)
class Chaos:
    """Spec for the deterministic fault-injecting executor.

    The seeded recipe fields (``seed``/``kills``/``delays``/``corrupts``
    /``delay_seconds``) expand through :meth:`FaultPlan.seeded` at run
    start; ``faults`` carries explicit :class:`~repro.execution.faults.
    Fault` records for tests that need to target an exact
    (chunk, attempt) pair.  ``abort_after`` crashes the run after K
    completed chunks (the resume test's crash half).
    """

    seed: int = 0
    kills: int = 0
    delays: int = 0
    corrupts: int = 0
    delay_seconds: float = 0.01
    abort_after: object = None
    faults: tuple = field(default_factory=tuple)

    name: ClassVar[str] = "chaos"

    def __post_init__(self):
        check_int(self.seed, "seed")
        check_int(self.kills, "kills", minimum=0)
        check_int(self.delays, "delays", minimum=0)
        check_int(self.corrupts, "corrupts", minimum=0)
        check_positive(self.delay_seconds, "delay_seconds", allow_zero=True)
        if self.abort_after is not None:
            check_int(self.abort_after, "abort_after", minimum=0)
        object.__setattr__(self, "faults", tuple(self.faults))
        for entry in self.faults:
            if not isinstance(entry, Fault):
                raise InvalidParameterError(
                    f"Chaos.faults must hold Fault records; got {entry!r}"
                )

    def plan(self, num_chunks):
        """Resolve the frozen :class:`FaultPlan` for ``num_chunks``."""
        seeded = FaultPlan.seeded(
            self.seed, num_chunks,
            kills=self.kills, delays=self.delays, corrupts=self.corrupts,
            delay_seconds=self.delay_seconds,
        )
        return FaultPlan(
            faults=self.faults + seeded.faults,
            abort_after=self.abort_after,
        )

    def token(self):
        """Canonical CLI token (seeded-recipe fields only).

        Explicit ``faults`` records are API-only (tests construct them
        directly) and are not representable in the CLI grammar; they are
        still recorded in :meth:`params` for manifests.
        """
        parts = []
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.kills:
            parts.append(f"kills={self.kills}")
        if self.delays:
            parts.append(f"delays={self.delays}")
        if self.corrupts:
            parts.append(f"corrupts={self.corrupts}")
        if self.delays and self.delay_seconds != 0.01:
            parts.append(f"delay_seconds={self.delay_seconds!r}")
        if self.abort_after is not None:
            parts.append(f"abort_after={self.abort_after}")
        name = type(self).name
        return f"{name}:{','.join(parts)}" if parts else name

    def params(self):
        """JSON-able parameter record for manifests."""
        return {
            "seed": int(self.seed),
            "kills": int(self.kills),
            "delays": int(self.delays),
            "corrupts": int(self.corrupts),
            "delay_seconds": float(self.delay_seconds),
            "abort_after": (
                None if self.abort_after is None else int(self.abort_after)
            ),
            "faults": [
                {
                    "kind": f.kind,
                    "chunk": int(f.chunk),
                    "attempt": int(f.attempt),
                    "seconds": float(f.seconds),
                }
                for f in self.faults
            ],
        }


# ---------------------------------------------------------------------------
# Executor strategies.


class ChunkExecutor:
    """Strategy interface the execution driver runs chunks through.

    Subclasses override :meth:`submit` (required) and any of the hooks;
    the driver guarantees the call order
    ``__enter__ -> start -> (submit | recover | after_cache_write |
    note_result)* -> __exit__``.

    Attributes
    ----------
    redispatch_capable:
        Whether the driver may re-submit a straggling chunk while its
        first submission is still in flight (true parallel executors
        only; for serial strategies a duplicate would just run twice).
    max_inflight:
        Cap on concurrently in-flight submissions (``None`` = no cap).
        Serial strategies use 1, so results stream back chunk by chunk
        and per-chunk cache writes land incrementally — the property
        crash-then-resume relies on.
    """

    redispatch_capable = False
    max_inflight = 1

    def __init__(self, graph, evaluate):
        self._graph = graph
        self._evaluate = evaluate

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def start(self, chunks):
        """Driver hook: called once with the full list of chunks to run."""

    def submit(self, chunk, attempt=0):
        """Submit one chunk evaluation; returns a Future of candidates."""
        raise NotImplementedError

    def needs_recovery(self, exc):
        """Whether ``exc`` means the executor's machinery died (vs. the
        chunk itself failing) and :meth:`recover` should run before the
        chunk is retried."""
        return False

    def recover(self):
        """Rebuild broken machinery (e.g. a dead process pool)."""

    def after_cache_write(self, chunk, path):
        """Hook: the runner persisted ``chunk``'s memo entry at ``path``."""

    def note_result(self, chunk, completed):
        """Hook: ``chunk`` completed; ``completed`` chunks are done so far."""


class SerialExecutor(ChunkExecutor):
    """Evaluate chunks in-process, one at a time (the reference strategy)."""

    def submit(self, chunk, attempt=0):
        future = Future()
        try:
            result = self._evaluate(self._graph, chunk)
        except ReproError as exc:
            # Library failures travel through the future exactly like a
            # pool's would, so the driver's retry/typed-error path is
            # uniform across executors; non-library exceptions are bugs
            # and propagate immediately.
            future.set_exception(exc)
        else:
            future.set_result(result)
        return future


class ProcessExecutor(ChunkExecutor):
    """Fan chunks out to a shared-memory-backed process pool.

    The CSR arrays cross the process boundary exactly once, through a
    shared-memory segment every worker maps read-only at startup; the
    pickle channel carries only :class:`~repro.ncp.runner.GridChunk`
    descriptions.  A dead pool (worker killed by the OOM killer, a
    segfault, ...) is detected via :meth:`needs_recovery` and rebuilt by
    :meth:`recover` against the same shared segment, so a single worker
    death costs one chunk retry, not the whole run.
    """

    redispatch_capable = True

    def __init__(self, graph, evaluate, *, num_workers=1):
        super().__init__(graph, evaluate)
        self._num_workers = check_int(num_workers, "num_workers", minimum=1)
        # Modest lookahead over the worker count: enough to keep workers
        # busy, small enough that the straggler check sees fresh medians.
        self.max_inflight = 2 * self._num_workers
        self._shm = None
        self._layout = None
        self._pool = None

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self._num_workers,
            initializer=_worker_init,
            initargs=(self._shm.name, self._layout),
        )

    def __enter__(self):
        self._shm, self._layout = _share_graph(self._graph)
        self._pool = self._make_pool()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None
        return False

    def submit(self, chunk, attempt=0):
        return self._pool.submit(_worker_call, self._evaluate, chunk)

    def needs_recovery(self, exc):
        from concurrent.futures import BrokenExecutor

        return isinstance(exc, BrokenExecutor)

    def recover(self):
        """Replace a broken pool; the shared graph segment is reused."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()


def _corrupt_file(path):
    """Deterministically mangle a memo entry: truncate + flip one byte.

    Truncation leaves a valid zip header with a cut-short deflate stream
    (the realistic kill-during-write artifact), and the bit flip
    guarantees even tiny files change — both must read back as a cache
    miss, never a crash.
    """
    path = Path(path)
    data = bytearray(path.read_bytes()[:max(1, path.stat().st_size // 2)])
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class ChaosExecutor(SerialExecutor):
    """A serial executor that injects faults from a frozen plan.

    Faults are resolved against the submitted chunk list at
    :meth:`start` (seeded fault targets are drawn over the chunk-index
    range), then injected deterministically: kills fail the targeted
    (chunk, attempt) submission with
    :class:`~repro.execution.errors.InjectedFaultError`, delays sleep
    before evaluating, corrupt faults mangle the chunk's memo entry
    right after the runner writes it, and ``abort_after`` raises
    :class:`~repro.execution.errors.RunAbortedError` once K chunks have
    completed.  Because injection depends only on the plan, a chaos run
    that completes is byte-identical to a clean one.
    """

    def __init__(self, graph, evaluate, *, spec=None):
        super().__init__(graph, evaluate)
        self._spec = spec if spec is not None else Chaos()
        self._plan = FaultPlan()
        self._corrupted = set()

    @property
    def plan(self):
        """The resolved :class:`FaultPlan` (empty before :meth:`start`)."""
        return self._plan

    def start(self, chunks):
        count = 1 + max((c.index for c in chunks), default=-1)
        self._plan = self._spec.plan(count)

    def submit(self, chunk, attempt=0):
        delay = self._plan.delay_for(chunk.index, attempt)
        if delay > 0.0:
            time.sleep(delay)
        if self._plan.kills_attempt(chunk.index, attempt):
            future = Future()
            future.set_exception(InjectedFaultError(
                f"chaos: injected worker death for chunk {chunk.index} "
                f"on attempt {attempt}"
            ))
            return future
        return super().submit(chunk, attempt)

    def after_cache_write(self, chunk, path):
        if self._plan.corrupts_chunk(chunk.index):
            if chunk.index not in self._corrupted:
                self._corrupted.add(chunk.index)
                _corrupt_file(path)

    def note_result(self, chunk, completed):
        abort_after = self._plan.abort_after
        if abort_after is not None and completed >= abort_after:
            raise RunAbortedError(
                f"chaos: aborting run after {completed} completed "
                f"chunks (abort_after={abort_after})",
                completed_chunks=completed,
            )
