"""The ExecutorKind registry: pluggable ensemble-execution strategies.

The fifth registry, mirroring :class:`~repro.dynamics.DynamicsKind`,
:class:`~repro.refine.RefinerKind`,
:class:`~repro.backends.EngineBackend`, and
:class:`~repro.analysis.LintRule`: a frozen record per strategy under a
canonical key (``serial`` / ``process`` / ``chaos``) with an alias
table, a did-you-mean :class:`UnknownExecutorError`, and
register/resolve/get/unregister functions.  Each entry binds a frozen
*spec type* (the CLI- and manifest-facing parameter record) to a
*factory* that builds the live
:class:`~repro.execution.executors.ChunkExecutor` for a run.

Registering an executor is enough for ``run_ncp_ensemble(executor=...)``
and the ``repro ncp --executor`` flag to accept it by name (see
``tests/test_execution.py`` for a worked third-party example).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError

__all__ = [
    "ExecutorKind",
    "UnknownExecutorError",
    "as_executor_spec",
    "build_executor",
    "get_executor",
    "register_executor",
    "registered_executors",
    "resolve_executor_name",
    "unregister_executor",
]


class UnknownExecutorError(InvalidParameterError, KeyError):
    """Raised for an executor name that is not in the registry.

    Inherits both :class:`~repro.exceptions.InvalidParameterError` (hence
    ``ValueError``) and ``KeyError``, matching the other registry errors
    (:class:`~repro.dynamics.UnknownDynamicsError`,
    :class:`~repro.backends.UnknownBackendError`), so callers validating
    either way keep working.
    """

    __str__ = Exception.__str__


@dataclass(frozen=True)
class ExecutorKind:
    """One execution strategy: spec type + factory behind a canonical name.

    Attributes
    ----------
    key:
        Canonical registry name (``"serial"``, ``"process"``,
        ``"chaos"``).
    description:
        One-line summary shown in ``--help`` and the architecture docs.
    aliases:
        Accepted alternative names.
    spec_type:
        Frozen dataclass of the strategy's parameters; ``spec_type()``
        must be a valid default spec, and instances should provide
        ``token()`` (canonical CLI string) and ``params()`` (JSON-able
        manifest record).
    factory:
        ``(spec, *, graph, evaluate, num_workers)`` ->
        :class:`~repro.execution.executors.ChunkExecutor` building the
        live strategy for one run.
    replayable:
        Whether a manifest ``replay_argv`` may pin this executor.  The
        chaos executor is *not* replayable: fault injection is an
        execution fact (it never changes a completed run's bytes, and an
        ``abort_after`` fault would crash the replay), so replays fall
        back to the default strategy.
    """

    key: str
    description: str
    aliases: tuple = ()
    spec_type: object = field(default=None, repr=False)
    factory: object = field(default=None, repr=False)
    replayable: bool = True


_REGISTRY = {}
_ALIASES = {}


def _normalize(name):
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


def _unknown(name):
    known = sorted(_REGISTRY)
    aliases = sorted(a for a in _ALIASES if a not in _REGISTRY)
    close = difflib.get_close_matches(_normalize(name), sorted(_ALIASES), n=1)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return UnknownExecutorError(
        f"unknown executor {name!r}: registered executors are {known} "
        f"(aliases: {aliases}){hint}"
    )


def register_executor(kind, *, overwrite=False):
    """Register an :class:`ExecutorKind` under its key and aliases.

    Raises :class:`~repro.exceptions.InvalidParameterError` when the key
    or an alias collides with an existing entry (pass ``overwrite=True``
    to replace a previous registration).  Returns the kind, so
    registration can be used as an expression.
    """
    if not isinstance(kind, ExecutorKind):
        raise InvalidParameterError(
            f"register_executor needs an ExecutorKind; got {kind!r}"
        )
    key = _normalize(kind.key)
    names = [key] + [_normalize(alias) for alias in kind.aliases]
    if not overwrite:
        for name in names:
            if name in _ALIASES and _ALIASES[name] != key:
                raise InvalidParameterError(
                    f"executor name {name!r} already registered "
                    f"for {_ALIASES[name]!r}"
                )
        if key in _REGISTRY:
            raise InvalidParameterError(
                f"executor {key!r} already registered; pass overwrite=True "
                "to replace it"
            )
    _REGISTRY[key] = kind
    for name in names:
        _ALIASES[name] = key
    return kind


def unregister_executor(name):
    """Remove a registered executor (and its aliases) by name or alias."""
    key = resolve_executor_name(name)
    del _REGISTRY[key]
    for alias in [a for a, k in _ALIASES.items() if k == key]:
        del _ALIASES[alias]


def resolve_executor_name(executor):
    """Canonical executor key for a name, alias, kind, or spec instance."""
    if isinstance(executor, ExecutorKind):
        return _normalize(executor.key)
    for key, kind in _REGISTRY.items():
        if kind.spec_type is not None and isinstance(executor,
                                                    kind.spec_type):
            return key
    if not isinstance(executor, str):
        raise InvalidParameterError(
            f"cannot resolve an executor from {executor!r}: pass a "
            "registered name/alias, an ExecutorKind, or a spec instance"
        )
    key = _ALIASES.get(_normalize(executor))
    if key is None:
        raise _unknown(executor)
    return key


def get_executor(executor):
    """Look up an :class:`ExecutorKind` by name, alias, spec, or identity."""
    if isinstance(executor, ExecutorKind):
        return executor
    return _REGISTRY[resolve_executor_name(executor)]


def registered_executors():
    """Mapping of canonical executor key -> :class:`ExecutorKind`."""
    return dict(_REGISTRY)


def as_executor_spec(executor):
    """Coerce a name, alias, kind, or spec instance into a frozen spec.

    A name/alias or an :class:`ExecutorKind` yields the entry's default
    spec (``spec_type()``); a spec instance of a registered kind passes
    through unchanged.
    """
    kind = get_executor(executor)
    if kind.spec_type is not None and isinstance(executor, kind.spec_type):
        return executor
    return kind.spec_type()


def build_executor(executor, *, graph, evaluate, num_workers=0):
    """Resolve ``executor`` and build the live strategy for one run.

    Returns ``(chunk_executor, spec, kind)``.  ``evaluate`` is the
    ``(graph, chunk) -> candidates`` callable (a module-level function,
    so process-pool strategies can pickle it by reference);
    ``num_workers`` is forwarded to the factory (pool strategies clamp
    it to >= 1, serial strategies ignore it).
    """
    spec = as_executor_spec(executor)
    kind = get_executor(spec)
    instance = kind.factory(
        spec, graph=graph, evaluate=evaluate, num_workers=num_workers
    )
    return instance, spec, kind
