"""The execution driver: retry, straggler re-dispatch, typed failures.

:func:`execute_chunks` runs a deterministic chunk plan through any
:class:`~repro.execution.executors.ChunkExecutor`, adding the robustness
layer the strategies themselves stay ignorant of:

* **Retry with bounded backoff** — a failed (chunk, attempt) submission
  is re-queued until :class:`RetryPolicy.max_attempts` is exhausted,
  sleeping ``min(backoff * 2^(attempt-1), cap)`` between attempts; pool
  breakage (:meth:`ChunkExecutor.needs_recovery`) triggers one
  :meth:`ChunkExecutor.recover` per failure batch first.
* **Straggler re-dispatch** — on parallel executors, a chunk in flight
  longer than ``max(straggler_factor * median_duration,
  min_straggler_seconds)`` is submitted a second time; whichever copy
  finishes first wins and the loser is dropped.  Safe by construction:
  chunks are deterministic, so both copies carry identical results.
* **Typed failure reporting** — attempts exhausted raises
  :class:`~repro.execution.errors.ChunkExecutionError` naming the chunk,
  the attempt count, the graph fingerprint, and the (remote) traceback,
  instead of a raw ``BrokenProcessPool``.
* **Incremental results** — each completed chunk is handed to
  ``on_result`` immediately (the runner persists its memo entry there),
  so a run killed mid-way leaves every completed chunk on disk for
  ``--resume``.

Results are keyed by chunk index, so the caller's merge order — and the
candidate bytes — are independent of completion order, retries, and
re-dispatches.
"""

from __future__ import annotations

import statistics
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass, field

from repro._validation import check_int, check_positive
from repro.exceptions import InvalidParameterError
from repro.execution.errors import ChunkExecutionError

__all__ = [
    "ExecutionOutcome",
    "RetryPolicy",
    "execute_chunks",
    "pending_chunks",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Frozen retry/straggler knobs for :func:`execute_chunks`.

    Attributes
    ----------
    max_attempts:
        Total tries per chunk (first attempt included) before the run
        fails with :class:`~repro.execution.errors.ChunkExecutionError`.
    backoff_seconds:
        Sleep after the first failure; doubles per subsequent failure.
    backoff_cap_seconds:
        Upper bound on any single backoff sleep.
    straggler_factor:
        A chunk in flight longer than this multiple of the median chunk
        duration is re-dispatched (``None`` disables re-dispatch).
    min_straggler_seconds:
        Floor on the straggler deadline, so fast suites never
        re-dispatch on scheduling noise.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_cap_seconds: float = 1.0
    straggler_factor: object = 4.0
    min_straggler_seconds: float = 0.25

    def __post_init__(self):
        check_int(self.max_attempts, "max_attempts", minimum=1)
        check_positive(self.backoff_seconds, "backoff_seconds",
                       allow_zero=True)
        check_positive(self.backoff_cap_seconds, "backoff_cap_seconds",
                       allow_zero=True)
        if self.straggler_factor is not None:
            check_positive(self.straggler_factor, "straggler_factor")
        check_positive(self.min_straggler_seconds, "min_straggler_seconds",
                       allow_zero=True)

    def backoff_for(self, failures):
        """Backoff sleep after ``failures`` consecutive failed attempts."""
        check_int(failures, "failures", minimum=1)
        return min(
            self.backoff_seconds * (2 ** (failures - 1)),
            self.backoff_cap_seconds,
        )

    def straggler_deadline(self, median_seconds):
        """In-flight age beyond which a chunk is re-dispatched (or None)."""
        if self.straggler_factor is None:
            return None
        return max(
            float(self.straggler_factor) * float(median_seconds),
            self.min_straggler_seconds,
        )


@dataclass
class ExecutionOutcome:
    """What :func:`execute_chunks` did: results plus robustness facts.

    Attributes
    ----------
    results:
        ``chunk.index -> candidates`` for every submitted chunk.
    attempts:
        ``chunk.index -> attempts consumed`` (1 for a clean first try).
    retries:
        Total failed attempts that were re-queued.
    redispatches:
        Straggler duplicates submitted (first-result-wins).
    """

    results: dict = field(default_factory=dict, repr=False)
    attempts: dict = field(default_factory=dict)
    retries: int = 0
    redispatches: int = 0


def pending_chunks(chunks, completed):
    """The chunks still to run, given a set of completed chunk indices.

    The resume invariant, as code: ``pending ∪ completed = full plan``
    and ``pending ∩ completed = ∅``, preserving plan order.  Indices in
    ``completed`` that do not occur in ``chunks`` raise
    :class:`~repro.exceptions.InvalidParameterError` (a completed set
    from a foreign plan must never silently shrink this one).
    """
    chunks = list(chunks)
    done = {int(index) for index in completed}
    known = {chunk.index for chunk in chunks}
    unknown = sorted(done - known)
    if unknown:
        raise InvalidParameterError(
            f"completed chunk indices {unknown} are not part of the plan "
            f"(plan indices: {sorted(known)})"
        )
    return [chunk for chunk in chunks if chunk.index not in done]


def _format_failure(failure):
    """Full traceback text, including the remote (in-worker) part."""
    return "".join(traceback.format_exception(failure)).rstrip()


def execute_chunks(executor, chunks, *, retry=None, fingerprint="",
                   on_result=None):
    """Run ``chunks`` through ``executor`` with retry + re-dispatch.

    Parameters
    ----------
    executor:
        A :class:`~repro.execution.executors.ChunkExecutor`; entered as
        a context manager for the duration of the call.
    chunks:
        :class:`~repro.ncp.runner.GridChunk`-like records with distinct
        ``.index`` attributes; submitted in index order.
    retry:
        A :class:`RetryPolicy` (default: ``RetryPolicy()``).
    fingerprint:
        Graph fingerprint stamped onto
        :class:`~repro.execution.errors.ChunkExecutionError`.
    on_result:
        ``(chunk, candidates)`` callback fired exactly once per chunk,
        the moment its first result lands (the runner's incremental
        cache write).

    Returns
    -------
    ExecutionOutcome
    """
    policy = retry if retry is not None else RetryPolicy()
    ordered = sorted(chunks, key=lambda chunk: chunk.index)
    attempts = {chunk.index: 0 for chunk in ordered}
    if len(attempts) != len(ordered):
        raise InvalidParameterError(
            "execute_chunks needs distinct chunk indices; got duplicates"
        )
    outcome = ExecutionOutcome(attempts=attempts)
    results = outcome.results
    durations = []

    with executor:
        executor.start(ordered)
        queue = deque(ordered)
        in_flight = {}  # future -> (chunk, attempt, started)
        redispatch = (
            executor.redispatch_capable
            and policy.straggler_factor is not None
        )
        while queue or in_flight:
            capacity = executor.max_inflight
            while queue and (capacity is None
                             or len(in_flight) < capacity):
                chunk = queue.popleft()
                if chunk.index in results:
                    continue
                attempt = attempts[chunk.index]
                started = time.monotonic()
                in_flight[executor.submit(chunk, attempt)] = (
                    chunk, attempt, started,
                )
            if not in_flight:
                continue
            done, _ = _wait_futures(
                set(in_flight),
                timeout=policy.min_straggler_seconds if redispatch else None,
                return_when=FIRST_COMPLETED,
            )
            recover_needed = False
            for future in done:
                chunk, attempt, started = in_flight.pop(future)
                if chunk.index in results:
                    # A re-dispatched duplicate lost the race; chunks are
                    # deterministic, so the kept result is identical.
                    continue
                failure = future.exception()
                if failure is None:
                    durations.append(time.monotonic() - started)
                    attempts[chunk.index] = attempt + 1
                    results[chunk.index] = future.result()
                    if on_result is not None:
                        on_result(chunk, results[chunk.index])
                    executor.note_result(chunk, len(results))
                    continue
                failures = attempt + 1
                attempts[chunk.index] = failures
                if executor.needs_recovery(failure):
                    recover_needed = True
                if failures >= policy.max_attempts:
                    raise ChunkExecutionError(
                        f"chunk {chunk.index} ({chunk.describe()}) failed "
                        f"on all {failures} attempts; last failure: "
                        f"{failure!r}",
                        chunk_index=chunk.index,
                        dynamics=getattr(chunk, "dynamics", ""),
                        attempts=failures,
                        fingerprint=fingerprint,
                        worker_traceback=_format_failure(failure),
                    ) from failure
                outcome.retries += 1
                backoff = policy.backoff_for(failures)
                if backoff > 0.0:
                    time.sleep(backoff)
                queue.append(chunk)
            if recover_needed:
                # One recovery per failure batch: a broken pool fails all
                # of its in-flight futures together, and each failed one
                # was already re-queued above.
                executor.recover()
            # Drop in-flight duplicates of chunks that just completed.
            stale = [
                future
                for future, (chunk, _, _) in in_flight.items()
                if chunk.index in results
            ]
            for future in stale:
                future.cancel()
                del in_flight[future]
            if redispatch and durations and in_flight:
                deadline = policy.straggler_deadline(
                    statistics.median(durations)
                )
                now = time.monotonic()
                inflight_counts = {}
                for chunk, _, _ in in_flight.values():
                    inflight_counts[chunk.index] = (
                        inflight_counts.get(chunk.index, 0) + 1
                    )
                for future, (chunk, attempt, started) in list(
                        in_flight.items()):
                    if capacity is not None and len(in_flight) >= capacity:
                        break
                    if now - started <= deadline:
                        continue
                    if inflight_counts.get(chunk.index, 0) > 1:
                        continue
                    # First result wins; the duplicate reuses the same
                    # attempt number (a re-dispatch is not a retry).
                    duplicate = executor.submit(chunk, attempt)
                    in_flight[duplicate] = (chunk, attempt, now)
                    inflight_counts[chunk.index] += 1
                    outcome.redispatches += 1
    return outcome
