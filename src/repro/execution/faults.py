"""Deterministic fault plans for the chaos executor.

A :class:`FaultPlan` is a frozen, seed-derivable description of every
fault a chaos run will inject — which chunk dies on which attempt, which
chunk is delayed and by how much, which memo entries get corrupted after
they are written, and whether the whole run aborts after K completed
chunks.  Because the plan is data (not runtime randomness), a chaos run
is exactly as replayable as a clean one: same seed, same faults, same
bytes.

:meth:`FaultPlan.seeded` derives a plan from ``np.random.default_rng``
(the library's explicit-seed discipline, see lint rule R003), so tests
and the CI chaos-smoke job can describe a whole fault campaign as four
integers on a command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_int, check_positive
from repro.exceptions import InvalidParameterError

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan"]

#: The fault vocabulary: simulated worker death, chunk delay, and
#: post-write corruption of the chunk's npz memo entry.
FAULT_KINDS = ("kill", "delay", "corrupt")


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.  ``"kill"`` fails the chunk's
        submission with an
        :class:`~repro.execution.errors.InjectedFaultError`; ``"delay"``
        sleeps ``seconds`` before evaluating; ``"corrupt"`` mangles the
        chunk's memo entry right after the runner writes it.
    chunk:
        Index of the targeted chunk in the deterministic merge order.
    attempt:
        Zero-based attempt number the fault targets (kills and delays
        only fire when the chunk is on exactly this attempt; corruption
        ignores it).
    seconds:
        Sleep length for ``"delay"`` faults.
    """

    kind: str
    chunk: int
    attempt: int = 0
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"fault kind must be one of {list(FAULT_KINDS)}; "
                f"got {self.kind!r}"
            )
        check_int(self.chunk, "chunk", minimum=0)
        check_int(self.attempt, "attempt", minimum=0)
        check_positive(self.seconds, "seconds", allow_zero=True)


@dataclass(frozen=True)
class FaultPlan:
    """A frozen campaign of :class:`Fault` records plus an optional abort.

    Attributes
    ----------
    faults:
        The injected faults, in injection-independent declaration order.
    abort_after:
        When not ``None``, the run raises
        :class:`~repro.execution.errors.RunAbortedError` as soon as this
        many chunks have completed (after their results — and cache
        entries — landed), simulating a crash a ``--resume`` run can
        recover from.
    """

    faults: tuple = field(default_factory=tuple)
    abort_after: object = None

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for entry in self.faults:
            if not isinstance(entry, Fault):
                raise InvalidParameterError(
                    f"FaultPlan.faults must hold Fault records; "
                    f"got {entry!r}"
                )
        if self.abort_after is not None:
            check_int(self.abort_after, "abort_after", minimum=0)

    @classmethod
    def seeded(cls, seed, num_chunks, *, kills=0, delays=0, corrupts=0,
               delay_seconds=0.01, abort_after=None):
        """Derive a plan from one integer seed (deterministic).

        ``kills``/``delays``/``corrupts`` faults each target a chunk
        drawn from ``default_rng(seed)``.  Repeated kills of the same
        chunk escalate to later attempts (first kill hits attempt 0, the
        second attempt 1, ...), so ``kills`` is the number of failures
        actually exercised, not a number of coin flips — keep kills per
        chunk below the retry policy's ``max_attempts`` if the run is
        expected to succeed.
        """
        check_int(num_chunks, "num_chunks", minimum=0)
        check_int(kills, "kills", minimum=0)
        check_int(delays, "delays", minimum=0)
        check_int(corrupts, "corrupts", minimum=0)
        check_positive(delay_seconds, "delay_seconds", allow_zero=True)
        rng = np.random.default_rng(seed)
        faults = []
        if num_chunks > 0:
            kill_counts = {}
            for _ in range(kills):
                chunk = int(rng.integers(num_chunks))
                attempt = kill_counts.get(chunk, 0)
                kill_counts[chunk] = attempt + 1
                faults.append(Fault("kill", chunk=chunk, attempt=attempt))
            for _ in range(delays):
                faults.append(Fault(
                    "delay", chunk=int(rng.integers(num_chunks)),
                    seconds=float(delay_seconds),
                ))
            for _ in range(corrupts):
                faults.append(Fault(
                    "corrupt", chunk=int(rng.integers(num_chunks)),
                ))
        return cls(faults=tuple(faults), abort_after=abort_after)

    def kills_attempt(self, chunk_index, attempt):
        """Whether a kill fault targets this (chunk, attempt) pair."""
        return any(
            f.kind == "kill"
            and f.chunk == int(chunk_index)
            and f.attempt == int(attempt)
            for f in self.faults
        )

    def delay_for(self, chunk_index, attempt):
        """Total injected sleep (seconds) for this (chunk, attempt)."""
        return float(sum(
            f.seconds
            for f in self.faults
            if f.kind == "delay"
            and f.chunk == int(chunk_index)
            and f.attempt == int(attempt)
        ))

    def corrupts_chunk(self, chunk_index):
        """Whether a corrupt fault targets this chunk's memo entry."""
        return any(
            f.kind == "corrupt" and f.chunk == int(chunk_index)
            for f in self.faults
        )

    def jsonable(self):
        """JSON-able record of the plan (manifests, diagnostics)."""
        return {
            "faults": [
                {
                    "kind": f.kind,
                    "chunk": int(f.chunk),
                    "attempt": int(f.attempt),
                    "seconds": float(f.seconds),
                }
                for f in self.faults
            ],
            "abort_after": (
                None if self.abort_after is None else int(self.abort_after)
            ),
        }
