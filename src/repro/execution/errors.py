"""Typed failure reporting for the execution layer.

The pre-registry runner surfaced infrastructure failures raw: a worker
death mid-run escaped as ``concurrent.futures.process.BrokenProcessPool``
with no hint of *which* chunk was lost or *what graph* the run was
scoped to.  These types carry that context:

* :class:`ChunkExecutionError` — a chunk exhausted its retry budget;
  names the chunk, the dynamics, the attempt count, the graph
  fingerprint, and the formatted worker traceback.
* :class:`InjectedFaultError` — a fault the chaos executor injected on
  purpose (a simulated worker death); retryable by construction.
* :class:`RunAbortedError` — the chaos executor killed the whole run
  after K completed chunks (the crash half of crash-then-resume tests).

All derive from :class:`ExecutionError`, itself a
:class:`~repro.exceptions.ReproError`, so ``except ReproError`` keeps
catching everything the library raises.
"""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = [
    "ChunkExecutionError",
    "ExecutionError",
    "InjectedFaultError",
    "RunAbortedError",
]


class ExecutionError(ReproError):
    """Base class for failures raised by the chunk-execution layer."""


class ChunkExecutionError(ExecutionError):
    """A chunk failed on every allowed attempt.

    Attributes
    ----------
    chunk_index:
        Index of the failed :class:`~repro.ncp.runner.GridChunk` in the
        deterministic merge order.
    dynamics:
        Canonical dynamics name the chunk was evaluating.
    attempts:
        Number of attempts consumed (== the policy's ``max_attempts``).
    fingerprint:
        :func:`~repro.ncp.runner.graph_fingerprint` of the graph the run
        was scoped to (empty when the caller did not provide one).
    worker_traceback:
        Formatted traceback of the last failure, including the remote
        (in-worker) traceback when the chunk died in a process pool.
    """

    def __init__(self, message, *, chunk_index=None, dynamics="",
                 attempts=0, fingerprint="", worker_traceback=""):
        super().__init__(message)
        self.chunk_index = chunk_index
        self.dynamics = str(dynamics)
        self.attempts = int(attempts)
        self.fingerprint = str(fingerprint)
        self.worker_traceback = str(worker_traceback)


class InjectedFaultError(ExecutionError):
    """A deliberate, chaos-executor-injected failure (simulated death)."""


class RunAbortedError(ExecutionError):
    """The chaos executor aborted the run after K completed chunks.

    Attributes
    ----------
    completed_chunks:
        How many chunks finished (and were cached, when a cache_dir was
        configured) before the abort fired — the state a ``--resume``
        run picks up from.
    """

    def __init__(self, message, *, completed_chunks=0):
        super().__init__(message)
        self.completed_chunks = int(completed_chunks)
