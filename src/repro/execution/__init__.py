"""Resumable, fault-tolerant ensemble execution.

The execution layer extracted from the NCP runner (ROADMAP item 4): the
*what* of a run — the deterministic, fingerprint-keyed chunk plan —
stays in :mod:`repro.ncp.runner`, while the *how* lives here behind the
fifth registry:

* **Registry** — :class:`ExecutorKind` entries under the canonical
  ``serial`` / ``process`` / ``chaos`` names (alias table, did-you-mean
  :class:`UnknownExecutorError`), each binding a frozen spec type to a
  factory for the live :class:`ChunkExecutor` strategy.
* **Driver** — :func:`execute_chunks`: per-chunk retry with bounded
  backoff (:class:`RetryPolicy`), straggler re-dispatch with
  first-result-wins, incremental per-chunk result delivery (the hook
  crash-then-resume rides on), and typed failures
  (:class:`ChunkExecutionError` instead of a raw ``BrokenProcessPool``).
* **Fault injection** — the ``chaos`` executor executes a frozen,
  seed-derived :class:`FaultPlan` (kill chunk k on attempt j, delay,
  corrupt the memo entry, abort after K chunks), so every robustness
  guarantee is exercised deterministically by the test suite and the CI
  ``chaos-smoke`` job.

Because chunk plans, merge order, and cache keys never depend on the
strategy, every executor produces byte-identical candidates — the
serial executor is the oracle the other two are tested against.
"""

from __future__ import annotations

from repro.execution.driver import (
    ExecutionOutcome,
    RetryPolicy,
    execute_chunks,
    pending_chunks,
)
from repro.execution.errors import (
    ChunkExecutionError,
    ExecutionError,
    InjectedFaultError,
    RunAbortedError,
)
from repro.execution.executors import (
    Chaos,
    ChaosExecutor,
    ChunkExecutor,
    ProcessExecutor,
    ProcessPool,
    Serial,
    SerialExecutor,
)
from repro.execution.faults import FAULT_KINDS, Fault, FaultPlan
from repro.execution.registry import (
    ExecutorKind,
    UnknownExecutorError,
    as_executor_spec,
    build_executor,
    get_executor,
    register_executor,
    registered_executors,
    resolve_executor_name,
    unregister_executor,
)

__all__ = [
    "FAULT_KINDS",
    "Chaos",
    "ChaosExecutor",
    "ChunkExecutionError",
    "ChunkExecutor",
    "ExecutionError",
    "ExecutionOutcome",
    "ExecutorKind",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "ProcessExecutor",
    "ProcessPool",
    "RetryPolicy",
    "RunAbortedError",
    "Serial",
    "SerialExecutor",
    "UnknownExecutorError",
    "as_executor_spec",
    "build_executor",
    "execute_chunks",
    "get_executor",
    "pending_chunks",
    "register_executor",
    "registered_executors",
    "resolve_executor_name",
    "unregister_executor",
]


def _make_serial(spec, *, graph, evaluate, num_workers=0):
    """Factory for the registered ``serial`` entry."""
    return SerialExecutor(graph, evaluate)


def _make_process(spec, *, graph, evaluate, num_workers=0):
    """Factory for the registered ``process`` entry."""
    return ProcessExecutor(graph, evaluate,
                           num_workers=max(1, int(num_workers)))


def _make_chaos(spec, *, graph, evaluate, num_workers=0):
    """Factory for the registered ``chaos`` entry."""
    return ChaosExecutor(graph, evaluate, spec=spec)


def _register_builtin_executors():
    register_executor(ExecutorKind(
        key="serial",
        description=(
            "in-process, one chunk at a time: the reference strategy "
            "every other executor must match byte for byte"
        ),
        aliases=("sync", "inline"),
        spec_type=Serial,
        factory=_make_serial,
    ))
    register_executor(ExecutorKind(
        key="process",
        description=(
            "shared-memory process pool: the CSR arrays cross the "
            "process boundary once, workers are recreated after a pool "
            "death, and stragglers are re-dispatched first-result-wins"
        ),
        aliases=("pool", "multiprocessing"),
        spec_type=ProcessPool,
        factory=_make_process,
    ))
    register_executor(ExecutorKind(
        key="chaos",
        description=(
            "deterministic fault injector over the serial strategy: "
            "seed-derived kill/delay/corrupt faults plus whole-run "
            "aborts, for testing the robustness layer by construction"
        ),
        aliases=("faults", "fault_injection"),
        spec_type=Chaos,
        factory=_make_chaos,
        replayable=False,
    ))


_register_builtin_executors()
