"""Internal parameter-validation helpers shared across the library.

These helpers centralize the error messages for common argument checks so the
public modules stay focused on the algorithms themselves. Everything in this
module is private; the public contract is the exceptions raised, which are
documented on each algorithm.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import InvalidParameterError


def check_probability(value, name, *, inclusive_low=False, inclusive_high=False):
    """Validate that ``value`` lies in the (possibly open) interval (0, 1).

    Parameters
    ----------
    value:
        The value to check.
    name:
        Parameter name used in the error message.
    inclusive_low, inclusive_high:
        Whether the corresponding endpoint is allowed.

    Returns
    -------
    float
        The validated value as a float.
    """
    value = check_real(value, name)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        low = "[0" if inclusive_low else "(0"
        high = "1]" if inclusive_high else "1)"
        raise InvalidParameterError(
            f"{name} must lie in {low}, {high}; got {value!r}"
        )
    return value


def check_positive(value, name, *, allow_zero=False):
    """Validate that ``value`` is a positive (or nonnegative) real number."""
    value = check_real(value, name)
    if allow_zero:
        if value < 0:
            raise InvalidParameterError(f"{name} must be >= 0; got {value!r}")
    elif value <= 0:
        raise InvalidParameterError(f"{name} must be > 0; got {value!r}")
    return value


def check_real(value, name):
    """Validate that ``value`` is a finite real scalar and return it as float."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise InvalidParameterError(f"{name} must be a real number; got {value!r}")
    value = float(value)
    if not np.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite; got {value!r}")
    return value


def check_int(value, name, *, minimum=None, maximum=None):
    """Validate that ``value`` is an integer within optional bounds."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise InvalidParameterError(f"{name} must be an integer; got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}; got {value}")
    if maximum is not None and value > maximum:
        raise InvalidParameterError(f"{name} must be <= {maximum}; got {value}")
    return value


def check_node(node, n, name="node"):
    """Validate that ``node`` indexes a graph with ``n`` nodes."""
    node = check_int(node, name)
    if not 0 <= node < n:
        raise InvalidParameterError(
            f"{name} must lie in [0, {n}); got {node}"
        )
    return node


def check_vector(vector, n, name="vector"):
    """Validate and convert ``vector`` to a float array of length ``n``."""
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise InvalidParameterError(
            f"{name} must be a length-{n} vector; got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} must contain only finite values")
    return arr


def as_rng(seed_or_rng):
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh default generator), an integer seed, or an
    existing generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)
