"""The ``numpy`` backend: vectorized reference kernels.

These are the batched/vectorized engines of PRs 1-2, re-homed behind the
backend interface.  The ``numpy`` backend is the *reference* every other
backend is parity-tested against, and the fallback the ``numba`` backend
degrades to when numba is not installed.
"""

from __future__ import annotations

import numpy as np

from repro.backends._common import seed_chunks, seed_vector
from repro.diffusion.engine import (
    batch_hk_push,
    batch_ppr_push,
    gather_csr_arcs,
    ppr_push_frontier,
)


def ppr_grid(graph, seed_nodes, *, alphas, epsilons):
    """Yield one PPR column per (seed, alpha, epsilon), batched per seed."""
    alphas = tuple(alphas)
    epsilons = tuple(epsilons)
    seed_nodes = list(seed_nodes)
    grid = len(alphas) * len(epsilons)
    for block in seed_chunks(seed_nodes, graph.num_nodes, grid):
        vectors = [seed_vector(graph, s) for s in block]
        batch = batch_ppr_push(
            graph, vectors, alphas=alphas, epsilons=epsilons
        )
        for b in range(batch.num_columns):
            yield batch.approximation[:, b]


def hk_grid(graph, seed_nodes, *, ts, epsilons):
    """Yield one heat-kernel column per (seed, t, epsilon), batched per seed."""
    ts = tuple(ts)
    epsilons = tuple(epsilons)
    seed_nodes = list(seed_nodes)
    grid = len(ts) * len(epsilons)
    for block in seed_chunks(seed_nodes, graph.num_nodes, grid):
        vectors = [seed_vector(graph, s) for s in block]
        batch = batch_hk_push(graph, vectors, ts=ts, epsilons=epsilons)
        for b in range(batch.num_columns):
            yield batch.approximation[:, b]


def ppr_push(graph, seed_vec, *, alpha, epsilon, max_pushes=None):
    """Single-column ACL push (frontier-batched numpy engine)."""
    return ppr_push_frontier(
        graph, seed_vec, alpha=alpha, epsilon=epsilon, max_pushes=max_pushes
    )


def hk_push(graph, seed_vec, t, *, epsilon):
    """Single-column heat-kernel push via the batched engine."""
    return batch_hk_push(
        graph, [seed_vec], ts=(t,), epsilons=(epsilon,)
    ).column(0)


def walk_step(graph, charge, support, *, alpha):
    """One lazy-walk spread step: CSR gather + one bincount scatter."""
    new_charge = alpha * charge
    if support.size:
        arc_positions, counts = gather_csr_arcs(graph.indptr, support)
        flow = (1.0 - alpha) * charge[support] / graph.degrees[support]
        new_charge += np.bincount(
            graph.indices[arc_positions],
            weights=graph.weights[arc_positions] * np.repeat(flow, counts),
            minlength=graph.num_nodes,
        )
    return new_charge


def prefix_scan(graph, order, max_size, max_volume, min_size):
    """Vectorized prefix-conductance scan over the CSR arrays.

    Each arc ``(u, v)`` with both endpoints in the sweep order becomes
    internal at step ``max(rank(u), rank(v))``; a bincount over that step
    index plus a cumulative sum reproduces the scalar scan's incremental
    ``cut``/``volume`` updates without the per-edge Python loop. Ties are
    broken identically to the scalar scan (first minimum wins).
    """
    degrees = graph.degrees
    total_volume = graph.total_volume
    n = graph.num_nodes
    profile = np.full(max_size, np.inf)
    limit = min(max_size, max(n - 1, 0))
    if limit <= 0:
        return profile, (float("inf"), -1, 0.0)
    prefix = order[:limit].astype(np.int64)
    volumes = np.cumsum(degrees[prefix])

    rank = np.full(n, limit, dtype=np.int64)
    rank[prefix] = np.arange(limit)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    arc_positions, counts = gather_csr_arcs(indptr, prefix)
    if arc_positions.size:
        src_rank = np.repeat(np.arange(limit), counts)
        dst_rank = rank[indices[arc_positions]]
        internal = dst_rank < limit
        step = np.maximum(src_rank[internal], dst_rank[internal])
        # Each internal undirected edge contributes two arcs with the same
        # step, so this bincount accumulates exactly 2 x internal weight.
        twice_internal = np.cumsum(np.bincount(
            step, weights=weights[arc_positions][internal], minlength=limit
        ))
    else:
        twice_internal = np.zeros(limit)
    cut = volumes - twice_internal
    other = total_volume - volumes

    # Replicate the scalar scan's early exits: once a prefix exceeds the
    # volume cap or swallows the whole volume, no later prefix is scored.
    valid = np.ones(limit, dtype=bool)
    if max_volume is not None:
        over = volumes > max_volume
        if over.any():
            valid[int(np.argmax(over)):] = False
    exhausted = other <= 0
    if exhausted.any():
        valid[int(np.argmax(exhausted)):] = False

    denominator = np.minimum(volumes, other)
    scored = valid & (denominator > 0)
    phi = np.full(limit, np.inf)
    phi[scored] = cut[scored] / denominator[scored]
    profile[:limit] = phi

    best = (float("inf"), -1, 0.0)
    low = min_size - 1
    if low < limit:
        position = low + int(np.argmin(phi[low:]))
        if np.isfinite(phi[position]):
            best = (
                float(phi[position]), position, float(volumes[position])
            )
    return profile, best
