"""Helpers shared by the backend implementations.

Seed-vector construction and grid batching are backend-independent
plumbing: every backend walks the same (seed, axis, epsilon) grid in the
same column order, so the order lives here, once.
"""

from __future__ import annotations

from repro.diffusion.seeds import degree_weighted_indicator_seed

# Cap on the number of dense (node, column) entries per engine batch; seed
# chunks are sized so the batched residual/approximation matrices stay
# within a few dozen megabytes regardless of the seed count.
BATCH_ENTRY_BUDGET = 2_000_000


def seed_chunks(seed_nodes, n, grid_size):
    """Chunk seed nodes so each dense engine batch stays within budget."""
    chunk = max(1, BATCH_ENTRY_BUDGET // max(n * max(grid_size, 1), 1))
    for start in range(0, len(seed_nodes), chunk):
        yield seed_nodes[start:start + chunk]


def seed_vector(graph, seed_node):
    """Degree-weighted indicator distribution for one seed node."""
    return degree_weighted_indicator_seed(graph, [int(seed_node)])
