"""The EngineBackend registry: pluggable kernel backends.

PRs 1-2 grew a scalar-reference / vectorized-engine pair for every hot
loop, but the *selection* was smeared across three ad-hoc stringly flags
(``engine=`` on the dynamics specs, ``implementation=`` on the truncated
walk and the sweep scan).  This package replaces all of them with one
first-class layer, mirroring the :class:`~repro.dynamics.DynamicsKind`
and :class:`~repro.refine.RefinerKind` registries:

* **Interface** — :class:`EngineBackend`: a frozen record of the CSR
  scatter-add inner loops (PPR push, heat-kernel stage recursion,
  lazy-walk step, sweep prefix scan) plus grid drivers, under a
  canonical key and alias table.
* **Registry** — canonical names ``numpy`` / ``scalar`` / ``numba``.
  ``numpy`` is the vectorized reference (and the parity oracle every
  other backend is tested against); ``scalar`` is the node-at-a-time
  Python loop family; ``numba`` JIT-compiles the frontier loops and
  degrades gracefully to ``numpy`` — with a single ``RuntimeWarning``
  per process — when numba is not installed.
* **Errors** — :class:`UnknownBackendError`, both
  :class:`~repro.exceptions.InvalidParameterError` (hence ``ValueError``)
  and ``KeyError``, with a did-you-mean suggestion.

The legacy ``engine="batched"`` / ``implementation="vectorized"`` values
are registered as aliases of ``numpy``, so every deprecation shim is one
:func:`resolve_backend_name` call.

Registering a backend is enough to make the test suite parity-check it
against ``numpy`` and the bench CLI time it (see
``tests/test_backends.py`` for a worked third-party example).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError

__all__ = [
    "EngineBackend",
    "UnknownBackendError",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend_name",
    "unregister_backend",
]


class UnknownBackendError(InvalidParameterError, KeyError):
    """Raised for a backend name that is not in the registry.

    Inherits both :class:`~repro.exceptions.InvalidParameterError` (hence
    ``ValueError``) and ``KeyError``, matching the other registry errors
    (:class:`~repro.dynamics.UnknownDynamicsError`,
    :class:`~repro.refine.UnknownRefinerError`), so callers validating
    either way keep working.
    """

    __str__ = Exception.__str__


@dataclass(frozen=True)
class EngineBackend:
    """One kernel backend: the CSR inner loops behind a canonical name.

    Attributes
    ----------
    key:
        Canonical registry name (``"numpy"``, ``"scalar"``, ``"numba"``).
    description:
        One-line summary shown in ``--help`` and the architecture docs.
    aliases:
        Accepted alternative names (the legacy ``engine=`` /
        ``implementation=`` vocabulary lives here).
    ppr_grid:
        ``(graph, seed_nodes, *, alphas, epsilons)`` -> iterator of PPR
        columns in (seed, alpha, epsilon) order, epsilon fastest.
    hk_grid:
        ``(graph, seed_nodes, *, ts, epsilons)`` -> iterator of
        heat-kernel columns in (seed, t, epsilon) order.
    ppr_push:
        ``(graph, seed_vector, *, alpha, epsilon)`` ->
        :class:`~repro.diffusion.push.PushResult` (single column).
    hk_push:
        ``(graph, seed_vector, t, *, epsilon)`` ->
        :class:`~repro.diffusion.hk_push.HeatKernelPushResult`.
    walk_step:
        ``(graph, charge, support, *, alpha)`` -> next charge vector of
        the truncated lazy walk (one spread step, no rounding).
    prefix_scan:
        ``(graph, order, max_size, max_volume, min_size)`` ->
        ``(profile, (phi, position, volume))`` sweep scan.
    probe:
        Optional zero-argument availability check; backends with
        optional dependencies report importability here without
        triggering their fallback warning.
    """

    key: str
    description: str
    aliases: tuple = ()
    ppr_grid: object = field(default=None, repr=False)
    hk_grid: object = field(default=None, repr=False)
    ppr_push: object = field(default=None, repr=False)
    hk_push: object = field(default=None, repr=False)
    walk_step: object = field(default=None, repr=False)
    prefix_scan: object = field(default=None, repr=False)
    probe: object = field(default=None, repr=False)

    def available(self):
        """Whether the backend can run natively (vs. falling back)."""
        if self.probe is None:
            return True
        return bool(self.probe())


_REGISTRY = {}
_ALIASES = {}


def _normalize(name):
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


def _unknown(name):
    known = sorted(_REGISTRY)
    aliases = sorted(a for a in _ALIASES if a not in _REGISTRY)
    close = difflib.get_close_matches(_normalize(name), sorted(_ALIASES), n=1)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return UnknownBackendError(
        f"unknown backend {name!r}: registered backends are {known} "
        f"(aliases: {aliases}){hint}"
    )


def register_backend(backend, *, overwrite=False):
    """Register an :class:`EngineBackend` under its key and aliases.

    Raises :class:`~repro.exceptions.InvalidParameterError` when the key
    or an alias collides with an existing entry (pass ``overwrite=True``
    to replace a previous registration).  Returns the backend, so
    registration can be used as an expression.
    """
    if not isinstance(backend, EngineBackend):
        raise InvalidParameterError(
            f"register_backend needs an EngineBackend; got {backend!r}"
        )
    key = _normalize(backend.key)
    names = [key] + [_normalize(alias) for alias in backend.aliases]
    if not overwrite:
        for name in names:
            if name in _ALIASES and _ALIASES[name] != key:
                raise InvalidParameterError(
                    f"backend name {name!r} already registered "
                    f"for {_ALIASES[name]!r}"
                )
        if key in _REGISTRY:
            raise InvalidParameterError(
                f"backend {key!r} already registered; pass overwrite=True "
                "to replace it"
            )
    _REGISTRY[key] = backend
    for name in names:
        _ALIASES[name] = key
    return backend


def unregister_backend(name):
    """Remove a registered backend (and its aliases) by name or alias."""
    key = resolve_backend_name(name)
    del _REGISTRY[key]
    for alias in [a for a, k in _ALIASES.items() if k == key]:
        del _ALIASES[alias]


def resolve_backend_name(backend):
    """Canonical backend key for a name, alias, or EngineBackend."""
    if isinstance(backend, EngineBackend):
        return _normalize(backend.key)
    key = _ALIASES.get(_normalize(backend))
    if key is None:
        raise _unknown(backend)
    return key


def get_backend(backend):
    """Look up an :class:`EngineBackend` by name, alias, or identity."""
    if isinstance(backend, EngineBackend):
        return backend
    return _REGISTRY[resolve_backend_name(backend)]


def registered_backends():
    """Mapping of canonical backend key -> :class:`EngineBackend`."""
    return dict(_REGISTRY)


def _register_builtin_backends():
    from repro.backends import _numba, _numpy, _scalar

    register_backend(EngineBackend(
        key="numpy",
        description=(
            "vectorized NumPy reference kernels (frontier-batched pushes, "
            "bincount scatters); the parity oracle for every other backend"
        ),
        aliases=("np", "batched", "vectorized", "reference"),
        ppr_grid=_numpy.ppr_grid,
        hk_grid=_numpy.hk_grid,
        ppr_push=_numpy.ppr_push,
        hk_push=_numpy.hk_push,
        walk_step=_numpy.walk_step,
        prefix_scan=_numpy.prefix_scan,
    ))
    register_backend(EngineBackend(
        key="scalar",
        description=(
            "node-at-a-time Python loops: slow, transparent, and the "
            "historical oracle the vectorized engines grew out of"
        ),
        aliases=("python", "loop", "oracle"),
        ppr_grid=_scalar.ppr_grid,
        hk_grid=_scalar.hk_grid,
        ppr_push=_scalar.ppr_push,
        hk_push=_scalar.hk_push,
        walk_step=_scalar.walk_step,
        prefix_scan=_scalar.prefix_scan,
    ))
    register_backend(EngineBackend(
        key="numba",
        description=(
            "JIT-compiled frontier loops (@njit over the CSR arrays, "
            "cached, nopython); optional — falls back to 'numpy' with a "
            "RuntimeWarning when numba is not installed"
        ),
        aliases=("jit", "njit"),
        ppr_grid=_numba.ppr_grid,
        hk_grid=_numba.hk_grid,
        ppr_push=_numba.ppr_push,
        hk_push=_numba.hk_push,
        walk_step=_numba.walk_step,
        prefix_scan=_numba.prefix_scan,
        probe=_numba.numba_available,
    ))


_register_builtin_backends()
