"""The ``numba`` backend: JIT-compiled frontier loops (optional tier).

Ports of the ``scalar`` backend's kernels to ``@njit`` nopython functions
over the raw CSR arrays, with cached compilation (``cache=True``) so the
compile cost is paid once per machine.  The arithmetic mirrors the scalar
loops operation-for-operation, so the JIT tier inherits the scalar
backend's parity with the numpy reference.

numba is an *optional* dependency (``pip install repro[jit]``).  When it
is absent — or fails to compile — every entry point degrades gracefully
to the ``numpy`` reference backend and emits a single ``RuntimeWarning``
per process.  ``_import_numba`` is the monkeypatchable seam the fallback
tests use to force the absent path even when numba is installed.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro._validation import (
    check_int,
    check_positive,
    check_probability,
    check_vector,
)
from repro.backends._common import seed_vector
from repro.diffusion.hk_push import (
    HeatKernelPushResult,
    _check_series_time,
    poisson_tail,
    terms_for_tail,
)
from repro.diffusion.push import PushResult
from repro.exceptions import InvalidParameterError

# Lazy import + compile state: "module" is the numba module (or None when
# unimportable), "kernels" the compiled dispatcher table, "warned" whether
# the one-per-process fallback RuntimeWarning has fired.
_STATE = {"checked": False, "module": None, "kernels": None, "warned": False}


def _import_numba():
    """Import and return numba (separate function so tests can fail it)."""
    import numba

    return numba


def _load_numba():
    if not _STATE["checked"]:
        _STATE["checked"] = True
        try:
            _STATE["module"] = _import_numba()
        except ImportError:
            _STATE["module"] = None
    return _STATE["module"]


def numba_available():
    """True when the numba JIT compiler is importable in this process."""
    return _load_numba() is not None


def _kernels():
    """The compiled kernel table, or None when the JIT tier is unusable."""
    numba = _load_numba()
    if numba is None:
        return None
    if _STATE["kernels"] is None:
        try:
            _STATE["kernels"] = _build_kernels(numba)
        # Deliberate catch-all: any JIT build failure (version skew,
        # broken cache dir, LLVM issues) must degrade to the numpy tier
        # with the one-per-process RuntimeWarning, never crash.
        except Exception:  # repro-lint: disable=exception-policy
            _STATE["module"] = None
            return None
    return _STATE["kernels"]


def _fallback_ops():
    """The numpy reference backend, with the one-per-process warning."""
    if not _STATE["warned"]:
        _STATE["warned"] = True
        warnings.warn(
            "repro: the 'numba' backend needs the optional numba compiler, "
            "which is not usable in this environment; falling back to the "
            "'numpy' reference backend (install the JIT tier with: "
            "pip install repro[jit])",
            RuntimeWarning,
            stacklevel=3,
        )
    from repro.backends import _numpy

    return _numpy


def _build_kernels(numba):
    """Compile the nopython kernel table (called at most once)."""
    import math

    njit = numba.njit

    @njit(cache=True)
    def ppr_push_kernel(indptr, indices, weights, degrees, seed, alpha,
                        epsilon, max_pushes):
        n = degrees.shape[0]
        p = np.zeros(n)
        r = seed.copy()
        # FIFO ring buffer; in_queue dedup bounds the occupancy by n.
        queue = np.empty(n, dtype=np.int64)
        in_queue = np.zeros(n, dtype=np.bool_)
        head = 0
        count = 0
        for u in range(n):
            if r[u] >= epsilon * degrees[u]:
                queue[count] = u
                count += 1
                in_queue[u] = True
        num_pushes = 0
        work = 0
        while count > 0:
            u = queue[head]
            head += 1
            if head == n:
                head = 0
            count -= 1
            in_queue[u] = False
            ru = r[u]
            du = degrees[u]
            if ru < epsilon * du:
                continue
            if num_pushes >= max_pushes:
                return p, r, num_pushes, work, True
            num_pushes += 1
            p[u] += alpha * ru
            share = (1.0 - alpha) * ru / (2.0 * du)
            start = indptr[u]
            stop = indptr[u + 1]
            work += 1 + (stop - start)
            for k in range(start, stop):
                v = indices[k]
                r[v] += share * weights[k]
                if (not in_queue[v]) and r[v] >= epsilon * degrees[v]:
                    tail = head + count
                    if tail >= n:
                        tail -= n
                    queue[tail] = v
                    count += 1
                    in_queue[v] = True
            r[u] = (1.0 - alpha) * ru / 2.0
            if r[u] >= epsilon * du:
                tail = head + count
                if tail >= n:
                    tail -= n
                queue[tail] = u
                count += 1
                in_queue[u] = True
        return p, r, num_pushes, work, False

    @njit(cache=True)
    def hk_push_kernel(indptr, indices, weights, degrees, seed, t,
                       num_terms, epsilon):
        n = degrees.shape[0]
        dropped = 0.0
        work = 0
        touched = np.zeros(n, dtype=np.bool_)
        stage = np.zeros(n)
        for u in range(n):
            value = seed[u]
            if value >= epsilon * degrees[u]:
                stage[u] = value
                touched[u] = True
            elif value > 0.0:
                dropped += value
        weight = math.exp(-t)
        accumulated = weight * stage
        new_stage = np.zeros(n)
        for k_term in range(1, num_terms + 1):
            for u in range(n):
                new_stage[u] = 0.0
            for u in range(n):
                su = stage[u]
                if su > 0.0:
                    start = indptr[u]
                    stop = indptr[u + 1]
                    work += 1 + (stop - start)
                    flow = su / degrees[u]
                    for k in range(start, stop):
                        new_stage[indices[k]] += flow * weights[k]
            for u in range(n):
                value = new_stage[u]
                if value >= epsilon * degrees[u]:
                    stage[u] = value
                    touched[u] = True
                elif value > 0.0:
                    dropped += value
                    stage[u] = 0.0
                else:
                    stage[u] = 0.0
            weight *= t / k_term
            for u in range(n):
                accumulated[u] += weight * stage[u]
        return accumulated, dropped, work, touched

    @njit(cache=True)
    def walk_step_kernel(indptr, indices, weights, degrees, charge,
                         support, alpha):
        new_charge = alpha * charge
        for i in range(support.shape[0]):
            u = support[i]
            flow = (1.0 - alpha) * charge[u] / degrees[u]
            for k in range(indptr[u], indptr[u + 1]):
                new_charge[indices[k]] += flow * weights[k]
        return new_charge

    @njit(cache=True)
    def prefix_scan_kernel(indptr, indices, weights, degrees, total_volume,
                           order, max_size, max_volume, min_size):
        n = degrees.shape[0]
        in_prefix = np.zeros(n, dtype=np.bool_)
        cut = 0.0
        volume = 0.0
        best_phi = np.inf
        best_position = -1
        best_volume = 0.0
        profile = np.full(max_size, np.inf)
        for position in range(max_size):
            if position + 1 >= n:
                break  # the full node set is not a valid cut
            u = order[position]
            du = degrees[u]
            internal = 0.0
            for k in range(indptr[u], indptr[u + 1]):
                if in_prefix[indices[k]]:
                    internal += weights[k]
            cut += du - 2.0 * internal
            volume += du
            in_prefix[u] = True
            if max_volume >= 0.0 and volume > max_volume:
                break
            other = total_volume - volume
            if other <= 0:
                break
            denominator = min(volume, other)
            if denominator > 0:
                phi = cut / denominator
                profile[position] = phi
                if position + 1 >= min_size and phi < best_phi:
                    best_phi = phi
                    best_position = position
                    best_volume = volume
        return profile, best_phi, best_position, best_volume

    return {
        "ppr_push": ppr_push_kernel,
        "hk_push": hk_push_kernel,
        "walk_step": walk_step_kernel,
        "prefix_scan": prefix_scan_kernel,
    }


def _csr(graph):
    return (
        np.asarray(graph.indptr),
        np.asarray(graph.indices),
        np.asarray(graph.weights),
        np.asarray(graph.degrees, dtype=np.float64),
    )


def ppr_push(graph, seed_vec, *, alpha=0.15, epsilon=1e-4, max_pushes=None):
    """Single-column ACL push, JIT-compiled (numpy fallback when absent)."""
    kernels = _kernels()
    if kernels is None:
        return _fallback_ops().ppr_push(
            graph, seed_vec, alpha=alpha, epsilon=epsilon,
            max_pushes=max_pushes,
        )
    alpha = check_probability(alpha, "alpha")
    epsilon = check_probability(epsilon, "epsilon")
    seed = check_vector(seed_vec, graph.num_nodes, "seed_vector")
    if np.any(seed < 0):
        raise InvalidParameterError("push requires a nonnegative seed vector")
    indptr, indices, weights, degrees = _csr(graph)
    if np.any(degrees <= 0):
        raise InvalidParameterError("push requires positive degrees")
    if max_pushes is None:
        degree_floor = min(1.0, float(degrees.min()))
        max_pushes = int(
            np.ceil(float(seed.sum()) / (epsilon * alpha * degree_floor))
        ) + 8
    p, r, num_pushes, work, overflow = kernels["ppr_push"](
        indptr, indices, weights, degrees,
        np.ascontiguousarray(seed, dtype=np.float64),
        float(alpha), float(epsilon), int(max_pushes),
    )
    if overflow:
        raise InvalidParameterError(
            f"push exceeded max_pushes={max_pushes}; epsilon too small?"
        )
    return PushResult(
        approximation=p,
        residual=r,
        num_pushes=int(num_pushes),
        work=int(work),
        touched=np.flatnonzero((p > 0) | (r > 0)),
        epsilon=epsilon,
        alpha=alpha,
    )


def hk_push(graph, seed_vec, t, *, epsilon=1e-4, num_terms=None,
            tail_tol=1e-6):
    """Single-column heat-kernel push, JIT-compiled (numpy fallback)."""
    kernels = _kernels()
    if kernels is None:
        return _fallback_ops().hk_push(graph, seed_vec, t, epsilon=epsilon)
    t = check_positive(t, "t", allow_zero=True)
    _check_series_time(t)
    epsilon = check_probability(epsilon, "epsilon")
    seed = check_vector(seed_vec, graph.num_nodes, "seed_vector")
    if np.any(seed < 0):
        raise InvalidParameterError("heat-kernel push needs nonnegative seed")
    indptr, indices, weights, degrees = _csr(graph)
    if np.any(degrees <= 0):
        raise InvalidParameterError("heat-kernel push needs positive degrees")
    if num_terms is None:
        num_terms = terms_for_tail(t, tail_tol)
    num_terms = check_int(num_terms, "num_terms", minimum=1)
    accumulated, dropped, work, touched = kernels["hk_push"](
        indptr, indices, weights, degrees,
        np.ascontiguousarray(seed, dtype=np.float64),
        float(t), int(num_terms), float(epsilon),
    )
    return HeatKernelPushResult(
        approximation=accumulated,
        t=t,
        num_terms=num_terms,
        dropped_mass=float(dropped),
        tail_bound=poisson_tail(t, num_terms),
        touched=np.flatnonzero(touched),
        work=int(work),
    )


def ppr_grid(graph, seed_nodes, *, alphas, epsilons):
    """Yield one PPR column per (seed, alpha, epsilon), JIT per column."""
    if _kernels() is None:
        yield from _fallback_ops().ppr_grid(
            graph, seed_nodes, alphas=alphas, epsilons=epsilons
        )
        return
    for seed_node in seed_nodes:
        vector = seed_vector(graph, seed_node)
        for alpha in alphas:
            for epsilon in epsilons:
                push = ppr_push(graph, vector, alpha=alpha, epsilon=epsilon)
                yield push.approximation


def hk_grid(graph, seed_nodes, *, ts, epsilons):
    """Yield one heat-kernel column per (seed, t, epsilon), JIT per column."""
    if _kernels() is None:
        yield from _fallback_ops().hk_grid(
            graph, seed_nodes, ts=ts, epsilons=epsilons
        )
        return
    for seed_node in seed_nodes:
        vector = seed_vector(graph, seed_node)
        for t in ts:
            for epsilon in epsilons:
                push = hk_push(graph, vector, t, epsilon=epsilon)
                yield push.approximation


def walk_step(graph, charge, support, *, alpha):
    """One lazy-walk spread step, JIT-compiled (numpy fallback)."""
    kernels = _kernels()
    if kernels is None:
        return _fallback_ops().walk_step(graph, charge, support, alpha=alpha)
    indptr, indices, weights, degrees = _csr(graph)
    return kernels["walk_step"](
        indptr, indices, weights, degrees,
        np.ascontiguousarray(charge, dtype=np.float64),
        np.ascontiguousarray(support, dtype=np.int64),
        float(alpha),
    )


def prefix_scan(graph, order, max_size, max_volume, min_size):
    """Incremental prefix-conductance scan, JIT-compiled (numpy fallback)."""
    kernels = _kernels()
    if kernels is None:
        return _fallback_ops().prefix_scan(
            graph, order, max_size, max_volume, min_size
        )
    indptr, indices, weights, degrees = _csr(graph)
    # The kernel encodes "no volume cap" as a negative sentinel.
    cap = -1.0 if max_volume is None else float(max_volume)
    profile, phi, position, volume = kernels["prefix_scan"](
        indptr, indices, weights, degrees, float(graph.total_volume),
        np.ascontiguousarray(order, dtype=np.int64),
        int(max_size), cap, int(min_size),
    )
    return profile, (float(phi), int(position), float(volume))
