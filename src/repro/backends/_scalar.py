"""The ``scalar`` backend: node-at-a-time Python reference loops.

These are the original pre-batching kernels (the FIFO ACL push, the
one-column heat-kernel series, the per-node walk spread, the incremental
sweep scan).  They are slow but transparent, and the parity oracle family
every vectorized or JIT backend is measured against.
"""

from __future__ import annotations

import numpy as np

from repro.backends._common import seed_vector
from repro.diffusion.hk_push import heat_kernel_push
from repro.diffusion.push import approximate_ppr_push


def ppr_grid(graph, seed_nodes, *, alphas, epsilons):
    """Yield one PPR column per (seed, alpha, epsilon), one push at a time."""
    for seed_node in seed_nodes:
        vector = seed_vector(graph, seed_node)
        for alpha in alphas:
            for epsilon in epsilons:
                push = approximate_ppr_push(
                    graph, vector, alpha=alpha, epsilon=epsilon
                )
                yield push.approximation


def hk_grid(graph, seed_nodes, *, ts, epsilons):
    """Yield one heat-kernel column per (seed, t, epsilon), one at a time."""
    for seed_node in seed_nodes:
        vector = seed_vector(graph, seed_node)
        for t in ts:
            for epsilon in epsilons:
                push = heat_kernel_push(graph, vector, t, epsilon=epsilon)
                yield push.approximation


def ppr_push(graph, seed_vec, *, alpha, epsilon, max_pushes=None):
    """Single-column ACL push (the sequential FIFO queue reference)."""
    return approximate_ppr_push(
        graph, seed_vec, alpha=alpha, epsilon=epsilon, max_pushes=max_pushes
    )


def hk_push(graph, seed_vec, t, *, epsilon):
    """Single-column heat-kernel push (one-column series recursion)."""
    return heat_kernel_push(graph, seed_vec, t, epsilon=epsilon)


def walk_step(graph, charge, support, *, alpha):
    """One lazy-walk spread step, one support node at a time."""
    degrees = graph.degrees
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    new_charge = alpha * charge
    for u in support:
        flow = (1.0 - alpha) * charge[u] / degrees[u]
        start, stop = indptr[u], indptr[u + 1]
        for k in range(start, stop):
            new_charge[indices[k]] += flow * weights[k]
    return new_charge


def prefix_scan(graph, order, max_size, max_volume, min_size):
    """Reference prefix-conductance scan: one node at a time.

    Kept as the parity oracle for the vectorized scan (and for
    instructional clarity — it is the loop the incremental-update analysis
    in the sweep module docstring describes).
    """
    degrees = graph.degrees
    total_volume = graph.total_volume
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    in_prefix = np.zeros(graph.num_nodes, dtype=bool)
    cut = 0.0
    volume = 0.0
    best = (float("inf"), -1, 0.0)
    profile = np.full(max_size, np.inf)
    for position in range(max_size):
        if position + 1 >= graph.num_nodes:
            break  # the full node set is not a valid cut
        u = int(order[position])
        du = degrees[u]
        internal = 0.0
        for k in range(indptr[u], indptr[u + 1]):
            if in_prefix[indices[k]]:
                internal += weights[k]
        cut += du - 2.0 * internal
        volume += du
        in_prefix[u] = True
        if max_volume is not None and volume > max_volume:
            break
        other = total_volume - volume
        if other <= 0:
            break
        denominator = min(volume, other)
        if denominator > 0:
            phi = cut / denominator
            profile[position] = phi
            if position + 1 >= min_size and phi < best[0]:
                best = (phi, position, volume)
    return profile, best
