"""Plain-text reporting: the tables and series every benchmark prints.

The benchmark harness regenerates the paper's figure panels as aligned ASCII
tables (series of Y values over log-spaced X buckets), so "who wins, by
roughly what factor, where crossovers fall" is readable directly from
``pytest benchmarks/ --benchmark-only`` output and from ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.exceptions import InvalidParameterError


def jsonable(value):
    """Coerce nested values (numpy scalars/arrays, tuples, paths) to JSON.

    The one JSON-coercion helper shared by every serializer in the
    library (experiment records, run manifests, the CLI); dicts, lists,
    and tuples recurse, numpy scalars and arrays become plain Python
    numbers and lists, anything else unknown falls back to ``str``.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        # tolist() on a 0-d array returns a bare scalar, so recurse on
        # the result instead of iterating it.
        return jsonable(value.tolist())
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, str):
        return value
    return str(value)


def format_value(value, *, precision=4):
    """Format one cell: floats compactly, NaN/inf visibly, rest via str."""
    if isinstance(value, float):
        if math.isnan(value):
            return "--"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    if isinstance(value, (np.floating,)):
        return format_value(float(value), precision=precision)
    return str(value)


def format_table(headers, rows, *, title=None, precision=4):
    """Render an aligned ASCII table as a single string."""
    cells = [[format_value(v, precision=precision) for v in row]
             for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers, rows, *, precision=4, align=None):
    """Render a GitHub-flavored markdown table as a single string.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; cells are formatted with :func:`format_value`.
    precision:
        Float precision passed to :func:`format_value`.
    align:
        Optional per-column alignment string of ``"l"``/``"r"``/``"c"``
        characters (defaults to left for every column).
    """
    cells = [[format_value(v, precision=precision) for v in row]
             for row in rows]
    headers = [str(h) for h in headers]
    markers = {"l": "---", "r": "--:", "c": ":-:"}
    if align is None:
        align = "l" * len(headers)
    if len(align) != len(headers) or any(a not in markers for a in align):
        raise InvalidParameterError(
            f"align must be one of {sorted(markers)} per column "
            f"({len(headers)} columns); got {align!r}"
        )
    rules = [markers[a] for a in align]
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join(rules) + " |"]
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_series(xs, ys_by_label, *, x_label="x", title=None, precision=4):
    """Render parallel series (one column per label) over shared X values."""
    labels = list(ys_by_label)
    headers = [x_label] + labels
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [ys_by_label[label][i] for label in labels])
    return format_table(headers, rows, title=title, precision=precision)


def format_comparison_verdict(description, expected, observed):
    """One-line PASS/FAIL verdict for a qualitative shape claim."""
    status = "PASS" if expected == observed else "FAIL"
    return f"[{status}] {description}: expected {expected}, observed {observed}"


def geometric_midpoints(edges):
    """Geometric midpoints of consecutive bucket edges (for log-bucket X)."""
    edges = np.asarray(edges, dtype=float)
    return np.sqrt(edges[:-1] * edges[1:])
