"""Core framework: the implicit-regularization API, experiment records,
and plain-text reporting."""

from repro.core.experiments import (
    ExperimentRecord,
    Stopwatch,
    records_table,
    run_multidynamics_ncp,
    write_record,
)
from repro.core.framework import (
    ApproximateComputation,
    DynamicsKind,
    UnknownDynamicsError,
    canonical_dynamics,
    get_dynamics,
    registered_dynamics,
    verify_paper_theorem,
)
from repro.core.reporting import (
    format_comparison_verdict,
    format_markdown_table,
    format_series,
    format_table,
    format_value,
    geometric_midpoints,
    jsonable,
)

__all__ = [
    "ApproximateComputation",
    "DynamicsKind",
    "ExperimentRecord",
    "Stopwatch",
    "UnknownDynamicsError",
    "canonical_dynamics",
    "format_comparison_verdict",
    "format_markdown_table",
    "format_series",
    "format_table",
    "format_value",
    "geometric_midpoints",
    "get_dynamics",
    "jsonable",
    "records_table",
    "registered_dynamics",
    "run_multidynamics_ncp",
    "verify_paper_theorem",
    "write_record",
]
