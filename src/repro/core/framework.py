"""The public implicit-regularization API.

This is the paper's primary conceptual contribution, packaged as code: a
registry of *approximate computations*, each paired with the statistical
regularization it implicitly performs, plus one-call verification. A
downstream user who wants the paper's message as an API calls::

    from repro import core
    for dynamics in core.canonical_dynamics():
        report = dynamics.verify(graph)
        print(dynamics.describe(), report.diffusion_vs_closed_form)

Each registered dynamics knows (1) how to run the approximation on a
graph, (2) the regularized objective it exactly optimizes, and (3) how to
verify the equivalence numerically.

Since the unified-registry redesign this module is a façade over
:mod:`repro.dynamics`: :func:`canonical_dynamics` returns the *same*
:class:`~repro.dynamics.DynamicsKind` objects the NCP runner and the
local-cluster drivers dispatch on, and :func:`get_dynamics` accepts every
registered spelling — the historical framework keys (``"heat_kernel"``,
``"pagerank"``, ``"lazy_walk"``) and the runner's short names (``"hk"``,
``"ppr"``, ``"walk"``) resolve to identical objects.
"""

from __future__ import annotations

from repro.dynamics import (
    ApproximateComputation,
    DynamicsKind,
    UnknownDynamicsError,
    canonical_dynamics,
    get_dynamics,
    registered_dynamics,
)

__all__ = [
    "ApproximateComputation",
    "DynamicsKind",
    "UnknownDynamicsError",
    "canonical_dynamics",
    "get_dynamics",
    "registered_dynamics",
    "verify_paper_theorem",
]

def verify_paper_theorem(graph, *, atol=1e-8):
    """Verify the Section 3.1 theorem for all three dynamics on ``graph``.

    Returns the three equivalence reports; raises if any diffusion differs
    from its regularized-SDP optimum by more than ``atol``.
    """
    from repro.regularization.equivalence import assert_equivalence

    return [
        assert_equivalence(dynamics.verify(graph), atol=atol)
        for dynamics in canonical_dynamics()
    ]
