"""The public implicit-regularization API.

This is the paper's primary conceptual contribution, packaged as code: a
registry of *approximate computations*, each paired with the statistical
regularization it implicitly performs, plus one-call verification. A
downstream user who wants the paper's message as an API calls::

    from repro import core
    for dynamics in core.canonical_dynamics():
        report = dynamics.verify(graph)
        print(dynamics.describe(), report.diffusion_vs_closed_form)

Each :class:`ApproximateComputation` knows (1) how to run the approximation
on a graph, (2) the regularized objective it exactly optimizes, and (3) how
to verify the equivalence numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.regularization.equivalence import (
    verify_heat_kernel,
    verify_lazy_walk,
    verify_pagerank,
)


@dataclass(frozen=True)
class ApproximateComputation:
    """An approximation algorithm paired with its implicit regularizer.

    Attributes
    ----------
    name:
        Algorithm name.
    aggressiveness_parameter:
        The knob controlling how far the dynamics runs (Section 3.1).
    regularizer:
        The G(X) of Problem (5) that the algorithm implicitly applies.
    default_parameters:
        Parameters used by :meth:`verify` when none are given.
    verifier:
        Callable ``verifier(graph, **params) -> EquivalenceReport``.
    """

    name: str
    aggressiveness_parameter: str
    regularizer: str
    default_parameters: dict
    verifier: Callable

    def verify(self, graph, **params):
        """Numerically verify the implicit-regularization identity.

        Runs the dynamics and the regularized SDP on ``graph`` and returns
        the :class:`~repro.regularization.equivalence.EquivalenceReport`.
        """
        merged = dict(self.default_parameters)
        merged.update(params)
        return self.verifier(graph, **merged)

    def describe(self):
        """One-line description of the algorithm ↔ regularizer pairing."""
        return (
            f"{self.name} (aggressiveness: {self.aggressiveness_parameter}) "
            f"exactly solves Problem (5) with G = {self.regularizer}"
        )


_HEAT = ApproximateComputation(
    name="Heat Kernel",
    aggressiveness_parameter="time t",
    regularizer="generalized (von Neumann) entropy Tr(X log X)",
    default_parameters={"t": 2.0},
    verifier=verify_heat_kernel,
)

_PAGERANK = ApproximateComputation(
    name="PageRank",
    aggressiveness_parameter="teleport probability gamma",
    regularizer="log-determinant -log det(X)",
    default_parameters={"gamma": 0.2},
    verifier=verify_pagerank,
)

_LAZY = ApproximateComputation(
    name="Lazy Random Walk",
    aggressiveness_parameter="number of steps k",
    regularizer="matrix p-norm (1/p) Tr(X^p), p = 1 + 1/k",
    default_parameters={"alpha": 0.6, "num_steps": 5},
    verifier=verify_lazy_walk,
)

_REGISTRY = {
    "heat_kernel": _HEAT,
    "pagerank": _PAGERANK,
    "lazy_walk": _LAZY,
}


def canonical_dynamics():
    """The paper's three canonical dynamics (Section 3.1), in order."""
    return [_HEAT, _PAGERANK, _LAZY]


def get_dynamics(name):
    """Look up a dynamics by key: heat_kernel, pagerank, or lazy_walk."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown dynamics {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def verify_paper_theorem(graph, *, atol=1e-8):
    """Verify the Section 3.1 theorem for all three dynamics on ``graph``.

    Returns the three equivalence reports; raises if any diffusion differs
    from its regularized-SDP optimum by more than ``atol``.
    """
    from repro.regularization.equivalence import assert_equivalence

    return [
        assert_equivalence(dynamics.verify(graph), atol=atol)
        for dynamics in canonical_dynamics()
    ]
