"""Experiment records and shared drivers.

Every benchmark produces an :class:`ExperimentRecord` naming the paper
artifact it reproduces, the workload, the qualitative claim, and whether the
measured shape agrees. ``EXPERIMENTS.md`` is assembled from these records.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.reporting import format_table, jsonable


@dataclass
class ExperimentRecord:
    """A reproduced experiment's outcome.

    Attributes
    ----------
    experiment_id:
        Id from DESIGN.md's per-experiment index (e.g. ``"E1"``).
    paper_artifact:
        The table/figure/claim reproduced (e.g. ``"Figure 1(a)"``).
    workload:
        Human-readable workload description.
    claim:
        The qualitative claim being tested.
    observed:
        What was measured.
    shape_matches:
        Whether the measured shape agrees with the paper.
    details:
        Free-form metrics (numbers backing the verdict).
    seconds:
        Wall time of the run.
    """

    experiment_id: str
    paper_artifact: str
    workload: str
    claim: str
    observed: str
    shape_matches: bool
    details: dict = field(default_factory=dict)
    seconds: float = 0.0

    def summary_row(self):
        return [
            self.experiment_id,
            self.paper_artifact,
            "MATCH" if self.shape_matches else "MISMATCH",
            self.observed,
        ]

    def to_json(self):
        return json.dumps(
            jsonable({
                "experiment_id": self.experiment_id,
                "paper_artifact": self.paper_artifact,
                "workload": self.workload,
                "claim": self.claim,
                "observed": self.observed,
                "shape_matches": self.shape_matches,
                "details": self.details,
                "seconds": self.seconds,
            }),
            indent=2,
        )


class Stopwatch:
    """Wall-time stopwatch.

    Works as a context manager (``.seconds`` is set on exit) and as a
    plain timer: construction starts the clock and :meth:`elapsed`
    reads it at any point (the CLI manifests use the latter).
    """

    def __init__(self):
        self._start = time.perf_counter()
        self.seconds = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def elapsed(self):
        """Wall seconds since construction (or context entry)."""
        return time.perf_counter() - self._start

    def __exit__(self, *exc_info):
        self.seconds = self.elapsed()
        return False


def records_table(records):
    """Summary table over several experiment records."""
    return format_table(
        ["id", "artifact", "shape", "observed"],
        [r.summary_row() for r in records],
        title="Reproduction summary",
    )


def write_record(record, directory):
    """Persist a record as ``<directory>/<experiment_id>.json``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{record.experiment_id}.json"
    target.write_text(record.to_json(), encoding="utf-8")
    return target


def run_multidynamics_ncp(
    graph,
    *,
    experiment_id="E13",
    paper_artifact="Figure 1 / Section 3.1",
    dynamics=("ppr", "hk", "walk"),
    num_seeds=20,
    num_buckets=8,
    seed=0,
    num_workers=0,
    cache_dir=None,
):
    """Run NCP ensembles for several dynamics through the sharded runner.

    The shared driver behind the multi-dynamics benchmarks: every
    requested dynamics (ACL push, heat-kernel push, truncated lazy walk —
    the three canonical procedures of Section 3.1/3.3, or any newly
    registered dynamics) is swept over its parameter grid via
    :func:`repro.ncp.runner.run_ncp_ensemble`, reduced to a size-bucketed
    profile, and summarized in one :class:`ExperimentRecord`.

    ``dynamics`` entries may be registry names/aliases, spec instances
    (``PPR(...)``, ``HeatKernel(...)``, ``LazyWalk(...)``), or full
    :class:`~repro.dynamics.DiffusionGrid` workloads; names resolve to
    the dynamics' default grid with this function's ``num_seeds``/``seed``.

    Returns ``(record, profiles)`` where ``profiles`` maps each dynamics'
    canonical name to its :class:`~repro.ncp.profile.NCPProfile`.
    """
    from repro.dynamics import DiffusionGrid, as_diffusion_grid, get_dynamics
    from repro.exceptions import InvalidParameterError, PartitionError
    from repro.ncp.profile import best_per_size_bucket
    from repro.ncp.runner import run_ncp_ensemble

    grids = {}
    for entry in dynamics:
        if isinstance(entry, DiffusionGrid):
            grid = entry
        else:
            spec = (
                get_dynamics(entry).default_spec()
                if not hasattr(entry, "iter_columns")
                else entry
            )
            grid = DiffusionGrid(spec, num_seeds=num_seeds, seed=seed)
        key = as_diffusion_grid(grid).key
        if key in grids:
            # Results are keyed by canonical name; a silent overwrite
            # would drop a requested workload.
            raise InvalidParameterError(
                f"run_multidynamics_ncp received two workloads for "
                f"dynamics {key!r}; run them as separate calls"
            )
        grids[key] = grid

    profiles = {}
    details = {}
    with Stopwatch() as watch:
        for name, grid in grids.items():
            run = run_ncp_ensemble(
                graph, grid, num_workers=num_workers, cache_dir=cache_dir,
            )
            try:
                profile = best_per_size_bucket(
                    run.candidates, num_buckets=num_buckets
                )
                finite = [
                    phi for phi in profile.best_conductance
                    if phi == phi  # drop NaN buckets
                ]
            except PartitionError:
                # Degenerate workload (a graph too small for any sweep,
                # or only sub-min_size clusters): report the empty
                # ensemble instead of crashing.
                profile = None
                finite = []
            profiles[name] = profile
            details[name] = {
                "num_candidates": len(run.candidates),
                "num_chunks": run.num_chunks,
                "cache_hits": run.cache_hits,
                "best_phi": min(finite) if finite else None,
            }
    matches = all(
        info["num_candidates"] > 0 and info["best_phi"] is not None
        for info in details.values()
    )
    record = ExperimentRecord(
        experiment_id=experiment_id,
        paper_artifact=paper_artifact,
        workload=(
            f"{len(dynamics)} dynamics x {num_seeds} seeds on "
            f"{graph.num_nodes}-node graph, sharded NCP runner"
        ),
        claim=(
            "every canonical dynamics yields a size-resolved NCP profile "
            "through the batched engines"
        ),
        observed=", ".join(
            f"{name}: {info['num_candidates']} candidates, "
            f"best phi {info['best_phi']:.3g}"
            if info["best_phi"] is not None
            else f"{name}: no candidates"
            for name, info in details.items()
        ),
        shape_matches=matches,
        details=details,
        seconds=watch.seconds,
    )
    return record, profiles
