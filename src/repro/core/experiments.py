"""Experiment records and shared drivers.

Every benchmark produces an :class:`ExperimentRecord` naming the paper
artifact it reproduces, the workload, the qualitative claim, and whether the
measured shape agrees. ``EXPERIMENTS.md`` is assembled from these records.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.reporting import format_table


@dataclass
class ExperimentRecord:
    """A reproduced experiment's outcome.

    Attributes
    ----------
    experiment_id:
        Id from DESIGN.md's per-experiment index (e.g. ``"E1"``).
    paper_artifact:
        The table/figure/claim reproduced (e.g. ``"Figure 1(a)"``).
    workload:
        Human-readable workload description.
    claim:
        The qualitative claim being tested.
    observed:
        What was measured.
    shape_matches:
        Whether the measured shape agrees with the paper.
    details:
        Free-form metrics (numbers backing the verdict).
    seconds:
        Wall time of the run.
    """

    experiment_id: str
    paper_artifact: str
    workload: str
    claim: str
    observed: str
    shape_matches: bool
    details: dict = field(default_factory=dict)
    seconds: float = 0.0

    def summary_row(self):
        return [
            self.experiment_id,
            self.paper_artifact,
            "MATCH" if self.shape_matches else "MISMATCH",
            self.observed,
        ]

    def to_json(self):
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "paper_artifact": self.paper_artifact,
                "workload": self.workload,
                "claim": self.claim,
                "observed": self.observed,
                "shape_matches": self.shape_matches,
                "details": self.details,
                "seconds": self.seconds,
            },
            indent=2,
            default=str,
        )


class Stopwatch:
    """Context manager measuring wall time into ``.seconds``."""

    def __enter__(self):
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info):
        self.seconds = time.perf_counter() - self._start
        return False


def records_table(records):
    """Summary table over several experiment records."""
    return format_table(
        ["id", "artifact", "shape", "observed"],
        [r.summary_row() for r in records],
        title="Reproduction summary",
    )


def write_record(record, directory):
    """Persist a record as ``<directory>/<experiment_id>.json``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{record.experiment_id}.json"
    target.write_text(record.to_json(), encoding="utf-8")
    return target
