"""Frontier-batched, vectorized diffusion engine for ACL push.

Section 3.3 of the paper argues that push-style local diffusion does work
proportional to the *output*, not the graph: "the running time depends on
the size of the output and is independent even of the number of nodes in
the graph". The scalar implementation in :mod:`repro.diffusion.push`
realizes that asymptotic claim one node at a time through a Python deque,
which makes the interpreter — not the hardware — the bottleneck for the
NCP ensembles behind Figure 1 (thousands of push runs over a seed × α × ε
grid).

This module is the vectorized counterpart. Two ideas:

* **Frontier sweeps** (single diffusion): instead of popping one node at a
  time, select *every* node with ``r_u ≥ ε d_u`` at once and push them all
  in one synchronized NumPy scatter-add over the CSR arrays. Because each
  push is a linear operation on ``(p, r)``, the push invariant

      p + pr_α(r) = pr_α(s)

  holds *exactly* after every sweep, regardless of the order in which
  pushes are applied — simultaneous pushes are just a different schedule
  of the same commuting updates. On exit ``r_u < ε d_u`` everywhere, so
  the ε·d entrywise guarantee ``|p_u − pr_α(s)_u| ≤ ε d_u`` of [1] is
  identical to the scalar algorithm's.

* **Column batching** (many diffusions): independent diffusions — distinct
  seeds, teleport values α, and thresholds ε — are columns of dense
  ``(n, B)`` approximation/residual matrices. One frontier sweep then
  pushes every active (node, column) pair with a single ``np.add.at``
  scatter over the rows of the residual matrix, amortizing the CSR gather
  across the whole batch.

Work accounting matches the scalar algorithm: ``num_pushes`` counts
(node, column) push events, ``work`` charges ``1 + deg(u)`` per push, and
``pushed_volume`` records ``Σ_pushes d_u`` — the quantity the classic
``O(1/(ε α))`` bound controls via ``ε α Σ_pushes d_u ≤ ||s||_1``.

The memory cost is ``O(n B)`` for the dense column matrices (the frontier
*computation* stays proportional to the active support). For the graph
sizes this library targets that trade is decisively worth the vectorized
inner loop; shard the columns for very large ``n × B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_probability, check_vector
from repro.diffusion.push import PushResult
from repro.diffusion.seeds import indicator_seed
from repro.exceptions import InvalidParameterError

__all__ = [
    "BatchPushResult",
    "batch_ppr_push",
    "gather_csr_arcs",
    "ppr_push_frontier",
]


@dataclass
class BatchPushResult:
    """Output of the batched frontier push engine.

    Columns enumerate the grid ``seeds × alphas × epsilons`` in C order
    (seed slowest, epsilon fastest), matching
    ``for seed: for alpha: for epsilon`` iteration.

    Attributes
    ----------
    approximation:
        ``(n, B)`` matrix; column ``b`` is the vector ``p`` of diffusion
        ``b`` (entrywise underestimate of the exact PPR).
    residual:
        ``(n, B)`` matrix of final residuals (``r_u < ε_b d_u``).
    seed_indices:
        ``(B,)`` index into the ``seeds`` argument for each column.
    alphas:
        ``(B,)`` teleport parameter per column.
    epsilons:
        ``(B,)`` threshold per column.
    num_pushes:
        ``(B,)`` push events executed per column.
    work:
        ``(B,)`` total edge work ``Σ_pushes (1 + deg(u))`` per column.
    pushed_volume:
        ``(B,)`` ``Σ_pushes d_u`` per column — satisfies
        ``ε α · pushed_volume ≤ ||s||_1``, the paper's locality bound.
    num_sweeps:
        Number of synchronized frontier sweeps until all columns
        converged.
    """

    approximation: np.ndarray
    residual: np.ndarray
    seed_indices: np.ndarray
    alphas: np.ndarray
    epsilons: np.ndarray
    num_pushes: np.ndarray
    work: np.ndarray
    pushed_volume: np.ndarray
    num_sweeps: int

    @property
    def num_columns(self):
        """Number of batched diffusions ``B``."""
        return int(self.alphas.size)

    def column(self, b):
        """Extract column ``b`` as a scalar-compatible :class:`PushResult`."""
        b = int(b)
        if not 0 <= b < self.num_columns:
            raise InvalidParameterError(
                f"column must lie in [0, {self.num_columns}); got {b}"
            )
        p = self.approximation[:, b]
        r = self.residual[:, b]
        return PushResult(
            approximation=p.copy(),
            residual=r.copy(),
            num_pushes=int(self.num_pushes[b]),
            work=int(self.work[b]),
            touched=np.flatnonzero((p > 0) | (r > 0)),
            epsilon=float(self.epsilons[b]),
            alpha=float(self.alphas[b]),
        )


def gather_csr_arcs(indptr, rows):
    """Flat CSR positions of every arc leaving ``rows``.

    Returns ``(arc_positions, counts)`` where ``arc_positions`` indexes
    ``indices``/``weights`` and ``counts[i]`` is the out-degree count of
    ``rows[i]``; arcs appear grouped by row, in CSR order. Shared by the
    push engine, the heat-kernel push stage, and the vectorized sweep
    scan.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    arc_positions = np.repeat(starts - offsets, counts) + np.arange(total)
    return arc_positions, counts


def _as_seed_matrix(graph, seeds):
    """Stack seed specs (node ids or vectors) into an ``(n, S)`` matrix."""
    n = graph.num_nodes
    columns = []
    for i, spec in enumerate(seeds):
        if isinstance(spec, (int, np.integer)) and not isinstance(spec, bool):
            columns.append(indicator_seed(graph, [int(spec)]))
            continue
        vector = check_vector(spec, n, f"seeds[{i}]")
        if np.any(vector < 0):
            raise InvalidParameterError(
                f"seeds[{i}] must be a nonnegative seed vector"
            )
        columns.append(vector)
    if not columns:
        raise InvalidParameterError("seeds must be nonempty")
    return np.column_stack(columns)


def batch_ppr_push(graph, seeds, *, alphas=(0.15,), epsilons=(1e-4,),
                   max_pushes=None):
    """Run many independent ACL push diffusions in synchronized sweeps.

    One column per ``(seed, alpha, epsilon)`` grid point; every sweep
    selects all (node, column) pairs with ``r_u ≥ ε d_u`` and pushes them
    simultaneously with vectorized scatter-adds. The per-column output is
    equivalent to :func:`repro.diffusion.push.approximate_ppr_push` up to
    the shared entrywise guarantee ``|p_u − pr_α(s)_u| ≤ ε d_u``
    (Section 3.3; the push invariant holds exactly for any push schedule,
    so only the ε-sized residual differs between schedules).

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seeds:
        Sequence of seed specs. Integers are treated as node ids (an
        indicator seed on that node); anything else must be a nonnegative
        length-``n`` vector.
    alphas:
        Teleport probabilities in (0, 1); crossed with ``seeds`` and
        ``epsilons``.
    epsilons:
        Degree-normalized truncation thresholds in (0, 1).
    max_pushes:
        Optional per-column safety cap; defaults to the provable bound
        ``||s||_1 / (ε α)`` per column (plus slack).

    Returns
    -------
    BatchPushResult

    Raises
    ------
    InvalidParameterError
        On negative seeds, nonpositive degrees, out-of-range parameters,
        or a column exceeding its push cap.
    """
    alphas = np.asarray(
        [check_probability(a, "alpha") for a in np.atleast_1d(alphas)]
    )
    epsilons = np.asarray(
        [check_probability(e, "epsilon") for e in np.atleast_1d(epsilons)]
    )
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("push requires positive degrees")
    seed_matrix = _as_seed_matrix(graph, seeds)
    num_seeds = seed_matrix.shape[1]

    # Column grid: seed slowest, epsilon fastest (C order).
    seed_idx = np.repeat(np.arange(num_seeds), alphas.size * epsilons.size)
    alpha_col = np.tile(np.repeat(alphas, epsilons.size), num_seeds)
    eps_col = np.tile(epsilons, num_seeds * alphas.size)
    num_columns = seed_idx.size

    seed_mass = seed_matrix.sum(axis=0)[seed_idx]
    if max_pushes is None:
        # Same degree-aware count cap as the scalar reference: the
        # O(1/(eps a)) bound controls pushed volume, so the push count
        # is bounded by ||s||_1 / (eps a min(1, d_min)).
        degree_floor = min(1.0, float(degrees.min()))
        push_caps = (
            np.ceil(seed_mass / (eps_col * alpha_col * degree_floor)) + 8
        )
    else:
        push_caps = np.full(num_columns, float(max_pushes))

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    approximation = np.zeros((graph.num_nodes, num_columns))
    residual = seed_matrix[:, seed_idx].copy()
    thresholds = degrees[:, None] * eps_col[None, :]

    from scipy import sparse

    adjacency = sparse.csr_matrix(
        (weights, indices, indptr),
        shape=(graph.num_nodes, graph.num_nodes),
    )
    deg_counts = np.diff(indptr)
    retained = 0.5 * (1.0 - alpha_col)

    num_pushes = np.zeros(num_columns, dtype=np.int64)
    work = np.zeros(num_columns, dtype=np.int64)
    pushed_volume = np.zeros(num_columns)
    num_sweeps = 0

    while True:
        active = residual >= thresholds
        rows = np.flatnonzero(active.any(axis=1))
        if rows.size == 0:
            break
        num_sweeps += 1
        frontier_arcs = int(deg_counts[rows].sum())

        if 4 * frontier_arcs >= indices.size:
            # Dense sweep: the frontier covers most arcs, so one sparse
            # matmul over the whole adjacency beats gathering CSR slices.
            pushed = np.where(active, residual, 0.0)
            num_pushes += active.sum(axis=0)
            work += (1 + deg_counts) @ active
            pushed_volume += degrees @ active
            approximation += alpha_col * pushed
            spread = adjacency @ (pushed / (2.0 * degrees[:, None]))
            residual += (1.0 - alpha_col) * spread + retained * pushed - pushed
        else:
            # Sparse sweep: gather only the frontier's CSR slices and
            # scatter-add through a flattened bincount (markedly faster
            # than np.add.at); work stays proportional to the frontier.
            mask = active[rows]
            pushed = np.where(mask, residual[rows], 0.0)
            num_pushes += mask.sum(axis=0)
            arc_positions, counts = gather_csr_arcs(indptr, rows)
            work += (1 + counts) @ mask
            pushed_volume += degrees[rows] @ mask
            approximation[rows] += alpha_col * pushed
            residual[rows] -= pushed
            if arc_positions.size:
                share = (
                    (1.0 - alpha_col) * pushed / (2.0 * degrees[rows, None])
                )
                arc_src = np.repeat(np.arange(rows.size), counts)
                contributions = weights[arc_positions, None] * share[arc_src]
                flat = (
                    indices[arc_positions, None] * num_columns
                    + np.arange(num_columns)
                )
                residual += np.bincount(
                    flat.ravel(),
                    weights=contributions.ravel(),
                    minlength=residual.size,
                ).reshape(residual.shape)
            residual[rows] += retained * pushed

        if np.any(num_pushes > push_caps):
            worst = int(np.argmax(num_pushes - push_caps))
            raise InvalidParameterError(
                f"push exceeded max_pushes={int(push_caps[worst])} in "
                f"column {worst}; epsilon too small?"
            )

    return BatchPushResult(
        approximation=approximation,
        residual=residual,
        seed_indices=seed_idx,
        alphas=alpha_col,
        epsilons=eps_col,
        num_pushes=num_pushes,
        work=work,
        pushed_volume=pushed_volume,
        num_sweeps=num_sweeps,
    )


def ppr_push_frontier(graph, seed_vector, *, alpha=0.15, epsilon=1e-4,
                      max_pushes=None):
    """Single-diffusion frontier push; drop-in for ``approximate_ppr_push``.

    Runs the vectorized engine with one column and returns the same
    :class:`repro.diffusion.push.PushResult` shape as the scalar
    reference, with the same ``|p_u − pr_α(s)_u| ≤ ε d_u`` guarantee.
    """
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    batch = batch_ppr_push(
        graph, [seed], alphas=(alpha,), epsilons=(epsilon,),
        max_pushes=max_pushes,
    )
    return batch.column(0)
