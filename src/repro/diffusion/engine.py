"""Frontier-batched, vectorized diffusion engine for ACL push.

Section 3.3 of the paper argues that push-style local diffusion does work
proportional to the *output*, not the graph: "the running time depends on
the size of the output and is independent even of the number of nodes in
the graph". The scalar implementation in :mod:`repro.diffusion.push`
realizes that asymptotic claim one node at a time through a Python deque,
which makes the interpreter — not the hardware — the bottleneck for the
NCP ensembles behind Figure 1 (thousands of push runs over a seed × α × ε
grid).

This module is the vectorized counterpart. Two ideas:

* **Frontier sweeps** (single diffusion): instead of popping one node at a
  time, select *every* node with ``r_u ≥ ε d_u`` at once and push them all
  in one synchronized NumPy scatter-add over the CSR arrays. Because each
  push is a linear operation on ``(p, r)``, the push invariant

      p + pr_α(r) = pr_α(s)

  holds *exactly* after every sweep, regardless of the order in which
  pushes are applied — simultaneous pushes are just a different schedule
  of the same commuting updates. On exit ``r_u < ε d_u`` everywhere, so
  the ε·d entrywise guarantee ``|p_u − pr_α(s)_u| ≤ ε d_u`` of [1] is
  identical to the scalar algorithm's.

* **Column batching** (many diffusions): independent diffusions — distinct
  seeds, teleport values α, and thresholds ε — are columns of dense
  ``(n, B)`` approximation/residual matrices. One frontier sweep then
  pushes every active (node, column) pair with a single ``np.add.at``
  scatter over the rows of the residual matrix, amortizing the CSR gather
  across the whole batch.

Work accounting matches the scalar algorithm: ``num_pushes`` counts
(node, column) push events, ``work`` charges ``1 + deg(u)`` per push, and
``pushed_volume`` records ``Σ_pushes d_u`` — the quantity the classic
``O(1/(ε α))`` bound controls via ``ε α Σ_pushes d_u ≤ ||s||_1``.

The memory cost is ``O(n B)`` for the dense column matrices (the frontier
*computation* stays proportional to the active support). For the graph
sizes this library targets that trade is decisively worth the vectorized
inner loop; shard the columns for very large ``n × B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_int, check_positive, check_probability, check_vector
from repro.diffusion._csr import gather_csr_arcs
from repro.diffusion.push import PushResult
from repro.diffusion.seeds import indicator_seed
from repro.exceptions import InvalidParameterError

__all__ = [
    "BatchHeatKernelResult",
    "BatchPushResult",
    "batch_hk_push",
    "batch_ppr_push",
    "gather_csr_arcs",
    "ppr_push_frontier",
]


@dataclass
class BatchPushResult:
    """Output of the batched frontier push engine.

    Columns enumerate the grid ``seeds × alphas × epsilons`` in C order
    (seed slowest, epsilon fastest), matching
    ``for seed: for alpha: for epsilon`` iteration.

    Attributes
    ----------
    approximation:
        ``(n, B)`` matrix; column ``b`` is the vector ``p`` of diffusion
        ``b`` (entrywise underestimate of the exact PPR).
    residual:
        ``(n, B)`` matrix of final residuals (``r_u < ε_b d_u``).
    seed_indices:
        ``(B,)`` index into the ``seeds`` argument for each column.
    alphas:
        ``(B,)`` teleport parameter per column.
    epsilons:
        ``(B,)`` threshold per column.
    num_pushes:
        ``(B,)`` push events executed per column.
    work:
        ``(B,)`` total edge work ``Σ_pushes (1 + deg(u))`` per column.
    pushed_volume:
        ``(B,)`` ``Σ_pushes d_u`` per column — satisfies
        ``ε α · pushed_volume ≤ ||s||_1``, the paper's locality bound.
    num_sweeps:
        Number of synchronized frontier sweeps until all columns
        converged.
    """

    approximation: np.ndarray
    residual: np.ndarray
    seed_indices: np.ndarray
    alphas: np.ndarray
    epsilons: np.ndarray
    num_pushes: np.ndarray
    work: np.ndarray
    pushed_volume: np.ndarray
    num_sweeps: int

    @property
    def num_columns(self):
        """Number of batched diffusions ``B``."""
        return int(self.alphas.size)

    def column(self, b):
        """Extract column ``b`` as a scalar-compatible :class:`PushResult`."""
        b = int(b)
        if not 0 <= b < self.num_columns:
            raise InvalidParameterError(
                f"column must lie in [0, {self.num_columns}); got {b}"
            )
        p = self.approximation[:, b]
        r = self.residual[:, b]
        return PushResult(
            approximation=p.copy(),
            residual=r.copy(),
            num_pushes=int(self.num_pushes[b]),
            work=int(self.work[b]),
            touched=np.flatnonzero((p > 0) | (r > 0)),
            epsilon=float(self.epsilons[b]),
            alpha=float(self.alphas[b]),
        )


def _as_seed_matrix(graph, seeds):
    """Stack seed specs (node ids or vectors) into an ``(n, S)`` matrix."""
    n = graph.num_nodes
    columns = []
    for i, spec in enumerate(seeds):
        if isinstance(spec, (int, np.integer)) and not isinstance(spec, bool):
            columns.append(indicator_seed(graph, [int(spec)]))
            continue
        vector = check_vector(spec, n, f"seeds[{i}]")
        if np.any(vector < 0):
            raise InvalidParameterError(
                f"seeds[{i}] must be a nonnegative seed vector"
            )
        columns.append(vector)
    if not columns:
        raise InvalidParameterError("seeds must be nonempty")
    return np.column_stack(columns)


def batch_ppr_push(graph, seeds, *, alphas=(0.15,), epsilons=(1e-4,),
                   max_pushes=None):
    """Run many independent ACL push diffusions in synchronized sweeps.

    One column per ``(seed, alpha, epsilon)`` grid point; every sweep
    selects all (node, column) pairs with ``r_u ≥ ε d_u`` and pushes them
    simultaneously with vectorized scatter-adds. The per-column output is
    equivalent to :func:`repro.diffusion.push.approximate_ppr_push` up to
    the shared entrywise guarantee ``|p_u − pr_α(s)_u| ≤ ε d_u``
    (Section 3.3; the push invariant holds exactly for any push schedule,
    so only the ε-sized residual differs between schedules).

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seeds:
        Sequence of seed specs. Integers are treated as node ids (an
        indicator seed on that node); anything else must be a nonnegative
        length-``n`` vector.
    alphas:
        Teleport probabilities in (0, 1); crossed with ``seeds`` and
        ``epsilons``.
    epsilons:
        Degree-normalized truncation thresholds in (0, 1).
    max_pushes:
        Optional per-column safety cap; defaults to the provable bound
        ``||s||_1 / (ε α)`` per column (plus slack).

    Returns
    -------
    BatchPushResult

    Raises
    ------
    InvalidParameterError
        On negative seeds, nonpositive degrees, out-of-range parameters,
        or a column exceeding its push cap.
    """
    alphas = np.asarray(
        [check_probability(a, "alpha") for a in np.atleast_1d(alphas)]
    )
    epsilons = np.asarray(
        [check_probability(e, "epsilon") for e in np.atleast_1d(epsilons)]
    )
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("push requires positive degrees")
    seed_matrix = _as_seed_matrix(graph, seeds)
    num_seeds = seed_matrix.shape[1]

    # Column grid: seed slowest, epsilon fastest (C order).
    seed_idx = np.repeat(np.arange(num_seeds), alphas.size * epsilons.size)
    alpha_col = np.tile(np.repeat(alphas, epsilons.size), num_seeds)
    eps_col = np.tile(epsilons, num_seeds * alphas.size)
    num_columns = seed_idx.size

    seed_mass = seed_matrix.sum(axis=0)[seed_idx]
    if max_pushes is None:
        # Same degree-aware count cap as the scalar reference: the
        # O(1/(eps a)) bound controls pushed volume, so the push count
        # is bounded by ||s||_1 / (eps a min(1, d_min)).
        degree_floor = min(1.0, float(degrees.min()))
        push_caps = (
            np.ceil(seed_mass / (eps_col * alpha_col * degree_floor)) + 8
        )
    else:
        push_caps = np.full(num_columns, float(max_pushes))

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    approximation = np.zeros((graph.num_nodes, num_columns))
    residual = seed_matrix[:, seed_idx].copy()
    thresholds = degrees[:, None] * eps_col[None, :]

    from scipy import sparse

    adjacency = sparse.csr_matrix(
        (weights, indices, indptr),
        shape=(graph.num_nodes, graph.num_nodes),
    )
    deg_counts = np.diff(indptr)
    retained = 0.5 * (1.0 - alpha_col)

    num_pushes = np.zeros(num_columns, dtype=np.int64)
    work = np.zeros(num_columns, dtype=np.int64)
    pushed_volume = np.zeros(num_columns)
    num_sweeps = 0

    while True:
        active = residual >= thresholds
        rows = np.flatnonzero(active.any(axis=1))
        if rows.size == 0:
            break
        num_sweeps += 1
        frontier_arcs = int(deg_counts[rows].sum())

        if 4 * frontier_arcs >= indices.size:
            # Dense sweep: the frontier covers most arcs, so one sparse
            # matmul over the whole adjacency beats gathering CSR slices.
            pushed = np.where(active, residual, 0.0)
            num_pushes += active.sum(axis=0)
            work += (1 + deg_counts) @ active
            pushed_volume += degrees @ active
            approximation += alpha_col * pushed
            spread = adjacency @ (pushed / (2.0 * degrees[:, None]))
            residual += (1.0 - alpha_col) * spread + retained * pushed - pushed
        else:
            # Sparse sweep: gather only the frontier's CSR slices and
            # scatter-add through a flattened bincount (markedly faster
            # than np.add.at); work stays proportional to the frontier.
            mask = active[rows]
            pushed = np.where(mask, residual[rows], 0.0)
            num_pushes += mask.sum(axis=0)
            arc_positions, counts = gather_csr_arcs(indptr, rows)
            work += (1 + counts) @ mask
            pushed_volume += degrees[rows] @ mask
            approximation[rows] += alpha_col * pushed
            residual[rows] -= pushed
            if arc_positions.size:
                share = (
                    (1.0 - alpha_col) * pushed / (2.0 * degrees[rows, None])
                )
                arc_src = np.repeat(np.arange(rows.size), counts)
                contributions = weights[arc_positions, None] * share[arc_src]
                flat = (
                    indices[arc_positions, None] * num_columns
                    + np.arange(num_columns)
                )
                residual += np.bincount(
                    flat.ravel(),
                    weights=contributions.ravel(),
                    minlength=residual.size,
                ).reshape(residual.shape)
            residual[rows] += retained * pushed

        if np.any(num_pushes > push_caps):
            worst = int(np.argmax(num_pushes - push_caps))
            raise InvalidParameterError(
                f"push exceeded max_pushes={int(push_caps[worst])} in "
                f"column {worst}; epsilon too small?"
            )

    return BatchPushResult(
        approximation=approximation,
        residual=residual,
        seed_indices=seed_idx,
        alphas=alpha_col,
        epsilons=eps_col,
        num_pushes=num_pushes,
        work=work,
        pushed_volume=pushed_volume,
        num_sweeps=num_sweeps,
    )


@dataclass
class BatchHeatKernelResult:
    """Output of the batched truncated-Taylor heat-kernel engine.

    Columns enumerate the grid ``seeds × ts × epsilons`` in C order
    (seed slowest, epsilon fastest), matching
    ``for seed: for t: for epsilon`` iteration.

    Attributes
    ----------
    approximation:
        ``(n, B)`` matrix; column ``b`` approximates
        ``exp(-t_b (I − M)) s_b`` with the same per-stage ε·d rounding as
        the scalar :func:`repro.diffusion.hk_push.heat_kernel_push`.
    seed_indices:
        ``(B,)`` index into the ``seeds`` argument for each column.
    ts:
        ``(B,)`` diffusion time per column.
    epsilons:
        ``(B,)`` rounding threshold per column.
    num_terms:
        ``(B,)`` Taylor truncation order per column.
    dropped_mass:
        ``(B,)`` total ℓ1 mass removed by rounding per column (upper bound
        on the rounding error of that column).
    tail_bound:
        ``(B,)`` Poisson tail mass beyond ``num_terms`` per column.
    work:
        ``(B,)`` edge traversals charged per column — identical to the
        scalar accounting ``Σ_stages Σ_{u ∈ support} (1 + deg(u))``.
    touched_mask:
        ``(n, B)`` bool matrix of nodes ever assigned nonzero charge.
    num_stages:
        Synchronized Taylor stages executed (the max of ``num_terms``).
    """

    approximation: np.ndarray
    seed_indices: np.ndarray
    ts: np.ndarray
    epsilons: np.ndarray
    num_terms: np.ndarray
    dropped_mass: np.ndarray
    tail_bound: np.ndarray
    work: np.ndarray
    touched_mask: np.ndarray
    num_stages: int

    @property
    def num_columns(self):
        """Number of batched diffusions ``B``."""
        return int(self.ts.size)

    def column(self, b):
        """Extract column ``b`` as a scalar-compatible result object."""
        from repro.diffusion.hk_push import HeatKernelPushResult

        b = int(b)
        if not 0 <= b < self.num_columns:
            raise InvalidParameterError(
                f"column must lie in [0, {self.num_columns}); got {b}"
            )
        return HeatKernelPushResult(
            approximation=self.approximation[:, b].copy(),
            t=float(self.ts[b]),
            num_terms=int(self.num_terms[b]),
            dropped_mass=float(self.dropped_mass[b]),
            tail_bound=float(self.tail_bound[b]),
            touched=np.flatnonzero(self.touched_mask[:, b]),
            work=int(self.work[b]),
        )


def batch_hk_push(graph, seeds, *, ts=(5.0,), epsilons=(1e-4,),
                  num_terms=None, tail_tol=1e-6):
    """Run many truncated-Taylor heat-kernel diffusions in lockstep stages.

    One column per ``(seed, t, epsilon)`` grid point. The engine exploits
    a structural fact the scalar loop cannot: the rounded stage recursion

        stage_{k+1} = [M stage_k]_ε

    does not involve ``t`` at all — the diffusion time only enters through
    the Taylor weights ``e^{-t} t^k / k!`` and the truncation order. So
    the synchronized recursion runs over the *unique* ``(seed, ε)``
    columns (one sparse matmul per stage for the whole batch), and every
    ``t`` in the grid is accumulated from the shared stages with its own
    weights, truncated at its own order. The whole t-grid costs one
    recursion.

    Per column the stage vectors — and hence rounding decisions, dropped
    mass, work, and touched sets — match the scalar
    :func:`repro.diffusion.hk_push.heat_kernel_push`, so the scalar error
    bound carries over: the ℓ1 error of column ``b`` is at most
    ``dropped_mass[b] + tail_bound[b]``.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seeds:
        Sequence of seed specs. Integers are node ids (indicator seeds);
        anything else must be a nonnegative length-``n`` vector.
    ts:
        Diffusion times in ``[0, SERIES_T_MAX]``; crossed with ``seeds``
        and ``epsilons``.
    epsilons:
        Degree-normalized rounding thresholds in (0, 1).
    num_terms:
        Explicit Taylor truncation order for every column; derived per
        ``t`` from ``tail_tol`` when omitted.
    tail_tol:
        Target Poisson tail when ``num_terms`` is omitted.

    Returns
    -------
    BatchHeatKernelResult
    """
    from repro.diffusion.hk_push import (
        _check_series_time,
        poisson_tail,
        terms_for_tail,
    )

    ts = np.asarray([
        _check_series_time(check_positive(t, "t", allow_zero=True))
        for t in np.atleast_1d(ts)
    ])
    epsilons = np.asarray(
        [check_probability(e, "epsilon") for e in np.atleast_1d(epsilons)]
    )
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("heat-kernel push needs positive degrees")
    seed_matrix = _as_seed_matrix(graph, seeds)
    num_seeds = seed_matrix.shape[1]
    num_ts = ts.size
    num_eps = epsilons.size

    # Output grid: seed slowest, epsilon fastest (C order).
    seed_idx = np.repeat(np.arange(num_seeds), num_ts * num_eps)
    t_col = np.tile(np.repeat(ts, num_eps), num_seeds)
    eps_col = np.tile(epsilons, num_seeds * num_ts)
    num_columns = seed_idx.size

    if num_terms is None:
        terms_by_t = {
            float(t): terms_for_tail(float(t), tail_tol)
            for t in sorted(set(ts))
        }
        terms_t = np.asarray(
            [terms_by_t[float(t)] for t in ts], dtype=np.int64
        )
    else:
        num_terms = check_int(num_terms, "num_terms", minimum=1)
        terms_t = np.full(num_ts, num_terms, dtype=np.int64)
    terms_col = np.tile(np.repeat(terms_t, num_eps), num_seeds)
    max_terms = int(terms_t.max())

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    n = graph.num_nodes
    deg_counts = np.diff(indptr)

    from scipy import sparse

    adjacency = sparse.csr_matrix(
        (weights, indices, indptr), shape=(n, n)
    )

    # The rounded stage recursion is t-free, so it runs over the unique
    # (seed, epsilon) columns only; every t reads the shared stages.
    u_eps = np.tile(epsilons, num_seeds)
    thresholds = degrees[:, None] * u_eps[None, :]
    u_of_seed = np.repeat(np.arange(num_seeds), num_eps)

    num_unique = u_eps.size
    work_u = np.zeros(num_unique, dtype=np.int64)
    touched_u = np.zeros((n, num_unique), dtype=bool)

    # Taylor weight schedule: W[k, ti] = e^{-t} t^k / k! while the t still
    # accumulates, 0 beyond its truncation order — per-t truncation is a
    # zero weight, not control flow.
    weight_schedule = np.zeros((max_terms + 1, num_ts))
    weight_schedule[0] = np.exp(-ts)
    for k in range(1, max_terms + 1):
        weight_schedule[k] = weight_schedule[k - 1] * ts / k
    weight_schedule[np.arange(max_terms + 1)[:, None] > terms_t[None, :]] = 0.0

    # The accumulated output is a linear functional of the stage history,
    # so rounded stages are written straight into a block buffer and all
    # t-weights are applied with one compiled tensordot per block instead
    # of T strided adds per stage.
    block_size = min(16, max_terms + 1)
    history = np.zeros((block_size, n, num_unique))
    block_ks = []
    accumulated = np.zeros((n, num_unique, num_ts))

    def flush():
        if block_ks:
            accumulated[...] += np.tensordot(
                history[: len(block_ks)],
                weight_schedule[block_ks],
                axes=([0], [0]),
            )
            block_ks.clear()

    def round_into_buffer(vector, k):
        """Threshold ``vector`` into the next history slot; return it.

        The kept stage is ``vector * keep`` — a bool mask multiply,
        bitwise identical to the scalar ``np.where`` rounding for the
        nonnegative charges diffused here.
        """
        keep = vector >= thresholds
        slot = history[len(block_ks)]
        np.multiply(vector, keep, out=slot)
        touched_u[...] |= keep
        block_ks.append(k)
        if len(block_ks) == block_size:
            flush()
        return slot, keep

    seed_mass_u = seed_matrix.sum(axis=0)[u_of_seed]
    stage, keep = round_into_buffer(seed_matrix[:, u_of_seed], 0)

    # Per-t metadata outputs, viewed as (seed, t, epsilon) so each t's
    # slice aligns with the (seed, epsilon) recursion matrix.
    dropped = np.zeros(num_columns)
    dropped_view = dropped.reshape(num_seeds, num_ts, num_eps)
    work = np.zeros(num_columns, dtype=np.int64)
    work_view = work.reshape(num_seeds, num_ts, num_eps)
    touched = np.zeros((n, num_columns), dtype=bool)
    touched_view = touched.reshape(n, num_seeds, num_ts, num_eps)

    def snapshot(ti):
        """Freeze t-column metadata when its Taylor order is exhausted.

        The walk step ``q ↦ A (q / d)`` conserves ℓ1 mass exactly (in
        exact arithmetic), so the mass dropped by rounding up to this
        stage is the seed mass minus the current stage mass — one reduce
        per t instead of two per stage.
        """
        dropped_view[:, ti, :] = (
            seed_mass_u - stage.sum(axis=0)
        ).reshape(num_seeds, num_eps)
        work_view[:, ti, :] = work_u.reshape(num_seeds, num_eps)
        touched_view[:, :, ti, :] = touched_u.reshape(n, num_seeds, num_eps)

    for k in range(1, max_terms + 1):
        # The support of the current stage is exactly the entries its
        # rounding kept, so the frontier comes from the (cheap, bool)
        # keep mask rather than another pass over the float matrix.
        rows = np.flatnonzero(keep.any(axis=1))
        if rows.size:
            frontier_arcs = int(deg_counts[rows].sum())
            if 4 * frontier_arcs >= indices.size:
                # Wide stage: the union support covers most arcs, so one
                # sparse matmul over the whole adjacency is cheapest.
                work_u += (1 + deg_counts) @ keep
                new_stage = adjacency @ (stage / degrees[:, None])
            else:
                # Narrow stage: slice the support's adjacency rows and use
                # symmetry (A[:, rows] = A[rows, :].T) so the scatter is
                # still one compiled sparse matmul, with cost proportional
                # to the support volume — not to n.
                work_u += (1 + deg_counts[rows]) @ keep[rows]
                new_stage = adjacency[rows, :].T @ (
                    stage[rows] / degrees[rows, None]
                )
        else:
            new_stage = np.zeros_like(stage)
        stage, keep = round_into_buffer(new_stage, k)
        for ti in np.flatnonzero(terms_t == k):
            snapshot(ti)
    flush()

    # (n, seed·eps, t) -> the C-ordered (n, seed, t, eps) output grid.
    approximation = np.ascontiguousarray(
        accumulated.reshape(n, num_seeds, num_eps, num_ts)
        .transpose(0, 1, 3, 2)
    ).reshape(n, num_columns)

    tail_by_t = [
        poisson_tail(float(t), int(m)) for t, m in zip(ts, terms_t)
    ]
    tail = np.tile(np.repeat(tail_by_t, num_eps), num_seeds)
    return BatchHeatKernelResult(
        approximation=approximation,
        seed_indices=seed_idx,
        ts=t_col,
        epsilons=eps_col,
        num_terms=terms_col,
        dropped_mass=dropped,
        tail_bound=tail,
        work=work,
        touched_mask=touched,
        num_stages=max_terms,
    )


def ppr_push_frontier(graph, seed_vector, *, alpha=0.15, epsilon=1e-4,
                      max_pushes=None):
    """Single-diffusion frontier push; drop-in for ``approximate_ppr_push``.

    Runs the vectorized engine with one column and returns the same
    :class:`repro.diffusion.push.PushResult` shape as the scalar
    reference, with the same ``|p_u − pr_α(s)_u| ≤ ε d_u`` guarantee.
    """
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    batch = batch_ppr_push(
        graph, [seed], alphas=(alpha,), epsilons=(epsilon,),
        max_pushes=max_pushes,
    )
    return batch.column(0)
