"""Truncated random walks (the Spielman–Teng "Nibble" core).

Section 3.3: "[39] performs truncated random walks ... at each step of the
algorithm various 'small' quantities are truncated to zero (or simply
maintained at zero), thereby minimizing the number of nodes that need to be
touched". This module implements that dynamics: lazy-walk steps interleaved
with a degree-normalized rounding step

    [q]_ε (u) = q(u)  if q(u) >= ε d(u),   else 0.

The rounding is exactly the implicit regularizer the paper discusses — it
biases the iterate toward sparse, low-volume support while keeping each step
O(support volume).

Every registered backend (see :mod:`repro.backends`) provides the spread
step under the same semantics (trajectory recording, support accounting,
dropped-mass bookkeeping): the default ``numpy`` step gathers the
support's CSR slices and scatters through one bincount, ``scalar`` is the
per-node Python parity oracle, and ``numba`` JIT-compiles the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import warn_deprecated
from repro._validation import (
    check_int,
    check_probability,
    check_vector,
)
from repro.backends import get_backend, resolve_backend_name
from repro.exceptions import InvalidParameterError


@dataclass
class TruncatedWalkResult:
    """Trajectory of a truncated lazy random walk.

    Attributes
    ----------
    final:
        Charge vector after the last step.
    trajectory:
        List of charge vectors, one per step (after rounding), beginning
        with the rounded seed.
    support_sizes:
        Number of nonzero entries per trajectory step.
    support_volumes:
        Volume (sum of degrees) of the support per step.
    dropped_mass:
        Total probability mass removed by rounding across all steps.
    """

    final: np.ndarray
    trajectory: list = field(default_factory=list)
    support_sizes: list = field(default_factory=list)
    support_volumes: list = field(default_factory=list)
    dropped_mass: float = 0.0


def truncated_lazy_walk(graph, seed_vector, num_steps, *, epsilon,
                        alpha=0.5, keep_trajectory=True, backend=None,
                        implementation=None):
    """Run ``num_steps`` of the truncated lazy random walk.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seed_vector:
        Nonnegative initial charge (typically an indicator distribution).
    num_steps:
        Number of walk steps.
    epsilon:
        Degree-normalized truncation threshold in (0, 1).
    alpha:
        Holding probability of the lazy walk.
    keep_trajectory:
        Record every intermediate vector (the sweep-cut driver needs them).
    backend:
        Registered backend name or :class:`~repro.backends.EngineBackend`
        providing the spread step; default ``"numpy"``. Every backend
        performs the same substochastic update restricted to the current
        support.
    implementation:
        Deprecated alias for ``backend`` (``"vectorized"`` -> ``"numpy"``).

    Returns
    -------
    TruncatedWalkResult

    Notes
    -----
    The update touches only the current support and its neighborhood, so the
    cost per step is proportional to the support volume, not to ``n``; the
    Spielman–Teng locality claim, verified in tests by work counting.
    """
    num_steps = check_int(num_steps, "num_steps", minimum=0)
    epsilon = check_probability(epsilon, "epsilon")
    alpha = check_probability(alpha, "alpha")
    if implementation is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass backend= or the deprecated implementation=, not both"
            )
        backend = resolve_backend_name(implementation)
        warn_deprecated(
            "truncated_lazy_walk(implementation=...)",
            "truncated_lazy_walk(backend=...)",
        )
    ops = get_backend("numpy" if backend is None else backend)
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    if np.any(seed < 0):
        raise InvalidParameterError("truncated walk needs a nonnegative seed")
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("truncated walk requires positive degrees")

    def rounded(vector):
        keep = vector >= epsilon * degrees
        dropped = float(vector[~keep].sum())
        out = np.where(keep, vector, 0.0)
        return out, dropped

    def step(charge, support):
        return ops.walk_step(graph, charge, support, alpha=alpha)

    charge, dropped_total = rounded(seed)
    result = TruncatedWalkResult(final=charge)
    result.dropped_mass = dropped_total

    def record(vector):
        support = np.flatnonzero(vector)
        if keep_trajectory:
            result.trajectory.append(vector.copy())
        result.support_sizes.append(int(support.size))
        result.support_volumes.append(float(degrees[support].sum()))
        return support

    support = record(charge)
    for _ in range(num_steps):
        charge, dropped = rounded(step(charge, support))
        result.dropped_mass += dropped
        support = record(charge)
    result.final = charge
    return result


def untruncated_lazy_walk(graph, seed_vector, num_steps, *, alpha=0.5):
    """Exact lazy walk reference (no rounding), for error measurements."""
    from repro.diffusion.lazy_walk import lazy_walk_vector

    return lazy_walk_vector(graph, seed_vector, num_steps, alpha=alpha)
