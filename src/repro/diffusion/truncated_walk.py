"""Truncated random walks (the Spielman–Teng "Nibble" core).

Section 3.3: "[39] performs truncated random walks ... at each step of the
algorithm various 'small' quantities are truncated to zero (or simply
maintained at zero), thereby minimizing the number of nodes that need to be
touched". This module implements that dynamics: lazy-walk steps interleaved
with a degree-normalized rounding step

    [q]_ε (u) = q(u)  if q(u) >= ε d(u),   else 0.

The rounding is exactly the implicit regularizer the paper discusses — it
biases the iterate toward sparse, low-volume support while keeping each step
O(support volume).

Two step implementations share the same semantics (trajectory recording,
support accounting, dropped-mass bookkeeping): the default ``"vectorized"``
step gathers the support's CSR slices and scatters through one bincount,
and the original ``"scalar"`` per-node Python loop is kept as the parity
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    check_int,
    check_probability,
    check_vector,
)
from repro.diffusion._csr import gather_csr_arcs
from repro.exceptions import InvalidParameterError

_IMPLEMENTATIONS = ("vectorized", "scalar")


@dataclass
class TruncatedWalkResult:
    """Trajectory of a truncated lazy random walk.

    Attributes
    ----------
    final:
        Charge vector after the last step.
    trajectory:
        List of charge vectors, one per step (after rounding), beginning
        with the rounded seed.
    support_sizes:
        Number of nonzero entries per trajectory step.
    support_volumes:
        Volume (sum of degrees) of the support per step.
    dropped_mass:
        Total probability mass removed by rounding across all steps.
    """

    final: np.ndarray
    trajectory: list = field(default_factory=list)
    support_sizes: list = field(default_factory=list)
    support_volumes: list = field(default_factory=list)
    dropped_mass: float = 0.0


def truncated_lazy_walk(graph, seed_vector, num_steps, *, epsilon,
                        alpha=0.5, keep_trajectory=True,
                        implementation="vectorized"):
    """Run ``num_steps`` of the truncated lazy random walk.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seed_vector:
        Nonnegative initial charge (typically an indicator distribution).
    num_steps:
        Number of walk steps.
    epsilon:
        Degree-normalized truncation threshold in (0, 1).
    alpha:
        Holding probability of the lazy walk.
    keep_trajectory:
        Record every intermediate vector (the sweep-cut driver needs them).
    implementation:
        ``"vectorized"`` (default) spreads charge with one CSR gather and
        bincount scatter per step; ``"scalar"`` is the per-node Python
        loop, kept as the parity oracle. Both perform the same
        substochastic update restricted to the current support.

    Returns
    -------
    TruncatedWalkResult

    Notes
    -----
    The update touches only the current support and its neighborhood, so the
    cost per step is proportional to the support volume, not to ``n``; the
    Spielman–Teng locality claim, verified in tests by work counting.
    """
    num_steps = check_int(num_steps, "num_steps", minimum=0)
    epsilon = check_probability(epsilon, "epsilon")
    alpha = check_probability(alpha, "alpha")
    if implementation not in _IMPLEMENTATIONS:
        raise InvalidParameterError(
            f"implementation must be one of {_IMPLEMENTATIONS}; "
            f"got {implementation!r}"
        )
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    if np.any(seed < 0):
        raise InvalidParameterError("truncated walk needs a nonnegative seed")
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("truncated walk requires positive degrees")
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    def rounded(vector):
        keep = vector >= epsilon * degrees
        dropped = float(vector[~keep].sum())
        out = np.where(keep, vector, 0.0)
        return out, dropped

    def step_scalar(charge, support):
        new_charge = alpha * charge
        for u in support:
            flow = (1.0 - alpha) * charge[u] / degrees[u]
            start, stop = indptr[u], indptr[u + 1]
            for k in range(start, stop):
                new_charge[indices[k]] += flow * weights[k]
        return new_charge

    def step_vectorized(charge, support):
        new_charge = alpha * charge
        if support.size:
            arc_positions, counts = gather_csr_arcs(indptr, support)
            flow = (1.0 - alpha) * charge[support] / degrees[support]
            new_charge += np.bincount(
                indices[arc_positions],
                weights=weights[arc_positions] * np.repeat(flow, counts),
                minlength=graph.num_nodes,
            )
        return new_charge

    step = step_vectorized if implementation == "vectorized" else step_scalar

    charge, dropped_total = rounded(seed)
    result = TruncatedWalkResult(final=charge)
    result.dropped_mass = dropped_total

    def record(vector):
        support = np.flatnonzero(vector)
        if keep_trajectory:
            result.trajectory.append(vector.copy())
        result.support_sizes.append(int(support.size))
        result.support_volumes.append(float(degrees[support].sum()))
        return support

    support = record(charge)
    for _ in range(num_steps):
        charge, dropped = rounded(step(charge, support))
        result.dropped_mass += dropped
        support = record(charge)
    result.final = charge
    return result


def untruncated_lazy_walk(graph, seed_vector, num_steps, *, alpha=0.5):
    """Exact lazy walk reference (no rounding), for error measurements."""
    from repro.diffusion.lazy_walk import lazy_walk_vector

    return lazy_walk_vector(graph, seed_vector, num_steps, alpha=alpha)
