"""Heat-kernel diffusion: ``H_t = exp(-t L)`` applied to a seed vector.

This is the first canonical dynamics of Section 3.1: "the charge evolves
according to the heat equation ∂H_t/∂t = −L H_t", i.e.
``H_t = Σ_k (−t)^k / k! · L^k`` times the seed.

Two Laplacian conventions are supported, because both appear in the paper's
orbit:

* ``kind="normalized"`` — ``exp(-t 𝓛)`` with 𝓛 the normalized Laplacian;
  this is the operator whose regularized-SDP characterization (Problem (5)
  with the generalized-entropy regularizer) experiment E4 verifies.
* ``kind="random_walk"`` — ``exp(-t (I - M))`` with ``M = A D^{-1}``; this
  version conserves probability mass and is the one local heat-kernel
  methods [15] diffuse. The two are similar matrices:
  ``exp(-t(I-M)) = D^{1/2} exp(-t 𝓛) D^{-1/2}``.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive, check_vector
from repro.exceptions import InvalidParameterError
from repro.graph.matrices import normalized_laplacian, random_walk_matrix
from repro.linalg.expm import expm_action_lanczos, expm_action_taylor


_KINDS = ("normalized", "random_walk")


def _heat_operator(graph, kind):
    if kind == "normalized":
        return normalized_laplacian(graph)
    if kind == "random_walk":
        from scipy import sparse

        n = graph.num_nodes
        return (sparse.identity(n, format="csr")
                - random_walk_matrix(graph)).tocsr()
    raise InvalidParameterError(
        f"kind must be one of {_KINDS}; got {kind!r}"
    )


def heat_kernel_vector(graph, seed_vector, t, *, kind="random_walk",
                       method="lanczos", tol=1e-12, num_terms=None):
    """Diffuse ``seed_vector`` for time ``t`` under the heat kernel.

    Parameters
    ----------
    graph:
        The graph (positive degrees required).
    seed_vector:
        Initial charge distribution.
    t:
        Diffusion time — the "aggressiveness" parameter of Section 3.1;
        ``t → ∞`` equilibrates to the trivial direction, small ``t`` stays
        near the seed.
    kind:
        Laplacian convention, see module docstring.
    method:
        ``"taylor"`` (the paper's series, truncated with an error bound) or
        ``"lanczos"`` (Krylov; default). ``kind="random_walk"`` is
        nonsymmetric, so Lanczos runs on the symmetrized operator via the
        similarity transform.
    tol:
        Series tolerance for the Taylor method.
    num_terms:
        Explicit Taylor truncation order (making the computation an
        aggressive approximation; used by E10).

    Returns
    -------
    numpy.ndarray
        ``exp(-t · Op) seed_vector``.
    """
    t = check_positive(t, "t", allow_zero=True)
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    if kind == "random_walk" and method == "lanczos":
        # Symmetrize through D^{1/2}: exp(-t(I-M)) = D^{1/2} e^{-t𝓛} D^{-1/2}.
        root = np.sqrt(graph.degrees)
        sym = normalized_laplacian(graph)
        inner = expm_action_lanczos(sym, seed / root, t)
        return root * inner
    operator = _heat_operator(graph, kind)
    if method == "lanczos":
        return expm_action_lanczos(operator, seed, t)
    if method == "taylor":
        return expm_action_taylor(
            operator, seed, t, spectral_bound=2.0, tol=tol,
            num_terms=num_terms,
        )
    raise InvalidParameterError(
        f"method must be 'taylor' or 'lanczos'; got {method!r}"
    )


def heat_kernel_matrix(graph, t, *, kind="normalized"):
    """Dense ``exp(-t · Op)`` (test oracle and SDP experiments; O(n^3)).

    The random-walk operator ``I − M`` is nonsymmetric; its exponential is
    computed through the similarity ``exp(-t(I-M)) = D^{1/2} e^{-t𝓛}
    D^{-1/2}`` rather than by (incorrectly) symmetrizing it.
    """
    from repro.linalg.expm import heat_kernel_dense

    t = check_positive(t, "t", allow_zero=True)
    if kind == "random_walk":
        root = np.sqrt(graph.degrees)
        sym = heat_kernel_dense(normalized_laplacian(graph), t)
        return (root[:, None] * sym) / root[None, :]
    return heat_kernel_dense(_heat_operator(graph, kind), t)


def heat_kernel_profile(graph, seed_vector, times, *, kind="random_walk"):
    """Evaluate the diffusion at several times (one Lanczos space per time).

    Returns an ``(len(times), n)`` array; row ``i`` is the charge at
    ``times[i]``. Used to trace the regularization path in ``t``.
    """
    rows = [
        heat_kernel_vector(graph, seed_vector, t, kind=kind) for t in times
    ]
    return np.stack(rows, axis=0)
