"""The paper's three canonical diffusion dynamics and their strongly local
approximations: heat kernel, PageRank, lazy random walk; ACL push,
Spielman–Teng truncated walks, heat-kernel push."""

from repro.diffusion.engine import (
    BatchHeatKernelResult,
    BatchPushResult,
    batch_hk_push,
    batch_ppr_push,
    gather_csr_arcs,
    ppr_push_frontier,
)
from repro.diffusion.heat_kernel import (
    heat_kernel_matrix,
    heat_kernel_profile,
    heat_kernel_vector,
)
from repro.diffusion.hk_push import (
    SERIES_T_MAX,
    HeatKernelPushResult,
    heat_kernel_push,
    poisson_tail,
    terms_for_tail,
)
from repro.diffusion.lazy_walk import (
    lazy_walk_matrix_power_dense,
    lazy_walk_trajectory,
    lazy_walk_vector,
    mixing_time,
)
from repro.diffusion.pagerank import (
    global_pagerank,
    lazy_equivalent_gamma,
    lazy_pagerank_exact,
    pagerank_exact,
    pagerank_operator,
    pagerank_power,
    pagerank_resolvent_dense,
)
from repro.diffusion.push import (
    PushResult,
    approximate_ppr_push,
    push_invariant_residual,
)
from repro.diffusion.seeds import (
    degree_seed,
    degree_weighted_indicator_seed,
    indicator_seed,
    random_sign_seed,
    random_unit_seed,
    uniform_seed,
)
from repro.diffusion.truncated_walk import (
    TruncatedWalkResult,
    truncated_lazy_walk,
    untruncated_lazy_walk,
)

__all__ = [
    "BatchHeatKernelResult",
    "BatchPushResult",
    "HeatKernelPushResult",
    "PushResult",
    "SERIES_T_MAX",
    "TruncatedWalkResult",
    "approximate_ppr_push",
    "batch_hk_push",
    "batch_ppr_push",
    "gather_csr_arcs",
    "degree_seed",
    "degree_weighted_indicator_seed",
    "global_pagerank",
    "heat_kernel_matrix",
    "heat_kernel_profile",
    "heat_kernel_push",
    "heat_kernel_vector",
    "indicator_seed",
    "lazy_equivalent_gamma",
    "lazy_pagerank_exact",
    "lazy_walk_matrix_power_dense",
    "lazy_walk_trajectory",
    "lazy_walk_vector",
    "mixing_time",
    "pagerank_exact",
    "pagerank_operator",
    "pagerank_power",
    "pagerank_resolvent_dense",
    "poisson_tail",
    "ppr_push_frontier",
    "push_invariant_residual",
    "random_sign_seed",
    "random_unit_seed",
    "terms_for_tail",
    "truncated_lazy_walk",
    "uniform_seed",
    "untruncated_lazy_walk",
]
