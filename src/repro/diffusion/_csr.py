"""Shared CSR gather helpers for the vectorized diffusion kernels.

Kept in a leaf module so the batched engine, the scalar heat-kernel push,
the truncated walk, and the sweep scan can all import the same gather
without creating import cycles between them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_csr_arcs"]


def gather_csr_arcs(indptr, rows):
    """Flat CSR positions of every arc leaving ``rows``.

    Returns ``(arc_positions, counts)`` where ``arc_positions`` indexes
    ``indices``/``weights`` and ``counts[i]`` is the out-degree count of
    ``rows[i]``; arcs appear grouped by row, in CSR order. Shared by the
    push engine, the heat-kernel stages, the truncated walk, and the
    vectorized sweep scan.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    arc_positions = np.repeat(starts - offsets, counts) + np.arange(total)
    return arc_positions, counts
