"""The ACL push algorithm for approximate personalized PageRank.

Section 3.3 of the paper: "[1] uses the so-called push algorithm [24, 10] to
concentrate computational effort on that part of the vector where most of the
nonnegligible changes will take place", and "the running time depends on the
size of the output and is independent even of the number of nodes in the
graph". This module implements that algorithm (Andersen–Chung–Lang, FOCS'06)
with full work accounting, so experiment E8 can verify the strong-locality
claim quantitatively.

Algorithm (lazy-walk convention, ``W = (I + A D^{-1}) / 2``):

maintain an approximation ``p`` and residual ``r`` with the *push invariant*

    p + pr_α(r) = pr_α(s),        pr_α(s) = α (I − (1−α) W)^{-1} s.

Start from ``p = 0, r = s``. While some node ``u`` has ``r_u ≥ ε d_u``::

    p_u += α r_u
    r_v += (1−α) r_u w_uv / (2 d_u)   for each neighbor v
    r_u  = (1−α) r_u / 2

On exit ``r_u < ε d_u`` everywhere, which gives the entrywise guarantee
``|p_u − pr_α(s)_u| ≤ ε d_u``. The total work is ``O(1 / (ε α))``
independent of ``n`` — the truncation threshold ε is simultaneously the
locality knob and the implicit regularization parameter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._validation import check_probability, check_vector
from repro.exceptions import InvalidParameterError


@dataclass
class PushResult:
    """Output of the ACL push algorithm.

    Attributes
    ----------
    approximation:
        The vector ``p`` (entrywise underestimate of the exact PPR).
    residual:
        The final residual ``r`` (satisfies ``r_u < ε d_u``).
    num_pushes:
        Number of push operations executed.
    work:
        ``Σ_pushes (1 + deg(u))`` — total edge work, the quantity whose
        independence of ``n`` experiment E8 measures.
    touched:
        Sorted array of nodes with nonzero ``p`` or ``r``.
    epsilon:
        The threshold used.
    alpha:
        The teleport parameter used.
    """

    approximation: np.ndarray
    residual: np.ndarray
    num_pushes: int
    work: int
    touched: np.ndarray
    epsilon: float
    alpha: float


def approximate_ppr_push(graph, seed_vector, *, alpha=0.15, epsilon=1e-4,
                         max_pushes=None):
    """Run ACL push to approximate the lazy personalized PageRank.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seed_vector:
        Nonnegative seed vector (typically an indicator distribution).
    alpha:
        Teleport probability in (0, 1).
    epsilon:
        Degree-normalized truncation threshold; smaller ε means a more
        accurate, less local, less regularized answer.
    max_pushes:
        Optional safety cap; the algorithm provably needs at most
        ``||s||_1 / (ε α)`` pushes, so the default cap is that bound.

    Returns
    -------
    PushResult

    Raises
    ------
    InvalidParameterError
        On negative seeds or nonpositive degrees.
    """
    alpha = check_probability(alpha, "alpha")
    epsilon = check_probability(epsilon, "epsilon")
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    if np.any(seed < 0):
        raise InvalidParameterError("push requires a nonnegative seed vector")
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("push requires positive degrees")
    seed_mass = float(seed.sum())
    if max_pushes is None:
        # The provable bound controls pushed *volume*: eps a Sum d_u <=
        # ||s||_1. That caps the push count at ||s||_1 / (eps a d_min);
        # the floor at 1 keeps the classic count bound on graphs with
        # unit-or-larger degrees while staying valid for sub-unit
        # weighted degrees.
        degree_floor = min(1.0, float(degrees.min()))
        max_pushes = int(
            np.ceil(seed_mass / (epsilon * alpha * degree_floor))
        ) + 8

    n = graph.num_nodes
    p = np.zeros(n)
    r = seed.copy()
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    queue = deque(int(u) for u in np.flatnonzero(r >= epsilon * degrees))
    in_queue = np.zeros(n, dtype=bool)
    in_queue[list(queue)] = True

    num_pushes = 0
    work = 0
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        ru = r[u]
        du = degrees[u]
        if ru < epsilon * du:
            continue
        if num_pushes >= max_pushes:
            raise InvalidParameterError(
                f"push exceeded max_pushes={max_pushes}; epsilon too small?"
            )
        num_pushes += 1
        p[u] += alpha * ru
        share = (1.0 - alpha) * ru / (2.0 * du)
        start, stop = indptr[u], indptr[u + 1]
        work += 1 + (stop - start)
        for k in range(start, stop):
            v = int(indices[k])
            r[v] += share * weights[k]
            if not in_queue[v] and r[v] >= epsilon * degrees[v]:
                queue.append(v)
                in_queue[v] = True
        r[u] = (1.0 - alpha) * ru / 2.0
        if r[u] >= epsilon * du:
            queue.append(u)
            in_queue[u] = True
    touched = np.flatnonzero((p > 0) | (r > 0))
    return PushResult(
        approximation=p,
        residual=r,
        num_pushes=num_pushes,
        work=int(work),
        touched=touched,
        epsilon=epsilon,
        alpha=alpha,
    )


def push_invariant_residual(graph, result, seed_vector):
    """Measure violation of the push invariant ``p + pr_α(r) = pr_α(s)``.

    Computes both sides with the exact lazy resolvent and returns the
    infinity norm of the difference. This should be at solver tolerance for
    any ε — the invariant holds *exactly* throughout the algorithm, which is
    why push output is interpretable as the exact solution of a perturbed
    problem (a backward-error statement in the sense of Section 2.2).
    """
    from repro.diffusion.pagerank import lazy_pagerank_exact

    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    lhs = result.approximation + lazy_pagerank_exact(
        graph, result.alpha, result.residual
    )
    rhs = lazy_pagerank_exact(graph, result.alpha, seed)
    return float(np.abs(lhs - rhs).max())
