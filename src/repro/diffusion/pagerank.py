"""PageRank diffusion: the resolvent ``R_γ = γ (I − (1−γ) M)^{−1}``.

This is the second canonical dynamics of Section 3.1 (Equation (2) of the
paper): "the charge evolves by either moving to a neighbor of the current
node or teleporting to a random node", with teleportation parameter
``γ ∈ (0, 1)`` and ``M = A D^{-1}`` the natural random-walk matrix.

Three computational routes, in increasing "approximateness":

* :func:`pagerank_exact` — solve the linear system through its SPD
  symmetrization (CG);
* :func:`pagerank_power` — the Power Method / Richardson iteration that the
  paper credits with Web-scale PageRank [7], with optional early stopping;
* the push algorithm lives in :mod:`repro.diffusion.push` (strongly local).

A lazy variant (walk matrix ``W_α = (I + M)/2``) is also provided because the
ACL push algorithm's guarantee is stated for lazy walks; the two resolvents
are related by a reparameterization of the teleport parameter implemented in
:func:`lazy_equivalent_gamma`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro._validation import check_int, check_probability, check_vector
from repro.exceptions import InvalidParameterError
from repro.graph.matrices import normalized_laplacian, random_walk_matrix
from repro.linalg.solvers import conjugate_gradient


def pagerank_operator(graph, gamma):
    """The sparse matrix ``I − (1−γ) M`` whose inverse defines ``R_γ``."""
    gamma = check_probability(gamma, "gamma")
    n = graph.num_nodes
    return (
        sparse.identity(n, format="csr")
        - (1.0 - gamma) * random_walk_matrix(graph)
    ).tocsr()


def pagerank_exact(graph, gamma, seed_vector, *, tol=1e-12):
    """Solve ``(I − (1−γ) M) x = γ s`` exactly (to solver tolerance).

    Uses the similarity ``I − (1−γ)M = D^{1/2} (γ I + (1−γ) 𝓛) D^{-1/2}`` to
    reduce to an SPD system solved by conjugate gradients; the system matrix
    ``γ I + (1−γ) 𝓛`` has spectrum in ``[γ, γ + 2(1−γ)]`` so CG converges
    fast for moderate γ.
    """
    gamma = check_probability(gamma, "gamma")
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    root = np.sqrt(graph.degrees)
    if np.any(root <= 0):
        raise InvalidParameterError("pagerank requires positive degrees")
    sym = (
        gamma * sparse.identity(graph.num_nodes, format="csr")
        + (1.0 - gamma) * normalized_laplacian(graph)
    ).tocsr()
    rhs = gamma * (seed / root)
    result = conjugate_gradient(sym, rhs, tol=tol, max_iterations=100_000)
    return root * result.solution


def pagerank_power(graph, gamma, seed_vector, *, num_iterations=None,
                   tol=1e-10, max_iterations=100_000):
    """PageRank by the power iteration ``x ← γ s + (1−γ) M x``.

    Parameters
    ----------
    num_iterations:
        When given, run exactly this many iterations — *early stopping*; the
        result is then the γ-weighted truncated Neumann series
        ``γ Σ_{k<=K} (1−γ)^k M^k s``, an approximation whose bias is the
        implicit regularization studied in E10.
    tol, max_iterations:
        Convergence control when ``num_iterations`` is omitted.

    Returns
    -------
    vector:
        The (approximate) PageRank vector.
    iterations:
        Iterations performed.
    """
    gamma = check_probability(gamma, "gamma")
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    walk = random_walk_matrix(graph)
    x = gamma * seed
    if num_iterations is not None:
        num_iterations = check_int(num_iterations, "num_iterations", minimum=0)
        for _ in range(num_iterations):
            x = gamma * seed + (1.0 - gamma) * (walk @ x)
        return x, num_iterations
    iterations = 0
    for iterations in range(1, check_int(max_iterations, "max_iterations",
                                         minimum=1) + 1):
        new_x = gamma * seed + (1.0 - gamma) * (walk @ x)
        if float(np.abs(new_x - x).sum()) <= tol:
            x = new_x
            break
        x = new_x
    return x, iterations


def lazy_pagerank_exact(graph, alpha, seed_vector, *, tol=1e-12):
    """Lazy-walk personalized PageRank ``α (I − (1−α) W)^{-1} s``.

    ``W = (I + M)/2`` is the half-lazy walk; this is the resolvent the ACL
    push algorithm approximates, so it is the oracle for push tests.
    """
    alpha = check_probability(alpha, "alpha")
    gamma = lazy_equivalent_gamma(alpha)
    # α(I-(1-α)W)^{-1} with W=(I+M)/2 equals γ(I-(1-γ)M)^{-1} for
    # γ = 2α/(1+α): both equal c(βI - M)^{-1} with matching β after scaling.
    return pagerank_exact(graph, gamma, seed_vector, tol=tol)


def lazy_equivalent_gamma(alpha):
    """Teleport parameter γ with ``R^lazy_α = R_γ``: ``γ = 2α / (1 + α)``.

    Derivation: ``I − (1−α)(I+M)/2 = ((1+α)/2)(I − ((1−α)/(1+α)) M)``, so
    the lazy resolvent equals the non-lazy resolvent with
    ``1 − γ = (1−α)/(1+α)``.
    """
    alpha = check_probability(alpha, "alpha")
    return 2.0 * alpha / (1.0 + alpha)


def global_pagerank(graph, gamma, *, tol=1e-12):
    """Classical (non-personalized) PageRank: seed = uniform distribution."""
    n = graph.num_nodes
    if n == 0:
        raise InvalidParameterError("pagerank of an empty graph")
    return pagerank_exact(graph, gamma, np.full(n, 1.0 / n), tol=tol)


def pagerank_resolvent_dense(graph, gamma):
    """Dense ``R_γ = γ (I − (1−γ) M)^{-1}`` (test oracle / SDP experiments)."""
    gamma = check_probability(gamma, "gamma")
    op = pagerank_operator(graph, gamma).toarray()
    return gamma * np.linalg.inv(op)
