"""Lazy random-walk diffusion: powers of ``W_α = α I + (1 − α) M``.

The third canonical dynamics of Section 3.1: "the charge either stays at the
current node or moves to a neighbor", with holding probability ``α``. The
number of steps ``k`` is the aggressiveness parameter: ``k → ∞`` converges to
the stationary distribution (for connected non-bipartite dynamics — laziness
removes periodicity), small ``k`` keeps charge near the seed.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_int, check_probability, check_vector
from repro.graph.matrices import lazy_walk_matrix


def lazy_walk_vector(graph, seed_vector, num_steps, *, alpha=0.5):
    """Apply ``W_α^k`` to the seed: ``k`` steps of the lazy random walk."""
    num_steps = check_int(num_steps, "num_steps", minimum=0)
    alpha = check_probability(alpha, "alpha")
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    walk = lazy_walk_matrix(graph, alpha)
    charge = seed.copy()
    for _ in range(num_steps):
        charge = walk @ charge
    return charge


def lazy_walk_trajectory(graph, seed_vector, num_steps, *, alpha=0.5):
    """All intermediate charge vectors; row ``k`` is ``W_α^k s``.

    Returns an ``(num_steps + 1, n)`` array, including the seed itself as
    row 0. The trajectory is the regularization path of experiment E6: the
    step count plays the role of the regularization parameter.
    """
    num_steps = check_int(num_steps, "num_steps", minimum=0)
    alpha = check_probability(alpha, "alpha")
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    walk = lazy_walk_matrix(graph, alpha)
    rows = np.empty((num_steps + 1, graph.num_nodes))
    rows[0] = seed
    for k in range(1, num_steps + 1):
        rows[k] = walk @ rows[k - 1]
    return rows


def lazy_walk_matrix_power_dense(graph, num_steps, *, alpha=0.5):
    """Dense ``W_α^k`` (test oracle / SDP experiments; O(k n^3) worst case)."""
    num_steps = check_int(num_steps, "num_steps", minimum=0)
    walk = lazy_walk_matrix(graph, alpha).toarray()
    return np.linalg.matrix_power(walk, num_steps)


def mixing_time(graph, *, alpha=0.5, tolerance=0.25, max_steps=100_000,
                seed_node=None):
    """Steps for the lazy walk from a worst-start to mix to total-variation
    ``tolerance`` from stationarity.

    With ``seed_node`` given, measures mixing from that start only (cheaper).
    Used to calibrate "aggressiveness" parameters across the three dynamics.

    Raises
    ------
    ConvergenceError
        When some start is still farther than ``tolerance`` from
        stationarity after ``max_steps`` steps, carrying the final
        total-variation distance as ``residual``. (Returning ``max_steps``
        would silently misreport a non-mixed walk as mixed.)
    """
    from repro.diffusion.seeds import degree_seed, indicator_seed
    from repro.exceptions import ConvergenceError

    stationary = degree_seed(graph)
    starts = (
        [seed_node]
        if seed_node is not None
        else [int(np.argmin(graph.degrees)), int(np.argmax(graph.degrees))]
    )
    walk = lazy_walk_matrix(graph, alpha)
    worst = 0
    for start in starts:
        charge = indicator_seed(graph, [start])
        steps = 0
        while True:
            tv = 0.5 * float(np.abs(charge - stationary).sum())
            if tv <= tolerance:
                break
            if steps >= max_steps:
                raise ConvergenceError(
                    f"lazy walk from node {start} did not mix to "
                    f"total-variation {tolerance} within {max_steps} steps "
                    f"(reached {tv:.3g})",
                    iterations=steps,
                    residual=tv,
                )
            charge = walk @ charge
            steps += 1
        worst = max(worst, steps)
    return worst
