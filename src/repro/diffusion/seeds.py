"""Seed (initial charge) distributions for diffusion dynamics.

Section 3.1: "In each of these cases, there is an input 'seed' distribution
vector". Footnote 16 spells out the two regimes this module serves:

* global spectral partitioning — a random unit vector or random ±1 vector
  (orthogonal to the trivial direction), so the diffusion reveals the
  slowest-mixing global direction;
* local spectral partitioning — the indicator vector of a small seed set,
  so the truncated diffusion stays near the seeds.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_node
from repro.exceptions import InvalidParameterError


def indicator_seed(graph, nodes):
    """Probability mass split uniformly over a seed set (sums to 1)."""
    node_list = [check_node(v, graph.num_nodes, "seed node") for v in
                 np.atleast_1d(np.asarray(nodes, dtype=np.int64))]
    if not node_list:
        raise InvalidParameterError("seed set must be nonempty")
    seed = np.zeros(graph.num_nodes)
    seed[node_list] = 1.0 / len(node_list)
    return seed


def degree_seed(graph):
    """Stationary distribution of the natural random walk: ``d / vol(V)``."""
    volume = graph.total_volume
    if volume <= 0:
        raise InvalidParameterError("degree seed needs positive total volume")
    return graph.degrees / volume


def degree_weighted_indicator_seed(graph, nodes):
    """Seed proportional to degree on the seed set: ``d_u / vol(S)`` on S.

    This is the seed used by local-partitioning theory (e.g. ACL), for which
    the stationary distribution restricted to S is the natural start.
    """
    node_list = [check_node(v, graph.num_nodes, "seed node") for v in
                 np.atleast_1d(np.asarray(nodes, dtype=np.int64))]
    if not node_list:
        raise InvalidParameterError("seed set must be nonempty")
    seed = np.zeros(graph.num_nodes)
    degrees = graph.degrees[node_list]
    total = float(degrees.sum())
    if total <= 0:
        raise InvalidParameterError("seed set has zero volume")
    seed[node_list] = degrees / total
    return seed


def uniform_seed(graph):
    """Uniform probability vector ``1/n``."""
    n = graph.num_nodes
    if n == 0:
        raise InvalidParameterError("uniform seed of an empty graph")
    return np.full(n, 1.0 / n)


def random_unit_seed(graph, seed=None, *, orthogonal_to_trivial=True):
    """Random unit vector, optionally orthogonal to ``D^{1/2} 1``.

    The global-partitioning seed of footnote 16: a random direction whose
    diffusion converges to the Fiedler direction once the trivial component
    is removed.
    """
    rng = as_rng(seed)
    vector = rng.standard_normal(graph.num_nodes)
    if orthogonal_to_trivial:
        trivial = np.sqrt(graph.degrees)
        trivial = trivial / np.linalg.norm(trivial)
        vector -= (trivial @ vector) * trivial
    norm = np.linalg.norm(vector)
    if norm == 0:
        raise InvalidParameterError("degenerate random seed (zero vector)")
    return vector / norm


def random_sign_seed(graph, seed=None):
    """Random ±1 vector scaled to unit norm (footnote 16's other option)."""
    rng = as_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=graph.num_nodes)
    return signs / np.sqrt(graph.num_nodes)
