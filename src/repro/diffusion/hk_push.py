"""Strongly local heat-kernel diffusion (truncated-Taylor push, after [15]).

Section 3.3 cites Chung's heat-kernel PageRank [15] as the third strongly
local procedure ("runs a modified heat kernel procedure"). We implement the
truncated-Taylor variant: the random-walk heat kernel

    h_t(s) = exp(-t (I − M)) s = e^{-t} Σ_{k≥0} (t^k / k!) M^k s

is evaluated stage by stage, with each stage's vector rounded by the same
degree-normalized rule the other local methods use. Rounding keeps every
stage supported near the seed, so the cost depends on the support volume —
not on ``n`` — at the price of a bias toward the seed: the implicit
regularization of Section 3.3.

Error accounting: dropping mass ``δ_k`` at stage ``k`` perturbs the final
answer by at most ``Σ_k δ_k`` in ℓ1 (each later stage is a substochastic
image of the dropped mass), and truncating the series at ``N`` terms adds the
Poisson tail ``Σ_{k>N} e^{-t} t^k / k!``. Both are returned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._validation import (
    check_int,
    check_positive,
    check_probability,
    check_vector,
)
from repro.diffusion._csr import gather_csr_arcs
from repro.exceptions import InvalidParameterError


@dataclass
class HeatKernelPushResult:
    """Output of the truncated-Taylor heat-kernel approximation.

    Attributes
    ----------
    approximation:
        Approximate ``exp(-t (I − M)) s``.
    t:
        Diffusion time.
    num_terms:
        Taylor stages evaluated.
    dropped_mass:
        Total ℓ1 mass removed by rounding (an upper bound on the rounding
        error of the final vector).
    tail_bound:
        Poisson tail mass of the untruncated series beyond ``num_terms``.
    touched:
        Sorted array of nodes ever assigned nonzero charge.
    work:
        Total edge traversals performed.
    """

    approximation: np.ndarray
    t: float
    num_terms: int
    dropped_mass: float
    tail_bound: float
    touched: np.ndarray
    work: int


def poisson_tail(t, num_terms):
    """Tail mass ``Σ_{k > num_terms} e^{-t} t^k / k!`` of Poisson(t)."""
    t = check_positive(t, "t", allow_zero=True)
    num_terms = check_int(num_terms, "num_terms", minimum=0)
    term = math.exp(-t)
    cumulative = term
    for k in range(1, num_terms + 1):
        term *= t / k
        cumulative += term
    return max(0.0, 1.0 - cumulative)


# Beyond this diffusion time ``math.exp(-t)`` is subnormal (or zero), so
# the incremental Taylor recurrence ``term *= t / k`` loses all precision
# and the partial sums can never reach ``1 - tol``. Reject such ``t``
# upfront instead of spinning through the iteration cap.
SERIES_T_MAX = 700.0


def _check_series_time(t):
    """Reject diffusion times past the float64 series-truncation boundary."""
    if t > SERIES_T_MAX:
        raise InvalidParameterError(
            f"t={t!r} exceeds the series-truncation boundary "
            f"t <= {SERIES_T_MAX}: exp(-t) underflows float64, so the "
            "truncated-Taylor heat kernel cannot be evaluated"
        )
    return t


def terms_for_tail(t, tol):
    """Smallest ``N`` with Poisson tail beyond ``N`` at most ``tol``."""
    t = check_positive(t, "t", allow_zero=True)
    tol = check_positive(tol, "tol")
    _check_series_time(t)
    term = math.exp(-t)
    cumulative = term
    k = 0
    while 1.0 - cumulative > tol:
        k += 1
        term *= t / k
        cumulative += term
        if k > 100_000:
            raise InvalidParameterError("t too large for series evaluation")
    return max(k, 1)


def heat_kernel_push(graph, seed_vector, t, *, epsilon=1e-4, num_terms=None,
                     tail_tol=1e-6):
    """Strongly local approximation to ``exp(-t (I − M)) s``.

    Parameters
    ----------
    graph:
        Graph with positive degrees.
    seed_vector:
        Nonnegative seed (typically an indicator distribution).
    t:
        Diffusion time.
    epsilon:
        Degree-normalized rounding threshold applied to every Taylor stage.
    num_terms:
        Taylor truncation order; chosen from ``tail_tol`` when omitted.
    tail_tol:
        Target Poisson tail when ``num_terms`` is omitted.

    Returns
    -------
    HeatKernelPushResult
    """
    t = check_positive(t, "t", allow_zero=True)
    _check_series_time(t)
    epsilon = check_probability(epsilon, "epsilon")
    seed = check_vector(seed_vector, graph.num_nodes, "seed_vector")
    if np.any(seed < 0):
        raise InvalidParameterError("heat-kernel push needs nonnegative seed")
    degrees = graph.degrees
    if np.any(degrees <= 0):
        raise InvalidParameterError("heat-kernel push needs positive degrees")
    if num_terms is None:
        num_terms = terms_for_tail(t, tail_tol)
    num_terms = check_int(num_terms, "num_terms", minimum=1)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    dropped = 0.0
    work = 0
    touched_mask = np.zeros(graph.num_nodes, dtype=bool)

    def rounded(vector):
        nonlocal dropped
        keep = vector >= epsilon * degrees
        dropped += float(vector[~keep & (vector > 0)].sum())
        return np.where(keep, vector, 0.0)

    stage = rounded(seed.copy())
    touched_mask |= stage > 0
    weight = math.exp(-t)
    accumulated = weight * stage
    for k in range(1, num_terms + 1):
        # One substochastic walk step M stage, restricted to the current
        # support: gather the support's CSR slices and scatter through a
        # bincount instead of a per-node Python loop.
        support = np.flatnonzero(stage)
        if support.size:
            arc_positions, counts = gather_csr_arcs(indptr, support)
            work += int((1 + counts).sum())
            flow = stage[support] / degrees[support]
            new_stage = np.bincount(
                indices[arc_positions],
                weights=weights[arc_positions]
                * np.repeat(flow, counts),
                minlength=graph.num_nodes,
            )
        else:
            new_stage = np.zeros_like(stage)
        stage = rounded(new_stage)
        touched_mask |= stage > 0
        weight *= t / k
        accumulated += weight * stage
    return HeatKernelPushResult(
        approximation=accumulated,
        t=t,
        num_terms=num_terms,
        dropped_mass=dropped,
        tail_bound=poisson_tail(t, num_terms),
        touched=np.flatnonzero(touched_mask),
        work=int(work),
    )
