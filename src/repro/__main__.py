"""Module entry point: ``python -m repro`` runs the workbench CLI."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
