"""Lanczos tridiagonalization and Ritz-value eigensolvers.

Footnote 15 of the paper notes that the "more sophisticated eigenvalue
algorithms" used in practice — Lanczos in particular — "can often be viewed
as variations" of the Power Method that "look at a subspace of vectors
generated during the iteration". This module provides that variation: a
symmetric Lanczos process with optional full reorthogonalization, plus
helpers to extract extreme eigenpairs.

The only dense-eigenvalue primitive used is the tridiagonal solver
(:func:`scipy.linalg.eigh_tridiagonal`), i.e. the part of the computation
whose cost is independent of the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import eigh_tridiagonal

from repro._validation import as_rng, check_int
from repro.exceptions import InvalidParameterError
from repro.linalg.power import _as_matvec, _project_out


@dataclass
class LanczosDecomposition:
    """Partial tridiagonalization ``A V ≈ V T + β_k v_{k+1} e_k^T``.

    Attributes
    ----------
    alphas:
        Diagonal of the tridiagonal matrix ``T`` (length ``k``).
    betas:
        Off-diagonal of ``T`` (length ``k - 1``).
    basis:
        ``(n, k)`` orthonormal Lanczos basis ``V``.
    breakdown:
        True when the process terminated early because the Krylov space
        became invariant (beta underflow).
    """

    alphas: np.ndarray
    betas: np.ndarray
    basis: np.ndarray
    breakdown: bool

    @property
    def num_steps(self):
        return self.alphas.size

    def ritz_pairs(self):
        """All Ritz values and Ritz vectors of the current decomposition."""
        if self.num_steps == 0:
            raise InvalidParameterError("empty Lanczos decomposition")
        values, vectors = eigh_tridiagonal(self.alphas, self.betas)
        return values, self.basis @ vectors


def lanczos(
    operator,
    n,
    num_steps,
    *,
    v0=None,
    deflate=(),
    reorthogonalize=True,
    seed=None,
    breakdown_tol=1e-10,
):
    """Run ``num_steps`` of the symmetric Lanczos process.

    Parameters
    ----------
    operator:
        Symmetric matrix or matvec callable.
    n:
        Dimension.
    num_steps:
        Maximum Krylov dimension ``k`` (capped at ``n``).
    v0:
        Starting vector; random when omitted.
    deflate:
        Unit vectors projected out of every basis vector (exact invariant
        subspaces such as the trivial Laplacian eigenvector).
    reorthogonalize:
        Apply full reorthogonalization against the accumulated basis. Without
        it, finite precision re-introduces converged Ritz directions — the
        classic Lanczos instability (see Section 2.2's discussion of roundoff
        as a noise source).
    seed:
        RNG seed for the random start.
    breakdown_tol:
        β threshold below which the Krylov space is declared invariant.

    Returns
    -------
    LanczosDecomposition
    """
    n = check_int(n, "n", minimum=1)
    num_steps = min(check_int(num_steps, "num_steps", minimum=1), n)
    matvec = _as_matvec(operator)
    deflate = [np.asarray(b, dtype=float) for b in deflate]
    rng = as_rng(seed)
    if v0 is None:
        vector = rng.standard_normal(n)
    else:
        vector = np.array(v0, dtype=float)
        if vector.shape != (n,):
            raise InvalidParameterError(f"v0 must have shape ({n},)")
    vector = _project_out(vector, deflate)
    norm = np.linalg.norm(vector)
    if norm == 0:
        raise InvalidParameterError(
            "starting vector lies entirely in the deflated subspace"
        )
    vector /= norm

    basis = np.zeros((n, num_steps))
    alphas = np.zeros(num_steps)
    betas = np.zeros(max(num_steps - 1, 0))
    previous = np.zeros(n)
    beta = 0.0
    breakdown = False
    steps_done = 0
    for step in range(num_steps):
        basis[:, step] = vector
        steps_done = step + 1
        image = np.asarray(matvec(vector), dtype=float)
        image = _project_out(image, deflate)
        alpha = float(vector @ image)
        alphas[step] = alpha
        image = image - alpha * vector - beta * previous
        if reorthogonalize:
            # Two passes of classical Gram–Schmidt against the full basis.
            for _ in range(2):
                image -= basis[:, : step + 1] @ (basis[:, : step + 1].T @ image)
        # Roundoff can reintroduce the deflated directions exactly when the
        # genuine residual is small (near breakdown); project them out again
        # so the normalized next vector cannot be dominated by them.
        image = _project_out(image, deflate)
        beta = float(np.linalg.norm(image))
        if step + 1 < num_steps:
            if beta < breakdown_tol:
                breakdown = True
                break
            betas[step] = beta
            previous = vector
            vector = image / beta
    return LanczosDecomposition(
        alphas=alphas[:steps_done],
        betas=betas[: max(steps_done - 1, 0)],
        basis=basis[:, :steps_done],
        breakdown=breakdown,
    )


def lanczos_extreme_eigenpairs(
    operator,
    n,
    k=1,
    *,
    which="smallest",
    num_steps=None,
    deflate=(),
    seed=None,
):
    """Extreme eigenpairs of a symmetric operator via Lanczos.

    Parameters
    ----------
    operator, n:
        As in :func:`lanczos`.
    k:
        Number of eigenpairs to return.
    which:
        ``"smallest"`` or ``"largest"``.
    num_steps:
        Krylov dimension; defaults to ``min(n, max(4 k + 30, 2 k))``.
    deflate, seed:
        As in :func:`lanczos`.

    Returns
    -------
    values:
        ``(k,)`` eigenvalue estimates, sorted ascending.
    vectors:
        ``(n, k)`` unit-norm eigenvector estimates.
    """
    k = check_int(k, "k", minimum=1)
    if which not in ("smallest", "largest"):
        raise InvalidParameterError(
            f"which must be 'smallest' or 'largest'; got {which!r}"
        )
    if num_steps is None:
        num_steps = min(n, max(4 * k + 30, 2 * k))
    decomposition = lanczos(
        operator, n, num_steps, deflate=deflate, seed=seed
    )
    values, vectors = decomposition.ritz_pairs()
    if k > values.size:
        raise InvalidParameterError(
            f"requested {k} eigenpairs but Krylov space has dimension "
            f"{values.size}"
        )
    if which == "smallest":
        chosen = slice(0, k)
    else:
        chosen = slice(values.size - k, values.size)
    picked_values = values[chosen]
    picked_vectors = vectors[:, chosen]
    # Normalize columns (Ritz vectors are orthonormal up to roundoff).
    picked_vectors = picked_vectors / np.linalg.norm(picked_vectors, axis=0)
    return picked_values.copy(), picked_vectors
