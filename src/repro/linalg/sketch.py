"""Randomized sketching for matrix problems (RandNLA).

Section 2.3 of the paper observes that "empirically similar regularization
effects are observed when randomization is included inside the algorithm,
e.g., as with randomized algorithms for matrix problems such as low-rank
matrix approximation and least-squares approximation [30]". This module
supplies those randomized primitives from scratch so that experiment E11 can
measure the implicit-regularization effect of sketch-and-solve least squares:

* :func:`gaussian_sketch` — dense Gaussian sketching matrix;
* :func:`sparse_sign_sketch` — CountSketch-style sparse embedding;
* :func:`srdt_sketch` — subsampled randomized discrete cosine transform
  (an SRHT variant that works for any ``n``);
* :func:`sketched_least_squares` — sketch-and-solve;
* :func:`randomized_svd` — range finder + power iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.fft import dct

from repro._validation import as_rng, check_int
from repro.exceptions import InvalidParameterError


def gaussian_sketch(sketch_size, n, seed=None):
    """Dense Gaussian sketch ``S`` with i.i.d. ``N(0, 1/sketch_size)`` entries."""
    sketch_size = check_int(sketch_size, "sketch_size", minimum=1)
    n = check_int(n, "n", minimum=1)
    rng = as_rng(seed)
    return rng.standard_normal((sketch_size, n)) / np.sqrt(sketch_size)


def sparse_sign_sketch(sketch_size, n, seed=None, *, nnz_per_column=8):
    """Sparse sign sketch: each column has ``nnz_per_column`` random ±1 entries.

    This is the classic sparse embedding (OSNAP/CountSketch family): applying
    it costs ``O(nnz_per_column)`` per input coordinate.
    """
    sketch_size = check_int(sketch_size, "sketch_size", minimum=1)
    n = check_int(n, "n", minimum=1)
    s = check_int(nnz_per_column, "nnz_per_column", minimum=1,
                  maximum=sketch_size)
    rng = as_rng(seed)
    rows = np.empty(n * s, dtype=np.int64)
    for j in range(n):
        rows[j * s:(j + 1) * s] = rng.choice(sketch_size, size=s, replace=False)
    cols = np.repeat(np.arange(n), s)
    signs = rng.choice([-1.0, 1.0], size=n * s) / np.sqrt(s)
    return sparse.csr_matrix(
        (signs, (rows, cols)), shape=(sketch_size, n)
    )


def srdt_sketch_apply(matrix, sketch_size, seed=None):
    """Apply a subsampled randomized DCT sketch to the rows of ``matrix``.

    Computes ``S A`` where ``S = sqrt(n/k) · P · C · D``: ``D`` random signs,
    ``C`` the orthonormal DCT-II, ``P`` a uniform row sample of size ``k``.
    Works for arbitrary ``n`` (no power-of-two padding needed).
    """
    A = np.asarray(matrix, dtype=float)
    if A.ndim == 1:
        A = A[:, None]
    n = A.shape[0]
    k = check_int(sketch_size, "sketch_size", minimum=1, maximum=n)
    rng = as_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=n)
    mixed = dct(signs[:, None] * A, axis=0, norm="ortho")
    picked = rng.choice(n, size=k, replace=False)
    return np.sqrt(n / k) * mixed[picked]


@dataclass
class SketchedLeastSquaresResult:
    """Result of sketch-and-solve least squares.

    Attributes
    ----------
    solution:
        Minimizer of ``||S(Ax - b)||``.
    sketch_size:
        Number of sketch rows used.
    residual_norm:
        Unsketched residual ``||A x - b||`` of the sketched solution.
    solution_norm:
        ``||x||_2`` — the quantity whose shrinkage reveals the implicit
        regularization of sketching.
    """

    solution: np.ndarray
    sketch_size: int
    residual_norm: float
    solution_norm: float


def sketched_least_squares(design, target, sketch_size, *, kind="gaussian",
                           seed=None):
    """Sketch-and-solve least squares ``min_x ||S A x - S b||``.

    Parameters
    ----------
    design:
        ``(n, d)`` design matrix with ``n >= d``.
    target:
        ``(n,)`` response vector.
    sketch_size:
        Number of sketch rows (``>= d`` for a determined sketched system).
    kind:
        ``"gaussian"``, ``"sparse"``, or ``"srdt"``.
    seed:
        RNG seed.
    """
    A = np.asarray(design, dtype=float)
    b = np.asarray(target, dtype=float)
    if A.ndim != 2:
        raise InvalidParameterError("design must be a 2-d array")
    n, d = A.shape
    if b.shape != (n,):
        raise InvalidParameterError(f"target must have shape ({n},)")
    k = check_int(sketch_size, "sketch_size", minimum=d, maximum=n)
    if kind == "gaussian":
        S = gaussian_sketch(k, n, seed=seed)
        SA, Sb = S @ A, S @ b
    elif kind == "sparse":
        S = sparse_sign_sketch(k, n, seed=seed)
        SA, Sb = S @ A, S @ b
    elif kind == "srdt":
        stacked = srdt_sketch_apply(np.column_stack([A, b]), k, seed=seed)
        SA, Sb = stacked[:, :d], stacked[:, d]
    else:
        raise InvalidParameterError(
            f"kind must be 'gaussian', 'sparse', or 'srdt'; got {kind!r}"
        )
    solution, *_ = np.linalg.lstsq(SA, Sb, rcond=None)
    residual = float(np.linalg.norm(A @ solution - b))
    return SketchedLeastSquaresResult(
        solution=solution,
        sketch_size=k,
        residual_norm=residual,
        solution_norm=float(np.linalg.norm(solution)),
    )


def randomized_range_finder(matrix, rank, *, oversampling=10, power_iterations=2,
                            seed=None):
    """Orthonormal basis approximating the dominant range of ``matrix``."""
    A = np.asarray(matrix, dtype=float)
    rank = check_int(rank, "rank", minimum=1)
    oversampling = check_int(oversampling, "oversampling", minimum=0)
    power_iterations = check_int(power_iterations, "power_iterations", minimum=0)
    rng = as_rng(seed)
    k = min(rank + oversampling, min(A.shape))
    omega = rng.standard_normal((A.shape[1], k))
    Y = A @ omega
    Q, _ = np.linalg.qr(Y)
    for _ in range(power_iterations):
        Z, _ = np.linalg.qr(A.T @ Q)
        Q, _ = np.linalg.qr(A @ Z)
    return Q


def randomized_svd(matrix, rank, *, oversampling=10, power_iterations=2,
                   seed=None):
    """Rank-``rank`` randomized SVD: returns ``(U, s, Vt)``.

    The truncation to ``rank`` terms is itself one of the paper's examples
    of regularization-by-approximation ("working with a truncated singular
    value decomposition ... can lead to better precision and recall",
    Section 2.3).
    """
    A = np.asarray(matrix, dtype=float)
    Q = randomized_range_finder(
        A, rank, oversampling=oversampling,
        power_iterations=power_iterations, seed=seed,
    )
    B = Q.T @ A
    U_small, s, Vt = np.linalg.svd(B, full_matrices=False)
    U = Q @ U_small
    return U[:, :rank], s[:rank], Vt[:rank]
