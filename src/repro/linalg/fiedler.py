"""Fiedler vectors: the leading nontrivial eigenvector of Problem (3).

The object of Section 3.1 is ``v2``, the eigenvector of the normalized
Laplacian 𝓛 attached to its smallest nonzero eigenvalue λ2, i.e. the
minimizer of the Rayleigh quotient over vectors orthogonal to the trivial
eigenvector ``D^{1/2} 1``. Three routes are provided, mirroring the paper's
discussion of exact vs. approximate pipelines:

* ``method="exact"`` — dense eigendecomposition (the "black-box solver" of
  small/medium-scale practice; O(n^3), used as the oracle);
* ``method="lanczos"`` — Krylov approximation (default);
* ``method="power"`` — power method on the spectrum-flipped operator
  ``2I - 𝓛`` with the trivial eigenvector deflated, the Web-scale route.

Conventions: :func:`fiedler_vector` returns the unit eigenvector ``x`` of 𝓛;
:func:`fiedler_embedding` returns ``y = D^{-1/2} x``, the generalized
eigenvector of ``L y = λ D y`` whose coordinate order drives sweep cuts
(footnote 13 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DisconnectedGraphError,
    EmptyGraphError,
    InvalidParameterError,
)
from repro.graph.matrices import normalized_laplacian, trivial_eigenvector
from repro.linalg.lanczos import lanczos_extreme_eigenpairs
from repro.linalg.power import power_method


def fiedler_pair(graph, *, method="lanczos", tol=1e-10, max_iterations=50_000,
                 seed=None):
    """Return ``(λ2, x)`` for the normalized Laplacian of ``graph``.

    Parameters
    ----------
    graph:
        A connected graph with positive degrees.
    method:
        ``"exact"``, ``"lanczos"``, or ``"power"``.
    tol, max_iterations, seed:
        Forwarded to the iterative methods.

    Raises
    ------
    DisconnectedGraphError
        If the graph is not connected (λ2 = 0 and v2 is not unique — the
        problem is ill-posed, in the paper's Section 2.2 sense).
    """
    if graph.num_nodes < 2:
        raise EmptyGraphError("Fiedler vector needs at least 2 nodes")
    if not graph.is_connected():
        raise DisconnectedGraphError(
            "Fiedler vector of a disconnected graph is not well-posed"
        )
    laplacian = normalized_laplacian(graph)
    trivial = trivial_eigenvector(graph)
    n = graph.num_nodes
    if method == "exact":
        values, vectors = np.linalg.eigh(laplacian.toarray())
        # The smallest eigenvalue is 0 (trivial); take the next one.
        x = vectors[:, 1]
        lam = float(values[1])
    elif method == "lanczos":
        values, vectors = lanczos_extreme_eigenpairs(
            laplacian, n, 1, which="smallest",
            num_steps=min(n, max(60, int(4 * np.sqrt(n)))),
            deflate=[trivial], seed=seed,
        )
        lam, x = float(values[0]), vectors[:, 0]
    elif method == "power":
        # Flip the spectrum: 𝓛 has eigenvalues in [0, 2], so 2I - 𝓛 has the
        # Fiedler direction as its dominant eigenvector once the trivial
        # direction is deflated.
        def flipped(vector):
            return 2.0 * vector - laplacian @ vector

        result = power_method(
            flipped, n, deflate=[trivial], tol=tol,
            max_iterations=max_iterations, seed=seed,
        )
        x = result.eigenvector
        lam = 2.0 - result.eigenvalue
    else:
        raise InvalidParameterError(
            f"method must be 'exact', 'lanczos', or 'power'; got {method!r}"
        )
    # Deterministic sign: make the first nonzero coordinate positive.
    nonzero = np.flatnonzero(np.abs(x) > 1e-12)
    if nonzero.size and x[nonzero[0]] < 0:
        x = -x
    # Enforce the constraint x ⟂ D^{1/2} 1 exactly.
    x = x - (trivial @ x) * trivial
    x = x / np.linalg.norm(x)
    return lam, x


def fiedler_vector(graph, *, method="lanczos", tol=1e-10, seed=None):
    """Unit Fiedler eigenvector ``x`` of the normalized Laplacian."""
    return fiedler_pair(graph, method=method, tol=tol, seed=seed)[1]


def fiedler_value(graph, *, method="lanczos", tol=1e-10, seed=None):
    """The eigenvalue λ2 of the normalized Laplacian."""
    return fiedler_pair(graph, method=method, tol=tol, seed=seed)[0]


def fiedler_embedding(graph, *, method="lanczos", tol=1e-10, seed=None):
    """Generalized Fiedler vector ``y = D^{-1/2} x`` used for sweep cuts."""
    x = fiedler_vector(graph, method=method, tol=tol, seed=seed)
    return x / np.sqrt(graph.degrees)
