"""Iterative linear-system solvers for symmetric positive (semi)definite systems.

The PageRank dynamics of Section 3.1 is the resolvent system
``(I - (1-γ) M) x = γ s``; these solvers are how that resolvent is applied
without ever forming an inverse. Each solver returns a :class:`SolveResult`
with the residual history, because *truncating the iteration early* is one of
the implicit-regularization knobs the paper studies.

All solvers accept either a scipy sparse matrix / dense array or a matvec
callable (Jacobi and Gauss–Seidel need explicit matrix entries and therefore
require a matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro._validation import check_int, check_positive, check_vector
from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.linalg.power import _as_matvec


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    solution:
        Final iterate.
    iterations:
        Iterations performed.
    converged:
        Whether ``||b - A x|| <= tol * ||b||`` was reached.
    residual_norm:
        Final absolute residual norm.
    residual_history:
        Absolute residual norm after each iteration.
    """

    solution: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: list = field(default_factory=list)


def _finalize(matvec, b, x, iterations, history, tol, raise_on_failure, name):
    residual = float(np.linalg.norm(b - matvec(x)))
    # Relative test with an absolute floor near machine precision, so that
    # solves with tiny right-hand sides are not flagged spuriously.
    solution_scale = 1.0 + float(np.linalg.norm(x))
    threshold = max(
        tol * float(np.linalg.norm(b)),
        100 * np.finfo(float).eps * solution_scale,
    )
    converged = residual <= threshold
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"{name} did not converge in {iterations} iterations "
            f"(residual {residual:.3e})",
            iterations=iterations,
            residual=residual,
        )
    return SolveResult(
        solution=x,
        iterations=iterations,
        converged=converged,
        residual_norm=residual,
        residual_history=history,
    )


def conjugate_gradient(
    operator, b, *, x0=None, tol=1e-10, max_iterations=10_000,
    raise_on_failure=True,
):
    """Conjugate gradients for a symmetric positive (semi)definite system.

    For singular-but-consistent systems (e.g. the combinatorial Laplacian
    with a mean-zero right-hand side) CG converges to the minimum-norm
    solution within the range space.
    """
    matvec = _as_matvec(operator)
    b = np.asarray(b, dtype=float)
    n = b.shape[0]
    tol = check_positive(tol, "tol")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()
    r = b - matvec(x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    history = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        Ap = matvec(p)
        denom = float(p @ Ap)
        if denom <= 0:
            # Direction of (numerically) zero curvature: stop — for PSD
            # systems this means the residual lies in the null space.
            break
        alpha = rs_old / denom
        x = x + alpha * p
        r = r - alpha * Ap
        rs_new = float(r @ r)
        history.append(np.sqrt(rs_new))
        if np.sqrt(rs_new) <= tol * b_norm:
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return _finalize(
        matvec, b, x, iterations, history, tol, raise_on_failure,
        "conjugate gradient",
    )


def richardson(
    operator, b, *, step_size, x0=None, tol=1e-10, max_iterations=10_000,
    raise_on_failure=True,
):
    """Richardson iteration ``x ← x + ω (b - A x)``.

    With ``A = I - (1-γ) M`` and ``ω = 1`` this is exactly the PageRank
    power iteration of Section 3.1, so its truncation is the canonical
    "early stopping as implicit regularization" example.
    """
    matvec = _as_matvec(operator)
    b = np.asarray(b, dtype=float)
    step_size = check_positive(step_size, "step_size")
    tol = check_positive(tol, "tol")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    x = np.zeros_like(b) if x0 is None else check_vector(x0, b.size, "x0").copy()
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    history = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        r = b - matvec(x)
        norm = float(np.linalg.norm(r))
        history.append(norm)
        if norm <= tol * b_norm:
            break
        x = x + step_size * r
    return _finalize(
        matvec, b, x, iterations, history, tol, raise_on_failure, "richardson"
    )


def _require_matrix(operator, name):
    if callable(operator) and not hasattr(operator, "shape"):
        raise InvalidParameterError(f"{name} requires an explicit matrix")
    if sparse.issparse(operator):
        return operator.tocsr()
    return np.asarray(operator, dtype=float)


def jacobi(
    matrix, b, *, x0=None, tol=1e-10, max_iterations=10_000,
    raise_on_failure=True,
):
    """Jacobi iteration ``x ← D^{-1} (b - (A - D) x)``."""
    A = _require_matrix(matrix, "jacobi")
    b = np.asarray(b, dtype=float)
    diag = A.diagonal() if sparse.issparse(A) else np.diag(A).copy()
    if np.any(diag == 0):
        raise InvalidParameterError("jacobi requires a nonzero diagonal")
    tol = check_positive(tol, "tol")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    x = np.zeros_like(b) if x0 is None else check_vector(x0, b.size, "x0").copy()
    matvec = _as_matvec(A)
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    history = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        r = b - matvec(x)
        norm = float(np.linalg.norm(r))
        history.append(norm)
        if norm <= tol * b_norm:
            break
        x = x + r / diag
    return _finalize(
        matvec, b, x, iterations, history, tol, raise_on_failure, "jacobi"
    )


def gauss_seidel(
    matrix, b, *, x0=None, tol=1e-10, max_iterations=10_000,
    raise_on_failure=True,
):
    """Gauss–Seidel iteration with in-place forward sweeps."""
    A = _require_matrix(matrix, "gauss_seidel")
    if not sparse.issparse(A):
        A = sparse.csr_matrix(A)
    b = np.asarray(b, dtype=float)
    n = b.size
    diag = A.diagonal()
    if np.any(diag == 0):
        raise InvalidParameterError("gauss_seidel requires a nonzero diagonal")
    tol = check_positive(tol, "tol")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()
    indptr, indices, data = A.indptr, A.indices, A.data
    matvec = _as_matvec(A)
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    history = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        for i in range(n):
            row = slice(indptr[i], indptr[i + 1])
            acc = float(data[row] @ x[indices[row]]) - diag[i] * x[i]
            x[i] = (b[i] - acc) / diag[i]
        norm = float(np.linalg.norm(b - matvec(x)))
        history.append(norm)
        if norm <= tol * b_norm:
            break
    return _finalize(
        matvec, b, x, iterations, history, tol, raise_on_failure, "gauss_seidel"
    )


def chebyshev(
    operator, b, *, eigenvalue_bounds, x0=None, tol=1e-10,
    max_iterations=10_000, raise_on_failure=True,
):
    """Chebyshev semi-iteration for SPD systems with known spectral bounds.

    Parameters
    ----------
    eigenvalue_bounds:
        Pair ``(λ_min, λ_max)`` with ``0 < λ_min <= λ_max`` enclosing the
        spectrum of the operator.
    """
    matvec = _as_matvec(operator)
    b = np.asarray(b, dtype=float)
    lam_min, lam_max = eigenvalue_bounds
    lam_min = check_positive(lam_min, "λ_min")
    lam_max = check_positive(lam_max, "λ_max")
    if lam_min > lam_max:
        raise InvalidParameterError("eigenvalue_bounds must satisfy λ_min <= λ_max")
    tol = check_positive(tol, "tol")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    theta = (lam_max + lam_min) / 2.0
    delta = (lam_max - lam_min) / 2.0
    x = np.zeros_like(b) if x0 is None else check_vector(x0, b.size, "x0").copy()
    r = b - matvec(x)
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    history = []
    p = np.zeros_like(b)
    alpha = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if iterations == 1:
            p = r.copy()
            alpha = 1.0 / theta
        else:
            if iterations == 2:
                beta = 0.5 * (delta * alpha) ** 2
            else:
                beta = (delta * alpha / 2.0) ** 2
            alpha = 1.0 / (theta - beta / alpha)
            p = r + beta * p
        x = x + alpha * p
        r = b - matvec(x)
        norm = float(np.linalg.norm(r))
        history.append(norm)
        if norm <= tol * b_norm:
            break
    return _finalize(
        matvec, b, x, iterations, history, tol, raise_on_failure, "chebyshev"
    )
