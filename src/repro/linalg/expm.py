"""Action of the matrix exponential, ``exp(-t A) v``.

The Heat Kernel dynamics of Section 3.1 is
``H_t = exp(-t L) = Σ_k (-t)^k / k! · L^k`` applied to a seed vector. Two
implementations are provided:

* :func:`expm_action_taylor` — the truncated series the paper writes down,
  with an a-priori remainder bound used to pick the truncation order; and
* :func:`expm_action_lanczos` — a Krylov approximation, the "sophisticated
  variation of the Power Method" route.

Both only touch the operator through matvecs, preserving sparsity.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import eigh_tridiagonal

from repro._validation import check_int, check_positive, check_real
from repro.exceptions import InvalidParameterError
from repro.linalg.lanczos import lanczos
from repro.linalg.power import _as_matvec


def taylor_terms_for_tolerance(t, spectral_bound, tol):
    """Smallest ``K`` with ``Σ_{k>K} (t·ρ)^k / k! <= tol``.

    Uses the standard remainder bound for the exponential series of an
    operator with spectral radius ``ρ``: once ``k > 2 t ρ`` the terms decay
    geometrically with ratio ``<= 1/2``, so the tail is at most twice the
    next term.
    """
    t = check_positive(t, "t", allow_zero=True)
    rho = check_positive(spectral_bound, "spectral_bound", allow_zero=True)
    tol = check_positive(tol, "tol")
    x = t * rho
    if x == 0:
        return 1
    term = 1.0
    k = 0
    while True:
        k += 1
        term *= x / k
        if k >= 2 * x and 2 * term <= tol:
            return k
        if k > 10_000:
            raise InvalidParameterError(
                f"t * spectral_bound = {x:.3g} is too large for the Taylor "
                "series; use expm_action_lanczos"
            )


def expm_action_taylor(operator, vector, t, *, spectral_bound, tol=1e-12,
                       num_terms=None):
    """Compute ``exp(-t A) v`` by the truncated Taylor series.

    Parameters
    ----------
    operator:
        Symmetric PSD matrix or matvec callable for ``A``.
    vector:
        The seed vector ``v``.
    t:
        Nonnegative time parameter.
    spectral_bound:
        Upper bound on the spectral radius of ``A`` (for the normalized
        Laplacian, 2; for the combinatorial Laplacian, ``2 max_i d_i``).
    tol:
        Target truncation error relative to ``||v||`` (ignored when
        ``num_terms`` is given).
    num_terms:
        Explicit truncation order — this is the knob that makes the series
        an *approximation algorithm*, and truncating it aggressively is one
        of the implicit-regularization moves studied in E10.

    Returns
    -------
    numpy.ndarray
        The (possibly truncated) series value.
    """
    matvec = _as_matvec(operator)
    v = np.asarray(vector, dtype=float)
    t = check_positive(t, "t", allow_zero=True)
    if num_terms is None:
        num_terms = taylor_terms_for_tolerance(t, spectral_bound, tol)
    num_terms = check_int(num_terms, "num_terms", minimum=1)
    result = v.copy()
    term = v.copy()
    for k in range(1, num_terms + 1):
        term = (-t / k) * np.asarray(matvec(term), dtype=float)
        result += term
    return result


def expm_action_lanczos(operator, vector, t, *, num_steps=40):
    """Compute ``exp(-t A) v`` via the Lanczos (Krylov) approximation.

    Builds a ``k``-dimensional Krylov space from ``v``, exponentiates the
    tridiagonal projection exactly, and lifts back:
    ``exp(-tA) v ≈ ||v|| · V exp(-tT) e_1``.
    """
    v = np.asarray(vector, dtype=float)
    t = check_real(t, "t")
    n = v.shape[0]
    norm = float(np.linalg.norm(v))
    if norm == 0:
        return np.zeros(n)
    decomposition = lanczos(operator, n, min(num_steps, n), v0=v)
    values, vectors = eigh_tridiagonal(
        decomposition.alphas, decomposition.betas
    )
    e1 = np.zeros(decomposition.num_steps)
    e1[0] = 1.0
    small = vectors @ (np.exp(-t * values) * (vectors.T @ e1))
    return norm * (decomposition.basis @ small)


def heat_kernel_dense(matrix, t):
    """Dense ``exp(-t A)`` via eigendecomposition (test oracle; O(n^3))."""
    arr = np.asarray(matrix.todense() if hasattr(matrix, "todense") else matrix,
                     dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise InvalidParameterError("heat_kernel_dense needs a square matrix")
    values, vectors = np.linalg.eigh((arr + arr.T) / 2.0)
    return (vectors * np.exp(-t * values)) @ vectors.T


def phi_weights(t, num_terms):
    """Taylor weights ``t^k e^{-t} / k!`` of the heat-kernel series.

    These are the Poisson(t) probabilities; the heat-kernel push algorithm
    (:mod:`repro.diffusion.hk_push`) budgets its residual against them.
    """
    t = check_positive(t, "t", allow_zero=True)
    num_terms = check_int(num_terms, "num_terms", minimum=1)
    weights = np.empty(num_terms + 1)
    log_term = -t
    for k in range(num_terms + 1):
        weights[k] = math.exp(log_term)
        log_term += math.log(t) - math.log(k + 1) if t > 0 else -math.inf
    return weights
