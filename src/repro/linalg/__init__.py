"""Numerical linear algebra built from matvecs: power method, Lanczos,
iterative solvers, matrix-exponential action, Fiedler drivers, sketching."""

from repro.linalg.expm import (
    expm_action_lanczos,
    expm_action_taylor,
    heat_kernel_dense,
    taylor_terms_for_tolerance,
)
from repro.linalg.fiedler import (
    fiedler_embedding,
    fiedler_pair,
    fiedler_value,
    fiedler_vector,
)
from repro.linalg.lanczos import (
    LanczosDecomposition,
    lanczos,
    lanczos_extreme_eigenpairs,
)
from repro.linalg.power import (
    PowerMethodResult,
    power_method,
    power_method_trajectory,
)
from repro.linalg.sketch import (
    SketchedLeastSquaresResult,
    gaussian_sketch,
    randomized_svd,
    sketched_least_squares,
    sparse_sign_sketch,
)
from repro.linalg.solvers import (
    SolveResult,
    chebyshev,
    conjugate_gradient,
    gauss_seidel,
    jacobi,
    richardson,
)

__all__ = [
    "LanczosDecomposition",
    "PowerMethodResult",
    "SketchedLeastSquaresResult",
    "SolveResult",
    "chebyshev",
    "conjugate_gradient",
    "expm_action_lanczos",
    "expm_action_taylor",
    "fiedler_embedding",
    "fiedler_pair",
    "fiedler_value",
    "fiedler_vector",
    "gauss_seidel",
    "gaussian_sketch",
    "heat_kernel_dense",
    "jacobi",
    "lanczos",
    "lanczos_extreme_eigenpairs",
    "power_method",
    "power_method_trajectory",
    "randomized_svd",
    "richardson",
    "sketched_least_squares",
    "sparse_sign_sketch",
    "taylor_terms_for_tolerance",
]
