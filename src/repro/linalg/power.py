"""The Power Method and deflated variants.

Section 3.1 of the paper singles out the Power Method as the canonical
Web-scale eigenvector algorithm: it needs only sparse matrix–vector products,
parallelizes trivially, and — the paper's central point — *truncating it
early is an implicit regularizer* (footnote 15 and Section 2.3). The
implementation therefore records the full iterate trajectory on request, so
the early-stopping experiments (E10) can study intermediate iterates, not
just the converged answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_rng, check_int, check_positive
from repro.exceptions import ConvergenceError, InvalidParameterError


@dataclass
class PowerMethodResult:
    """Outcome of a power-method run.

    Attributes
    ----------
    eigenvalue:
        Final Rayleigh-quotient estimate.
    eigenvector:
        Final unit-norm iterate.
    iterations:
        Number of matrix–vector products performed.
    converged:
        Whether the iterate change fell below the tolerance.
    residual:
        Final ``||A v - λ v||_2``.
    eigenvalue_history:
        Rayleigh quotient after each iteration.
    iterate_history:
        Unit iterates after each iteration (present only when
        ``keep_iterates=True`` was requested).
    """

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    residual: float
    eigenvalue_history: list = field(default_factory=list)
    iterate_history: list = field(default_factory=list)


def _as_matvec(operator):
    """Accept a sparse/dense matrix or a callable as the operator."""
    if callable(operator) and not hasattr(operator, "__matmul__"):
        return operator
    if hasattr(operator, "dot"):
        return lambda x: operator @ x
    if callable(operator):
        return operator
    raise InvalidParameterError(
        "operator must be a matrix-like object or a callable"
    )


def _project_out(vector, deflate):
    """Orthogonalize ``vector`` against each unit vector in ``deflate``."""
    for basis in deflate:
        vector = vector - (basis @ vector) * basis
    return vector


def power_method(
    operator,
    n,
    *,
    x0=None,
    deflate=(),
    tol=1e-10,
    max_iterations=10_000,
    seed=None,
    keep_iterates=False,
    raise_on_failure=True,
):
    """Run the power method on a symmetric operator.

    Parameters
    ----------
    operator:
        Symmetric ``(n, n)`` matrix (dense, sparse) or a matvec callable.
    n:
        Dimension.
    x0:
        Starting vector; random Gaussian when omitted.
    deflate:
        Sequence of unit-norm vectors to project out at every step (e.g. the
        trivial eigenvector ``D^{1/2} 1`` of the normalized Laplacian, which
        implements the ``x ⟂ D^{1/2} 1`` constraint of Problem (3)).
    tol:
        Convergence tolerance on the iterate change ``||v_{t+1} - ± v_t||``.
    max_iterations:
        Iteration cap.
    seed:
        RNG seed for the random start.
    keep_iterates:
        Record every unit iterate (memory ``O(n * iterations)``); used by the
        early-stopping experiments.
    raise_on_failure:
        When true (default), raise :class:`ConvergenceError` if the tolerance
        is not met; otherwise return the best iterate with
        ``converged=False``.

    Returns
    -------
    PowerMethodResult
    """
    n = check_int(n, "n", minimum=1)
    tol = check_positive(tol, "tol")
    max_iterations = check_int(max_iterations, "max_iterations", minimum=1)
    matvec = _as_matvec(operator)
    deflate = [np.asarray(b, dtype=float) for b in deflate]
    for basis in deflate:
        if basis.shape != (n,):
            raise InvalidParameterError(
                f"deflation vectors must have shape ({n},)"
            )
    rng = as_rng(seed)
    if x0 is None:
        vector = rng.standard_normal(n)
    else:
        vector = np.array(x0, dtype=float)
        if vector.shape != (n,):
            raise InvalidParameterError(f"x0 must have shape ({n},)")
    original_norm = np.linalg.norm(vector)
    vector = _project_out(vector, deflate)
    norm = np.linalg.norm(vector)
    if norm <= 1e-12 * max(original_norm, 1.0):
        raise InvalidParameterError(
            "starting vector lies entirely in the deflated subspace"
        )
    vector /= norm

    eigenvalue_history = []
    iterate_history = []
    eigenvalue = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        image = matvec(vector)
        image = _project_out(np.asarray(image, dtype=float), deflate)
        norm = np.linalg.norm(image)
        if norm == 0:
            # The iterate is (numerically) in the kernel; the eigenvalue is 0.
            eigenvalue = 0.0
            converged = True
            break
        new_vector = image / norm
        eigenvalue = float(vector @ matvec(vector))
        eigenvalue_history.append(eigenvalue)
        if keep_iterates:
            iterate_history.append(new_vector.copy())
        delta = min(
            np.linalg.norm(new_vector - vector),
            np.linalg.norm(new_vector + vector),
        )
        vector = new_vector
        if delta < tol:
            converged = True
            break
    eigenvalue = float(vector @ matvec(vector))
    residual = float(np.linalg.norm(matvec(vector) - eigenvalue * vector))
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"power method did not converge in {max_iterations} iterations "
            f"(residual {residual:.3e})",
            iterations=iterations,
            residual=residual,
        )
    return PowerMethodResult(
        eigenvalue=eigenvalue,
        eigenvector=vector,
        iterations=iterations,
        converged=converged,
        residual=residual,
        eigenvalue_history=eigenvalue_history,
        iterate_history=iterate_history,
    )


def power_method_trajectory(operator, n, num_iterations, *, x0=None,
                            deflate=(), seed=None):
    """Return the first ``num_iterations`` unit iterates of the power method.

    A thin wrapper over :func:`power_method` with no convergence test, used
    by experiment E10 to treat "number of iterations" as a regularization
    parameter.
    """
    num_iterations = check_int(num_iterations, "num_iterations", minimum=1)
    result = power_method(
        operator,
        n,
        x0=x0,
        deflate=deflate,
        tol=1e-300,
        max_iterations=num_iterations,
        seed=seed,
        keep_iterates=True,
        raise_on_failure=False,
    )
    return result.iterate_history
