"""Whole-graph operations and summary statistics.

Helpers here are shared by the partitioning stack and the niceness measures:
breadth-first distance aggregates, degree statistics, and graph surgery that
does not belong on the :class:`~repro.graph.graph.Graph` class itself.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_int, check_node
from repro.exceptions import DisconnectedGraphError, EmptyGraphError
from repro.graph.build import from_edges


def degree_histogram(graph):
    """Histogram of unweighted degrees: ``counts[k]`` = #nodes with k neighbors."""
    counts = np.diff(graph.indptr)
    if counts.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(counts.astype(np.int64))


def average_degree(graph):
    """Average weighted degree ``vol(V) / n``."""
    if graph.num_nodes == 0:
        raise EmptyGraphError("average degree of an empty graph")
    return graph.total_volume / graph.num_nodes


def average_shortest_path_length(graph, *, sources=None):
    """Average hop distance over (sampled) connected node pairs.

    Parameters
    ----------
    graph:
        Must be connected when ``sources`` is ``None``; with explicit
        ``sources`` the average runs over pairs reachable from them.
    sources:
        Optional subset of BFS source nodes, for subsampled estimates on
        large graphs.

    Raises
    ------
    EmptyGraphError
        On graphs with fewer than 2 nodes.
    DisconnectedGraphError
        When no connected pair is reachable from the chosen sources.
    """
    n = graph.num_nodes
    if n < 2:
        raise EmptyGraphError("average path length needs >= 2 nodes")
    if sources is None:
        source_list = range(n)
    else:
        source_list = [check_node(s, n, "source") for s in sources]
    total, pairs = 0.0, 0
    for s in source_list:
        dist = graph.bfs_distances(s)
        reachable = dist > 0
        total += float(dist[reachable].sum())
        pairs += int(reachable.sum())
    if pairs == 0:
        raise DisconnectedGraphError("no connected pairs found")
    return total / pairs


def eccentricity(graph, node):
    """Maximum hop distance from ``node`` to any reachable node."""
    dist = graph.bfs_distances(node)
    reachable = dist[dist >= 0]
    return int(reachable.max())


def diameter(graph, *, sources=None):
    """Hop diameter (exact over all sources, or a lower bound over a sample)."""
    if graph.num_nodes == 0:
        raise EmptyGraphError("diameter of an empty graph")
    source_list = range(graph.num_nodes) if sources is None else sources
    best = 0
    for s in source_list:
        best = max(best, eccentricity(graph, s))
    return best


def k_hop_ball(graph, center, radius):
    """Node ids within ``radius`` hops of ``center`` (sorted array)."""
    radius = check_int(radius, "radius", minimum=0)
    dist = graph.bfs_distances(center, max_distance=radius)
    return np.flatnonzero((dist >= 0) & (dist <= radius))


def triangle_count(graph):
    """Total number of triangles (unweighted)."""
    total = 0
    for u in range(graph.num_nodes):
        nbrs = graph.neighbors(u)
        higher = nbrs[nbrs > u]
        for v in higher:
            v_nbrs = graph.neighbors(int(v))
            total += int(np.intersect1d(
                higher[higher > v], v_nbrs[v_nbrs > v], assume_unique=True
            ).size)
    return total


def clustering_coefficient(graph):
    """Global clustering coefficient: 3 * triangles / #connected triples."""
    counts = np.diff(graph.indptr).astype(float)
    triples = float(np.sum(counts * (counts - 1) / 2.0))
    if triples == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / triples


def remove_edges(graph, edges_to_remove):
    """Return a copy of ``graph`` with the listed undirected edges removed."""
    drop = {tuple(sorted((int(u), int(v)))) for u, v in edges_to_remove}
    us, vs, ws = graph.edge_array()
    kept_edges, kept_weights = [], []
    for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
        if (u, v) not in drop:
            kept_edges.append((u, v))
            kept_weights.append(w)
    return from_edges(graph.num_nodes, kept_edges, kept_weights)


def add_edges(graph, new_edges, new_weights=None):
    """Return a copy of ``graph`` with additional undirected edges.

    Duplicate additions merge by summing weights.
    """
    us, vs, ws = graph.edge_array()
    new_edges = list(new_edges)
    if new_weights is None:
        new_weights = [1.0] * len(new_edges)
    edges = list(zip(us.tolist(), vs.tolist())) + [
        (int(u), int(v)) for u, v in new_edges
    ]
    weights = ws.tolist() + [float(w) for w in new_weights]
    return from_edges(graph.num_nodes, edges, weights, combine="sum")


def relabel(graph, permutation):
    """Apply a node permutation: new id of node ``i`` is ``permutation[i]``."""
    from repro.exceptions import GraphError

    perm = np.asarray(permutation, dtype=np.int64)
    n = graph.num_nodes
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise GraphError(
            f"permutation must be a rearrangement of 0..{n - 1}; "
            f"got shape {perm.shape}"
        )
    us, vs, ws = graph.edge_array()
    if us.size == 0:
        return from_edges(n, [], [])
    return from_edges(n, np.stack([perm[us], perm[vs]], axis=1), ws)
