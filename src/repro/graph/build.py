"""Constructors that build :class:`~repro.graph.graph.Graph` objects.

These builders are the supported way to create graphs. They normalize
arbitrary edge lists (either endpoint order, duplicates, explicit weights)
into the validated CSR form the rest of the library relies on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Graph


def from_edges(num_nodes, edges, weights=None, *, combine="sum"):
    """Build a graph from an undirected edge list.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; node ids must lie in ``[0, n)``.
    edges:
        Iterable of ``(u, v)`` pairs, or an ``(m, 2)`` array. Each pair is an
        undirected edge; order of endpoints does not matter.
    weights:
        Optional per-edge positive weights aligned with ``edges``. Defaults
        to ``1.0`` for every edge.
    combine:
        How to merge duplicate edges: ``"sum"`` (default), ``"max"``, or
        ``"error"`` to reject duplicates.

    Returns
    -------
    Graph

    Raises
    ------
    GraphError
        On self-loops, out-of-range ids, nonpositive weights, or duplicates
        when ``combine="error"``.
    """
    if num_nodes < 0:
        raise GraphError(f"num_nodes must be >= 0; got {num_nodes}")
    edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_arr.size == 0:
        edge_arr = edge_arr.reshape(0, 2)
    if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
        raise GraphError(f"edges must be (m, 2)-shaped; got {edge_arr.shape}")
    if not np.issubdtype(edge_arr.dtype, np.integer):
        as_int = edge_arr.astype(np.int64)
        if not np.array_equal(as_int, edge_arr):
            raise GraphError("edge endpoints must be integers")
        edge_arr = as_int
    edge_arr = edge_arr.astype(np.int64, copy=False)
    m = edge_arr.shape[0]
    if weights is None:
        weight_arr = np.ones(m)
    else:
        weight_arr = np.asarray(weights, dtype=float)
        if weight_arr.shape != (m,):
            raise GraphError(
                f"weights must have shape ({m},); got {weight_arr.shape}"
            )
    if m:
        if edge_arr.min() < 0 or edge_arr.max() >= num_nodes:
            raise GraphError(f"edge endpoints must lie in [0, {num_nodes})")
        if np.any(edge_arr[:, 0] == edge_arr[:, 1]):
            raise GraphError("self-loops are not allowed")
        if np.any(weight_arr <= 0) or not np.all(np.isfinite(weight_arr)):
            raise GraphError("edge weights must be positive and finite")

    lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
    hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
    key = lo * np.int64(num_nodes) + hi
    unique_key, inverse = np.unique(key, return_inverse=True)
    if unique_key.size != key.size:
        if combine == "error":
            raise GraphError("duplicate edges present and combine='error'")
        if combine == "sum":
            merged = np.zeros(unique_key.size)
            np.add.at(merged, inverse, weight_arr)
        elif combine == "max":
            merged = np.full(unique_key.size, -np.inf)
            np.maximum.at(merged, inverse, weight_arr)
        else:
            raise GraphError(f"unknown combine mode {combine!r}")
        weight_arr = merged
    else:
        order = np.argsort(key)
        unique_key = key[order]
        weight_arr = weight_arr[order]
    lo = unique_key // num_nodes if num_nodes else unique_key
    hi = unique_key % num_nodes if num_nodes else unique_key
    return _from_unique_undirected(num_nodes, lo, hi, weight_arr)


def _from_unique_undirected(num_nodes, lo, hi, weights):
    """Assemble CSR arrays from deduplicated edges with ``lo < hi``."""
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    wts = np.concatenate([weights, weights])
    order = np.lexsort((dst, src))
    src, dst, wts = src[order], dst[order], wts[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Graph(indptr, dst, wts, validate=False)


def from_dense(matrix, *, tol=0.0):
    """Build a graph from a dense symmetric adjacency matrix.

    Entries with absolute value ``<= tol`` are treated as absent. The matrix
    must be square, symmetric, have a zero diagonal, and nonnegative entries.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise GraphError(f"adjacency matrix must be square; got {arr.shape}")
    if not np.allclose(arr, arr.T):
        raise GraphError("adjacency matrix must be symmetric")
    if np.any(np.abs(np.diag(arr)) > tol):
        raise GraphError("adjacency matrix must have a zero diagonal")
    if np.any(arr < -tol):
        raise GraphError("adjacency entries must be nonnegative")
    n = arr.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    mask = arr[iu, ju] > tol
    return from_edges(
        n,
        np.stack([iu[mask], ju[mask]], axis=1),
        arr[iu, ju][mask],
        combine="error",
    )


def from_scipy_sparse(matrix, *, tol=0.0):
    """Build a graph from a scipy sparse symmetric adjacency matrix."""
    from scipy import sparse

    if not sparse.issparse(matrix):
        raise GraphError("from_scipy_sparse expects a scipy sparse matrix")
    coo = matrix.tocoo()
    if coo.shape[0] != coo.shape[1]:
        raise GraphError(f"adjacency matrix must be square; got {coo.shape}")
    mask = (coo.row < coo.col) & (np.abs(coo.data) > tol)
    edges = np.stack([coo.row[mask], coo.col[mask]], axis=1)
    weights = coo.data[mask].astype(float)
    lower = (coo.row > coo.col) & (np.abs(coo.data) > tol)
    if int(lower.sum()) != edges.shape[0]:
        raise GraphError("sparse adjacency matrix must be symmetric")
    if np.any(np.abs(coo.data[coo.row == coo.col]) > tol):
        raise GraphError("adjacency matrix must have a zero diagonal")
    return from_edges(coo.shape[0], edges, weights, combine="sum")


def empty_graph(num_nodes):
    """A graph with ``num_nodes`` isolated nodes and no edges."""
    return from_edges(num_nodes, [])


def induced_subgraph_fast(graph, mask):
    """Vectorized induced subgraph on a boolean node mask.

    Produces exactly what :meth:`Graph.induced_subgraph` produces —
    selected nodes renumbered ``0..k-1`` in increasing original-id
    order, neighbor lists in CSR order — but through whole-array NumPy
    operations instead of a per-node Python loop, so it is usable on
    scale-tier graphs (millions of nodes).

    Returns ``(subgraph, original_ids)``.
    """
    mask = np.asarray(mask, dtype=bool)
    n = graph.num_nodes
    if mask.shape != (n,):
        raise GraphError(
            f"boolean node mask must have shape ({n},); got {mask.shape}"
        )
    original_ids = np.flatnonzero(mask)
    k = original_ids.size
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    counts = np.diff(indptr)
    arc_keep = np.repeat(mask, counts) & mask[indices]
    new_id = np.cumsum(mask, dtype=np.int64) - 1
    new_indices = new_id[indices[arc_keep]]
    new_weights = weights[arc_keep]
    # Kept-arc count per kept row -> new indptr.
    kept_rows = new_id[np.repeat(np.arange(n, dtype=np.int64), counts)[arc_keep]]
    new_counts = np.bincount(kept_rows, minlength=k) if k else (
        np.zeros(0, dtype=np.int64)
    )
    new_indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    sub = Graph(new_indptr, new_indices, new_weights, validate=False)
    return sub, original_ids


def connected_component_labels(graph):
    """Component labels in first-discovery order, at NumPy/SciPy speed.

    Returns ``(labels, count)`` with the same contract as
    :meth:`Graph.connected_components` — components are numbered
    ``0, 1, ...`` by the smallest node id they contain — but computed
    through :func:`scipy.sparse.csgraph.connected_components`, so it is
    usable on scale-tier graphs.  Falls back to the pure-Python BFS when
    SciPy is unavailable.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    try:
        from scipy import sparse
        from scipy.sparse import csgraph
    except ImportError:  # pragma: no cover - scipy is a core dependency
        return graph.connected_components()
    adjacency = sparse.csr_matrix(
        (graph.weights, graph.indices, graph.indptr), shape=(n, n)
    )
    count, raw = csgraph.connected_components(adjacency, directed=False)
    # Renumber scipy's labels into first-discovery (min-node-id) order so
    # the result is exchangeable with the Graph method's.
    first_node = np.full(count, n, dtype=np.int64)
    np.minimum.at(first_node, raw, np.arange(n, dtype=np.int64))
    relabel = np.empty(count, dtype=np.int64)
    relabel[np.argsort(first_node, kind="stable")] = np.arange(count)
    return relabel[raw], count


def largest_component_fast(graph):
    """Largest connected component, vectorized.

    The scale-tier twin of :meth:`Graph.largest_component`: same
    ``(subgraph, original_ids)`` contract and the same tie-break (the
    earliest-discovered component among the largest), built from
    :func:`connected_component_labels` + :func:`induced_subgraph_fast`.
    """
    if graph.num_nodes == 0:
        from repro.exceptions import EmptyGraphError

        raise EmptyGraphError("largest_component of an empty graph")
    labels, count = connected_component_labels(graph)
    if count == 1:
        return graph, np.arange(graph.num_nodes)
    sizes = np.bincount(labels, minlength=count)
    # argmax picks the lowest label among ties = earliest discovered.
    return induced_subgraph_fast(graph, labels == int(sizes.argmax()))


def union_disjoint(first, second, bridge_edges=(), bridge_weights=None):
    """Disjoint union of two graphs, optionally bridged.

    ``second``'s node ids are shifted by ``first.num_nodes``. Each entry of
    ``bridge_edges`` is ``(u_in_first, v_in_second)`` in the *original* ids of
    the respective graphs.
    """
    offset = first.num_nodes
    us1, vs1, ws1 = first.edge_array()
    us2, vs2, ws2 = second.edge_array()
    bridge = np.asarray(list(bridge_edges), dtype=np.int64).reshape(-1, 2)
    if bridge_weights is None:
        bw = np.ones(bridge.shape[0])
    else:
        bw = np.asarray(bridge_weights, dtype=float)
    edges = np.concatenate(
        [
            np.stack([us1, vs1], axis=1),
            np.stack([us2 + offset, vs2 + offset], axis=1),
            np.stack([bridge[:, 0], bridge[:, 1] + offset], axis=1)
            if bridge.size
            else np.empty((0, 2), dtype=np.int64),
        ]
    )
    weights = np.concatenate([ws1, ws2, bw])
    return from_edges(offset + second.num_nodes, edges, weights, combine="error")
