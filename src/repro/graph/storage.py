"""Binary on-disk graph storage: the ``.reprograph`` format.

Text edge lists are the interchange format; this module is the *scale*
format.  A ``.reprograph`` file is the graph's CSR arrays written
verbatim behind a fixed-size header, so loading is an ``np.memmap`` of
each array — a 100M-edge graph opens in seconds, costs no resident
memory beyond the pages actually touched, and is immediately usable by
every kernel in the library (they all read ``indptr``/``indices``/
``weights`` and nothing else).

Layout (all integers little-endian)::

    offset  size  field
    0       8     magic  b"REPROGRF"
    8       4     format version (currently 1)
    12      4     reserved flags (written 0, ignored on read)
    16      8     num_nodes  (uint64)
    24      8     num_arcs   (uint64; == 2 * num_edges)
    32      1     indptr  dtype code
    33      1     indices dtype code
    34      1     weights dtype code
    35      29    reserved padding (zeros)
    64      --    indptr  array  (num_nodes + 1 entries)
    --      --    indices array  (num_arcs entries, 8-byte aligned)
    --      --    weights array  (num_arcs entries, 8-byte aligned)

``indices`` are written as int32 whenever every node id fits (halving
the largest array on disk and in page cache) and int64 otherwise;
:class:`~repro.graph.graph.Graph` keeps whichever integer dtype the
file provides, so loading never materializes a widened copy.

Writing streams the arrays in bounded blocks — exporting a scale-tier
graph never builds an in-memory copy of the file.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Graph

__all__ = [
    "BINARY_SUFFIX",
    "FORMAT_VERSION",
    "peek_binary_header",
    "read_binary",
    "write_binary",
]

#: File suffix :func:`repro.datasets.load_any_graph` routes to this module.
BINARY_SUFFIX = ".reprograph"

MAGIC = b"REPROGRF"
FORMAT_VERSION = 1
HEADER_SIZE = 64
_HEADER_STRUCT = struct.Struct("<8sIIQQBBB")  # + zero padding to 64 bytes

# Dtype codes stored in the header.  Explicitly little-endian so files
# are portable across hosts.
_DTYPE_CODES = {
    1: np.dtype("<i4"),
    2: np.dtype("<i8"),
    3: np.dtype("<f4"),
    4: np.dtype("<f8"),
}
_CODE_FOR_DTYPE = {dtype: code for code, dtype in _DTYPE_CODES.items()}

# Elements converted/written per block while streaming arrays to disk.
_WRITE_BLOCK = 1 << 22


def _align8(offset):
    return (offset + 7) & ~7


def _corrupt(path, detail):
    return GraphError(f"{path}: not a valid {BINARY_SUFFIX} file ({detail})")


def _write_array(handle, array, dtype):
    """Stream ``array`` to ``handle`` as ``dtype``, block by block."""
    for start in range(0, array.size, _WRITE_BLOCK):
        block = np.ascontiguousarray(
            array[start:start + _WRITE_BLOCK], dtype=dtype
        )
        handle.write(memoryview(block))


def write_binary(graph, path, *, indices_dtype=None):
    """Write ``graph`` to ``path`` in the ``.reprograph`` binary format.

    Parameters
    ----------
    graph:
        The graph to store.
    path:
        Destination file (conventionally with the ``.reprograph``
        suffix, which :func:`repro.datasets.load_any_graph` recognizes).
    indices_dtype:
        On-disk dtype of the neighbor-id array.  Default: int32 when
        every node id fits, int64 otherwise.  int64 indptr and float64
        weights are always used.

    Returns
    -------
    pathlib.Path
        The path written.
    """
    path = Path(path)
    if indices_dtype is None:
        indices_dtype = (
            np.dtype("<i4") if graph.num_nodes <= np.iinfo(np.int32).max
            else np.dtype("<i8")
        )
    else:
        indices_dtype = np.dtype(indices_dtype)
        if indices_dtype not in (np.dtype("<i4"), np.dtype("<i8")):
            raise GraphError(
                f"indices_dtype must be int32 or int64; got {indices_dtype}"
            )
        if (graph.num_nodes > 0
                and graph.num_nodes - 1 > np.iinfo(indices_dtype).max):
            raise GraphError(
                f"indices_dtype {indices_dtype} cannot hold node ids up "
                f"to {graph.num_nodes - 1}"
            )
    indptr_dtype = np.dtype("<i8")
    weights_dtype = np.dtype("<f8")
    num_arcs = int(graph.indices.size)
    header = _HEADER_STRUCT.pack(
        MAGIC,
        FORMAT_VERSION,
        0,
        int(graph.num_nodes),
        num_arcs,
        _CODE_FOR_DTYPE[indptr_dtype],
        _CODE_FOR_DTYPE[indices_dtype],
        _CODE_FOR_DTYPE[weights_dtype],
    )
    header = header + b"\x00" * (HEADER_SIZE - len(header))
    with open(path, "wb") as handle:
        handle.write(header)
        offset = HEADER_SIZE
        for array, dtype in (
            (graph.indptr, indptr_dtype),
            (graph.indices, indices_dtype),
            (graph.weights, weights_dtype),
        ):
            padded = _align8(offset)
            if padded != offset:
                handle.write(b"\x00" * (padded - offset))
            _write_array(handle, array, dtype)
            offset = padded + array.size * dtype.itemsize
    return path


def peek_binary_header(path):
    """Parse and validate a ``.reprograph`` header without loading arrays.

    Returns a dict with ``num_nodes``, ``num_edges``, ``num_arcs``, the
    three dtype names, and the byte offset of each array.  Raises
    :class:`~repro.exceptions.GraphError` on anything malformed — wrong
    magic, unknown version or dtype codes, or a file too short to hold
    the arrays its header promises.
    """
    path = Path(path)
    try:
        file_size = path.stat().st_size
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise _corrupt(path, f"unreadable: {exc}") from exc
    if len(raw) < HEADER_SIZE:
        raise _corrupt(
            path, f"truncated header: {len(raw)} of {HEADER_SIZE} bytes"
        )
    magic, version, _flags, num_nodes, num_arcs, ic, jc, wc = (
        _HEADER_STRUCT.unpack_from(raw)
    )
    if magic != MAGIC:
        raise _corrupt(path, f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise _corrupt(
            path,
            f"unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})",
        )
    try:
        indptr_dtype = _DTYPE_CODES[ic]
        indices_dtype = _DTYPE_CODES[jc]
        weights_dtype = _DTYPE_CODES[wc]
    except KeyError as exc:
        raise _corrupt(path, f"unknown dtype code {exc}") from exc
    if indptr_dtype.kind != "i" or indices_dtype.kind != "i":
        raise _corrupt(path, "indptr/indices dtype codes must be integer")
    if weights_dtype.kind != "f":
        raise _corrupt(path, "weights dtype code must be floating point")
    if num_arcs % 2:
        raise _corrupt(
            path, f"num_arcs={num_arcs} is odd (undirected arcs come in pairs)"
        )
    indptr_offset = HEADER_SIZE
    indices_offset = _align8(
        indptr_offset + (num_nodes + 1) * indptr_dtype.itemsize
    )
    weights_offset = _align8(
        indices_offset + num_arcs * indices_dtype.itemsize
    )
    expected_size = weights_offset + num_arcs * weights_dtype.itemsize
    if file_size < expected_size:
        raise _corrupt(
            path,
            f"truncated payload: {file_size} bytes on disk, header "
            f"promises {expected_size}",
        )
    return {
        "path": path,
        "num_nodes": int(num_nodes),
        "num_edges": int(num_arcs) // 2,
        "num_arcs": int(num_arcs),
        "indptr_dtype": indptr_dtype.name,
        "indices_dtype": indices_dtype.name,
        "weights_dtype": weights_dtype.name,
        "indptr_offset": indptr_offset,
        "indices_offset": indices_offset,
        "weights_offset": weights_offset,
        "file_size": expected_size,
    }


def _load_array(path, mmap, offset, dtype, count):
    if count == 0:
        return np.empty(0, dtype=dtype)
    if mmap:
        return np.memmap(path, dtype=dtype, mode="r", offset=offset,
                         shape=(count,))
    with open(path, "rb") as handle:
        handle.seek(offset)
        return np.fromfile(handle, dtype=dtype, count=count)


def read_binary(path, *, mmap=True):
    """Load a graph written by :func:`write_binary`.

    With ``mmap=True`` (the default) the CSR arrays are read-only
    ``np.memmap`` views: opening is header-validation plus three mmap
    calls, and pages are faulted in only as algorithms touch them.
    ``mmap=False`` reads the arrays fully into memory (useful when the
    file will be deleted or rewritten while the graph is alive).

    The header is validated (magic, version, dtype codes, promised
    sizes), and cheap vectorized structural checks run on ``indptr``;
    the full quadratic-ish validation of
    :class:`~repro.graph.graph.Graph` is skipped, matching the builders'
    own trusted path.

    Raises
    ------
    GraphError
        On a missing, truncated, or structurally inconsistent file.
    """
    header = peek_binary_header(path)
    path = header["path"]
    indptr = _load_array(
        path, mmap, header["indptr_offset"],
        np.dtype(header["indptr_dtype"]), header["num_nodes"] + 1,
    )
    indices = _load_array(
        path, mmap, header["indices_offset"],
        np.dtype(header["indices_dtype"]), header["num_arcs"],
    )
    weights = _load_array(
        path, mmap, header["weights_offset"],
        np.dtype(header["weights_dtype"]), header["num_arcs"],
    )
    if indptr.size == 0 or indptr[0] != 0:
        raise _corrupt(path, "indptr must start at 0")
    if int(indptr[-1]) != header["num_arcs"]:
        raise _corrupt(
            path,
            f"indptr[-1]={int(indptr[-1])} disagrees with "
            f"num_arcs={header['num_arcs']}",
        )
    if np.any(np.diff(indptr) < 0):
        raise _corrupt(path, "indptr must be nondecreasing")
    return Graph(indptr, indices, weights, validate=False)
