"""Bipartite graph utilities and a community-structured bipartite generator.

The paper's Figure 1 is computed on *AtP-DBLP*, the bipartite author-to-paper
graph of DBLP. That snapshot is not available here, so
:func:`community_bipartite_graph` generates a synthetic stand-in with the
structural features the figure depends on (power-law author productivity,
papers concentrated inside research communities at several size scales, a
sprinkling of cross-community papers that make the graph globally
expander-like, and low-degree stringy fringes). See DESIGN.md §2 for the
substitution argument.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_int, check_positive, check_probability
from repro.exceptions import GraphError
from repro.graph.build import from_edges


def bipartite_from_memberships(num_left, memberships):
    """Build a bipartite graph from right-node membership lists.

    Parameters
    ----------
    num_left:
        Number of left nodes (ids ``0 .. num_left-1``).
    memberships:
        For each right node, an iterable of left-node ids it connects to.
        Right node ``j`` receives id ``num_left + j``.

    Returns
    -------
    graph:
        The bipartite :class:`~repro.graph.graph.Graph`.
    num_right:
        Number of right nodes.
    """
    num_left = check_int(num_left, "num_left", minimum=1)
    edges = []
    num_right = 0
    for j, members in enumerate(memberships):
        num_right += 1
        for u in members:
            if not 0 <= u < num_left:
                raise GraphError(
                    f"membership id {u} out of range [0, {num_left})"
                )
            edges.append((u, num_left + j))
    return from_edges(num_left + num_right, edges), num_right


def is_bipartite(graph):
    """Check 2-colorability by BFS; returns ``(flag, coloring_or_None)``."""
    n = graph.num_nodes
    color = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if color[start] >= 0:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if color[v] < 0:
                    color[v] = 1 - color[u]
                    stack.append(int(v))
                elif color[v] == color[u]:
                    return False, None
    return True, color


def project_left(graph, num_left):
    """One-mode projection of a bipartite graph onto its left nodes.

    Two left nodes are joined with weight equal to the number of common right
    neighbors (e.g. two authors joined by their number of coauthored papers).
    """
    num_left = check_int(num_left, "num_left", minimum=1,
                         maximum=graph.num_nodes)
    pair_weights = {}
    for right in range(num_left, graph.num_nodes):
        members = [int(v) for v in graph.neighbors(right) if v < num_left]
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                key = (u, v) if u < v else (v, u)
                pair_weights[key] = pair_weights.get(key, 0.0) + 1.0
    edges = list(pair_weights.keys())
    weights = [pair_weights[e] for e in edges]
    return from_edges(num_left, edges, weights)


def community_bipartite_graph(
    num_authors,
    num_papers,
    num_communities,
    seed=None,
    *,
    authors_per_paper_mean=3.0,
    crossover_probability=0.05,
    productivity_exponent=1.2,
    multi_membership_probability=0.15,
):
    """Synthetic author-to-paper bipartite network with planted communities.

    The generative story mirrors DBLP: authors belong to one (occasionally
    two) research communities; each paper is born in a community and draws
    its author list from that community with probability proportional to a
    power-law "productivity" weight, except that with probability
    ``crossover_probability`` an author slot is filled from the whole
    population (interdisciplinary collaborations — these supply the global
    expander-like mixing). Author counts per paper are ``1 + Poisson``
    distributed, so single-author papers create low-degree fringe.

    Parameters
    ----------
    num_authors, num_papers, num_communities:
        Sizes of the three populations.
    seed:
        RNG seed.
    authors_per_paper_mean:
        Mean of the ``1 + Poisson`` author-count distribution.
    crossover_probability:
        Probability that an author slot ignores the paper's community.
    productivity_exponent:
        Pareto tail exponent for author productivity (smaller = heavier).
    multi_membership_probability:
        Probability an author belongs to a second community.

    Returns
    -------
    graph:
        Bipartite graph; authors are ``0 .. num_authors-1``, papers are
        ``num_authors .. num_authors+num_papers-1``.
    author_communities:
        List of frozensets of community ids per author.
    paper_communities:
        ``(num_papers,)`` int array of the community each paper was born in.
    """
    num_authors = check_int(num_authors, "num_authors", minimum=2)
    num_papers = check_int(num_papers, "num_papers", minimum=1)
    num_communities = check_int(num_communities, "num_communities", minimum=1)
    check_positive(authors_per_paper_mean, "authors_per_paper_mean")
    check_probability(
        crossover_probability, "crossover_probability", inclusive_low=True
    )
    check_positive(productivity_exponent, "productivity_exponent")
    check_probability(
        multi_membership_probability,
        "multi_membership_probability",
        inclusive_low=True,
    )
    rng = as_rng(seed)

    primary = rng.integers(num_communities, size=num_authors)
    author_communities = []
    for a in range(num_authors):
        comms = {int(primary[a])}
        if num_communities > 1 and rng.random() < multi_membership_probability:
            comms.add(int(rng.integers(num_communities)))
        author_communities.append(frozenset(comms))

    productivity = rng.pareto(productivity_exponent, size=num_authors) + 1.0
    members = [[] for _ in range(num_communities)]
    member_weights = [[] for _ in range(num_communities)]
    for a, comms in enumerate(author_communities):
        for c in comms:
            members[c].append(a)
            member_weights[c].append(productivity[a])
    members = [np.asarray(m, dtype=np.int64) for m in members]
    member_probs = []
    for weights in member_weights:
        arr = np.asarray(weights, dtype=float)
        member_probs.append(arr / arr.sum() if arr.size else arr)
    global_probs = productivity / productivity.sum()

    paper_communities = rng.integers(num_communities, size=num_papers)
    edges = []
    for p in range(num_papers):
        community = int(paper_communities[p])
        count = 1 + int(rng.poisson(max(authors_per_paper_mean - 1.0, 0.0)))
        chosen = set()
        guard = 0
        while len(chosen) < count and guard < 20 * count:
            guard += 1
            if (
                members[community].size == 0
                or rng.random() < crossover_probability
            ):
                author = int(rng.choice(num_authors, p=global_probs))
            else:
                author = int(
                    rng.choice(members[community], p=member_probs[community])
                )
            chosen.add(author)
        for author in chosen:
            edges.append((author, num_authors + p))
    graph = from_edges(num_authors + num_papers, edges)
    return graph, author_communities, paper_communities
