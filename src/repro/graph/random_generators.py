"""Random graph families.

These generators provide the randomized side of the experiment suite:

* :func:`random_regular_graph` — with high probability a constant-degree
  expander, the worst case for flow/metric-embedding partitioners
  (Section 3.2);
* :func:`planted_partition_graph` / :func:`stochastic_block_model` — graphs
  with ground-truth communities at a known conductance scale;
* :func:`preferential_attachment_graph`, :func:`powerlaw_cluster_graph`,
  :func:`forest_fire_graph` — heavy-tailed "social network"-like graphs;
* :func:`whiskered_expander` — an expander core with stringy whiskers
  attached, the cartoon of the paper's description of large social networks
  ("expander-like when viewed at large size scales", with "structures
  analogous to stringy pieces that are cut off or regularized away by
  spectral methods").

Every generator takes a ``seed`` argument (int, ``numpy.random.Generator``,
or ``None``) and is deterministic given an integer seed.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_int, check_probability
from repro.exceptions import GraphError, InvalidParameterError
from repro.graph.build import from_edges
from repro.graph.generators import complete_graph, path_graph


def erdos_renyi_graph(n, p, seed=None):
    """G(n, p): each of the ``n(n-1)/2`` edges appears independently."""
    n = check_int(n, "n", minimum=1)
    p = check_probability(p, "p", inclusive_low=True, inclusive_high=True)
    rng = as_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    return from_edges(n, np.stack([iu[mask], ju[mask]], axis=1))


def random_regular_graph(n, degree, seed=None, *, max_tries=200):
    """Random ``degree``-regular simple graph via the configuration model.

    Repeatedly samples perfect matchings on the ``n * degree`` half-edge
    stubs and rejects pairings with self-loops or parallel edges. With high
    probability the result is an expander; Section 3.2 uses such graphs as
    the inputs on which flow-based methods pay their ``O(log n)`` factor.

    Raises
    ------
    InvalidParameterError
        If ``n * degree`` is odd or ``degree >= n``.
    GraphError
        If no simple pairing is found within ``max_tries`` attempts.
    """
    n = check_int(n, "n", minimum=2)
    degree = check_int(degree, "degree", minimum=1)
    if degree >= n:
        raise InvalidParameterError(f"degree must be < n; got {degree} >= {n}")
    if (n * degree) % 2:
        raise InvalidParameterError("n * degree must be even")
    rng = as_rng(seed)
    # Steger–Wormald style pairing: repeatedly join two random *suitable*
    # stubs (distinct endpoints, edge not yet present); restart on dead ends.
    # Unlike naive configuration-model rejection this succeeds with high
    # probability per attempt even for moderate degrees.
    for _ in range(max_tries):
        stubs = list(np.repeat(np.arange(n), degree))
        rng.shuffle(stubs)
        edges = set()
        dead_end = False
        while stubs:
            progressed = False
            rng.shuffle(stubs)
            retained = []
            i = 0
            while i + 1 < len(stubs):
                u, v = int(stubs[i]), int(stubs[i + 1])
                key = (u, v) if u < v else (v, u)
                if u != v and key not in edges:
                    edges.add(key)
                    progressed = True
                else:
                    retained.extend((stubs[i], stubs[i + 1]))
                i += 2
            if i < len(stubs):
                retained.append(stubs[i])
            stubs = retained
            if not progressed:
                dead_end = True
                break
        if not dead_end and not stubs:
            return from_edges(n, sorted(edges))
    raise GraphError(
        f"failed to sample a simple {degree}-regular graph in {max_tries} tries"
    )


def watts_strogatz_graph(n, k, p, seed=None):
    """Watts–Strogatz small world: ring lattice with random rewiring.

    ``k`` (even) is the lattice degree and ``p`` the rewiring probability.
    """
    n = check_int(n, "n", minimum=3)
    k = check_int(k, "k", minimum=2, maximum=n - 1)
    if k % 2:
        raise InvalidParameterError(f"k must be even; got {k}")
    p = check_probability(p, "p", inclusive_low=True, inclusive_high=True)
    rng = as_rng(seed)
    existing = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            existing.add(tuple(sorted((u, (u + offset) % n))))
    edges = sorted(existing)
    final = set(existing)
    for u, v in edges:
        if rng.random() < p:
            final.discard((u, v))
            for _ in range(50):
                w = int(rng.integers(n))
                cand = tuple(sorted((u, w)))
                if w != u and cand not in final:
                    final.add(cand)
                    break
            else:
                final.add((u, v))
    return from_edges(n, sorted(final))


def preferential_attachment_graph(n, m, seed=None):
    """Barabási–Albert preferential attachment with ``m`` edges per new node."""
    n = check_int(n, "n", minimum=2)
    m = check_int(m, "m", minimum=1, maximum=n - 1)
    rng = as_rng(seed)
    edges = set()
    # Seed: a star on m + 1 nodes so early targets have nonzero degree.
    targets_pool = []
    for i in range(1, m + 1):
        edges.add((0, i))
        targets_pool.extend([0, i])
    for new in range(m + 1, n):
        chosen = set()
        while len(chosen) < m:
            pick = targets_pool[int(rng.integers(len(targets_pool)))]
            chosen.add(pick)
        for t in chosen:
            edges.add(tuple(sorted((new, t))))
            targets_pool.extend([new, t])
    return from_edges(n, sorted(edges))


def powerlaw_cluster_graph(n, m, triangle_p, seed=None):
    """Holme–Kim model: preferential attachment plus triad closure.

    After each preferential step, with probability ``triangle_p`` the next
    edge closes a triangle with a neighbor of the previous target, producing
    the locally dense, heavy-tailed structure of social graphs.
    """
    n = check_int(n, "n", minimum=2)
    m = check_int(m, "m", minimum=1, maximum=n - 1)
    triangle_p = check_probability(
        triangle_p, "triangle_p", inclusive_low=True, inclusive_high=True
    )
    rng = as_rng(seed)
    edges = set()
    adjacency = [set() for _ in range(n)]

    def add(u, v):
        if u == v:
            return False
        key = tuple(sorted((u, v)))
        if key in edges:
            return False
        edges.add(key)
        adjacency[u].add(v)
        adjacency[v].add(u)
        targets_pool.extend([u, v])
        return True

    targets_pool = []
    for i in range(1, m + 1):
        edges.add((0, i))
        adjacency[0].add(i)
        adjacency[i].add(0)
        targets_pool.extend([0, i])
    for new in range(m + 1, n):
        added = 0
        last_target = None
        guard = 0
        while added < m and guard < 100 * m:
            guard += 1
            if (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triangle_p
            ):
                neighbor = list(adjacency[last_target])[
                    int(rng.integers(len(adjacency[last_target])))
                ]
                if add(new, neighbor):
                    added += 1
                    last_target = neighbor
                    continue
            pick = targets_pool[int(rng.integers(len(targets_pool)))]
            if add(new, pick):
                added += 1
                last_target = pick
    return from_edges(n, sorted(edges))


def planted_partition_graph(num_blocks, block_size, p_in, p_out, seed=None):
    """Planted-partition model: ``num_blocks`` blocks of equal size.

    Edges appear with probability ``p_in`` inside a block and ``p_out``
    across blocks. With ``p_in >> p_out`` each block is a ground-truth
    cluster whose expected conductance is computable in closed form.
    """
    b = check_int(num_blocks, "num_blocks", minimum=1)
    s = check_int(block_size, "block_size", minimum=1)
    probabilities = np.full((b, b), check_probability(
        p_out, "p_out", inclusive_low=True, inclusive_high=True
    ))
    np.fill_diagonal(probabilities, check_probability(
        p_in, "p_in", inclusive_low=True, inclusive_high=True
    ))
    return stochastic_block_model([s] * b, probabilities, seed=seed)


def stochastic_block_model(block_sizes, probabilities, seed=None):
    """General stochastic block model.

    Parameters
    ----------
    block_sizes:
        Sequence of positive block sizes.
    probabilities:
        Symmetric ``(b, b)`` matrix of inter-block edge probabilities.
    seed:
        RNG seed.
    """
    sizes = [check_int(s, "block size", minimum=1) for s in block_sizes]
    probs = np.asarray(probabilities, dtype=float)
    b = len(sizes)
    if probs.shape != (b, b) or not np.allclose(probs, probs.T):
        raise InvalidParameterError(
            f"probabilities must be a symmetric ({b}, {b}) matrix"
        )
    if np.any(probs < 0) or np.any(probs > 1):
        raise InvalidParameterError("probabilities must lie in [0, 1]")
    rng = as_rng(seed)
    starts = np.concatenate([[0], np.cumsum(sizes)])
    n = int(starts[-1])
    all_edges = []
    for bi in range(b):
        for bj in range(bi, b):
            p = probs[bi, bj]
            if p == 0:
                continue
            if bi == bj:
                iu, ju = np.triu_indices(sizes[bi], k=1)
                iu = iu + starts[bi]
                ju = ju + starts[bi]
            else:
                iu, ju = np.meshgrid(
                    np.arange(sizes[bi]) + starts[bi],
                    np.arange(sizes[bj]) + starts[bj],
                    indexing="ij",
                )
                iu, ju = iu.ravel(), ju.ravel()
            mask = rng.random(iu.size) < p
            if mask.any():
                all_edges.append(np.stack([iu[mask], ju[mask]], axis=1))
    edges = (
        np.concatenate(all_edges) if all_edges else np.empty((0, 2), dtype=np.int64)
    )
    return from_edges(n, edges)


def block_labels(block_sizes):
    """Ground-truth labels aligned with :func:`stochastic_block_model`."""
    sizes = [check_int(s, "block size", minimum=1) for s in block_sizes]
    return np.repeat(np.arange(len(sizes)), sizes)


def forest_fire_graph(n, forward_p, seed=None):
    """Forest-fire model (Leskovec et al.), undirected variant.

    Each new node picks a random ambassador and "burns" through its
    neighborhood: it links to the ambassador, then recursively to a
    geometrically distributed number of the ambassador's neighbors. Produces
    heavy-tailed degrees, densification, and community structure — the class
    of networks Figure 1 is about.
    """
    n = check_int(n, "n", minimum=2)
    forward_p = check_probability(forward_p, "forward_p")
    rng = as_rng(seed)
    adjacency = [set() for _ in range(n)]
    adjacency[0].add(1)
    adjacency[1].add(0)
    edges = {(0, 1)}
    for new in range(2, n):
        ambassador = int(rng.integers(new))
        visited = {ambassador}
        frontier = [ambassador]
        while frontier:
            u = frontier.pop()
            edges.add(tuple(sorted((new, u))))
            candidates = [v for v in adjacency[u] if v not in visited]
            if not candidates:
                continue
            # Geometric(1 - forward_p) number of neighbors to burn.
            burn = min(int(rng.geometric(1.0 - forward_p)) - 1, len(candidates))
            if burn > 0:
                picks = rng.choice(len(candidates), size=burn, replace=False)
                for idx in picks:
                    visited.add(candidates[idx])
                    frontier.append(candidates[idx])
        for u in visited:
            adjacency[new].add(u)
            adjacency[u].add(new)
    return from_edges(n, sorted(edges))


def whiskered_expander(
    core_n, core_degree, num_whiskers, whisker_length, seed=None
):
    """Expander core with path "whiskers" hanging off distinct core nodes.

    This is the minimal model of the paper's description of large social
    networks: expander-like at large scales, with small stringy pieces whose
    removal is what good-conductance cuts do. Whisker ``w`` attaches to core
    node ``w`` and occupies ids ``core_n + w*len .. core_n + (w+1)*len - 1``.
    """
    core_n = check_int(core_n, "core_n", minimum=4)
    num_whiskers = check_int(num_whiskers, "num_whiskers", minimum=0,
                             maximum=core_n)
    whisker_length = check_int(whisker_length, "whisker_length", minimum=1)
    core = random_regular_graph(core_n, core_degree, seed=seed)
    us, vs, ws = core.edge_array()
    edges = list(zip(us.tolist(), vs.tolist()))
    next_id = core_n
    for w in range(num_whiskers):
        chain = [w] + list(range(next_id, next_id + whisker_length))
        edges.extend(zip(chain[:-1], chain[1:]))
        next_id += whisker_length
    return from_edges(next_id, edges)


def noisy_graph(graph, flip_probability, seed=None):
    """Resample a graph by deleting each edge independently and adding noise.

    Each existing edge is kept with probability ``1 - flip_probability``;
    additionally ``flip_probability * m`` uniformly random non-edges are
    inserted (in expectation), keeping the edge count roughly constant. Used
    by the implicit-regularization experiments (E10) to measure output
    robustness to input noise.
    """
    flip_probability = check_probability(
        flip_probability, "flip_probability", inclusive_low=True
    )
    rng = as_rng(seed)
    n = graph.num_nodes
    us, vs, ws = graph.edge_array()
    keep = rng.random(us.size) >= flip_probability
    kept = {(int(u), int(v)) for u, v in zip(us[keep], vs[keep])}
    existing = {(int(u), int(v)) for u, v in zip(us, vs)}
    target_new = int(round(flip_probability * us.size))
    added = set()
    guard = 0
    while len(added) < target_new and guard < 50 * (target_new + 1):
        guard += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing or key in added:
            continue
        added.add(key)
    final = sorted(kept | added)
    return from_edges(n, final)
