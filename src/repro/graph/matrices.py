"""Matrices associated with a graph.

This module realizes the matrix menagerie of Section 3.1 of the paper:

* adjacency matrix ``A``,
* diagonal degree matrix ``D`` with ``D_ii = sum_j A_ij``,
* combinatorial Laplacian ``L = D - A``,
* normalized Laplacian ``𝓛 = D^{-1/2} L D^{-1/2} = I - D^{-1/2} A D^{-1/2}``,
* natural random-walk transition matrix ``M = A D^{-1}`` (column-stochastic,
  matching Equation (2) of the paper),
* lazy random-walk matrix ``W_α = α I + (1 - α) M``.

All functions return ``scipy.sparse.csr_matrix`` (or a dense vector for the
degree data) so that matrix–vector products preserve sparsity, which is the
property the paper highlights as making the Power Method Web-scale friendly.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro._validation import check_probability
from repro.exceptions import GraphError


def adjacency_matrix(graph):
    """Sparse CSR adjacency matrix ``A`` of the graph."""
    n = graph.num_nodes
    return sparse.csr_matrix(
        (graph.weights.copy(), graph.indices.copy(), graph.indptr.copy()),
        shape=(n, n),
    )


def degree_vector(graph):
    """Weighted degree vector ``d`` (copy)."""
    return graph.degrees.copy()


def degree_matrix(graph):
    """Sparse diagonal degree matrix ``D``."""
    return sparse.diags(graph.degrees, format="csr")


def combinatorial_laplacian(graph):
    """Combinatorial Laplacian ``L = D - A`` (sparse CSR)."""
    return (degree_matrix(graph) - adjacency_matrix(graph)).tocsr()


def normalized_laplacian(graph):
    """Normalized Laplacian ``𝓛 = I - D^{-1/2} A D^{-1/2}`` (sparse CSR).

    Raises :class:`GraphError` if the graph has an isolated (zero-degree)
    node, for which the normalization is undefined.
    """
    d = graph.degrees
    if np.any(d <= 0):
        raise GraphError("normalized Laplacian requires all degrees positive")
    inv_sqrt = sparse.diags(1.0 / np.sqrt(d), format="csr")
    n = graph.num_nodes
    identity = sparse.identity(n, format="csr")
    return (identity - inv_sqrt @ adjacency_matrix(graph) @ inv_sqrt).tocsr()


def random_walk_matrix(graph):
    """Natural random-walk matrix ``M = A D^{-1}`` (column-stochastic).

    Column ``j`` holds the transition probabilities out of node ``j``; this
    matches Equation (2) of the paper, where the charge vector is multiplied
    on the left by ``M``.
    """
    d = graph.degrees
    if np.any(d <= 0):
        raise GraphError("random-walk matrix requires all degrees positive")
    inv = sparse.diags(1.0 / d, format="csr")
    return (adjacency_matrix(graph) @ inv).tocsr()


def lazy_walk_matrix(graph, alpha=0.5):
    """Lazy random-walk matrix ``W_α = α I + (1 - α) M``.

    ``alpha`` is the holding probability, in ``(0, 1)``; the paper's Section
    3.1 introduces this as the third canonical diffusion dynamics.
    """
    alpha = check_probability(alpha, "alpha")
    n = graph.num_nodes
    return (
        alpha * sparse.identity(n, format="csr")
        + (1.0 - alpha) * random_walk_matrix(graph)
    ).tocsr()


def trivial_eigenvector(graph):
    """Degree-weighted all-ones vector ``v1 = D^{1/2} 1 / ||D^{1/2} 1||``.

    This is the trivial eigenvector of the normalized Laplacian (eigenvalue
    zero); every nontrivial spectral computation in the library deflates
    against it, implementing the ``x^T D^{1/2} 1 = 0`` constraint of
    Problem (3).
    """
    d = graph.degrees
    if np.any(d <= 0):
        raise GraphError("trivial eigenvector requires all degrees positive")
    v = np.sqrt(d)
    return v / np.linalg.norm(v)


def rayleigh_quotient(matrix, vector):
    """Rayleigh quotient ``x^T M x / x^T x`` for a symmetric operator."""
    vector = np.asarray(vector, dtype=float)
    denom = float(vector @ vector)
    if denom == 0.0:
        raise GraphError("Rayleigh quotient of the zero vector is undefined")
    return float(vector @ (matrix @ vector)) / denom


def laplacian_quadratic_form(graph, vector):
    """Evaluate ``x^T L x = sum_{(u,v) in E} w_uv (x_u - x_v)^2`` directly.

    Computed edge-by-edge (not via the matrix) so it can serve as an
    independent oracle in tests.
    """
    x = np.asarray(vector, dtype=float)
    if x.shape != (graph.num_nodes,):
        raise GraphError(
            f"vector must have shape ({graph.num_nodes},); got {x.shape}"
        )
    us, vs, ws = graph.edge_array()
    if us.size == 0:
        return 0.0
    diff = x[us] - x[vs]
    return float(np.sum(ws * diff * diff))
