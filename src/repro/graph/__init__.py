"""Graph substrate: data structure, builders, matrices, generators, I/O."""

from repro.graph.build import (
    connected_component_labels,
    empty_graph,
    from_dense,
    from_edges,
    from_scipy_sparse,
    induced_subgraph_fast,
    largest_component_fast,
    union_disjoint,
)
from repro.graph.graph import Graph
from repro.graph.storage import (
    peek_binary_header,
    read_binary,
    write_binary,
)
from repro.graph.matrices import (
    adjacency_matrix,
    combinatorial_laplacian,
    degree_matrix,
    degree_vector,
    laplacian_quadratic_form,
    lazy_walk_matrix,
    normalized_laplacian,
    random_walk_matrix,
    rayleigh_quotient,
    trivial_eigenvector,
)

__all__ = [
    "Graph",
    "connected_component_labels",
    "empty_graph",
    "from_dense",
    "from_edges",
    "from_scipy_sparse",
    "induced_subgraph_fast",
    "largest_component_fast",
    "peek_binary_header",
    "read_binary",
    "union_disjoint",
    "write_binary",
    "adjacency_matrix",
    "combinatorial_laplacian",
    "degree_matrix",
    "degree_vector",
    "laplacian_quadratic_form",
    "lazy_walk_matrix",
    "normalized_laplacian",
    "random_walk_matrix",
    "rayleigh_quotient",
    "trivial_eigenvector",
]
