"""Graph substrate: data structure, builders, matrices, generators, I/O."""

from repro.graph.build import (
    empty_graph,
    from_dense,
    from_edges,
    from_scipy_sparse,
    union_disjoint,
)
from repro.graph.graph import Graph
from repro.graph.matrices import (
    adjacency_matrix,
    combinatorial_laplacian,
    degree_matrix,
    degree_vector,
    laplacian_quadratic_form,
    lazy_walk_matrix,
    normalized_laplacian,
    random_walk_matrix,
    rayleigh_quotient,
    trivial_eigenvector,
)

__all__ = [
    "Graph",
    "empty_graph",
    "from_dense",
    "from_edges",
    "from_scipy_sparse",
    "union_disjoint",
    "adjacency_matrix",
    "combinatorial_laplacian",
    "degree_matrix",
    "degree_vector",
    "laplacian_quadratic_form",
    "lazy_walk_matrix",
    "normalized_laplacian",
    "random_walk_matrix",
    "rayleigh_quotient",
    "trivial_eigenvector",
]
