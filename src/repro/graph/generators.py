"""Deterministic graph families.

These families are the standard stress inputs of spectral and flow-based
partitioning theory, several of which the paper names explicitly:

* "long stringy" graphs (paths, lollipops, and the Guattery–Miller *roach*)
  on which spectral methods saturate the quadratic Cheeger bound, because
  spectral methods "confuse long paths with deep cuts" (Section 3.2);
* near-expanders (complete graphs, hypercubes) on which flow-based metric
  embeddings pay their ``O(log n)`` factor;
* planted-cut families (barbell, ring of cliques, caveman) whose optimal
  conductance cut is known in closed form, used as test oracles.

All generators return validated :class:`~repro.graph.graph.Graph` objects
with unit weights unless stated otherwise.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_int, check_positive
from repro.exceptions import InvalidParameterError
from repro.graph.build import from_edges


def path_graph(n):
    """Path on ``n`` nodes: the canonical "long stringy" graph."""
    n = check_int(n, "n", minimum=1)
    edges = [(i, i + 1) for i in range(n - 1)]
    return from_edges(n, edges)


def cycle_graph(n):
    """Cycle on ``n >= 3`` nodes."""
    n = check_int(n, "n", minimum=3)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return from_edges(n, edges)


def complete_graph(n, weight=1.0):
    """Complete graph ``K_n``; the SDP relaxation's implicit target geometry.

    Section 3.2 (footnote 21) notes that the spectral relaxation embeds a
    scaled complete graph into the input graph; having ``K_n`` around makes
    that statement testable.
    """
    n = check_int(n, "n", minimum=1)
    weight = check_positive(weight, "weight")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return from_edges(n, edges, [weight] * len(edges))


def star_graph(n_leaves):
    """Star with one hub (node 0) and ``n_leaves`` leaves."""
    n_leaves = check_int(n_leaves, "n_leaves", minimum=1)
    edges = [(0, i) for i in range(1, n_leaves + 1)]
    return from_edges(n_leaves + 1, edges)


def grid_graph(rows, cols):
    """4-neighbor ``rows x cols`` grid; a manifold discretization."""
    rows = check_int(rows, "rows", minimum=1)
    cols = check_int(cols, "cols", minimum=1)
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return from_edges(rows * cols, edges)


def torus_graph(rows, cols):
    """``rows x cols`` grid with wraparound (discrete torus)."""
    rows = check_int(rows, "rows", minimum=3)
    cols = check_int(cols, "cols", minimum=3)
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            edges.append((u, r * cols + (c + 1) % cols))
            edges.append((u, ((r + 1) % rows) * cols + c))
    return from_edges(rows * cols, edges)


def barbell_graph(clique_size, path_length=0):
    """Two ``K_k`` cliques joined by a path of ``path_length`` extra nodes.

    The minimum-conductance cut separates the two cliques; with
    ``path_length = 0`` the two cliques share a single bridging edge.
    """
    k = check_int(clique_size, "clique_size", minimum=2)
    p = check_int(path_length, "path_length", minimum=0)
    n = 2 * k + p
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((i, j))
            edges.append((k + p + i, k + p + j))
    chain = [k - 1] + list(range(k, k + p)) + [k + p]
    for a, b in zip(chain[:-1], chain[1:]):
        edges.append((a, b))
    return from_edges(n, edges)


def lollipop_graph(clique_size, path_length):
    """``K_k`` with a path of ``path_length`` nodes hanging off it.

    A canonical "long stringy piece attached to a well-connected core": the
    spectral sweep cut wants to cut the path in half, while the best
    conductance cut severs the path where it meets the clique.
    """
    k = check_int(clique_size, "clique_size", minimum=2)
    p = check_int(path_length, "path_length", minimum=1)
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    edges.append((k - 1, k))
    edges.extend((k + i, k + i + 1) for i in range(p - 1))
    return from_edges(k + p, edges)


def roach_graph(body_length, antenna_length):
    """The Guattery–Miller *roach* graph [21].

    Two parallel paths of ``body_length + antenna_length`` nodes; the first
    ``body_length`` positions are rungs of a ladder (the body), the remaining
    positions are two disjoint dangling paths (the antennae). The natural
    "cut the body from the antennae" partition has far better conductance
    than the spectral bisection, which splits the graph lengthwise; this is
    the classic instance showing the Cheeger quadratic factor is real.
    """
    b = check_int(body_length, "body_length", minimum=1)
    a = check_int(antenna_length, "antenna_length", minimum=1)
    length = b + a
    top = list(range(length))
    bottom = list(range(length, 2 * length))
    edges = []
    for row in (top, bottom):
        edges.extend((row[i], row[i + 1]) for i in range(length - 1))
    edges.extend((top[i], bottom[i]) for i in range(b))
    return from_edges(2 * length, edges)


def ladder_graph(length):
    """Ladder: two paths of ``length`` nodes joined by rungs."""
    length = check_int(length, "length", minimum=2)
    edges = []
    for i in range(length - 1):
        edges.append((i, i + 1))
        edges.append((length + i, length + i + 1))
    edges.extend((i, length + i) for i in range(length))
    return from_edges(2 * length, edges)


def ring_of_cliques(num_cliques, clique_size):
    """``num_cliques`` copies of ``K_k`` arranged in a ring, bridged by edges.

    Clique ``c`` occupies ids ``c*k .. (c+1)*k - 1``; node ``c*k`` links to
    node ``(c+1)*k - 1`` of the previous clique. Every single clique is a
    good-conductance, high-niceness cluster — the idealized "community".
    """
    c = check_int(num_cliques, "num_cliques", minimum=3)
    k = check_int(clique_size, "clique_size", minimum=2)
    edges = []
    for q in range(c):
        base = q * k
        edges.extend(
            (base + i, base + j) for i in range(k) for j in range(i + 1, k)
        )
        nxt = ((q + 1) % c) * k
        edges.append((base + k - 1, nxt))
    return from_edges(c * k, edges)


def connected_caveman_graph(num_caves, cave_size):
    """Connected caveman graph: cliques with one edge rewired to the next cave."""
    c = check_int(num_caves, "num_caves", minimum=3)
    k = check_int(cave_size, "cave_size", minimum=3)
    edges = set()
    for q in range(c):
        base = q * k
        for i in range(k):
            for j in range(i + 1, k):
                edges.add((base + i, base + j))
        # Rewire the (0, 1) edge of each cave to point into the next cave.
        edges.discard((base, base + 1))
        edges.add(tuple(sorted((base, ((q + 1) % c) * k + 1))))
    return from_edges(c * k, sorted(edges))


def binary_tree_graph(depth):
    """Complete binary tree of the given depth (``depth = 0`` is one node)."""
    depth = check_int(depth, "depth", minimum=0)
    n = 2 ** (depth + 1) - 1
    edges = [(child, (child - 1) // 2) for child in range(1, n)]
    return from_edges(n, edges)


def hypercube_graph(dimension):
    """Boolean hypercube ``Q_d``: a bounded-degree near-expander."""
    d = check_int(dimension, "dimension", minimum=1)
    n = 1 << d
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(d) if u < u ^ (1 << b)]
    return from_edges(n, edges)


def weighted_path_graph(weights):
    """Path whose ``i``-th edge has the given positive weight."""
    weights = list(weights)
    if not weights:
        raise InvalidParameterError("weighted_path_graph needs >= 1 edge weight")
    edges = [(i, i + 1) for i in range(len(weights))]
    return from_edges(len(weights) + 1, edges, weights)


def dumbbell_expander(core_size, path_length):
    """Two complete cores joined by a long path (an expander-with-a-bar).

    Unlike :func:`barbell_graph` the connecting path is the interesting part:
    its length controls how badly the spectral method wants to cut the bar in
    the middle rather than at its ends.
    """
    k = check_int(core_size, "core_size", minimum=3)
    p = check_int(path_length, "path_length", minimum=1)
    return barbell_graph(k, p)
