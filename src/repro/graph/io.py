"""Graph serialization: edge-list text files and JSON documents.

Formats
-------
Edge list (``.tsv``-style): one edge per line, ``u<TAB>v[<TAB>weight]``,
lines starting with ``#`` ignored. The node count is ``max id + 1`` unless
given explicitly. Node ids must be nonnegative integers (an integral
value with a decimal point, e.g. ``3.0``, is accepted by the fast
parser).

JSON: ``{"num_nodes": n, "edges": [[u, v, w], ...]}``. Round-trips exactly
(weights are floats).

Both directions stream: reading parses the file in bounded chunks
through NumPy's C tokenizer (a real SNAP-format edge list ingests at
array speed, with a per-line re-parse only on malformed input so errors
still carry exact ``file:line`` context), and writing emits bounded
blocks of lines so exporting a scale-tier graph never materializes the
whole file — or the whole edge set — in memory.

The binary ``.reprograph`` format for memory-mapped loading lives in
:mod:`repro.graph.storage`.
"""

from __future__ import annotations

import io
import json
import warnings
from pathlib import Path

import numpy as np

from repro.exceptions import GraphError
from repro.graph.build import from_edges

# Bytes of text parsed per chunk while reading, and undirected edges
# formatted per block while writing.  Both bound peak memory without
# giving up vectorized inner loops.
_READ_BLOCK_BYTES = 1 << 22
_WRITE_BLOCK_EDGES = 1 << 16


def _iter_edge_blocks(graph, *, rows_per_block=None):
    """Yield ``(us, vs, ws)`` blocks of undirected edges, ``u < v``.

    Iterates the CSR arrays a bounded slab of rows at a time, in the
    same (u ascending, v ascending) order ``Graph.edges()`` produces,
    without ever materializing the full edge list.
    """
    if rows_per_block is None:
        rows_per_block = _WRITE_BLOCK_EDGES
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    n = graph.num_nodes
    for row0 in range(0, n, rows_per_block):
        row1 = min(row0 + rows_per_block, n)
        arc0, arc1 = int(indptr[row0]), int(indptr[row1])
        if arc0 == arc1:
            continue
        src = np.repeat(
            np.arange(row0, row1, dtype=np.int64),
            np.diff(indptr[row0:row1 + 1]),
        )
        dst = indices[arc0:arc1]
        keep = src < dst
        if not np.any(keep):
            # Every arc in this slab is the duplicate (u > v) direction;
            # an empty block would make the writer emit a bare newline.
            continue
        yield src[keep], dst[keep], weights[arc0:arc1][keep]


def write_edge_list(graph, path, *, write_weights=True):
    """Write the graph as an edge-list text file (streamed)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(
            f"# repro graph: {graph.num_nodes} nodes, "
            f"{graph.num_edges} edges\n"
        )
        for us, vs, ws in _iter_edge_blocks(graph):
            if write_weights:
                lines = [
                    f"{u}\t{v}\t{w!r}"
                    for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist())
                ]
            else:
                lines = [
                    f"{u}\t{v}" for u, v in zip(us.tolist(), vs.tolist())
                ]
            handle.write("\n".join(lines) + "\n")


def _iter_line_chunks(handle, *, block_bytes=None):
    """Yield ``(chunk_bytes, first_line_number)`` split on line boundaries."""
    if block_bytes is None:
        block_bytes = _READ_BLOCK_BYTES
    first_line = 1
    carry = b""
    while True:
        block = handle.read(block_bytes)
        if not block:
            if carry:
                yield carry, first_line
            return
        block = carry + block
        cut = block.rfind(b"\n")
        if cut < 0:
            carry = block
            continue
        chunk, carry = block[:cut + 1], block[cut + 1:]
        yield chunk, first_line
        first_line += chunk.count(b"\n")


def _parse_chunk_slow(path, chunk, first_line):
    """Line-by-line parse of one chunk: exact errors, mixed columns ok."""
    edges, weights = [], []
    for offset, raw in enumerate(
        chunk.decode("utf-8", errors="replace").splitlines()
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise GraphError(
                f"{path}:{first_line + offset}: expected 'u v [weight]'; "
                f"got {raw!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError as exc:
            raise GraphError(
                f"{path}:{first_line + offset}: unparseable edge {raw!r}"
            ) from exc
        edges.append((u, v))
        weights.append(w)
    if not edges:
        return None
    return (
        np.asarray(edges, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def _parse_chunk(path, chunk, first_line):
    """Parse one chunk of edge-list text into ``(ids, weights)`` arrays.

    The fast path hands the whole chunk to :func:`np.loadtxt`'s C
    tokenizer; anything it cannot digest (ragged rows, non-numeric
    tokens, non-integral ids) falls back to the per-line parser, which
    either succeeds (legal mixed 2/3-column chunks) or raises
    :class:`~repro.exceptions.GraphError` with ``file:line`` context.
    """
    try:
        with warnings.catch_warnings():
            # An all-comment chunk is legal input, not worth a
            # "loadtxt: input contained no data" warning.
            warnings.simplefilter("ignore")
            table = np.loadtxt(
                io.BytesIO(chunk), comments="#", dtype=np.float64, ndmin=2
            )
    # Deliberate catch-all: whatever the C tokenizer chokes on, the
    # slow path re-parses and either succeeds or raises GraphError with
    # file:line context.
    except Exception:  # repro-lint: disable=exception-policy
        return _parse_chunk_slow(path, chunk, first_line)
    if table.size == 0:
        return None
    if table.shape[1] not in (2, 3):
        return _parse_chunk_slow(path, chunk, first_line)
    ids = table[:, :2].astype(np.int64)
    if not np.array_equal(ids, table[:, :2]):
        return _parse_chunk_slow(path, chunk, first_line)
    if table.shape[1] == 3:
        weights = table[:, 2].copy()
    else:
        weights = np.ones(table.shape[0])
    return ids, weights


def _first_negative_id_line(path):
    """Locate the first data line carrying a negative node id."""
    with open(path, "rb") as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if int(float(parts[0])) < 0 or int(float(parts[1])) < 0:
                    return line_no, line
            except (ValueError, IndexError):
                continue
    return None, ""


def read_edge_list(path, *, num_nodes=None):
    """Read a graph from an edge-list text file.

    Parameters
    ----------
    path:
        File to read.
    num_nodes:
        Optional explicit node count (must cover every id in the file);
        defaults to ``max id + 1``.

    Raises
    ------
    GraphError
        On malformed lines, negative node ids (NumPy would otherwise
        wrap them around to the top of the id range and silently corrupt
        the CSR), or a ``num_nodes`` that does not cover the file — each
        with ``file:line`` context where a specific line is at fault.
    """
    path = Path(path)
    id_blocks, weight_blocks = [], []
    with open(path, "rb") as handle:
        for chunk, first_line in _iter_line_chunks(handle):
            parsed = _parse_chunk(path, chunk, first_line)
            if parsed is None:
                continue
            ids, weights = parsed
            id_blocks.append(ids)
            weight_blocks.append(weights)
    if id_blocks:
        edges = np.concatenate(id_blocks)
        weights = np.concatenate(weight_blocks)
        max_id = int(edges.max())
        if int(edges.min()) < 0:
            line_no, line = _first_negative_id_line(path)
            where = f"{path}:{line_no}" if line_no is not None else f"{path}"
            raise GraphError(
                f"{where}: negative node id in edge {line!r}; "
                f"node ids must be >= 0"
            )
    else:
        edges = np.empty((0, 2), dtype=np.int64)
        weights = np.empty(0, dtype=np.float64)
        max_id = -1
    n = num_nodes if num_nodes is not None else max_id + 1
    if n <= max_id:
        raise GraphError(
            f"num_nodes={n} does not cover max node id {max_id} in {path}"
        )
    return from_edges(max(n, 0), edges, weights)


def to_json_document(graph):
    """Serialize the graph to a JSON-compatible dict."""
    return {
        "num_nodes": graph.num_nodes,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
    }


def from_json_document(document):
    """Deserialize a graph from :func:`to_json_document` output."""
    try:
        n = int(document["num_nodes"])
        raw_edges = document["edges"]
    except (KeyError, TypeError) as exc:
        raise GraphError("JSON document must have num_nodes and edges") from exc
    edges = [(int(e[0]), int(e[1])) for e in raw_edges]
    weights = [float(e[2]) if len(e) > 2 else 1.0 for e in raw_edges]
    return from_edges(n, edges, weights)


def write_json(graph, path):
    """Write the graph as a JSON file."""
    Path(path).write_text(json.dumps(to_json_document(graph)), encoding="utf-8")


def read_json(path):
    """Read a graph from a JSON file written by :func:`write_json`."""
    return from_json_document(json.loads(Path(path).read_text(encoding="utf-8")))
