"""Graph serialization: edge-list text files and JSON documents.

Formats
-------
Edge list (``.tsv``-style): one edge per line, ``u<TAB>v[<TAB>weight]``,
lines starting with ``#`` ignored. The node count is ``max id + 1`` unless
given explicitly.

JSON: ``{"num_nodes": n, "edges": [[u, v, w], ...]}``. Round-trips exactly
(weights are floats).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import GraphError
from repro.graph.build import from_edges


def write_edge_list(graph, path, *, write_weights=True):
    """Write the graph as an edge-list text file."""
    path = Path(path)
    lines = [f"# repro graph: {graph.num_nodes} nodes, {graph.num_edges} edges"]
    for u, v, w in graph.edges():
        if write_weights:
            lines.append(f"{u}\t{v}\t{w!r}")
        else:
            lines.append(f"{u}\t{v}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path, *, num_nodes=None):
    """Read a graph from an edge-list text file.

    Parameters
    ----------
    path:
        File to read.
    num_nodes:
        Optional explicit node count (must cover every id in the file);
        defaults to ``max id + 1``.
    """
    path = Path(path)
    edges, weights = [], []
    max_id = -1
    for line_no, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise GraphError(
                f"{path}:{line_no}: expected 'u v [weight]'; got {raw!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError as exc:
            raise GraphError(f"{path}:{line_no}: unparseable edge {raw!r}") from exc
        edges.append((u, v))
        weights.append(w)
        max_id = max(max_id, u, v)
    n = num_nodes if num_nodes is not None else max_id + 1
    if n <= max_id:
        raise GraphError(
            f"num_nodes={n} does not cover max node id {max_id} in {path}"
        )
    return from_edges(max(n, 0), edges, weights)


def to_json_document(graph):
    """Serialize the graph to a JSON-compatible dict."""
    return {
        "num_nodes": graph.num_nodes,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
    }


def from_json_document(document):
    """Deserialize a graph from :func:`to_json_document` output."""
    try:
        n = int(document["num_nodes"])
        raw_edges = document["edges"]
    except (KeyError, TypeError) as exc:
        raise GraphError("JSON document must have num_nodes and edges") from exc
    edges = [(int(e[0]), int(e[1])) for e in raw_edges]
    weights = [float(e[2]) if len(e) > 2 else 1.0 for e in raw_edges]
    return from_edges(n, edges, weights)


def write_json(graph, path):
    """Write the graph as a JSON file."""
    Path(path).write_text(json.dumps(to_json_document(graph)), encoding="utf-8")


def read_json(path):
    """Read a graph from a JSON file written by :func:`write_json`."""
    return from_json_document(json.loads(Path(path).read_text(encoding="utf-8")))
