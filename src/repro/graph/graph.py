"""The core graph data structure.

The :class:`Graph` class is an immutable, weighted, undirected graph stored in
compressed-sparse-row (CSR) form. Every algorithm in the library operates on
this single representation; the paper's data-model discussion (Section 2.1)
motivates exactly this choice — graphs and their matrices, not flat tables,
are the natural model for the noisy, sparse data considered here.

Nodes are the integers ``0 .. n-1``. Each undirected edge ``{u, v}`` with
weight ``w > 0`` is stored twice (once in each endpoint's adjacency slice), so
the CSR arrays double as the adjacency matrix of the graph.

Self-loops are rejected: none of the diffusion or partitioning theory in the
paper uses them, and forbidding them keeps the Laplacian definitions
unambiguous.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro._validation import check_node
from repro.exceptions import EmptyGraphError, GraphError


class Graph:
    """An immutable weighted undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        ``(n + 1,)`` int array; node ``i``'s incident edges occupy positions
        ``indptr[i]:indptr[i+1]`` of ``indices`` and ``weights``.
    indices:
        ``(2m,)`` int array of neighbor ids.
    weights:
        ``(2m,)`` float array of positive edge weights, symmetric with
        ``indices`` (edge ``{u, v}`` appears in both adjacency slices with
        the same weight).
    validate:
        When true (the default) the arrays are checked for structural
        soundness: symmetry, positivity, sortedness, and absence of
        self-loops and parallel edges. Construction through the public
        builders in :mod:`repro.graph.build` always validates.

    Notes
    -----
    Prefer the builders (:func:`repro.graph.build.from_edges` and friends)
    over calling this constructor directly.
    """

    __slots__ = ("_indptr", "_indices", "_weights", "_degrees")

    def __init__(self, indptr, indices, weights, *, validate=True):
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        # Integer neighbor ids keep their storage dtype: a memmap-backed
        # int32 array from repro.graph.storage stays a zero-copy view
        # instead of being widened into a resident int64 copy.  Anything
        # non-integer is normalized to int64 as before.
        indices = np.ascontiguousarray(indices)
        if not np.issubdtype(indices.dtype, np.integer):
            indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._indices = indices
        self._weights = np.ascontiguousarray(weights, dtype=np.float64)
        if validate:
            self._validate()
        # Weighted degrees: d_i = sum of incident edge weights, summed
        # per CSR row with reduceat so no arc-length index temp is
        # materialized (on a 100M-edge graph that temp would be 1.6 GB).
        if self._indices.size:
            # Arcs are contiguous, so the nonempty rows' start offsets
            # are strictly increasing and tile the weight array exactly:
            # reduceat over them sums each row's incident weights.
            nonempty = np.flatnonzero(np.diff(self._indptr))
            degrees = np.zeros(self.num_nodes)
            degrees[nonempty] = np.add.reduceat(
                self._weights, self._indptr[nonempty]
            )
            self._degrees = degrees
        else:
            self._degrees = np.zeros(self.num_nodes)
        for arr in (self._degrees, self._indptr, self._indices,
                    self._weights):
            if arr.flags.writeable:
                arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self):
        indptr, indices, weights = self._indptr, self._indices, self._weights
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphError("indptr must be a 1-d array of length n + 1")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must start at 0 and be nondecreasing")
        if indices.shape != weights.shape or indices.ndim != 1:
            raise GraphError("indices and weights must be 1-d arrays of equal length")
        if indptr[-1] != indices.size:
            raise GraphError("indptr[-1] must equal the number of stored arcs")
        n = indptr.size - 1
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise GraphError("neighbor ids must lie in [0, n)")
            if np.any(weights <= 0) or not np.all(np.isfinite(weights)):
                raise GraphError("edge weights must be positive and finite")
        for u in range(n):
            row = indices[indptr[u]:indptr[u + 1]]
            if np.any(row == u):
                raise GraphError(f"self-loop at node {u} is not allowed")
            if row.size > 1 and np.any(np.diff(row) <= 0):
                raise GraphError(
                    f"adjacency of node {u} must be strictly sorted "
                    "(no parallel edges)"
                )
        # Symmetry: each arc (u, v, w) must have a mirror (v, u, w).
        if indices.size:
            src = np.repeat(np.arange(n), np.diff(indptr))
            order_fwd = np.lexsort((indices, src))
            order_bwd = np.lexsort((src, indices))
            if not (
                np.array_equal(src[order_fwd], indices[order_bwd])
                and np.array_equal(indices[order_fwd], src[order_bwd])
                and np.allclose(weights[order_fwd], weights[order_bwd])
            ):
                raise GraphError("adjacency structure is not symmetric")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self):
        """Number of nodes ``n``."""
        return self._indptr.size - 1

    @property
    def num_edges(self):
        """Number of undirected edges ``m``."""
        return self._indices.size // 2

    @property
    def indptr(self):
        """CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self):
        """CSR neighbor-id array (read-only view)."""
        return self._indices

    @property
    def weights(self):
        """CSR edge-weight array (read-only view)."""
        return self._weights

    @property
    def degrees(self):
        """Weighted degree vector ``d`` with ``d_i = sum_j A_ij``."""
        return self._degrees

    @property
    def total_volume(self):
        """Total volume ``vol(V) = sum_i d_i = 2 * total edge weight``."""
        return float(self._degrees.sum())

    def __len__(self):
        return self.num_nodes

    def __repr__(self):
        return (
            f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"total_volume={self.total_volume:.6g})"
        )

    def __eq__(self, other):
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self):
        return hash(
            (self._indptr.tobytes(), self._indices.tobytes(), self._weights.tobytes())
        )

    # ------------------------------------------------------------------
    # Local access
    # ------------------------------------------------------------------
    def neighbors(self, node):
        """Return the sorted neighbor ids of ``node`` as a read-only array."""
        node = check_node(node, self.num_nodes)
        return self._indices[self._indptr[node]:self._indptr[node + 1]]

    def incident_weights(self, node):
        """Return the weights aligned with :meth:`neighbors`."""
        node = check_node(node, self.num_nodes)
        return self._weights[self._indptr[node]:self._indptr[node + 1]]

    def degree(self, node):
        """Weighted degree of ``node``."""
        node = check_node(node, self.num_nodes)
        return float(self._degrees[node])

    def out_degree_count(self, node):
        """Number of distinct neighbors of ``node`` (unweighted degree)."""
        node = check_node(node, self.num_nodes)
        return int(self._indptr[node + 1] - self._indptr[node])

    def has_edge(self, u, v):
        """Whether the undirected edge ``{u, v}`` exists."""
        u = check_node(u, self.num_nodes, "u")
        v = check_node(v, self.num_nodes, "v")
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edge_weight(self, u, v):
        """Weight of edge ``{u, v}``, or ``0.0`` when absent."""
        u = check_node(u, self.num_nodes, "u")
        v = check_node(v, self.num_nodes, "v")
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        if pos < row.size and row[pos] == v:
            return float(self.incident_weights(u)[pos])
        return 0.0

    def edges(self):
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self.num_nodes):
            start, stop = self._indptr[u], self._indptr[u + 1]
            for k in range(start, stop):
                v = int(self._indices[k])
                if u < v:
                    yield u, v, float(self._weights[k])

    def edge_array(self):
        """Return edges as arrays ``(us, vs, ws)`` with ``us < vs`` rowwise."""
        if self._indices.size == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=float)
        src = np.repeat(np.arange(self.num_nodes), np.diff(self._indptr))
        mask = src < self._indices
        return src[mask], self._indices[mask].copy(), self._weights[mask].copy()

    # ------------------------------------------------------------------
    # Set-level quantities
    # ------------------------------------------------------------------
    def volume(self, nodes):
        """Volume ``vol(S) = sum_{i in S} d_i`` of a node set."""
        mask = self._node_mask(nodes)
        return float(self._degrees[mask].sum())

    def cut_weight(self, nodes):
        """Total weight of edges with exactly one endpoint in ``nodes``."""
        mask = self._node_mask(nodes)
        if self._indices.size == 0:
            return 0.0
        src = np.repeat(mask, np.diff(self._indptr))
        dst = mask[self._indices]
        boundary = src & ~dst
        return float(self._weights[boundary].sum())

    def edge_boundary(self, nodes):
        """Edges ``(u, v, w)`` with ``u`` inside ``nodes`` and ``v`` outside."""
        mask = self._node_mask(nodes)
        out = []
        for u in np.flatnonzero(mask):
            start, stop = self._indptr[u], self._indptr[u + 1]
            for k in range(start, stop):
                v = int(self._indices[k])
                if not mask[v]:
                    out.append((int(u), v, float(self._weights[k])))
        return out

    def _node_mask(self, nodes):
        """Convert a node collection or boolean mask into a boolean mask."""
        n = self.num_nodes
        arr = np.asarray(nodes)
        if arr.dtype == bool:
            if arr.shape != (n,):
                raise GraphError(
                    f"boolean node mask must have shape ({n},); got {arr.shape}"
                )
            return arr
        if arr.size == 0:
            return np.zeros(n, dtype=bool)
        arr = arr.astype(np.int64, copy=False)
        if arr.min() < 0 or arr.max() >= n:
            raise GraphError(f"node ids must lie in [0, {n})")
        mask = np.zeros(n, dtype=bool)
        mask[arr] = True
        return mask

    # ------------------------------------------------------------------
    # Traversal and structure
    # ------------------------------------------------------------------
    def bfs_distances(self, source, *, max_distance=None):
        """Unweighted BFS hop distances from ``source``.

        Returns an int array with ``-1`` marking unreachable nodes. When
        ``max_distance`` is given the search stops expanding past that depth
        (nodes further away keep ``-1``).
        """
        source = check_node(source, self.num_nodes, "source")
        dist = np.full(self.num_nodes, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            du = dist[u]
            if max_distance is not None and du >= max_distance:
                continue
            for v in self.neighbors(u):
                if dist[v] < 0:
                    dist[v] = du + 1
                    queue.append(int(v))
        return dist

    def connected_components(self):
        """Label nodes by connected component.

        Returns
        -------
        labels:
            ``(n,)`` int array of component ids, numbered ``0, 1, ...`` in
            order of first discovery.
        count:
            Number of components.
        """
        n = self.num_nodes
        labels = np.full(n, -1, dtype=np.int64)
        current = 0
        for start in range(n):
            if labels[start] >= 0:
                continue
            labels[start] = current
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self.neighbors(u):
                    if labels[v] < 0:
                        labels[v] = current
                        queue.append(int(v))
            current += 1
        return labels, current

    def is_connected(self):
        """Whether the graph is connected (the empty graph is not)."""
        if self.num_nodes == 0:
            return False
        return self.connected_components()[1] == 1

    def induced_subgraph(self, nodes):
        """Induce the subgraph on ``nodes``.

        Parameters
        ----------
        nodes:
            Node ids (any order, no duplicates) or a boolean mask.

        Returns
        -------
        subgraph:
            A new :class:`Graph` on the selected nodes, renumbered
            ``0 .. k-1`` in increasing original-id order.
        original_ids:
            ``(k,)`` array mapping new ids back to original ids.
        """
        mask = self._node_mask(nodes)
        original_ids = np.flatnonzero(mask)
        k = original_ids.size
        new_id = np.full(self.num_nodes, -1, dtype=np.int64)
        new_id[original_ids] = np.arange(k)
        indptr = np.zeros(k + 1, dtype=np.int64)
        indices_parts, weight_parts = [], []
        for new_u, u in enumerate(original_ids):
            start, stop = self._indptr[u], self._indptr[u + 1]
            row = self._indices[start:stop]
            keep = mask[row]
            indices_parts.append(new_id[row[keep]])
            weight_parts.append(self._weights[start:stop][keep])
            indptr[new_u + 1] = indptr[new_u] + int(keep.sum())
        indices = (
            np.concatenate(indices_parts) if indices_parts else np.empty(0, np.int64)
        )
        weights = (
            np.concatenate(weight_parts) if weight_parts else np.empty(0, float)
        )
        sub = Graph(indptr, indices, weights, validate=False)
        return sub, original_ids

    def largest_component(self):
        """Return the induced subgraph of the largest connected component.

        Returns ``(subgraph, original_ids)`` as in :meth:`induced_subgraph`.
        Raises :class:`EmptyGraphError` on the empty graph.
        """
        if self.num_nodes == 0:
            raise EmptyGraphError("largest_component of an empty graph")
        labels, count = self.connected_components()
        if count == 1:
            return self, np.arange(self.num_nodes)
        sizes = np.bincount(labels, minlength=count)
        return self.induced_subgraph(labels == int(sizes.argmax()))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self):
        """Dense ``(n, n)`` adjacency matrix (small graphs / tests only)."""
        n = self.num_nodes
        dense = np.zeros((n, n))
        if self._indices.size:
            src = np.repeat(np.arange(n), np.diff(self._indptr))
            dense[src, self._indices] = self._weights
        return dense
