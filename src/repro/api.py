"""``repro.api`` — the one-stop typed facade over the unified dynamics.

Everything a downstream user needs to run the paper's three canonical
diffusion dynamics — and any newly registered one — through one
vocabulary:

* **Specs & grids** — :class:`PPR`, :class:`HeatKernel`, :class:`LazyWalk`,
  :class:`DiffusionGrid`; the registry (:func:`get_dynamics`,
  :func:`canonical_dynamics`, :func:`register_dynamics`).
* **Refiners & pipelines** — :class:`MQI`, :class:`FlowImprove`,
  :class:`MOV`, :class:`Pipeline` and the refiner registry
  (:func:`get_refiner`, :func:`register_refiner`,
  :func:`apply_refiners`): composable cluster improvement for any NCP
  or local-clustering entry point.
* **Kernel backends** — :class:`EngineBackend` and its registry
  (:func:`get_backend`, :func:`register_backend`,
  :func:`registered_backends`): the ``numpy`` / ``scalar`` / ``numba``
  inner-loop families behind every ``backend=`` keyword.
* **Executors** — :class:`ExecutorKind` and its registry
  (:func:`get_executor`, :func:`register_executor`,
  :func:`registered_executors`): the ``serial`` / ``process`` /
  ``chaos`` execution strategies behind every ``executor=`` keyword,
  plus :class:`RetryPolicy` for the retry / straggler-re-dispatch
  driver and :class:`Chaos` / :class:`FaultPlan` for deterministic
  fault injection.
* **NCP ensembles** — :func:`cluster_ensemble_ncp` (any grid, in-process),
  :func:`run_ncp_ensemble` (sharded / pooled / memoized),
  :func:`flow_cluster_ensemble_ncp`, :func:`best_per_size_bucket`,
  :func:`figure1_comparison`, :func:`run_multidynamics_ncp`.
* **Local clustering** — :func:`local_cluster` (single-point specs).
* **Graphs by name** — :func:`load_graph` / :func:`suite_names` (the
  named suite) and :func:`load_any_graph` (suite name *or* external
  edge-list/JSON file; :class:`UnknownGraphError` on neither).
* **Verification** — :func:`verify_paper_theorem` (Section 3.1,
  numerically).

The same vocabulary is scriptable without Python: ``python -m repro``
(:mod:`repro.cli`) exposes the suite, the NCP runner, the local driver,
and the engine benchmark as subcommands that write JSON run manifests.

Quickstart::

    from repro.api import (DiffusionGrid, HeatKernel, PPR,
                           cluster_ensemble_ncp, local_cluster)
    from repro.datasets import load_graph

    graph = load_graph("atp")
    cluster = local_cluster(graph, [5], PPR(alpha=0.1), epsilon=1e-4)
    candidates = cluster_ensemble_ncp(
        graph, DiffusionGrid(HeatKernel(t=(3.0, 10.0)), num_seeds=20, seed=0)
    )
"""

from __future__ import annotations

from repro.backends import (
    EngineBackend,
    UnknownBackendError,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend_name,
    unregister_backend,
)
from repro.core.experiments import run_multidynamics_ncp
from repro.core.framework import verify_paper_theorem
from repro.datasets.suite import (
    UnknownGraphError,
    load_any_graph,
    load_graph,
    suite_names,
)
from repro.dynamics import (
    ApproximateComputation,
    DiffusionGrid,
    DynamicsKind,
    HeatKernel,
    LazyWalk,
    PPR,
    UnknownDynamicsError,
    as_diffusion_grid,
    canonical_dynamics,
    get_dynamics,
    register_dynamics,
    registered_dynamics,
    unregister_dynamics,
)
from repro.ncp.compare import Figure1Result, figure1_comparison
from repro.refine import (
    FlowImprove,
    MOV,
    MQI,
    Pipeline,
    RefinementStep,
    RefinementTrace,
    RefinerKind,
    UnknownRefinerError,
    apply_refiners,
    as_pipeline,
    as_refiner,
    as_refiner_chain,
    get_refiner,
    refine_candidates,
    register_refiner,
    registered_refiners,
    unregister_refiner,
)
from repro.ncp.profile import (
    ClusterCandidate,
    NCPProfile,
    best_per_size_bucket,
    cluster_ensemble_ncp,
    flow_cluster_ensemble_ncp,
)
from repro.execution import (
    Chaos,
    ChunkExecutionError,
    ExecutorKind,
    FaultPlan,
    RetryPolicy,
    UnknownExecutorError,
    get_executor,
    register_executor,
    registered_executors,
    unregister_executor,
)
from repro.ncp.runner import NCPRunResult, run_ncp_ensemble
from repro.partition.local import LocalClusterResult, local_cluster

__all__ = [
    "ApproximateComputation",
    "Chaos",
    "ChunkExecutionError",
    "ClusterCandidate",
    "DiffusionGrid",
    "DynamicsKind",
    "EngineBackend",
    "ExecutorKind",
    "FaultPlan",
    "Figure1Result",
    "FlowImprove",
    "HeatKernel",
    "LazyWalk",
    "LocalClusterResult",
    "MOV",
    "MQI",
    "NCPProfile",
    "NCPRunResult",
    "PPR",
    "Pipeline",
    "RefinementStep",
    "RefinementTrace",
    "RefinerKind",
    "RetryPolicy",
    "UnknownBackendError",
    "UnknownDynamicsError",
    "UnknownExecutorError",
    "UnknownGraphError",
    "UnknownRefinerError",
    "apply_refiners",
    "as_diffusion_grid",
    "as_pipeline",
    "as_refiner",
    "as_refiner_chain",
    "best_per_size_bucket",
    "canonical_dynamics",
    "cluster_ensemble_ncp",
    "figure1_comparison",
    "flow_cluster_ensemble_ncp",
    "get_backend",
    "get_dynamics",
    "get_executor",
    "get_refiner",
    "load_any_graph",
    "load_graph",
    "local_cluster",
    "refine_candidates",
    "register_backend",
    "register_dynamics",
    "register_executor",
    "register_refiner",
    "registered_backends",
    "registered_dynamics",
    "registered_executors",
    "registered_refiners",
    "resolve_backend_name",
    "run_multidynamics_ncp",
    "run_ncp_ensemble",
    "suite_names",
    "unregister_backend",
    "unregister_dynamics",
    "unregister_executor",
    "unregister_refiner",
    "verify_paper_theorem",
]
