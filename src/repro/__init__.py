"""repro — Approximate Computation and Implicit Regularization.

A from-scratch reproduction of Michael W. Mahoney's PODS 2012 paper
"Approximate Computation and Implicit Regularization for Very Large-scale
Data Analysis" (arXiv:1203.0786).

Subpackages
-----------
``repro.api``
    The one-stop typed facade: specs, grids, registry, ensembles, local
    clustering, verification.
``repro.cli``
    The ``python -m repro`` workbench: datasets / ncp / cluster / bench
    subcommands over the facade, each writing a JSON run manifest.
``repro.dynamics``
    The unified dynamics registry: ``PPR`` / ``HeatKernel`` / ``LazyWalk``
    specs, ``DiffusionGrid``, ``DynamicsKind`` entries, alias table.
``repro.refine``
    The unified refiner registry: ``MQI`` / ``FlowImprove`` / ``MOV``
    specs, ``Pipeline`` workloads, ``RefinerKind`` entries, alias table.
``repro.backends``
    The kernel-backend registry: ``EngineBackend`` entries behind the
    canonical ``numpy`` / ``scalar`` / ``numba`` names, alias table.
``repro.execution``
    The executor registry: ``ExecutorKind`` entries behind the canonical
    ``serial`` / ``process`` / ``chaos`` names, retry + straggler
    re-dispatch driver, deterministic fault injection, resume support.
``repro.graph``
    CSR graph substrate, matrices, generators, I/O.
``repro.linalg``
    Power method, Lanczos, iterative solvers, expm action, sketching.
``repro.diffusion``
    The three canonical dynamics (heat kernel, PageRank, lazy walk) and
    their strongly local approximations (ACL push, Nibble, HK push).
``repro.regularization``
    The f + λg framework, the spectral SDP, the three regularizers with
    closed-form optima, solvers, and the equivalence verification harness.
``repro.partition``
    Conductance metrics, sweep cuts, spectral + multilevel + MQI + local +
    MOV partitioners, max-flow.
``repro.ncp``
    Network community profiles and the Figure 1 engine.
``repro.datasets``
    Synthetic AtP-DBLP stand-in and the named graph suite.
``repro.core``
    The public implicit-regularization API and reporting.

Quickstart
----------
>>> from repro.datasets import load_graph
>>> from repro.api import verify_paper_theorem
>>> graph = load_graph("planted")
>>> reports = verify_paper_theorem(graph)   # Section 3.1, numerically
>>> all(r.diffusion_vs_closed_form < 1e-8 for r in reports)
True
"""

from repro import backends, core, datasets, diffusion, dynamics, graph
from repro import execution
from repro import linalg, ncp, partition, refine, regularization
from repro import api
from repro import cli
from repro.backends import (
    EngineBackend,
    UnknownBackendError,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend_name,
    unregister_backend,
)
from repro.core.framework import canonical_dynamics, verify_paper_theorem
from repro.datasets.suite import UnknownGraphError, load_any_graph
from repro.diffusion.engine import (
    BatchPushResult,
    batch_ppr_push,
    ppr_push_frontier,
)
from repro.dynamics import (
    DiffusionGrid,
    DynamicsKind,
    HeatKernel,
    LazyWalk,
    PPR,
    UnknownDynamicsError,
    get_dynamics,
)
from repro.execution import (
    Chaos,
    ChunkExecutionError,
    ExecutorKind,
    FaultPlan,
    RetryPolicy,
    UnknownExecutorError,
    get_executor,
    register_executor,
    registered_executors,
    unregister_executor,
)
from repro.exceptions import (
    ConvergenceError,
    DisconnectedGraphError,
    EmptyGraphError,
    ExperimentError,
    FlowError,
    GraphError,
    InvalidParameterError,
    PartitionError,
    ReproError,
)
from repro.graph.build import from_edges
from repro.graph.graph import Graph
from repro.ncp.profile import cluster_ensemble_ncp
from repro.ncp.runner import run_ncp_ensemble
from repro.partition.local import local_cluster
from repro.refine import (
    FlowImprove,
    MOV,
    MQI,
    Pipeline,
    UnknownRefinerError,
    get_refiner,
)

__version__ = "1.4.0"

__all__ = [
    "BatchPushResult",
    "Chaos",
    "ChunkExecutionError",
    "ConvergenceError",
    "DiffusionGrid",
    "DisconnectedGraphError",
    "DynamicsKind",
    "EmptyGraphError",
    "EngineBackend",
    "ExecutorKind",
    "ExperimentError",
    "FaultPlan",
    "FlowError",
    "FlowImprove",
    "Graph",
    "GraphError",
    "HeatKernel",
    "InvalidParameterError",
    "LazyWalk",
    "MOV",
    "MQI",
    "PPR",
    "PartitionError",
    "Pipeline",
    "ReproError",
    "RetryPolicy",
    "UnknownBackendError",
    "UnknownDynamicsError",
    "UnknownExecutorError",
    "UnknownGraphError",
    "UnknownRefinerError",
    "__version__",
    "api",
    "backends",
    "batch_ppr_push",
    "canonical_dynamics",
    "cli",
    "cluster_ensemble_ncp",
    "core",
    "datasets",
    "diffusion",
    "dynamics",
    "execution",
    "from_edges",
    "get_backend",
    "get_dynamics",
    "get_executor",
    "get_refiner",
    "graph",
    "linalg",
    "load_any_graph",
    "local_cluster",
    "ncp",
    "partition",
    "ppr_push_frontier",
    "refine",
    "register_backend",
    "register_executor",
    "registered_backends",
    "registered_executors",
    "regularization",
    "resolve_backend_name",
    "run_ncp_ensemble",
    "unregister_backend",
    "unregister_executor",
    "verify_paper_theorem",
]
