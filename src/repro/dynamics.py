"""The unified dynamics registry: one typed API over PPR / heat kernel / walk.

The paper's central claim is that the three canonical diffusion dynamics —
PageRank, the heat kernel, and the truncated lazy random walk — are
instances of *one* implicitly-regularized computation.  This module makes
that claim structural: every dynamics is described once, by a frozen *spec*
dataclass plus a :class:`DynamicsKind` registry entry, and every consumer
(the NCP ensemble generators, the sharded runner, the local-cluster
drivers, the equivalence-verification harness, the benchmarks) dispatches
through the registry instead of switching on strings.

Three layers:

* **Specs** — :class:`PPR`, :class:`HeatKernel`, :class:`LazyWalk`: frozen
  dataclasses holding the aggressiveness axis of one dynamics
  (``alpha`` / ``t`` / ``steps`` + ``walk_alpha``).  Each spec knows its
  grid axes, its default truncation thresholds, its scalar oracle, its
  batched engine entry point, and how to drive a local cluster from a
  seed.  A spec with a single-point axis doubles as a point parameter for
  the seed → cluster drivers.
* **Grids** — :class:`DiffusionGrid`: a spec × epsilons × seed-sampling
  plan, replacing the ``alphas=... ts=... steps=... walk_alpha=...`` kwarg
  soup that the runner used to carry for all dynamics at once.
* **The registry** — :class:`DynamicsKind` entries merge the NCP-side
  dispatch (previously the runner's private ``_DYNAMICS`` tuple) with the
  implicit-regularization framework (previously
  ``repro.core.framework._REGISTRY``) under canonical names plus an alias
  table, so ``get_dynamics("ppr")``, ``get_dynamics("pagerank")`` and
  ``get_dynamics(PPR())`` all return the *same* registry object the
  runner dispatches on.

New dynamics plug in by registering a spec type and a
:class:`DynamicsKind` — no changes to the runner, the profile layer, or
the benchmarks are needed (see ``tests/test_dynamics_registry.py`` for a
worked example).

This is the pattern's original instance; its siblings are
:class:`~repro.refine.RefinerKind` (refiners),
:class:`~repro.backends.EngineBackend` (kernel backends),
:class:`~repro.analysis.LintRule` (lint rules), and
:class:`~repro.execution.ExecutorKind` (ensemble execution strategies).
A :class:`DiffusionGrid` workload says *what* to diffuse; the executor
registry decides *how* its chunks run, and the candidate bytes never
depend on that choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

import numpy as np

from repro._deprecation import DEPRECATION_REMOVAL_VERSION, warn_deprecated
from repro._validation import check_int, check_positive, check_probability
from repro.backends import get_backend, resolve_backend_name
from repro.backends._common import seed_vector as _seed_vector
from repro.diffusion.engine import batch_hk_push, batch_ppr_push
from repro.diffusion.hk_push import heat_kernel_push
from repro.diffusion.push import approximate_ppr_push
from repro.diffusion.truncated_walk import truncated_lazy_walk
from repro.exceptions import InvalidParameterError
from repro.regularization.equivalence import (
    verify_heat_kernel,
    verify_lazy_walk,
    verify_pagerank,
)

__all__ = [
    "ApproximateComputation",
    "DiffusionGrid",
    "DynamicsKind",
    "HeatKernel",
    "LazyWalk",
    "PPR",
    "UnknownDynamicsError",
    "as_diffusion_grid",
    "canonical_dynamics",
    "get_dynamics",
    "register_dynamics",
    "registered_dynamics",
    "resolve_dynamics_name",
    "unregister_dynamics",
]

class UnknownDynamicsError(InvalidParameterError, KeyError):
    """Raised for a dynamics name or spec that is not in the registry.

    Inherits both :class:`~repro.exceptions.InvalidParameterError` (hence
    ``ValueError``) and ``KeyError``: historically the NCP runner raised
    the former and ``core.framework.get_dynamics`` the latter, and callers
    of either style keep working.
    """

    __str__ = Exception.__str__


def _axis(value, name, check):
    """Normalize a scalar-or-sequence axis value to a validated tuple."""
    if np.ndim(value) == 0:
        value = (value,)
    values = tuple(check(v, name) for v in value)
    if not values:
        raise InvalidParameterError(f"{name} axis must be nonempty")
    return values


def _resolve_backend(backend, engine, where):
    """Map a (backend=, deprecated engine=) pair to one backend value.

    ``engine`` is the pre-registry stringly flag; its vocabulary
    (``"batched"``/``"scalar"``) is registered as backend aliases, so the
    shim is one :func:`~repro.backends.resolve_backend_name` call.
    Returns ``None`` when neither was given (callers pick their default).
    """
    if engine is not None:
        if backend is not None:
            raise InvalidParameterError(
                f"pass backend= or the deprecated engine= to {where}, "
                "not both"
            )
        backend = resolve_backend_name(engine)
        warn_deprecated(f"{where}(engine=...)", f"{where}(backend=...)")
    return backend


class _SpecBase:
    """Shared behavior of the dynamics spec dataclasses.

    Subclasses define the class attributes ``name`` (canonical registry
    key), ``candidate_label`` (``ClusterCandidate.method`` value),
    ``local_method`` (``LocalClusterResult.method`` value) and
    ``default_epsilons``, plus ``grid_params`` / ``from_grid_params`` /
    ``iter_columns`` / ``local_sweep_vectors``.
    """

    def grid_axes(self):
        """Ordered mapping of swept axis name -> tuple of values."""
        return dict(self.grid_params())

    def grid_size(self, epsilons):
        """Number of diffusion columns per seed node."""
        size = len(tuple(epsilons))
        for values in self.grid_axes().values():
            if np.ndim(values) > 0:
                size *= len(values)
        return size

    def _point(self, name):
        """The single value of axis ``name`` (local drivers need a point)."""
        values = getattr(self, name)
        if np.ndim(values) == 0:
            return values
        if len(values) != 1:
            raise InvalidParameterError(
                f"{type(self).__name__}.{name} must be a single point for "
                f"local clustering; got the grid {values!r}"
            )
        return values[0]

    def local_cluster(self, graph, seed_nodes, **kwargs):
        """Run the generic seed -> cluster driver with this spec."""
        from repro.partition.local import local_cluster

        return local_cluster(graph, seed_nodes, self, **kwargs)


@dataclass(frozen=True)
class PPR(_SpecBase):
    """Personalized PageRank / ACL push dynamics (the "LocalSpectral" side).

    Parameters
    ----------
    alpha:
        Teleport probability axis — a scalar or a tuple.  Larger alpha
        keeps mass closer to the seed (stronger implicit regularization).
    """

    alpha: tuple = (0.01, 0.05, 0.15)

    name: ClassVar[str] = "ppr"
    candidate_label: ClassVar[str] = "spectral"
    local_method: ClassVar[str] = "acl"
    default_epsilons: ClassVar[tuple] = (1e-4, 1e-5)
    scalar_oracle: ClassVar[Callable] = staticmethod(approximate_ppr_push)
    batch_engine: ClassVar[Callable] = staticmethod(batch_ppr_push)

    def __post_init__(self):
        object.__setattr__(
            self, "alpha", _axis(self.alpha, "alpha", check_probability)
        )

    def grid_params(self):
        return (("alphas", self.alpha),)

    @classmethod
    def from_grid_params(cls, params):
        return cls(alpha=params["alphas"])

    def iter_columns(self, graph, seed_nodes, *, epsilons, backend=None,
                     engine=None):
        """Iterate one diffusion vector per (seed, alpha, epsilon) point.

        Columns enumerate seed (slowest) x alpha x epsilon (fastest) —
        the same order for every backend, so candidate ensembles line up
        column-for-column.  ``backend`` names a registered
        :class:`~repro.backends.EngineBackend` (default ``"numpy"``);
        ``engine`` is the deprecated pre-registry alias.
        """
        backend = _resolve_backend(backend, engine, "PPR.iter_columns")
        ops = get_backend("numpy" if backend is None else backend)
        return ops.ppr_grid(
            graph, list(seed_nodes), alphas=self.alpha,
            epsilons=tuple(epsilons),
        )

    def local_sweep_vectors(self, graph, seed_vector, *, epsilon,
                            backend=None):
        """Yield (scores, edge-work) pairs to sweep for a local cluster.

        The default backend is ``"scalar"`` — the single-column FIFO push
        is the historical ACL local driver and stays the reference.
        """
        ops = get_backend("scalar" if backend is None else backend)
        push = ops.ppr_push(
            graph, seed_vector, alpha=self._point("alpha"), epsilon=epsilon
        )
        yield push.approximation, push.work


@dataclass(frozen=True)
class HeatKernel(_SpecBase):
    """Heat-kernel push dynamics [15].

    Parameters
    ----------
    t:
        Diffusion-time axis — a scalar or a tuple.  Larger t runs the
        dynamics further (weaker implicit regularization).
    """

    t: tuple = (3.0, 10.0, 30.0)

    name: ClassVar[str] = "hk"
    candidate_label: ClassVar[str] = "hk"
    local_method: ClassVar[str] = "hk"
    default_epsilons: ClassVar[tuple] = (1e-3, 1e-4)
    scalar_oracle: ClassVar[Callable] = staticmethod(heat_kernel_push)
    batch_engine: ClassVar[Callable] = staticmethod(batch_hk_push)

    def __post_init__(self):
        object.__setattr__(self, "t", _axis(self.t, "t", check_positive))

    def grid_params(self):
        return (("ts", self.t),)

    @classmethod
    def from_grid_params(cls, params):
        return cls(t=params["ts"])

    def iter_columns(self, graph, seed_nodes, *, epsilons, backend=None,
                     engine=None):
        """Iterate one diffusion vector per (seed, t, epsilon) grid point.

        ``backend`` names a registered
        :class:`~repro.backends.EngineBackend` (default ``"numpy"``);
        ``engine`` is the deprecated pre-registry alias.
        """
        backend = _resolve_backend(
            backend, engine, "HeatKernel.iter_columns"
        )
        ops = get_backend("numpy" if backend is None else backend)
        return ops.hk_grid(
            graph, list(seed_nodes), ts=self.t, epsilons=tuple(epsilons)
        )

    def local_sweep_vectors(self, graph, seed_vector, *, epsilon,
                            backend=None):
        """Yield the (scores, edge-work) pair for the local hk driver.

        The default backend is ``"scalar"`` — the one-column series
        recursion is the historical hk local driver and stays the
        reference.
        """
        ops = get_backend("scalar" if backend is None else backend)
        result = ops.hk_push(
            graph, seed_vector, self._point("t"), epsilon=epsilon
        )
        yield result.approximation, result.work


@dataclass(frozen=True)
class LazyWalk(_SpecBase):
    """Spielman–Teng truncated lazy random walk dynamics [39].

    Parameters
    ----------
    steps:
        Step-count axis — a scalar or a tuple.  Walk trajectories are
        prefix-closed, so the NCP grid runs one walk to ``max(steps)``
        per (seed, epsilon) and sweeps the charge at every requested
        step count.
    walk_alpha:
        Holding probability of the lazy walk (a fixed parameter, not a
        swept axis).
    """

    steps: tuple = (4, 16, 64)
    walk_alpha: float = 0.5

    name: ClassVar[str] = "walk"
    candidate_label: ClassVar[str] = "walk"
    local_method: ClassVar[str] = "nibble"
    default_epsilons: ClassVar[tuple] = (1e-3, 1e-4)
    scalar_oracle: ClassVar[Callable] = staticmethod(truncated_lazy_walk)
    batch_engine: ClassVar[Callable] = staticmethod(truncated_lazy_walk)

    def __post_init__(self):
        object.__setattr__(
            self,
            "steps",
            _axis(
                self.steps,
                "steps",
                lambda v, name: check_int(v, name, minimum=0),
            ),
        )
        object.__setattr__(
            self, "walk_alpha", check_probability(self.walk_alpha, "walk_alpha")
        )

    def grid_params(self):
        return (("steps", self.steps), ("walk_alpha", self.walk_alpha))

    def grid_axes(self):
        return {"steps": self.steps}

    @classmethod
    def from_grid_params(cls, params):
        return cls(steps=params["steps"], walk_alpha=params["walk_alpha"])

    def grid_size(self, epsilons):
        return len(self.steps) * len(tuple(epsilons))

    def iter_columns(self, graph, seed_nodes, *, epsilons, backend=None,
                     engine=None):
        """Iterate one charge vector per (seed, epsilon, step) grid point.

        The walk is run once to the largest requested step count per
        (seed, epsilon); the prefix trajectory supplies every smaller
        step count for free, in sorted-unique order.  ``backend`` names a
        registered :class:`~repro.backends.EngineBackend` providing the
        spread step (default ``"numpy"``); ``engine`` is the deprecated
        pre-registry alias.
        """
        backend = _resolve_backend(backend, engine, "LazyWalk.iter_columns")
        ops = get_backend("numpy" if backend is None else backend)
        return self._walk_columns(graph, seed_nodes, tuple(epsilons), ops)

    def _walk_columns(self, graph, seed_nodes, epsilons, ops):
        wanted = sorted(set(self.steps))
        horizon = wanted[-1]
        for seed_node in seed_nodes:
            vector = _seed_vector(graph, seed_node)
            for epsilon in epsilons:
                walk = truncated_lazy_walk(
                    graph, vector, horizon, epsilon=epsilon,
                    alpha=self.walk_alpha, keep_trajectory=True,
                    backend=ops,
                )
                for k in wanted:
                    yield walk.trajectory[k]

    def local_sweep_vectors(self, graph, seed_vector, *, epsilon,
                            backend=None):
        """Sweep the charge after every step, as Nibble does."""
        num_steps = check_int(self._point("steps"), "steps", minimum=1)
        walk = truncated_lazy_walk(
            graph, seed_vector, num_steps, epsilon=epsilon,
            alpha=self.walk_alpha, keep_trajectory=True, backend=backend,
        )
        work = int(sum(walk.support_volumes))
        for charge in walk.trajectory[1:]:
            yield charge, work


@dataclass(frozen=True)
class ApproximateComputation:
    """An approximation algorithm paired with its implicit regularizer.

    Attributes
    ----------
    name:
        Algorithm display name.
    aggressiveness_parameter:
        The knob controlling how far the dynamics runs (Section 3.1).
    regularizer:
        The G(X) of Problem (5) that the algorithm implicitly applies.
    default_parameters:
        Parameters used by :meth:`verify` when none are given.
    verifier:
        Callable ``verifier(graph, **params) -> EquivalenceReport``.
    """

    name: str
    aggressiveness_parameter: str
    regularizer: str
    default_parameters: dict
    verifier: Callable

    def verify(self, graph, **params):
        """Numerically verify the implicit-regularization identity.

        Runs the dynamics and the regularized SDP on ``graph`` and returns
        the :class:`~repro.regularization.equivalence.EquivalenceReport`.
        """
        merged = dict(self.default_parameters)
        merged.update(params)
        return self.verifier(graph, **merged)

    def describe(self):
        """One-line description of the algorithm ↔ regularizer pairing."""
        return (
            f"{self.name} (aggressiveness: {self.aggressiveness_parameter}) "
            f"exactly solves Problem (5) with G = {self.regularizer}"
        )


@dataclass(frozen=True)
class DynamicsKind(ApproximateComputation):
    """One registered dynamics: verification identity + NCP dispatch.

    Extends :class:`ApproximateComputation` (the Section 3.1 entry that
    ``core.framework`` has always exposed) with the operational side —
    the spec type the runner and the local drivers dispatch on.

    Attributes
    ----------
    key:
        Canonical registry name (``"ppr"``, ``"hk"``, ``"walk"``).
    aliases:
        Accepted alternative spellings (``"pagerank"``, ``"heat_kernel"``,
        ``"lazy_walk"``, ``"acl"``, ``"nibble"``, ...).
    spec_type:
        The frozen spec dataclass (:class:`PPR` & co).
    local_spec_factory:
        ``factory(graph) -> spec`` producing the default single-point spec
        for the seed -> cluster drivers (the walk's default step count
        depends on the graph size).
    legacy_axes:
        Maps the pre-registry kwarg soup (``alphas``/``ts``/``steps``/
        ``walk_alpha``) onto a spec; only the deprecation shims call it.
    """

    key: str = ""
    aliases: tuple = ()
    spec_type: type = None
    local_spec_factory: Callable = None
    legacy_axes: Callable = field(default=None, repr=False)

    def default_spec(self):
        """The spec with this dynamics' default NCP grid axes."""
        return self.spec_type()

    def default_grid(self, **overrides):
        """A :class:`DiffusionGrid` over the default spec."""
        return DiffusionGrid(self.default_spec(), **overrides)

    def local_spec(self, graph=None):
        """The default single-point spec for local clustering."""
        return self.local_spec_factory(graph)

    def spec_from_legacy(self, *, alphas=None, ts=None, steps=None,
                         walk_alpha=None):
        """Build a spec from the deprecated per-dynamics kwarg soup."""
        return self.legacy_axes(
            alphas=alphas, ts=ts, steps=steps, walk_alpha=walk_alpha
        )


@dataclass(frozen=True)
class DiffusionGrid:
    """A full NCP diffusion workload: dynamics x epsilons x seed sampling.

    Attributes
    ----------
    dynamics:
        A registered spec instance (accepts a canonical name / alias or a
        :class:`DynamicsKind`, normalized to the default spec).
    epsilons:
        Truncation-threshold axis; ``None`` resolves to the spec's
        ``default_epsilons``.
    num_seeds:
        Seed nodes sampled by degree (the stationary measure, as in [27]).
    seed:
        RNG seed (or generator) for seed-node sampling.
    max_cluster_size:
        Sweep-prefix size cap; ``None`` resolves to ``n // 2`` at run time.
    backend:
        Registered backend name or alias (see :mod:`repro.backends`);
        normalized to the canonical key, default ``"numpy"``.
    engine:
        Deprecated alias for ``backend`` (``"batched"`` -> ``"numpy"``);
        always ``None`` after construction.
    """

    dynamics: object
    epsilons: tuple = None
    num_seeds: int = 40
    seed: object = None
    max_cluster_size: int = None
    backend: str = None
    engine: object = field(default=None, repr=False)

    def __post_init__(self):
        spec = self.dynamics
        if isinstance(spec, (str, DynamicsKind)) or isinstance(spec, type):
            spec = get_dynamics(spec).default_spec()
        else:
            get_dynamics(spec)  # raises UnknownDynamicsError if unregistered
        object.__setattr__(self, "dynamics", spec)
        if self.epsilons is not None:
            object.__setattr__(
                self,
                "epsilons",
                _axis(self.epsilons, "epsilons", check_probability),
            )
        check_int(self.num_seeds, "num_seeds", minimum=1)
        if self.max_cluster_size is not None:
            check_int(self.max_cluster_size, "max_cluster_size", minimum=1)
        backend = _resolve_backend(self.backend, self.engine, "DiffusionGrid")
        # Normalize so grids built via the shim compare (and hash) equal
        # to grids built with the canonical name.
        object.__setattr__(self, "engine", None)
        object.__setattr__(
            self,
            "backend",
            resolve_backend_name("numpy" if backend is None else backend),
        )

    @property
    def key(self):
        """Canonical name of the grid's dynamics."""
        return get_dynamics(self.dynamics).key

    def resolved_epsilons(self):
        return (
            self.epsilons
            if self.epsilons is not None
            else tuple(self.dynamics.default_epsilons)
        )

    def resolve_max_cluster_size(self, graph):
        return (
            self.max_cluster_size
            if self.max_cluster_size is not None
            else graph.num_nodes // 2
        )

    def grid_params(self):
        """Hashable (name, value) pairs pinning the whole non-seed grid."""
        return self.dynamics.grid_params() + (
            ("epsilons", self.resolved_epsilons()),
        )


def as_diffusion_grid(grid):
    """Coerce a grid-like value (grid, spec, kind, or name) to a grid."""
    if isinstance(grid, DiffusionGrid):
        return grid
    return DiffusionGrid(grid)


# --------------------------------------------------------------------------
# The registry.

_REGISTRY = {}      # canonical key -> DynamicsKind
_ALIASES = {}       # normalized spelling -> canonical key
_SPEC_TYPES = {}    # spec type -> canonical key


def _normalize(name):
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


def register_dynamics(kind, *, overwrite=False):
    """Register a :class:`DynamicsKind` under its key, aliases, and names.

    Returns the kind, so definitions can be written as
    ``KIND = register_dynamics(DynamicsKind(...))``.  Registering an
    already-taken spelling raises unless ``overwrite`` is set.
    """
    if not isinstance(kind, DynamicsKind):
        raise InvalidParameterError(
            f"register_dynamics expects a DynamicsKind; got {kind!r}"
        )
    if not kind.key or kind.spec_type is None:
        raise InvalidParameterError(
            "a DynamicsKind needs both a canonical key and a spec_type"
        )
    spellings = {_normalize(kind.key), _normalize(kind.name)}
    spellings.update(_normalize(alias) for alias in kind.aliases)
    if not overwrite:
        if kind.key in _REGISTRY:
            raise InvalidParameterError(
                f"dynamics key {kind.key!r} is already registered; pass "
                f"overwrite=True to replace it"
            )
        taken = sorted(s for s in spellings if s in _ALIASES)
        if taken:
            raise InvalidParameterError(
                f"dynamics spellings already registered: {taken}"
            )
    for spelling in spellings:
        _ALIASES[spelling] = kind.key
    _REGISTRY[kind.key] = kind
    _SPEC_TYPES[kind.spec_type] = kind.key
    return kind


def unregister_dynamics(key):
    """Remove a registered dynamics (used by extension tests)."""
    key = resolve_dynamics_name(key)
    kind = _REGISTRY.pop(key)
    for spelling in [s for s, k in _ALIASES.items() if k == key]:
        del _ALIASES[spelling]
    _SPEC_TYPES.pop(kind.spec_type, None)
    return kind


def resolve_dynamics_name(dynamics):
    """Canonical key for a name, alias, spec instance, spec type, or kind."""
    if isinstance(dynamics, DynamicsKind):
        candidate = dynamics.key
    elif isinstance(dynamics, type):
        candidate = _SPEC_TYPES.get(dynamics)
    elif isinstance(dynamics, str):
        candidate = _ALIASES.get(_normalize(dynamics))
    else:
        # Exact spec-type match only: a subclass is its own dynamics and
        # must be registered itself (see TestExtensionPoint).
        candidate = _SPEC_TYPES.get(type(dynamics))
    if candidate is None or candidate not in _REGISTRY:
        raise UnknownDynamicsError(
            f"unknown dynamics {dynamics!r}; choose from "
            f"{sorted(_REGISTRY)} (aliases: {sorted(_ALIASES)})"
        )
    return candidate


def get_dynamics(dynamics):
    """Look up the registry entry for a name, alias, spec, or kind.

    ``get_dynamics("ppr")``, ``get_dynamics("pagerank")``,
    ``get_dynamics(PPR)`` and ``get_dynamics(PPR(alpha=0.1))`` all return
    the same :class:`DynamicsKind` object — the one every consumer
    dispatches on.
    """
    return _REGISTRY[resolve_dynamics_name(dynamics)]


def registered_dynamics():
    """Snapshot of the registry: canonical key -> :class:`DynamicsKind`."""
    return dict(_REGISTRY)


def canonical_dynamics():
    """The paper's three canonical dynamics (Section 3.1), in paper order."""
    return [_REGISTRY["hk"], _REGISTRY["ppr"], _REGISTRY["walk"]]


def _default_nibble_steps(graph):
    """Nibble's default step count: max(10, ceil(log2(n+1)^2))."""
    if graph is None:
        return 10
    return max(10, int(np.ceil(np.log2(graph.num_nodes + 1) ** 2)))


HEAT_KERNEL = register_dynamics(DynamicsKind(
    name="Heat Kernel",
    aggressiveness_parameter="time t",
    regularizer="generalized (von Neumann) entropy Tr(X log X)",
    default_parameters={"t": 2.0},
    verifier=verify_heat_kernel,
    key="hk",
    aliases=("heat_kernel", "heatkernel", "heat-kernel"),
    spec_type=HeatKernel,
    local_spec_factory=lambda graph=None: HeatKernel(t=5.0),
    legacy_axes=lambda *, alphas, ts, steps, walk_alpha: HeatKernel(
        t=ts if ts is not None else (3.0, 10.0, 30.0)
    ),
))

PAGERANK = register_dynamics(DynamicsKind(
    name="PageRank",
    aggressiveness_parameter="teleport probability gamma",
    regularizer="log-determinant -log det(X)",
    default_parameters={"gamma": 0.2},
    verifier=verify_pagerank,
    key="ppr",
    aliases=("pagerank", "acl", "personalized_pagerank", "spectral"),
    spec_type=PPR,
    local_spec_factory=lambda graph=None: PPR(alpha=0.1),
    legacy_axes=lambda *, alphas, ts, steps, walk_alpha: PPR(
        alpha=alphas if alphas is not None else (0.01, 0.05, 0.15)
    ),
))

LAZY_WALK = register_dynamics(DynamicsKind(
    name="Lazy Random Walk",
    aggressiveness_parameter="number of steps k",
    regularizer="matrix p-norm (1/p) Tr(X^p), p = 1 + 1/k",
    default_parameters={"alpha": 0.6, "num_steps": 5},
    verifier=verify_lazy_walk,
    key="walk",
    aliases=("lazy_walk", "nibble", "truncated_walk", "lazywalk"),
    spec_type=LazyWalk,
    local_spec_factory=lambda graph=None: LazyWalk(
        steps=_default_nibble_steps(graph), walk_alpha=0.5
    ),
    legacy_axes=lambda *, alphas, ts, steps, walk_alpha: LazyWalk(
        steps=steps if steps is not None else (4, 16, 64),
        walk_alpha=walk_alpha if walk_alpha is not None else 0.5,
    ),
))
