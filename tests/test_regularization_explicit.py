"""Tests for explicit regularization, paths, and implicit estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.regularization.implicit import (
    early_stopping_path,
    noise_sensitivity,
    truncation_path,
)
from repro.regularization.objectives import (
    effective_degrees_of_freedom,
    graph_tikhonov,
    lasso_ista,
    ridge_path,
    ridge_regression,
    soft_threshold,
)
from repro.regularization.path import (
    heat_kernel_path,
    lazy_walk_path,
    pagerank_path,
    path_is_monotone,
    tradeoff_table,
)


@pytest.fixture
def regression_problem(rng):
    n, d = 120, 8
    A = rng.standard_normal((n, d))
    x_true = np.zeros(d)
    x_true[:3] = [2.0, -1.5, 1.0]
    b = A @ x_true + 0.1 * rng.standard_normal(n)
    return A, b, x_true


class TestRidge:
    def test_zero_lambda_is_ols(self, regression_problem):
        A, b, _ = regression_problem
        ols, *_ = np.linalg.lstsq(A, b, rcond=None)
        assert np.allclose(ridge_regression(A, b, 0.0).solution, ols,
                           atol=1e-8)

    def test_norm_shrinks_with_lambda(self, regression_problem):
        A, b, _ = regression_problem
        norms = [
            np.linalg.norm(ridge_regression(A, b, lam).solution)
            for lam in (0.0, 1.0, 10.0, 100.0)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(norms, norms[1:]))

    def test_normal_equations_satisfied(self, regression_problem):
        A, b, _ = regression_problem
        lam = 3.0
        x = ridge_regression(A, b, lam).solution
        residual = A.T @ (A @ x - b) + lam * x
        assert np.abs(residual).max() < 1e-8

    def test_ridge_path_ordering(self, regression_problem):
        A, b, _ = regression_problem
        path = ridge_path(A, b, [0.1, 1.0, 10.0])
        losses = [p.loss_value for p in path]
        assert losses == sorted(losses)  # loss grows with regularization

    def test_effective_dof_decreasing(self, regression_problem):
        A, _, _ = regression_problem
        dofs = [effective_degrees_of_freedom(A, lam)
                for lam in (0.0, 1.0, 100.0, 1e6)]
        assert dofs[0] == pytest.approx(8.0)
        assert all(b < a for a, b in zip(dofs, dofs[1:]))


class TestLasso:
    def test_soft_threshold(self):
        v = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        out = soft_threshold(v, 1.0)
        assert np.allclose(out, [-2.0, 0.0, 0.0, 0.0, 2.0])

    def test_recovers_sparse_support(self, regression_problem):
        A, b, x_true = regression_problem
        result = lasso_ista(A, b, 5.0, tol=1e-10)
        support = np.abs(result.solution) > 1e-6
        assert set(np.flatnonzero(support)) <= set(range(3)) | set()
        assert support[:2].all()

    def test_large_lambda_gives_zero(self, regression_problem):
        A, b, _ = regression_problem
        result = lasso_ista(A, b, 1e5)
        assert np.allclose(result.solution, 0.0)

    def test_optimality_condition(self, regression_problem):
        # Subgradient optimality: |A^T(Ax-b)| <= lam, equality on support.
        A, b, _ = regression_problem
        lam = 2.0
        x = lasso_ista(A, b, lam, tol=1e-12).solution
        correlation = A.T @ (A @ x - b)
        assert np.all(np.abs(correlation) <= lam + 1e-6)
        on_support = np.abs(x) > 1e-8
        assert np.allclose(
            np.abs(correlation[on_support]), lam, atol=1e-6
        )


class TestGraphTikhonov:
    def test_zero_lambda_is_identity(self, grid, rng):
        y = rng.standard_normal(grid.num_nodes)
        assert np.allclose(graph_tikhonov(grid, y, 0.0).solution, y)

    def test_smooths_noise(self, grid, rng):
        from repro.graph.matrices import laplacian_quadratic_form

        y = rng.standard_normal(grid.num_nodes)
        smoothed = graph_tikhonov(grid, y, 5.0).solution
        assert laplacian_quadratic_form(grid, smoothed) < (
            laplacian_quadratic_form(grid, y)
        )

    def test_large_lambda_approaches_mean(self, ring, rng):
        y = rng.standard_normal(ring.num_nodes)
        smoothed = graph_tikhonov(ring, y, 1e7).solution
        assert np.allclose(smoothed, y.mean(), atol=1e-2)


class TestDiffusionPaths:
    def test_heat_path_shapes(self, ring):
        points = heat_kernel_path(ring, [0.1, 1.0, 10.0, 100.0])
        # More time (less regularization): Rayleigh decreases toward λ2,
        # entropy decreases toward 0, distance to optimum decreases.
        assert path_is_monotone(points, "rayleigh", increasing=False)
        assert path_is_monotone(points, "entropy", increasing=False)
        assert path_is_monotone(
            points, "distance_to_optimum", increasing=False
        )

    def test_pagerank_path_shapes(self, barbell):
        # γ → 0 is the unregularized limit for PageRank.
        points = pagerank_path(barbell, [0.8, 0.4, 0.1, 0.01])
        assert path_is_monotone(points, "rayleigh", increasing=False)

    def test_lazy_walk_path_shapes(self, grid):
        points = lazy_walk_path(grid, [1, 3, 10, 30], alpha=0.6)
        assert path_is_monotone(points, "rayleigh", increasing=False)
        assert path_is_monotone(points, "effective_rank", increasing=False)

    def test_rayleigh_bounded_below_by_lambda2(self, ring):
        from repro.linalg.fiedler import fiedler_value

        lam2 = fiedler_value(ring, method="exact")
        for point in heat_kernel_path(ring, [0.5, 5.0, 50.0]):
            assert point.rayleigh >= lam2 - 1e-9

    def test_tradeoff_table_rows(self, ring):
        points = heat_kernel_path(ring, [1.0, 2.0])
        table = tradeoff_table(points)
        assert len(table) == 2 and len(table[0]) == 4


class TestImplicitRegularization:
    def test_early_stopping_rayleigh_decreases(self, barbell):
        points = early_stopping_path(barbell, 200, seed=3)
        # Rayleigh quotient converges down toward λ2 (allow tiny noise).
        assert points[-1].rayleigh < points[0].rayleigh
        assert points[-1].alignment > 0.99

    def test_early_stopping_alignment_increases(self, ring):
        points = early_stopping_path(ring, 300, seed=4)
        assert points[-1].alignment > points[0].alignment

    def test_noise_sensitivity_early_stopped_more_robust(self, planted):
        # An early-stopped power method output should move less under edge
        # noise than the fully converged eigenvector on a graph with small
        # spectral gap. Use the barbell, where λ2 ≈ λ3 makes the exact
        # eigenvector ill-conditioned.
        from repro.graph.generators import barbell_graph
        from repro.graph.matrices import normalized_laplacian, trivial_eigenvector
        from repro.linalg.power import power_method

        graph = barbell_graph(10)

        def estimator_at(k):
            def run(g, rng):
                laplacian = normalized_laplacian(g)
                trivial = trivial_eigenvector(g)
                result = power_method(
                    lambda x: 2 * x - laplacian @ x, g.num_nodes,
                    deflate=[trivial], tol=1e-300, max_iterations=k,
                    seed=0, raise_on_failure=False,
                )
                return result.eigenvector
            return run

        rough, _ = noise_sensitivity(
            graph, estimator_at(3), flip_probability=0.05, num_trials=6,
            seed=1,
        )
        fine, _ = noise_sensitivity(
            graph, estimator_at(2000), flip_probability=0.05, num_trials=6,
            seed=1,
        )
        assert np.isfinite(rough) and np.isfinite(fine)
        assert rough <= fine + 0.5  # rough output at least as stable

    def test_truncation_path_tradeoffs(self, ring):
        points = truncation_path(
            ring, [0], [1e-2, 1e-3, 1e-4, 1e-5], alpha=0.15
        )
        supports = [p.support_size for p in points]
        errors = [p.error for p in points]
        # Smaller ε: bigger support, smaller error; error <= ε always.
        assert supports == sorted(supports)
        assert errors[-1] <= errors[0] + 1e-12
        for point in points:
            assert point.error <= point.epsilon + 1e-12
