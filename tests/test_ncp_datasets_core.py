"""Tests for the NCP engine, datasets, and the core framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiments import ExperimentRecord, Stopwatch, records_table
from repro.core.framework import (
    canonical_dynamics,
    get_dynamics,
    verify_paper_theorem,
)
from repro.core.reporting import (
    format_comparison_verdict,
    format_series,
    format_table,
    format_value,
    geometric_midpoints,
)
from repro.datasets.suite import describe, load_graph, load_suite, suite_names
from repro.datasets.synthetic_dblp import (
    synthetic_atp_dblp,
    synthetic_coauthorship,
)
from repro.exceptions import PartitionError
from repro.ncp.niceness import cluster_niceness
from repro.dynamics import DiffusionGrid, PPR
from repro.ncp.profile import (
    ClusterCandidate,
    best_per_size_bucket,
    cluster_ensemble_ncp,
    flow_cluster_ensemble_ncp,
)


class TestNiceness:
    def test_clique_cluster_is_nice(self, ring):
        report = cluster_niceness(ring, range(6))
        assert report.internally_connected
        assert report.average_path_length == pytest.approx(1.0)
        assert report.density == pytest.approx(1.0)
        assert report.conductance_ratio < 0.3

    def test_stringy_cluster_is_not_nice(self, lollipop):
        tail = list(range(8, 20))
        report = cluster_niceness(lollipop, tail)
        assert report.average_path_length > 3.0
        # External cut is small but internal connectivity is weak too.
        assert report.conductance_ratio > 0.1

    def test_disconnected_cluster_flagged(self, ring):
        report = cluster_niceness(ring, [0, 1, 12, 13])
        assert not report.internally_connected
        assert report.conductance_ratio == float("inf")

    def test_cluster_sizes_and_volume(self, barbell):
        report = cluster_niceness(barbell, range(8))
        assert report.size == 8
        assert report.volume == pytest.approx(57.0)
        assert report.external_conductance == pytest.approx(1 / 57)

    def test_invalid_cluster_rejected(self, ring):
        with pytest.raises(PartitionError):
            cluster_niceness(ring, [])
        with pytest.raises(PartitionError):
            cluster_niceness(ring, range(ring.num_nodes))


class TestNCPProfiles:
    def test_spectral_ensemble_produces_candidates(self, whiskered):
        candidates = cluster_ensemble_ncp(
            whiskered,
            DiffusionGrid(
                PPR(alpha=(0.05,)), epsilons=(1e-4,), num_seeds=6, seed=0
            ),
        )
        assert len(candidates) > 0
        for candidate in candidates:
            assert candidate.method == "spectral"
            assert 0 <= candidate.conductance <= 1.0 + 1e-9

    def test_flow_ensemble_produces_candidates(self, whiskered):
        candidates = flow_cluster_ensemble_ncp(whiskered, min_size=4, seed=0)
        assert len(candidates) > 0
        for candidate in candidates:
            assert candidate.method == "flow"

    def test_flow_ensemble_finds_whiskers(self, whiskered):
        candidates = flow_cluster_ensemble_ncp(whiskered, min_size=4, seed=1)
        best = min(c.conductance for c in candidates)
        # Whisker cut: one edge, volume 9.
        assert best <= 1 / 9 + 1e-9

    def test_bucket_profile_structure(self, whiskered):
        candidates = cluster_ensemble_ncp(
            whiskered,
            DiffusionGrid(
                PPR(alpha=(0.05,)), epsilons=(1e-4,), num_seeds=6, seed=2
            ),
        )
        profile = best_per_size_bucket(candidates, num_buckets=5)
        assert profile.bucket_edges.size == profile.best_conductance.size + 1
        finite = np.isfinite(profile.best_conductance)
        assert finite.any()
        # Representatives align with the best values.
        for i, representative in enumerate(profile.representatives):
            if representative is not None:
                assert representative.conductance == pytest.approx(
                    profile.best_conductance[i]
                )

    def test_bucket_profile_empty_pool_raises(self):
        with pytest.raises(PartitionError):
            best_per_size_bucket([], num_buckets=3)

    def test_candidate_size_property(self):
        candidate = ClusterCandidate(
            nodes=np.array([1, 5, 9]), conductance=0.5, method="flow"
        )
        assert candidate.size == 3


class TestDatasets:
    def test_suite_names_and_load(self):
        names = suite_names()
        assert "atp" in names and "expander" in names
        for name in names:
            assert isinstance(describe(name), str)
        g = load_graph("barbell")
        assert g.is_connected()

    def test_load_suite_subset(self):
        graphs = load_suite(names=["barbell", "grid"])
        assert set(graphs) == {"barbell", "grid"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_graph("petersen")

    def test_atp_dataset_structure(self):
        ds = synthetic_atp_dblp(scale="tiny", seed=0)
        assert ds.graph.is_connected()
        assert len(ds.author_communities) == 120
        assert ds.paper_communities.shape == (260,)
        from repro.graph.bipartite import is_bipartite

        flag, _ = is_bipartite(ds.graph)
        assert flag

    def test_atp_deterministic(self):
        a = synthetic_atp_dblp(scale="tiny", seed=3)
        b = synthetic_atp_dblp(scale="tiny", seed=3)
        assert a.graph == b.graph

    def test_atp_heavy_tail(self):
        ds = synthetic_atp_dblp(scale="small", seed=1)
        degrees = ds.graph.degrees
        assert degrees.max() > 8 * degrees.mean()

    def test_coauthorship_projection(self):
        g, ids = synthetic_coauthorship(scale="tiny", seed=2)
        assert g.is_connected()
        assert g.num_nodes <= 120

    def test_community_members_lookup(self):
        ds = synthetic_atp_dblp(scale="tiny", seed=4)
        members = ds.community_members(0)
        assert members.size > 0
        assert members.max() < ds.graph.num_nodes


class TestCoreFramework:
    def test_three_canonical_dynamics(self):
        dynamics = canonical_dynamics()
        assert [d.name for d in dynamics] == [
            "Heat Kernel", "PageRank", "Lazy Random Walk"
        ]

    def test_registry_lookup(self):
        assert get_dynamics("pagerank").regularizer.startswith("log-det")
        with pytest.raises(KeyError):
            get_dynamics("landing")

    def test_describe_mentions_problem_5(self):
        for dynamics in canonical_dynamics():
            assert "Problem (5)" in dynamics.describe()

    def test_verify_paper_theorem(self, ring):
        reports = verify_paper_theorem(ring)
        assert len(reports) == 3
        for report in reports:
            assert report.diffusion_vs_closed_form < 1e-8

    def test_verify_with_overrides(self, barbell):
        report = get_dynamics("heat_kernel").verify(barbell, t=7.5)
        assert report.parameter_description == "t=7.5"


class TestReporting:
    def test_format_value_special_cases(self):
        assert format_value(float("nan")) == "--"
        assert format_value(float("inf")) == "inf"
        assert format_value(0.5) == "0.5"
        assert "e" in format_value(1.23e-7)
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series(
            [1, 2], {"spectral": [0.1, 0.2], "flow": [0.05, 0.1]},
            x_label="size",
        )
        assert "spectral" in text and "flow" in text

    def test_format_markdown_table(self):
        from repro.core import format_markdown_table

        table = format_markdown_table(
            ["name", "n"], [["barbell", 34]], align="lr"
        )
        lines = table.splitlines()
        assert lines[0] == "| name | n |"
        assert lines[1] == "| --- | --: |"
        assert lines[2] == "| barbell | 34 |"

    def test_format_markdown_table_validates_align(self):
        from repro.core import format_markdown_table
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            format_markdown_table(["a", "b"], [], align="l")
        with pytest.raises(InvalidParameterError):
            format_markdown_table(["a", "b"], [], align="lx")

    def test_jsonable_coerces_numpy_and_paths(self):
        from pathlib import Path

        from repro.core import jsonable

        value = jsonable({
            "arr": np.arange(3),
            "f": np.float64(0.5),
            "i": np.int64(7),
            "flag": np.bool_(True),
            "path": Path("x/y"),
            "tup": (1, 2),
        })
        assert value == {"arr": [0, 1, 2], "f": 0.5, "i": 7,
                         "flag": True, "path": "x/y", "tup": [1, 2]}

    def test_verdict_strings(self):
        assert "[PASS]" in format_comparison_verdict("x", True, True)
        assert "[FAIL]" in format_comparison_verdict("x", True, False)

    def test_geometric_midpoints(self):
        mids = geometric_midpoints([1.0, 4.0, 16.0])
        assert np.allclose(mids, [2.0, 8.0])


class TestExperimentRecords:
    def test_record_roundtrip(self, tmp_path):
        import json

        from repro.core.experiments import write_record

        record = ExperimentRecord(
            experiment_id="E0",
            paper_artifact="Figure 1(a)",
            workload="test",
            claim="flow wins",
            observed="flow wins 80%",
            shape_matches=True,
            details={"fraction": 0.8},
        )
        path = write_record(record, tmp_path)
        loaded = json.loads(path.read_text())
        assert loaded["shape_matches"] is True
        assert loaded["details"]["fraction"] == 0.8

    def test_records_table(self):
        record = ExperimentRecord(
            experiment_id="E1", paper_artifact="F1", workload="w",
            claim="c", observed="o", shape_matches=False,
        )
        table = records_table([record])
        assert "MISMATCH" in table

    def test_stopwatch(self):
        with Stopwatch() as timer:
            sum(range(1000))
        assert timer.seconds >= 0


class TestWhiskerChainsAndClouds:
    def test_attach_whisker_chains_counts(self, ring):
        from repro.datasets import attach_whisker_chains

        grown = attach_whisker_chains(ring, 5, 3, seed=0)
        assert grown.num_nodes == ring.num_nodes + 15
        assert grown.num_edges == ring.num_edges + 15
        assert grown.is_connected()

    def test_attach_zero_chains_is_identity(self, ring):
        from repro.datasets import attach_whisker_chains

        assert attach_whisker_chains(ring, 0, 3) is ring

    def test_whiskered_atp_has_degree_one_fringe(self):
        from repro.datasets import synthetic_atp_dblp

        plain = synthetic_atp_dblp(scale="tiny", seed=1).graph
        grown = synthetic_atp_dblp(
            scale="tiny", seed=1, whisker_chains=15, whisker_length=3
        ).graph
        assert grown.num_nodes > plain.num_nodes
        assert (grown.degrees == 1).sum() > (plain.degrees == 1).sum()

    def test_figure1_rejects_grid_plus_ensemble_kwargs(self, whiskered):
        # An explicit grid carries the full diffusion workload; combining
        # it with num_seeds/alphas/epsilons must raise, not silently
        # ignore the per-ensemble keywords.
        from repro.exceptions import InvalidParameterError
        from repro.ncp import figure1_comparison

        grid = DiffusionGrid(PPR(alpha=(0.1,)), num_seeds=4, seed=0)
        for kwargs in (
            {"num_seeds": 8}, {"alphas": (0.1,)}, {"epsilons": (1e-4,)},
        ):
            with pytest.raises(InvalidParameterError):
                figure1_comparison(whiskered, grid=grid, **kwargs)

    def test_bucket_cloud_niceness_structure(self, whiskered):
        import numpy as np

        from repro.ncp import bucket_cloud_niceness, figure1_comparison

        result = figure1_comparison(
            whiskered,
            grid=DiffusionGrid(
                PPR(alpha=(0.05,)), epsilons=(1e-4,), num_seeds=6, seed=0
            ),
            num_buckets=4,
            seed=0,
        )
        clouds = bucket_cloud_niceness(
            whiskered, result, samples_per_bucket=4, seed=0
        )
        assert len(clouds) == len(result.buckets)
        for cloud in clouds:
            if cloud.spectral_count:
                assert np.isfinite(cloud.spectral_aspl)
                assert cloud.spectral_ratio <= 50.0
