"""The repro.analysis lint subsystem: registry, harness, rules, CLI.

Mirrors the per-backend parity pattern of ``tests/test_backends.py``:
every registered rule is auto-enrolled in the fixture harness — a
known-bad and a known-good snippet under ``tests/fixtures/lint/`` must
exist and behave — so adding a rule without fixtures fails here, and a
rule that stops firing on its own bad fixture fails here too.  Also
covers the registry semantics (aliases, codes, unknown-rule
did-you-mean, third-party extension rules), suppression pragmas, the
shrink-only baseline, output formats, and the ``repro lint`` CLI's exit
codes (0 clean / 1 findings / 2 usage / 141 broken pipe).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintFinding,
    LintRule,
    RuleVisitor,
    UnknownRuleError,
    apply_baseline,
    format_findings,
    get_rule,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    registered_rules,
    resolve_rule_name,
    select_rules,
    unregister_rule,
    write_baseline,
)
from repro.cli import main
from repro.exceptions import InvalidParameterError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

BUILTIN_RULES = (
    "no-stringly-dispatch",
    "cache-version-discipline",
    "determinism-hazards",
    "exception-policy",
    "shim-policy",
    "numba-purity",
    "executor-discipline",
)


def _fixture(rule_key, kind):
    return FIXTURES / f"{rule_key.replace('-', '_')}_{kind}.py"


class TestRegistry:
    def test_builtin_rules_present(self):
        assert set(registered_rules()) >= set(BUILTIN_RULES)

    def test_codes_and_aliases_resolve(self):
        assert resolve_rule_name("R001") == "no-stringly-dispatch"
        assert resolve_rule_name("stringly") == "no-stringly-dispatch"
        assert resolve_rule_name("r004") == "exception-policy"
        assert resolve_rule_name("determinism") == "determinism-hazards"

    def test_resolution_normalizes_case_and_separators(self):
        assert resolve_rule_name(" Shim-Policy ") == "shim-policy"
        assert resolve_rule_name("shim_policy") == "shim-policy"
        assert resolve_rule_name("NUMBA") == "numba-purity"

    def test_resolve_accepts_rule_instance(self):
        rule = get_rule("exception-policy")
        assert resolve_rule_name(rule) == "exception-policy"
        assert get_rule(rule) is rule

    def test_unknown_rule_error_type_and_suggestion(self):
        with pytest.raises(UnknownRuleError) as excinfo:
            get_rule("exception-polcy")
        assert isinstance(excinfo.value, InvalidParameterError)
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, KeyError)
        assert "did you mean 'exception-policy'" in str(excinfo.value)

    def test_unknown_rule_lists_registry(self):
        with pytest.raises(UnknownRuleError) as excinfo:
            resolve_rule_name("no-such-rule")
        message = str(excinfo.value)
        assert "no-stringly-dispatch" in message
        assert "shim-policy" in message

    def test_every_rule_documents_itself(self):
        for key, rule in registered_rules().items():
            assert rule.description.strip(), key
            assert rule.code and rule.code[0] in "RE", key
            assert rule.severity in ("error", "warning"), key

    def test_register_unregister_extension_rule(self):
        class NoEvalVisitor(RuleVisitor):
            def visit_Call(self, node):
                if getattr(node.func, "id", None) == "eval":
                    self.add(node, "eval() is banned")

        rule = LintRule(
            key="no-eval",
            code="X900",
            description="third-party example: ban eval()",
            aliases=("banned-eval",),
            visitor=NoEvalVisitor,
        )
        register_rule(rule)
        try:
            assert resolve_rule_name("x900") == "no-eval"
            assert resolve_rule_name("banned-eval") == "no-eval"
            findings = lint_source(
                "eval('1+1')\n", rules=(get_rule("no-eval"),)
            )
            assert [f.rule for f in findings] == ["no-eval"]
        finally:
            unregister_rule("no-eval")
        with pytest.raises(UnknownRuleError):
            get_rule("no-eval")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_rule(get_rule("shim-policy"))

    def test_invalid_severity_rejected(self):
        with pytest.raises(InvalidParameterError):
            LintRule(
                key="broken", code="X901", description="bad severity",
                visitor=RuleVisitor, severity="fatal",
            )


class TestFixtureHarness:
    """Every registered rule ships a known-bad and a known-good fixture."""

    @pytest.mark.parametrize("rule_key", sorted(BUILTIN_RULES))
    def test_fixture_files_exist(self, rule_key):
        assert _fixture(rule_key, "bad").is_file(), rule_key
        assert _fixture(rule_key, "good").is_file(), rule_key

    @pytest.mark.parametrize("rule_key", sorted(BUILTIN_RULES))
    def test_bad_fixture_fires_the_rule(self, rule_key):
        rule = get_rule(rule_key)
        path = _fixture(rule_key, "bad")
        findings = lint_source(
            path.read_text(encoding="utf-8"),
            path=path.as_posix(), rules=(rule,),
        )
        assert findings, f"{rule_key}: bad fixture produced no findings"
        assert all(f.rule == rule_key for f in findings)
        assert all(f.code == rule.code for f in findings)
        assert all(f.line > 0 and f.col > 0 for f in findings)

    @pytest.mark.parametrize("rule_key", sorted(BUILTIN_RULES))
    def test_good_fixture_is_clean(self, rule_key):
        path = _fixture(rule_key, "good")
        findings = lint_source(
            path.read_text(encoding="utf-8"),
            path=path.as_posix(), rules=(get_rule(rule_key),),
        )
        assert findings == [], f"{rule_key}: good fixture was flagged"

    def test_exempt_paths_skip_the_rule(self):
        source = 'if backend == "numba":\n    pass\n'
        flagged = lint_source(
            source, path="src/repro/ncp/runner.py",
            rules=(get_rule("no-stringly-dispatch"),),
        )
        exempt = lint_source(
            source, path="src/repro/dynamics.py",
            rules=(get_rule("no-stringly-dispatch"),),
        )
        assert flagged and exempt == []

    def test_syntax_error_becomes_a_finding(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert len(findings) == 1
        assert findings[0].rule == "syntax-error"
        assert findings[0].code == "E000"


class TestPragmas:
    BAD_LINE = "picks = np.random.choice(graph, 3)"

    def test_line_pragma_suppresses(self):
        rules = (get_rule("determinism-hazards"),)
        assert lint_source(self.BAD_LINE + "\n", rules=rules)
        assert lint_source(
            self.BAD_LINE + "  # repro-lint: disable=determinism-hazards\n",
            rules=rules,
        ) == []

    def test_pragma_accepts_aliases_and_codes(self):
        rules = (get_rule("determinism-hazards"),)
        for name in ("determinism", "R003", "all"):
            assert lint_source(
                f"{self.BAD_LINE}  # repro-lint: disable={name}\n",
                rules=rules,
            ) == [], name

    def test_pragma_only_covers_its_line(self):
        source = (
            f"{self.BAD_LINE}  # repro-lint: disable=determinism\n"
            f"{self.BAD_LINE}\n"
        )
        findings = lint_source(
            source, rules=(get_rule("determinism-hazards"),)
        )
        assert [f.line for f in findings] == [2]

    def test_disable_file_pragma(self):
        source = (
            "# repro-lint: disable-file=determinism-hazards\n"
            f"{self.BAD_LINE}\n"
            f"{self.BAD_LINE}\n"
        )
        assert lint_source(
            source, rules=(get_rule("determinism-hazards"),)
        ) == []

    def test_disable_file_pragma_must_be_near_the_top(self):
        source = "\n" * 20 + (
            "# repro-lint: disable-file=determinism-hazards\n"
            f"{self.BAD_LINE}\n"
        )
        findings = lint_source(
            source, rules=(get_rule("determinism-hazards"),)
        )
        assert findings


class TestSelectionAndWalker:
    def test_select_rules_default_is_everything(self):
        assert {r.key for r in select_rules()} == set(registered_rules())

    def test_select_and_ignore_compose(self):
        picked = select_rules("R001,shims", None)
        assert {r.key for r in picked} == {
            "no-stringly-dispatch", "shim-policy",
        }
        remaining = select_rules(None, "no-stringly-dispatch")
        assert "no-stringly-dispatch" not in {r.key for r in remaining}

    def test_select_unknown_rule_raises(self):
        with pytest.raises(UnknownRuleError):
            select_rules("no-such-rule", None)

    def test_empty_selection_raises(self):
        with pytest.raises(InvalidParameterError):
            select_rules("R001", "R001")

    def test_iter_python_files_walks_and_excludes(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "skipme.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path], exclude=("*skipme*",))
        assert [f.name for f in files] == ["a.py"]
        assert "__pycache__" not in files[0].parts

    def test_missing_path_raises(self):
        with pytest.raises(InvalidParameterError):
            iter_python_files(["no/such/dir"])

    def test_lint_paths_reports_clean_tree(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text('"""Clean module."""\nVALUE = 1\n')
        report = lint_paths([target])
        assert report.ok
        assert report.files_checked == 1
        assert set(report.rules) == set(registered_rules())


class TestBaseline:
    def _finding(self, line, rule="exception-policy", path="pkg/mod.py"):
        return LintFinding(
            path=path, line=line, col=1, code="R004", rule=rule,
            message="m", severity="error",
        )

    def test_apply_baseline_forgives_and_reports_stale(self):
        findings = [self._finding(1), self._finding(2)]
        baseline = {"pkg/mod.py::exception-policy": 3}
        fresh, forgiven, stale = apply_baseline(findings, baseline)
        assert fresh == []
        assert len(forgiven) == 2
        assert stale == {"pkg/mod.py::exception-policy": 1}

    def test_apply_baseline_surfaces_new_findings(self):
        findings = [self._finding(1), self._finding(2), self._finding(3)]
        baseline = {"pkg/mod.py::exception-policy": 1}
        fresh, forgiven, stale = apply_baseline(findings, baseline)
        assert len(fresh) == 2 and len(forgiven) == 1 and stale == {}

    def test_write_load_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [self._finding(1), self._finding(9)])
        assert load_baseline(target) == {
            "pkg/mod.py::exception-policy": 2,
        }

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_baseline(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(InvalidParameterError):
            load_baseline(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/v9", "entries": {}}))
        with pytest.raises(InvalidParameterError):
            load_baseline(wrong)


class TestOutputFormats:
    FINDING = LintFinding(
        path="src/x.py", line=3, col=7, code="R003",
        rule="determinism-hazards", message="wall clock", severity="error",
    )

    def test_human_format(self):
        text = format_findings([self.FINDING], "human")
        assert text == (
            "src/x.py:3:7: R003 [determinism-hazards] wall clock"
        )

    def test_json_format_roundtrips(self):
        payload = json.loads(format_findings([self.FINDING], "json"))
        assert payload["schema"] == "repro.analysis/findings/v1"
        assert payload["findings"][0]["rule"] == "determinism-hazards"
        assert payload["findings"][0]["line"] == 3

    def test_github_format(self):
        text = format_findings([self.FINDING], "github")
        assert text == (
            "::error file=src/x.py,line=3,col=7,"
            "title=R003 determinism-hazards::wall clock"
        )

    def test_unknown_format_rejected(self):
        with pytest.raises(InvalidParameterError):
            format_findings([self.FINDING], "xml")


class TestLintCli:
    """Exit codes: 0 clean, 1 findings, 2 usage errors, 141 broken pipe."""

    def test_clean_path_exits_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text('"""Clean."""\nVALUE = 1\n')
        assert main(["lint", str(target)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_1(self, capsys):
        bad = _fixture("exception-policy", "bad")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[exception-policy]" in out

    def test_unknown_rule_exits_2(self, capsys):
        bad = _fixture("exception-policy", "bad")
        assert main(["lint", str(bad), "--select", "nope"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_no_paths_exits_2(self, capsys):
        assert main(["lint"]) == 2
        assert "at least one file" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_documents_every_rule(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for key, rule in registered_rules().items():
            assert key in out
            assert rule.code in out
            assert rule.description.split(",")[0][:40] in out

    def test_select_limits_rules(self, capsys):
        bad = _fixture("exception-policy", "bad")
        assert main([
            "lint", str(bad), "--select", "no-stringly-dispatch",
        ]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_github_format_annotations(self, capsys):
        bad = _fixture("shim-policy", "bad")
        assert main(["lint", str(bad), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=R005 shim-policy::" in out

    def test_json_format(self, capsys):
        bad = _fixture("determinism-hazards", "bad")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert all(
            f["rule"] == "determinism-hazards"
            for f in payload["findings"]
        )

    def test_baseline_workflow(self, tmp_path, capsys):
        bad = _fixture("cache-version-discipline", "bad")
        baseline = tmp_path / "baseline.json"
        # Write the baseline, then the same tree lints clean against it.
        assert main([
            "lint", str(bad), "--baseline", str(baseline),
            "--write-baseline",
        ]) == 0
        assert main([
            "lint", str(bad), "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # A new violation is NOT forgiven by the old baseline.
        grown = tmp_path / "grown.py"
        grown.write_text(
            bad.read_text(encoding="utf-8")
            + "\n\ndef another_cache_key(x):\n    return str(x)\n"
        )
        assert main([
            "lint", str(grown), "--baseline", str(baseline),
        ]) == 1

    def test_stale_baseline_is_reported(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Clean."""\nVALUE = 1\n')
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": "repro.analysis/lint-baseline/v1",
            "entries": {f"{clean.as_posix()}::exception-policy": 2},
        }))
        assert main(["lint", str(clean), "--baseline", str(baseline)]) == 0
        assert "stale by 2" in capsys.readouterr().out

    def test_repo_tree_is_clean(self):
        # The merged tree holds the acceptance bar: `repro lint src/`
        # exits 0 with the committed (empty-or-shrinking) baseline.
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        report = lint_paths(
            [REPO_ROOT / "src"], baseline=baseline or None
        )
        assert report.ok, [f.format_human() for f in report.findings]

    def test_broken_pipe_exits_141(self):
        # Spawn unbuffered so the first print hits the dead pipe inside
        # run(), exercising main()'s BrokenPipeError -> 141 convention
        # on the new lint output path.
        reader, writer = os.pipe()
        os.close(reader)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        try:
            proc = subprocess.run(
                [sys.executable, "-u", "-m", "repro", "lint", "--list"],
                stdout=writer, stderr=subprocess.PIPE, env=env,
                cwd=REPO_ROOT, timeout=120,
            )
        finally:
            os.close(writer)
        assert proc.returncode == 141, proc.stderr.decode()
