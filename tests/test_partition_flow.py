"""Tests for max-flow, MQI, flow-improve, and the multilevel partitioner."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import FlowError, PartitionError
from repro.graph.generators import (
    barbell_graph,
    lollipop_graph,
    ring_of_cliques,
)
from repro.partition.flow_improve import dilate, flow_improve
from repro.partition.maxflow import FlowNetwork
from repro.partition.metrics import conductance, graph_conductance_exact
from repro.partition.mqi import mqi, mqi_certificate
from repro.partition.multilevel import (
    contract,
    fm_refine,
    heavy_edge_matching,
    multilevel_bisection,
    recursive_bisection_clusters,
)


class TestMaxFlow:
    def test_textbook_instance(self):
        net = FlowNetwork(6)
        arcs = [(0, 1, 16), (0, 2, 13), (1, 2, 10), (2, 1, 4), (1, 3, 12),
                (3, 2, 9), (2, 4, 14), (4, 3, 7), (3, 5, 20), (4, 5, 4)]
        for u, v, c in arcs:
            net.add_edge(u, v, c)
        result = net.max_flow(0, 5)
        assert result.value == pytest.approx(23.0)  # CLRS example

    def test_duality_on_random_networks(self, rng):
        for trial in range(8):
            n = 8
            net = FlowNetwork(n)
            g = nx.DiGraph()
            for _ in range(20):
                u, v = rng.integers(n, size=2)
                if u == v:
                    continue
                c = float(rng.integers(1, 10))
                net.add_edge(int(u), int(v), c)
                if g.has_edge(int(u), int(v)):
                    g[int(u)][int(v)]["capacity"] += c
                else:
                    g.add_edge(int(u), int(v), capacity=c)
            if not (g.has_node(0) and g.has_node(n - 1)):
                continue
            ours = net.max_flow(0, n - 1)
            theirs = nx.maximum_flow_value(g, 0, n - 1)
            assert ours.value == pytest.approx(theirs)
            # Min-cut capacity equals the flow value.
            side = ours.min_cut_source_side()
            assert ours.cut_capacity(side) == pytest.approx(ours.value)

    def test_undirected_edge_helper(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 2.0, reverse_capacity=2.0)
        net.add_edge(1, 2, 1.0)
        assert net.max_flow(0, 2).value == pytest.approx(1.0)

    def test_disconnected_zero_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 5)
        net.add_edge(2, 3, 5)
        assert net.max_flow(0, 3).value == 0.0

    def test_same_source_sink_rejected(self):
        net = FlowNetwork(3)
        with pytest.raises(FlowError):
            net.max_flow(1, 1)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            net.add_edge(0, 1, -1.0)


class TestMQI:
    def test_improves_to_planted_cut_on_lollipop(self):
        g = lollipop_graph(12, 24)
        result = mqi(g, list(range(10, 36)))
        # The optimal subset is the path: cut 1, vol = 2*24 - 1.
        assert result.conductance == pytest.approx(1 / 47)
        assert result.conductance < result.initial_conductance

    def test_matches_exact_on_small_graphs(self):
        # Starts chosen with vol <= vol(G)/2 that contain the optimal set.
        for graph, start in [
            (lollipop_graph(5, 6), list(range(4, 11))),
            (barbell_graph(4, 4), list(range(0, 6))),
        ]:
            exact_value, _ = graph_conductance_exact(graph)
            result = mqi(graph, start)
            # MQI is optimal only among subsets of the start, so it can't
            # beat the global optimum, and on these instances it finds it.
            assert result.conductance >= exact_value - 1e-12
            assert result.conductance == pytest.approx(exact_value)

    def test_fixed_point_is_subset_optimal(self, ring):
        result = mqi(ring, list(range(10)))
        base, best_random = mqi_certificate(ring, result.nodes, seed=3)
        assert base <= best_random + 1e-12

    def test_never_worsens(self, whiskered, rng):
        for _ in range(5):
            k = int(rng.integers(4, 20))
            side = rng.choice(whiskered.num_nodes, size=k, replace=False)
            if whiskered.degrees[side].sum() > whiskered.total_volume / 2:
                continue
            result = mqi(whiskered, side)
            assert result.conductance <= result.initial_conductance + 1e-12

    def test_history_strictly_decreasing(self):
        g = lollipop_graph(10, 20)
        result = mqi(g, list(range(8, 30)))
        history = [result.initial_conductance] + result.history
        assert all(b < a for a, b in zip(history, history[1:]))

    def test_volume_precondition(self, ring):
        big = list(range(ring.num_nodes - 3))
        with pytest.raises(PartitionError, match="vol"):
            mqi(ring, big)


class TestFlowImprove:
    def test_dilate_radius_zero_is_identity(self, ring):
        base = np.array([0, 1, 2])
        assert np.array_equal(dilate(ring, base, 0), base)

    def test_dilate_grows_by_neighborhood(self, ring):
        grown = dilate(ring, [0], 1)
        expected = {0} | {int(v) for v in ring.neighbors(0)}
        assert set(grown.tolist()) == expected

    def test_improves_partial_whisker(self, whiskered):
        # Half a whisker: dilation lets flow find the full whisker cut.
        base = list(range(40, 43))
        result = flow_improve(whiskered, base, dilation_radius=3)
        assert result.conductance <= result.initial_conductance + 1e-12

    def test_never_worse_than_input(self, ring, rng):
        for _ in range(4):
            k = int(rng.integers(3, 10))
            side = rng.choice(ring.num_nodes, size=k, replace=False)
            result = flow_improve(ring, side, dilation_radius=1)
            assert result.conductance <= conductance(ring, side) + 1e-12


class TestMultilevel:
    def test_matching_is_valid(self, whiskered, rng):
        match = heavy_edge_matching(whiskered, rng)
        for u in range(whiskered.num_nodes):
            v = int(match[u])
            assert int(match[v]) == u  # involution
            if v != u:
                assert whiskered.has_edge(u, v)

    def test_contract_preserves_volume_and_cutweight(self, ring, rng):
        match = heavy_edge_matching(ring, rng)
        coarse, volumes, mapping = contract(ring, ring.degrees.copy(), match)
        assert volumes.sum() == pytest.approx(ring.total_volume)
        assert coarse.num_nodes < ring.num_nodes
        # Total coarse edge weight = fine weight minus contracted weight.
        fine_total = sum(w for *_e, w in ring.edges())
        contracted = sum(
            ring.edge_weight(u, int(match[u])) for u in range(ring.num_nodes)
            if int(match[u]) > u
        )
        coarse_total = sum(w for *_e, w in coarse.edges())
        assert coarse_total == pytest.approx(fine_total - contracted)

    def test_fm_refine_never_increases_cut(self, planted, rng):
        mask = rng.random(planted.num_nodes) < 0.5
        if not mask.any() or mask.all():
            mask[0] = ~mask[0]
        before = planted.cut_weight(mask)
        refined = fm_refine(planted, planted.degrees.copy(), mask)
        after = planted.cut_weight(refined)
        assert after <= before + 1e-9

    def test_bisection_finds_planted_cut(self):
        g = ring_of_cliques(6, 8)
        result = multilevel_bisection(g, seed=0)
        # Best balanced cut severs 2 bridges on each side: cut weight 4,
        # but any 3-clique side with cut 2+2 = 4 / vol(side); allow near.
        assert result.conductance < 0.05

    def test_bisection_on_barbell(self):
        result = multilevel_bisection(barbell_graph(12), seed=1)
        assert result.cut_weight == pytest.approx(1.0)

    def test_recursive_clusters_multiscale(self):
        g = ring_of_cliques(8, 8)
        clusters = recursive_bisection_clusters(g, min_size=4, seed=2)
        sizes = sorted({len(c) for c in clusters})
        assert len(sizes) >= 3  # clusters at several scales
        assert min(sizes) >= 4

    def test_recursive_clusters_are_valid_node_sets(self, whiskered):
        clusters = recursive_bisection_clusters(whiskered, min_size=4, seed=3)
        for cluster in clusters:
            assert len(set(cluster.tolist())) == cluster.size
            assert cluster.min() >= 0
            assert cluster.max() < whiskered.num_nodes
