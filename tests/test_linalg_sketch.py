"""Tests for randomized sketching (RandNLA) primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.linalg.sketch import (
    gaussian_sketch,
    randomized_range_finder,
    randomized_svd,
    sketched_least_squares,
    sparse_sign_sketch,
    srdt_sketch_apply,
)


@pytest.fixture
def ls_problem(rng):
    n, d = 400, 15
    A = rng.standard_normal((n, d))
    x_true = rng.standard_normal(d)
    b = A @ x_true + 0.05 * rng.standard_normal(n)
    exact, *_ = np.linalg.lstsq(A, b, rcond=None)
    return A, b, exact


class TestSketchOperators:
    def test_gaussian_shape_and_scale(self):
        S = gaussian_sketch(50, 200, seed=0)
        assert S.shape == (50, 200)
        # Columns have expected squared norm ~ 1.
        norms = (S**2).sum(axis=0)
        assert norms.mean() == pytest.approx(1.0, rel=0.2)

    def test_sparse_sign_nnz(self):
        S = sparse_sign_sketch(60, 100, seed=1, nnz_per_column=5)
        assert S.shape == (60, 100)
        assert S.nnz == 100 * 5

    def test_sparse_sign_norm_preserving_in_expectation(self, rng):
        S = sparse_sign_sketch(120, 300, seed=2)
        x = rng.standard_normal(300)
        assert np.linalg.norm(S @ x) == pytest.approx(
            np.linalg.norm(x), rel=0.3
        )

    def test_srdt_norm_preserving_in_expectation(self, rng):
        x = rng.standard_normal(256)
        sketched = srdt_sketch_apply(x, 128, seed=3)
        assert np.linalg.norm(sketched) == pytest.approx(
            np.linalg.norm(x), rel=0.3
        )

    def test_srdt_sketch_size_bounds(self, rng):
        with pytest.raises(InvalidParameterError):
            srdt_sketch_apply(rng.standard_normal(10), 11, seed=0)


class TestSketchedLeastSquares:
    @pytest.mark.parametrize("kind", ["gaussian", "sparse", "srdt"])
    def test_near_optimal_residual(self, ls_problem, kind):
        A, b, exact = ls_problem
        optimal = np.linalg.norm(A @ exact - b)
        result = sketched_least_squares(A, b, 150, kind=kind, seed=4)
        # Sketch-and-solve gives (1 + eps) approximation of the residual.
        assert result.residual_norm <= 1.3 * optimal

    def test_sketch_size_validation(self, ls_problem):
        A, b, _ = ls_problem
        with pytest.raises(InvalidParameterError):
            sketched_least_squares(A, b, 5, seed=0)  # below d

    def test_unknown_kind(self, ls_problem):
        A, b, _ = ls_problem
        with pytest.raises(InvalidParameterError):
            sketched_least_squares(A, b, 100, kind="fourier")

    def test_larger_sketch_closer_to_exact(self, ls_problem):
        A, b, exact = ls_problem
        errors = []
        for k in (30, 120, 390):
            deviations = [
                np.linalg.norm(
                    sketched_least_squares(
                        A, b, k, kind="gaussian", seed=s
                    ).solution - exact
                )
                for s in range(8)
            ]
            errors.append(np.mean(deviations))
        assert errors[2] < errors[0]

    def test_implicit_shrinkage_on_ill_conditioned(self, rng):
        # On an ill-conditioned design, small sketches act like ridge: the
        # average sketched solution norm should not exceed (much) the OLS
        # norm, and variance shows up in the solution rather than blowup.
        n, d = 300, 12
        U, _ = np.linalg.qr(rng.standard_normal((n, d)))
        V, _ = np.linalg.qr(rng.standard_normal((d, d)))
        s = np.geomspace(1.0, 1e-3, d)
        A = (U * s) @ V.T
        b = rng.standard_normal(n)
        exact, *_ = np.linalg.lstsq(A, b, rcond=None)
        norms = [
            sketched_least_squares(A, b, 40, seed=seed).solution_norm
            for seed in range(10)
        ]
        # Heavily sketched solutions fluctuate but should stay within a few
        # multiples of the exact norm (no catastrophic blowup).
        assert np.median(norms) < 10 * np.linalg.norm(exact)


class TestRandomizedSVD:
    def test_recovers_low_rank_exactly(self, rng):
        U, _ = np.linalg.qr(rng.standard_normal((80, 5)))
        V, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        s = np.array([10.0, 8.0, 5.0, 2.0, 1.0])
        A = (U * s) @ V.T
        Uh, sh, Vth = randomized_svd(A, 5, seed=0)
        assert np.allclose(sh, s, atol=1e-8)
        assert np.allclose((Uh * sh) @ Vth, A, atol=1e-8)

    def test_truncation_error_near_optimal(self, rng):
        A = rng.standard_normal((100, 60))
        _, s_full, _ = np.linalg.svd(A)
        rank = 10
        Uh, sh, Vth = randomized_svd(A, rank, power_iterations=3, seed=1)
        approx = (Uh * sh) @ Vth
        optimal = s_full[rank]  # best rank-k spectral error
        achieved = np.linalg.norm(A - approx, 2)
        assert achieved <= 1.5 * optimal + 1e-9

    def test_range_finder_orthonormal(self, rng):
        A = rng.standard_normal((50, 30))
        Q = randomized_range_finder(A, 8, seed=2)
        assert np.allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-10)
