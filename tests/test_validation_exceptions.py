"""Tests for the internal validation helpers and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import _validation as v
from repro.exceptions import (
    ConvergenceError,
    DisconnectedGraphError,
    EmptyGraphError,
    FlowError,
    GraphError,
    InvalidParameterError,
    PartitionError,
    ReproError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, EmptyGraphError, DisconnectedGraphError,
        ConvergenceError, InvalidParameterError, PartitionError, FlowError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specializations(self):
        assert issubclass(EmptyGraphError, GraphError)
        assert issubclass(DisconnectedGraphError, GraphError)
        assert issubclass(InvalidParameterError, ValueError)

    def test_convergence_error_carries_diagnostics(self):
        error = ConvergenceError("slow", iterations=7, residual=0.5)
        assert error.iterations == 7
        assert error.residual == 0.5


class TestCheckProbability:
    def test_open_interval_default(self):
        assert v.check_probability(0.5, "p") == 0.5
        with pytest.raises(InvalidParameterError):
            v.check_probability(0.0, "p")
        with pytest.raises(InvalidParameterError):
            v.check_probability(1.0, "p")

    def test_inclusive_endpoints(self):
        assert v.check_probability(0.0, "p", inclusive_low=True) == 0.0
        assert v.check_probability(1.0, "p", inclusive_high=True) == 1.0

    def test_rejects_nan_and_strings(self):
        with pytest.raises(InvalidParameterError):
            v.check_probability(float("nan"), "p")
        with pytest.raises(InvalidParameterError):
            v.check_probability("0.5", "p")


class TestCheckPositiveAndReal:
    def test_positive(self):
        assert v.check_positive(2, "x") == 2.0
        with pytest.raises(InvalidParameterError):
            v.check_positive(0, "x")
        assert v.check_positive(0, "x", allow_zero=True) == 0.0

    def test_real_rejects_bool_and_inf(self):
        with pytest.raises(InvalidParameterError):
            v.check_real(True, "x")
        with pytest.raises(InvalidParameterError):
            v.check_real(float("inf"), "x")
        assert v.check_real(np.float64(1.5), "x") == 1.5


class TestCheckInt:
    def test_bounds(self):
        assert v.check_int(3, "k", minimum=1, maximum=5) == 3
        with pytest.raises(InvalidParameterError):
            v.check_int(0, "k", minimum=1)
        with pytest.raises(InvalidParameterError):
            v.check_int(9, "k", maximum=5)

    def test_rejects_bool_and_float(self):
        with pytest.raises(InvalidParameterError):
            v.check_int(True, "k")
        with pytest.raises(InvalidParameterError):
            v.check_int(2.0, "k")

    def test_numpy_integers_accepted(self):
        assert v.check_int(np.int64(4), "k") == 4


class TestCheckNodeAndVector:
    def test_node_range(self):
        assert v.check_node(2, 5) == 2
        with pytest.raises(InvalidParameterError):
            v.check_node(5, 5)
        with pytest.raises(InvalidParameterError):
            v.check_node(-1, 5)

    def test_vector_shape_and_finiteness(self):
        assert v.check_vector([1, 2, 3], 3).dtype == float
        with pytest.raises(InvalidParameterError):
            v.check_vector([1, 2], 3)
        with pytest.raises(InvalidParameterError):
            v.check_vector([1, float("nan"), 3], 3)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(v.as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = v.as_rng(7).random(3)
        b = v.as_rng(7).random(3)
        assert np.allclose(a, b)

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert v.as_rng(rng) is rng
