"""Tests for the sharded NCP runner and the profile/ensemble bug fixes.

The runner's contract is determinism: the candidate ensemble must be
identical whether chunks run serially in-process, on a worker pool, or
come back from the on-disk memo — and identical to the direct generator
loop.  All workloads are expressed as :class:`repro.dynamics.DiffusionGrid`
specs; the deprecated keyword-soup path is covered by the dedicated
shim-parity module.  The regression tests pin the profile bugs fixed in
PR 2: the top-edge bucket drop, the collision-prone flow dedup key, and
the mixing-time non-convergence lie.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.diffusion import mixing_time
from repro.dynamics import DiffusionGrid, HeatKernel, LazyWalk, PPR
from repro.exceptions import (
    ConvergenceError,
    InvalidParameterError,
    PartitionError,
)
from repro.graph.generators import cycle_graph
from repro.ncp.profile import (
    ClusterCandidate,
    _unique_clusters,
    best_per_size_bucket,
    cluster_ensemble_ncp,
)
from repro.ncp.runner import (
    _load_chunk,
    graph_fingerprint,
    plan_chunks,
    run_ncp_ensemble,
)
from repro.partition.metrics import graph_conductance_exact


def candidate_signature(candidates):
    """Order-sensitive exact signature of a candidate ensemble."""
    return [
        (c.nodes.tobytes(), c.conductance, c.method) for c in candidates
    ]


def ppr_grid(**overrides):
    base = dict(
        dynamics=PPR(alpha=(0.05, 0.15)), epsilons=(1e-3, 1e-4),
        num_seeds=8, seed=3,
    )
    base.update(overrides)
    return DiffusionGrid(**base)


class TestRunnerDeterminism:
    def test_serial_runner_matches_direct_generator(self, whiskered):
        grid = ppr_grid()
        direct = cluster_ensemble_ncp(whiskered, grid)
        run = run_ncp_ensemble(whiskered, grid, seeds_per_chunk=3)
        assert run.num_chunks == 3
        assert run.num_workers == 0
        assert candidate_signature(run.candidates) == candidate_signature(
            direct
        )

    def test_worker_pool_matches_serial(self, whiskered):
        grid = ppr_grid()
        serial = run_ncp_ensemble(whiskered, grid, seeds_per_chunk=3)
        pooled = run_ncp_ensemble(
            whiskered, grid, seeds_per_chunk=3, num_workers=2
        )
        assert pooled.num_workers == 2
        assert candidate_signature(pooled.candidates) == (
            candidate_signature(serial.candidates)
        )

    def test_worker_counts_byte_identical(self, whiskered):
        # The shared-memory transport must not perturb results: any
        # worker count produces the same bytes, candidate for candidate.
        grid = ppr_grid()
        signatures = [
            candidate_signature(
                run_ncp_ensemble(
                    whiskered, grid, seeds_per_chunk=2,
                    num_workers=workers,
                ).candidates
            )
            for workers in (0, 1, 2)
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_shared_graph_roundtrip(self, whiskered):
        from repro.ncp.runner import _attach_shared_graph, _share_graph

        shm, layout = _share_graph(whiskered)
        try:
            attached_shm, attached = _attach_shared_graph(shm.name, layout)
            try:
                assert np.array_equal(attached.indptr, whiskered.indptr)
                assert np.array_equal(attached.indices, whiskered.indices)
                assert np.array_equal(attached.weights, whiskered.weights)
                assert not attached.weights.flags.writeable
            finally:
                del attached
                attached_shm.close()
        finally:
            shm.close()
            shm.unlink()

    def test_workers_on_memmapped_binary_graph(self, whiskered, tmp_path):
        # Workers share whatever storage the parent loaded — including
        # int32-index memmaps from a .reprograph file — and the ensemble
        # (and its fingerprint scope) is identical to the in-memory run.
        from repro.graph.storage import write_binary, read_binary

        path = tmp_path / "w.reprograph"
        write_binary(whiskered, path)
        mapped = read_binary(path)
        assert graph_fingerprint(mapped) == graph_fingerprint(whiskered)
        grid = ppr_grid()
        native = run_ncp_ensemble(whiskered, grid, seeds_per_chunk=3)
        pooled = run_ncp_ensemble(
            mapped, grid, seeds_per_chunk=3, num_workers=2
        )
        assert candidate_signature(pooled.candidates) == (
            candidate_signature(native.candidates)
        )

    def test_chunk_width_does_not_change_ensemble(self, whiskered):
        grid = ppr_grid()
        wide = run_ncp_ensemble(whiskered, grid, seeds_per_chunk=8)
        narrow = run_ncp_ensemble(whiskered, grid, seeds_per_chunk=1)
        assert narrow.num_chunks == 8
        assert candidate_signature(wide.candidates) == candidate_signature(
            narrow.candidates
        )

    def test_plan_chunks_partitions_in_order(self):
        chunks = plan_chunks("hk", [5, 9, 2, 7, 1], [("ts", (3.0,))],
                             seeds_per_chunk=2)
        assert [c.index for c in chunks] == [0, 1, 2]
        assert [c.seed_nodes for c in chunks] == [(5, 9), (2, 7), (1,)]
        assert all(c.dynamics == "hk" for c in chunks)

    def test_plan_chunks_canonicalizes_aliases_and_specs(self):
        spec = HeatKernel(t=(3.0,))
        by_alias = plan_chunks("heat_kernel", [1, 2], spec.grid_params())
        by_spec = plan_chunks(spec, [1, 2], spec.grid_params())
        assert by_alias == by_spec
        assert by_alias[0].dynamics == "hk"

    def test_unknown_dynamics_rejected(self, whiskered):
        with pytest.raises(InvalidParameterError):
            run_ncp_ensemble(whiskered, "quantum")

    def test_grid_plus_legacy_kwargs_rejected(self, whiskered):
        with pytest.raises(InvalidParameterError):
            run_ncp_ensemble(whiskered, ppr_grid(), num_seeds=4)


class TestRunnerMemoization:
    def test_second_run_serves_all_chunks_from_cache(self, whiskered,
                                                     tmp_path):
        grid = DiffusionGrid(
            HeatKernel(t=(2.0, 8.0)), epsilons=(1e-3,), num_seeds=6, seed=1
        )
        kwargs = dict(seeds_per_chunk=2, cache_dir=tmp_path)
        first = run_ncp_ensemble(whiskered, grid, **kwargs)
        assert first.cache_hits == 0
        assert len(list(tmp_path.glob("*.npz"))) == first.num_chunks
        second = run_ncp_ensemble(whiskered, grid, **kwargs)
        assert second.cache_hits == second.num_chunks == first.num_chunks
        assert candidate_signature(second.candidates) == (
            candidate_signature(first.candidates)
        )

    def test_different_grid_misses_cache(self, whiskered, tmp_path):
        base = dict(epsilons=(1e-3,), num_seeds=4, seed=0)
        run_ncp_ensemble(
            whiskered, DiffusionGrid(PPR(alpha=(0.1,)), **base),
            cache_dir=tmp_path,
        )
        other = run_ncp_ensemble(
            whiskered, DiffusionGrid(PPR(alpha=(0.2,)), **base),
            cache_dir=tmp_path,
        )
        assert other.cache_hits == 0

    def test_corrupt_cache_entry_is_recomputed(self, whiskered, tmp_path):
        grid = DiffusionGrid(
            PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=3, seed=0
        )
        first = run_ncp_ensemble(whiskered, grid, cache_dir=tmp_path)
        for entry in tmp_path.glob("*.npz"):
            entry.write_bytes(b"not a zip file")
        repaired = run_ncp_ensemble(whiskered, grid, cache_dir=tmp_path)
        assert repaired.cache_hits == 0
        assert candidate_signature(repaired.candidates) == (
            candidate_signature(first.candidates)
        )
        # The rewritten entries serve the next run.
        third = run_ncp_ensemble(whiskered, grid, cache_dir=tmp_path)
        assert third.cache_hits == third.num_chunks

    @pytest.mark.parametrize(
        "fixture", ["chunk_truncated.npz", "chunk_bitflipped.npz"]
    )
    def test_committed_corrupt_fixture_is_a_miss_not_a_crash(
            self, whiskered, tmp_path, fixture):
        # Regression for the truncated/bit-flipped memo bug class: the
        # committed fixtures are a real _save_chunk payload cut short
        # mid-write and one with a flipped byte (the chaos executor's
        # corrupt fault produces exactly these shapes).  Both must read
        # back as cache misses, be recomputed, and be rewritten valid.
        fixtures = Path(__file__).parent / "fixtures" / "cache"
        assert _load_chunk(fixtures / "chunk_valid.npz") is not None
        assert _load_chunk(fixtures / fixture) is None
        grid = DiffusionGrid(
            PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=4, seed=0
        )
        first = run_ncp_ensemble(
            whiskered, grid, seeds_per_chunk=2, cache_dir=tmp_path
        )
        target = sorted(tmp_path.glob("*.npz"))[0]
        target.write_bytes((fixtures / fixture).read_bytes())
        repaired = run_ncp_ensemble(
            whiskered, grid, seeds_per_chunk=2, cache_dir=tmp_path
        )
        assert repaired.cache_hits == repaired.num_chunks - 1
        assert candidate_signature(repaired.candidates) == (
            candidate_signature(first.candidates)
        )
        assert _load_chunk(target) is not None

    def test_scalar_engine_never_served_batched_entries(self, whiskered,
                                                        tmp_path):
        # Regression: the engines agree only up to eps-scale sweep
        # perturbations, so a scalar-oracle run must not alias the
        # batched cache entries (or vice versa).
        base = dict(
            dynamics=PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=4,
            seed=0,
        )
        batched = run_ncp_ensemble(
            whiskered, DiffusionGrid(backend="numpy", **base),
            cache_dir=tmp_path,
        )
        assert batched.cache_hits == 0
        scalar = run_ncp_ensemble(
            whiskered, DiffusionGrid(backend="scalar", **base),
            cache_dir=tmp_path,
        )
        assert scalar.cache_hits == 0
        # Each engine's entries serve its own repeat runs.
        again = run_ncp_ensemble(
            whiskered, DiffusionGrid(backend="scalar", **base),
            cache_dir=tmp_path,
        )
        assert again.cache_hits == again.num_chunks

    def test_different_graph_misses_cache(self, whiskered, ring, tmp_path):
        grid = DiffusionGrid(
            PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=4, seed=0
        )
        run_ncp_ensemble(whiskered, grid, cache_dir=tmp_path)
        other = run_ncp_ensemble(ring, grid, cache_dir=tmp_path)
        assert other.cache_hits == 0
        assert graph_fingerprint(whiskered) != graph_fingerprint(ring)


class TestMultiDynamicsEnsembles:
    def test_hk_ensemble_batched_matches_scalar_path(self, whiskered):
        base = dict(
            dynamics=HeatKernel(t=(2.0, 8.0)), epsilons=(1e-3, 1e-4),
            num_seeds=6, seed=0,
        )
        scalar = cluster_ensemble_ncp(
            whiskered, DiffusionGrid(backend="scalar", **base)
        )
        batched = cluster_ensemble_ncp(
            whiskered, DiffusionGrid(backend="numpy", **base)
        )
        assert len(batched) > 0
        assert all(c.method == "hk" for c in batched)
        # The batched stages are bitwise-parity with the scalar loop up to
        # summation order, so the recorded candidates agree exactly up to
        # eps-scale sweep perturbations; compare the bucketed profiles.
        ps = best_per_size_bucket(scalar, num_buckets=6)
        pb = best_per_size_bucket(batched, num_buckets=6)
        finite = np.isfinite(ps.best_conductance)
        assert np.array_equal(finite, np.isfinite(pb.best_conductance))
        assert np.allclose(
            ps.best_conductance[finite], pb.best_conductance[finite],
            atol=0.05,
        )

    def test_grid_rejects_unknown_engine(self):
        with pytest.raises(InvalidParameterError):
            DiffusionGrid(HeatKernel(), backend="gpu")

    def test_walk_ensemble_produces_walk_candidates(self, whiskered):
        candidates = cluster_ensemble_ncp(
            whiskered,
            DiffusionGrid(
                LazyWalk(steps=(4, 16)), epsilons=(1e-3,), num_seeds=5,
                seed=2,
            ),
        )
        assert len(candidates) > 0
        assert all(c.method == "walk" for c in candidates)
        profile = best_per_size_bucket(candidates, num_buckets=5)
        assert np.isfinite(profile.best_conductance).any()

    def test_runner_matches_direct_generator_under_defaults(self, whiskered):
        # epsilons=None resolves per dynamics, so a default runner run
        # shards exactly the ensemble the direct generator produces.
        grid = DiffusionGrid(HeatKernel(), num_seeds=3, seed=5)
        direct = cluster_ensemble_ncp(whiskered, grid)
        run = run_ncp_ensemble(whiskered, grid)
        assert candidate_signature(run.candidates) == candidate_signature(
            direct
        )

    def test_runner_covers_all_dynamics(self, whiskered):
        for spec in (PPR(), HeatKernel(), LazyWalk()):
            run = run_ncp_ensemble(
                whiskered, DiffusionGrid(spec, num_seeds=4, seed=0)
            )
            assert len(run.candidates) > 0, spec
            assert run.dynamics == type(spec).name
            assert run.grid.dynamics == spec

    def test_runner_accepts_names_and_kinds(self, whiskered):
        from repro.dynamics import get_dynamics

        by_name = run_ncp_ensemble(
            whiskered, DiffusionGrid("hk", num_seeds=3, seed=0)
        )
        by_kind = run_ncp_ensemble(
            whiskered,
            DiffusionGrid(get_dynamics("heat_kernel"), num_seeds=3, seed=0),
        )
        assert candidate_signature(by_name.candidates) == (
            candidate_signature(by_kind.candidates)
        )

    def test_multidynamics_record(self, whiskered):
        from repro.core import run_multidynamics_ncp

        record, profiles = run_multidynamics_ncp(
            whiskered, num_seeds=4, seed=0
        )
        assert record.shape_matches
        assert set(profiles) == {"ppr", "hk", "walk"}
        for name in profiles:
            assert record.details[name]["num_candidates"] > 0

    def test_multidynamics_accepts_specs(self, whiskered):
        from repro.core import run_multidynamics_ncp

        record, profiles = run_multidynamics_ncp(
            whiskered,
            dynamics=(PPR(alpha=(0.1,)), HeatKernel(t=(3.0,))),
            num_seeds=3,
            seed=0,
        )
        assert set(profiles) == {"ppr", "hk"}
        assert record.shape_matches

    def test_multidynamics_rejects_duplicate_dynamics(self, whiskered):
        # Results are keyed by canonical name; two PPR workloads would
        # silently drop one, so the call must refuse instead.
        from repro.core import run_multidynamics_ncp

        with pytest.raises(InvalidParameterError):
            run_multidynamics_ncp(
                whiskered,
                dynamics=(PPR(alpha=(0.01,)), PPR(alpha=(0.5,))),
                num_seeds=2,
                seed=0,
            )

    def test_multidynamics_record_reports_empty_ensembles(self):
        # A graph too small for any sweep must yield a mismatch record,
        # not a PartitionError out of the profile reduction.
        from repro.core import run_multidynamics_ncp
        from repro.graph.build import from_edges

        tiny = from_edges(2, [(0, 1)], [1.0])
        record, profiles = run_multidynamics_ncp(tiny, num_seeds=2, seed=0)
        assert not record.shape_matches
        assert all(profile is None for profile in profiles.values())
        assert "no candidates" in record.observed

    def test_walk_spec_rejects_negative_steps(self):
        with pytest.raises(InvalidParameterError):
            LazyWalk(steps=(-1, 16))


class TestTopBucketRegression:
    def test_size_max_size_candidate_lands_in_top_bucket(self):
        # Regression: a candidate whose size equals the top bucket edge
        # used to fall past the last bucket and vanish from the profile.
        nodes = lambda k: np.arange(k, dtype=np.int64)
        candidates = [
            ClusterCandidate(nodes=nodes(4), conductance=0.5, method="flow"),
            ClusterCandidate(nodes=nodes(64), conductance=0.125,
                             method="flow"),
        ]
        profile = best_per_size_bucket(
            candidates, num_buckets=6, min_size=2, max_size=64
        )
        assert profile.bucket_edges[-1] == 64
        top = profile.representatives[-1]
        assert top is not None and top.size == 64
        assert profile.best_conductance[-1] == pytest.approx(0.125)

    def test_oversized_candidates_still_excluded(self):
        nodes = lambda k: np.arange(k, dtype=np.int64)
        candidates = [
            ClusterCandidate(nodes=nodes(4), conductance=0.5, method="flow"),
            ClusterCandidate(nodes=nodes(100), conductance=0.01,
                             method="flow"),
        ]
        profile = best_per_size_bucket(
            candidates, num_buckets=4, min_size=2, max_size=64
        )
        assert all(
            rep is None or rep.size <= 64 for rep in profile.representatives
        )


class TestDedupKeyRegression:
    def test_summary_aliased_clusters_both_survive(self):
        # Same size, same first/last node, same sum — the old
        # (size, first, last, sum) key aliased these two distinct sets.
        a = np.array([1, 4, 5, 8], dtype=np.int64)
        b = np.array([1, 3, 6, 8], dtype=np.int64)
        assert (a.size, a[0], a[-1], a.sum()) == (b.size, b[0], b[-1], b.sum())
        unique = _unique_clusters([a, b, a.copy()])
        assert len(unique) == 2

    def test_exact_duplicates_still_dropped(self):
        a = np.array([0, 2, 5], dtype=np.int64)
        unique = _unique_clusters([a, a.copy(), a.copy()])
        assert len(unique) == 1


class TestMixingTimeRegression:
    def test_non_converged_walk_raises(self, barbell):
        # The barbell needs far more than 2 steps to mix; the old code
        # returned max_steps as if it had converged.
        with pytest.raises(ConvergenceError) as excinfo:
            mixing_time(barbell, tolerance=0.05, max_steps=2)
        assert excinfo.value.iterations == 2
        assert excinfo.value.residual > 0.05

    def test_converged_walk_still_returns_steps(self, planted):
        steps = mixing_time(planted, tolerance=0.25)
        assert 0 < steps < 100_000


class TestMetricsGuards:
    def test_exact_conductance_refuses_n_over_18(self):
        with pytest.raises(PartitionError):
            graph_conductance_exact(cycle_graph(19))

    def test_exact_conductance_allows_n_18(self):
        value, members = graph_conductance_exact(cycle_graph(18))
        # Best cut of an even cycle is the half split: 2 / 18.
        assert value == pytest.approx(2 / 18)
        assert len(members) == 9

    def test_internal_conductance_propagates_foreign_errors(self, ring,
                                                            monkeypatch):
        from repro.partition import metrics
        from repro.partition import spectral

        def boom(*args, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(spectral, "spectral_cut", boom)
        with pytest.raises(RuntimeError):
            metrics.internal_conductance(ring, range(6))

    def test_internal_conductance_falls_back_on_solver_failure(
            self, ring, monkeypatch):
        from repro.partition import metrics
        from repro.partition import spectral

        def fail(*args, **kwargs):
            raise ConvergenceError("no Fiedler pair")

        monkeypatch.setattr(spectral, "spectral_cut", fail)
        value = metrics.internal_conductance(ring, range(6))
        # K_6 minus nothing: the exact fallback computes the clique's
        # optimum conductance, which is finite and positive.
        assert 0 < value < float("inf")
