"""Tests for the spectral SDP, closed forms, solvers, and equivalence.

These are the tests of the paper's central theorem (Section 3.1 / Problem
(5)): each diffusion dynamics exactly optimizes its regularized SDP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.regularization.closed_forms import (
    GeneralizedEntropy,
    LogDeterminant,
    MatrixPNorm,
    eta_for_lazy_walk,
    eta_for_pagerank,
    heat_kernel_density,
    lazy_walk_density,
    pagerank_density,
)
from repro.regularization.equivalence import (
    assert_equivalence,
    verify_all,
    verify_heat_kernel,
    verify_lazy_walk,
    verify_pagerank,
)
from repro.regularization.sdp import (
    SpectralSDP,
    deflation_basis,
    density_from_vector,
    normalize_to_density,
)
from repro.regularization.solver import (
    kkt_stationarity_residual,
    mirror_descent,
    projected_gradient,
    simplex_projection,
    spectrahedron_projection,
)


class TestSpectralSDP:
    def test_deflation_basis_orthonormal(self, rng):
        v = rng.standard_normal(10)
        v /= np.linalg.norm(v)
        Q = deflation_basis(v)
        assert Q.shape == (10, 9)
        assert np.allclose(Q.T @ Q, np.eye(9), atol=1e-12)
        assert np.abs(Q.T @ v).max() < 1e-12

    def test_exact_solution_is_rank_one_fiedler(self, barbell):
        sdp = SpectralSDP.from_graph(barbell)
        X, lam = sdp.exact_solution()
        from repro.linalg.fiedler import fiedler_pair

        lam_ref, x_ref = fiedler_pair(barbell, method="exact")
        assert lam == pytest.approx(lam_ref, abs=1e-10)
        assert np.allclose(X, np.outer(x_ref, x_ref), atol=1e-8)
        assert sdp.is_feasible(X)

    def test_deflated_laplacian_spectrum(self, ring):
        sdp = SpectralSDP.from_graph(ring)
        deflated = np.linalg.eigvalsh(sdp.deflated_laplacian)
        full = np.linalg.eigvalsh(sdp.laplacian)
        # Deflation removes exactly the zero eigenvalue.
        assert np.allclose(deflated, full[1:], atol=1e-10)

    def test_lift_restrict_roundtrip(self, grid, rng):
        sdp = SpectralSDP.from_graph(grid)
        d = grid.num_nodes - 1
        Y = rng.standard_normal((d, d))
        Y = Y @ Y.T
        assert np.allclose(sdp.restrict(sdp.lift(Y)), Y, atol=1e-10)

    def test_feasibility_violations_detect_problems(self, triangle):
        sdp = SpectralSDP.from_graph(triangle)
        bad = np.eye(3) * 2.0  # trace 6, not deflated
        violations = sdp.feasibility_violations(bad)
        assert violations["trace"] > 1.0
        assert violations["deflation"] > 0.1

    def test_density_from_vector(self, rng):
        x = rng.standard_normal(5)
        X = density_from_vector(x)
        assert np.trace(X) == pytest.approx(1.0)
        assert np.linalg.matrix_rank(X) == 1

    def test_normalize_rejects_zero_trace(self):
        with pytest.raises(InvalidParameterError):
            normalize_to_density(np.zeros((3, 3)))


class TestClosedForms:
    def test_entropy_closed_form_is_gibbs(self, ring):
        sdp = SpectralSDP.from_graph(ring)
        Y = GeneralizedEntropy().closed_form(sdp.deflated_laplacian, 2.0)
        values, vectors = np.linalg.eigh(sdp.deflated_laplacian)
        weights = np.exp(-2.0 * values)
        expected = (vectors * (weights / weights.sum())) @ vectors.T
        assert np.allclose(Y, expected, atol=1e-12)

    def test_logdet_closed_form_trace_one(self, barbell):
        sdp = SpectralSDP.from_graph(barbell)
        Y = LogDeterminant().closed_form(sdp.deflated_laplacian, 5.0)
        assert np.trace(Y) == pytest.approx(1.0, abs=1e-10)
        assert np.linalg.eigvalsh(Y).min() > 0

    def test_pnorm_closed_form_trace_one(self, grid):
        sdp = SpectralSDP.from_graph(grid)
        Y = MatrixPNorm(1.5).closed_form(sdp.deflated_laplacian, 0.8)
        assert np.trace(Y) == pytest.approx(1.0, abs=1e-8)
        assert np.linalg.eigvalsh(Y).min() >= -1e-10

    def test_pnorm_rejects_p_leq_1(self):
        with pytest.raises(InvalidParameterError):
            MatrixPNorm(1.0)

    def test_regularizer_values_and_gradients_consistent(self, rng):
        # Finite-difference check of each gradient.
        d = 6
        Y = rng.standard_normal((d, d))
        Y = Y @ Y.T + 0.5 * np.eye(d)
        Y /= np.trace(Y)
        for regularizer in (GeneralizedEntropy(), LogDeterminant(),
                            MatrixPNorm(1.5)):
            grad = regularizer.gradient(Y)
            direction = rng.standard_normal((d, d))
            direction = (direction + direction.T) / 2
            h = 1e-6
            numeric = (
                regularizer.value(Y + h * direction)
                - regularizer.value(Y - h * direction)
            ) / (2 * h)
            analytic = float(np.tensordot(grad, direction))
            assert numeric == pytest.approx(analytic, rel=1e-3, abs=1e-6)


class TestEquivalenceTheorem:
    """The paper's Section 3.1 correspondence, verified numerically."""

    @pytest.mark.parametrize("t", [0.5, 2.0, 10.0])
    def test_heat_kernel_equivalence(self, ring, t):
        report = verify_heat_kernel(ring, t)
        assert_equivalence(report, atol=1e-9)
        assert report.kkt_residual < 1e-8

    @pytest.mark.parametrize("gamma", [0.05, 0.3, 0.8])
    def test_pagerank_equivalence(self, barbell, gamma):
        report = verify_pagerank(barbell, gamma)
        assert_equivalence(report, atol=1e-9)
        assert report.kkt_residual < 1e-7

    @pytest.mark.parametrize("alpha,k", [(0.5, 1), (0.6, 4), (0.9, 10)])
    def test_lazy_walk_equivalence(self, grid, alpha, k):
        report = verify_lazy_walk(grid, alpha, k)
        assert_equivalence(report, atol=1e-9)
        assert report.kkt_residual < 1e-7

    def test_all_three_on_several_graphs(self, lollipop, planted):
        for graph in (lollipop, planted):
            for report in verify_all(graph):
                assert report.diffusion_vs_closed_form < 1e-9

    def test_independent_solver_agrees(self, triangle, ring):
        for report in verify_all(ring, run_solver=True):
            assert report.solver_vs_closed_form < 1e-6

    def test_densities_feasible(self, whiskered):
        sdp = SpectralSDP.from_graph(whiskered)
        for X in (
            heat_kernel_density(sdp, 2.0),
            pagerank_density(sdp, 0.2),
            lazy_walk_density(sdp, 0.6, 5),
        ):
            assert sdp.is_feasible(X, tol=1e-7)

    def test_lazy_walk_requires_half_alpha(self, ring):
        sdp = SpectralSDP.from_graph(ring)
        with pytest.raises(InvalidParameterError):
            lazy_walk_density(sdp, 0.3, 5)

    def test_eta_maps_consistent(self, barbell):
        # The η(γ) map must make the closed form reproduce the diffusion.
        sdp = SpectralSDP.from_graph(barbell)
        gamma = 0.25
        eta, mu = eta_for_pagerank(sdp, gamma)
        assert mu == pytest.approx(gamma / (1 - gamma))
        Y = LogDeterminant().closed_form(sdp.deflated_laplacian, eta)
        assert np.allclose(sdp.lift(Y), pagerank_density(sdp, gamma),
                           atol=1e-9)

    def test_unregularized_limit_heat(self, barbell):
        # t → ∞: the heat-kernel density approaches the rank-one optimum.
        sdp = SpectralSDP.from_graph(barbell)
        optimum, lam2 = sdp.exact_solution()
        X = heat_kernel_density(sdp, 5000.0)
        assert np.linalg.norm(X - optimum) < 1e-6

    def test_heavily_regularized_limit_heat(self, ring):
        # t → 0: maximally mixed on the deflated space.
        sdp = SpectralSDP.from_graph(ring)
        X = heat_kernel_density(sdp, 1e-8)
        n = ring.num_nodes
        mixed = sdp.lift(np.eye(n - 1) / (n - 1))
        assert np.linalg.norm(X - mixed) < 1e-6


class TestSolvers:
    def test_simplex_projection_properties(self, rng):
        for _ in range(10):
            v = rng.standard_normal(8) * 3
            p = simplex_projection(v)
            assert p.sum() == pytest.approx(1.0)
            assert np.all(p >= 0)

    def test_simplex_projection_fixed_point(self):
        p = np.array([0.2, 0.3, 0.5])
        assert np.allclose(simplex_projection(p), p)

    def test_spectrahedron_projection_feasible(self, rng):
        M = rng.standard_normal((6, 6))
        M = (M + M.T) / 2
        Y = spectrahedron_projection(M)
        assert np.trace(Y) == pytest.approx(1.0)
        assert np.linalg.eigvalsh(Y).min() >= -1e-12

    def test_projected_gradient_matches_closed_form_entropy(self, triangle):
        sdp = SpectralSDP.from_graph(triangle)
        regularizer = GeneralizedEntropy()
        eta = 1.5
        closed = regularizer.closed_form(sdp.deflated_laplacian, eta)
        result = projected_gradient(
            sdp.deflated_laplacian, regularizer, eta, max_iterations=20_000,
            tol=1e-13,
        )
        assert np.linalg.norm(result.solution - closed) < 1e-4

    def test_mirror_descent_objective_decreases(self, ring):
        sdp = SpectralSDP.from_graph(ring)
        result = mirror_descent(
            sdp.deflated_laplacian, MatrixPNorm(1.5), 1.0, max_iterations=200
        )
        history = result.objective_history
        assert history[-1] <= history[0] + 1e-12

    def test_kkt_residual_large_for_nonoptimal(self, ring):
        sdp = SpectralSDP.from_graph(ring)
        d = ring.num_nodes - 1
        uniform = np.eye(d) / d
        residual = kkt_stationarity_residual(
            sdp.deflated_laplacian, GeneralizedEntropy(), 2.0, uniform
        )
        optimal = GeneralizedEntropy().closed_form(sdp.deflated_laplacian, 2.0)
        residual_opt = kkt_stationarity_residual(
            sdp.deflated_laplacian, GeneralizedEntropy(), 2.0, optimal
        )
        assert residual > 10 * residual_opt
